//! Cycle-level hardware modules of the SpAtten accelerator (paper §IV).
//!
//! Each module mirrors one block of Figure 8 and carries both a *functional*
//! model (what data comes out) and a *timing* model (how many cycles it
//! takes at what parallelism):
//!
//! * [`fifo`] — bounded FIFOs with occupancy statistics (the 64-deep
//!   address/data FIFOs around the crossbars).
//! * [`zero_eliminator`] — the prefix-sum + log-stage shifter of Fig. 10.
//! * [`topk`] — the high-parallelism quick-select top-k engine of Fig. 9 /
//!   Algorithm 3, plus a Batcher sorting-network model it is compared
//!   against in §IV-B.
//! * [`crossbar`] — the 32×16 address / 16×32 data crossbars.
//! * [`mult_array`] — the 512-multiplier array with its reconfigurable
//!   adder tree (Fig. 11), shared by Q·Kᵀ and prob·V.
//! * [`softmax_unit`] — the dequantize → exp → normalize → requantize
//!   pipeline (Fig. 12) with Taylor-expansion exp.
//! * [`bitwidth`] — the DRAM-to-on-chip bitwidth converter.
//! * [`sram`] — K/V SRAMs with access counters for energy accounting.
//! * [`pipeline`] — composition of stage timings into end-to-end cycles for
//!   a fully pipelined datapath (elastic-buffer approximation).
//! * [`datapath`] — event-driven simulation of the same chain with
//!   *bounded* FIFOs and backpressure, validating the analytic model.
//! * [`sort_network`] — a functional Batcher odd–even merge network (the
//!   full-sorting baseline of §IV-B).

pub mod bitwidth;
pub mod crossbar;
pub mod datapath;
pub mod fifo;
pub mod mult_array;
pub mod pipeline;
pub mod softmax_unit;
pub mod sort_network;
pub mod sram;
pub mod topk;
pub mod zero_eliminator;

pub use bitwidth::BitwidthConverter;
pub use crossbar::Crossbar;
pub use datapath::{BufferedStage, EventDrivenPipeline, EventStats};
pub use fifo::Fifo;
pub use mult_array::{AdderTreeConfig, MultArray};
pub use pipeline::{pipeline_cycles, StageTiming};
pub use softmax_unit::SoftmaxUnit;
pub use sort_network::OddEvenMergeNetwork;
pub use sram::Sram;
pub use topk::{BatcherSorter, TopkEngine, TopkResult};
pub use zero_eliminator::ZeroEliminator;
