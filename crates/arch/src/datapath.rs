//! Event-driven pipeline simulation with bounded buffers and backpressure.
//!
//! The analytic model in [`crate::pipeline`] assumes infinitely elastic
//! buffers between stages; the real datapath has 64-deep FIFOs (Table I).
//! This module simulates a chain of pipelined stages at item granularity
//! with the classic bounded-buffer recurrence:
//!
//! * a stage can *start* item `i` once (a) its own previous item vacated
//!   the initiation interval, (b) the upstream stage *finished* item `i`,
//!   and (c) the downstream buffer has room — i.e. item `i − capacity` has
//!   already been started downstream.
//!
//! The simulator reports per-stage busy and stall cycles, which is how the
//! design-space exploration attributes bottlenecks, and it degenerates to
//! exactly the analytic `pipeline_cycles` when buffers are deep enough —
//! which a test asserts.

use crate::pipeline::StageTiming;
use serde::{Deserialize, Serialize};

/// One stage of the event-driven pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedStage {
    /// Timing (name, initiation interval, latency).
    pub timing: StageTiming,
    /// Capacity of the FIFO *in front of* this stage (items). The first
    /// stage's buffer models the input queue.
    pub input_capacity: usize,
}

impl BufferedStage {
    /// Convenience constructor.
    pub const fn new(timing: StageTiming, input_capacity: usize) -> Self {
        Self {
            timing,
            input_capacity,
        }
    }
}

/// What an event-driven run produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventStats {
    /// Cycle at which the last item left the last stage.
    pub total_cycles: u64,
    /// Per-stage busy cycles (`items × II`).
    pub busy_cycles: Vec<u64>,
    /// Per-stage cycles spent blocked by downstream backpressure.
    pub stall_cycles: Vec<u64>,
}

impl EventStats {
    /// Index of the stage with the highest busy time.
    pub fn bottleneck(&self) -> usize {
        self.busy_cycles
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// A chain of buffered stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDrivenPipeline {
    stages: Vec<BufferedStage>,
}

impl EventDrivenPipeline {
    /// Builds a pipeline from stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, any initiation interval is zero, or any
    /// buffer capacity is zero.
    pub fn new(stages: Vec<BufferedStage>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        for s in &stages {
            assert!(
                s.timing.initiation_interval >= 1,
                "stage {} has zero II",
                s.timing.name
            );
            assert!(
                s.input_capacity >= 1,
                "stage {} has zero buffer",
                s.timing.name
            );
        }
        Self { stages }
    }

    /// The stages.
    pub fn stages(&self) -> &[BufferedStage] {
        &self.stages
    }

    /// Simulates `items` flowing through the chain.
    pub fn simulate(&self, items: u64) -> EventStats {
        let n_stages = self.stages.len();
        let n = items as usize;
        if n == 0 {
            return EventStats {
                total_cycles: 0,
                busy_cycles: vec![0; n_stages],
                stall_cycles: vec![0; n_stages],
            };
        }

        // start[s][i] / finish[s][i] for stage s, item i.
        let mut start = vec![vec![0u64; n]; n_stages];
        let mut finish = vec![vec![0u64; n]; n_stages];
        let mut stalls = vec![0u64; n_stages];

        for i in 0..n {
            for s in 0..n_stages {
                let ii = self.stages[s].timing.initiation_interval;
                let lat = self.stages[s].timing.latency;
                // (a) own previous issue slot
                let mut t = if i > 0 { start[s][i - 1] + ii } else { 0 };
                // (b) upstream completion
                if s > 0 {
                    t = t.max(finish[s - 1][i]);
                }
                let unconstrained = t;
                // (c) downstream buffer room: the buffer in front of stage
                // s+1 holds items that stage s finished but s+1 has not yet
                // started; it has `capacity` slots.
                if s + 1 < n_stages {
                    let cap = self.stages[s + 1].input_capacity;
                    if i >= cap {
                        t = t.max(start[s + 1][i - cap]);
                    }
                }
                stalls[s] += t - unconstrained;
                start[s][i] = t;
                finish[s][i] = t + ii + lat;
            }
        }

        let busy: Vec<u64> = self
            .stages
            .iter()
            .map(|s| items * s.timing.initiation_interval)
            .collect();
        EventStats {
            total_cycles: finish[n_stages - 1][n - 1],
            busy_cycles: busy,
            stall_cycles: stalls,
        }
    }
}

/// Builds the SpAtten critical-path pipeline (modules 6,7,8,10,11 of
/// Fig. 8) for a given per-query workload shape, with Table I's 64-deep
/// FIFOs.
pub fn spatten_critical_path(
    l1: usize,
    trees: usize,
    softmax_parallelism: usize,
    topk_interval: u64,
) -> EventDrivenPipeline {
    let qk_ii = (l1 as u64).div_ceil(trees as u64).max(1);
    let sm_ii = (l1 as u64).div_ceil(softmax_parallelism as u64).max(1) + 1;
    EventDrivenPipeline::new(vec![
        BufferedStage::new(StageTiming::new("fetch", 1, 4), 64),
        BufferedStage::new(StageTiming::new("qk", qk_ii, 3), 64),
        BufferedStage::new(StageTiming::new("softmax", sm_ii, 12), 128),
        BufferedStage::new(
            StageTiming::new("topk_local_v", topk_interval.max(1), 8),
            64,
        ),
        BufferedStage::new(StageTiming::new("pv", qk_ii, 3), 64),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::pipeline_cycles;

    fn timings() -> Vec<StageTiming> {
        vec![
            StageTiming::new("a", 1, 2),
            StageTiming::new("b", 3, 5),
            StageTiming::new("c", 2, 1),
        ]
    }

    #[test]
    fn deep_buffers_match_analytic_model() {
        let stages: Vec<BufferedStage> = timings()
            .into_iter()
            .map(|t| BufferedStage::new(t, 10_000))
            .collect();
        let pipe = EventDrivenPipeline::new(stages);
        for items in [1u64, 2, 10, 500] {
            let event = pipe.simulate(items).total_cycles;
            let analytic = pipeline_cycles(items, &timings());
            // The analytic model counts `fill + II·(n−1) + 1`; the event
            // model counts issue+II+latency per stage. They agree up to a
            // constant offset ≤ the per-stage II sum.
            let slack = timings().iter().map(|t| t.initiation_interval).sum::<u64>();
            assert!(
                event.abs_diff(analytic) <= slack,
                "items {items}: event {event} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn tiny_buffers_cause_stalls_and_slowdown() {
        let deep: Vec<BufferedStage> = timings()
            .into_iter()
            .map(|t| BufferedStage::new(t, 1000))
            .collect();
        let shallow: Vec<BufferedStage> = timings()
            .into_iter()
            .map(|t| BufferedStage::new(t, 1))
            .collect();
        let fast = EventDrivenPipeline::new(deep).simulate(200);
        let slow = EventDrivenPipeline::new(shallow).simulate(200);
        assert!(slow.total_cycles >= fast.total_cycles);
        assert!(
            slow.stall_cycles.iter().sum::<u64>() > 0,
            "1-deep buffers must stall"
        );
    }

    #[test]
    fn bottleneck_is_the_slowest_stage() {
        let stages: Vec<BufferedStage> = timings()
            .into_iter()
            .map(|t| BufferedStage::new(t, 64))
            .collect();
        let stats = EventDrivenPipeline::new(stages).simulate(100);
        assert_eq!(stats.bottleneck(), 1); // "b" with II=3
    }

    #[test]
    fn throughput_is_bottleneck_bound_in_steady_state() {
        let stages: Vec<BufferedStage> = timings()
            .into_iter()
            .map(|t| BufferedStage::new(t, 64))
            .collect();
        let pipe = EventDrivenPipeline::new(stages);
        let a = pipe.simulate(1000).total_cycles;
        let b = pipe.simulate(2000).total_cycles;
        assert_eq!(
            b - a,
            1000 * 3,
            "steady-state delta must be II_max per item"
        );
    }

    #[test]
    fn spatten_critical_path_shape() {
        // 1024 keys, 8-wide trees, softmax 8, top-k interval 128: the
        // Q·K stage (II 128) and top-k (II 128) tie; total for a single
        // query ≈ fill + one pass.
        let pipe = spatten_critical_path(1024, 8, 8, 128);
        let one = pipe.simulate(1).total_cycles;
        assert!(one > 128, "must include at least one II");
        // 16 queries back-to-back: steady II = 129 (softmax +1).
        let many = pipe.simulate(17).total_cycles;
        assert_eq!(many - one, 16 * 129);
    }

    #[test]
    fn zero_items_are_free() {
        let stages = vec![BufferedStage::new(StageTiming::new("x", 1, 1), 4)];
        assert_eq!(EventDrivenPipeline::new(stages).simulate(0).total_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "zero buffer")]
    fn zero_capacity_rejected() {
        let _ = EventDrivenPipeline::new(vec![BufferedStage::new(StageTiming::new("x", 1, 0), 0)]);
    }
}
