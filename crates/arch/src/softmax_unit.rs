//! The softmax + progressive-quantization pipeline (paper Fig. 12).
//!
//! Fixed-point attention scores are dequantized (the `1/√D` normalization is
//! folded into the scale), exponentiated with a 5th-order Taylor expansion
//! on floating-point FMA units, accumulated, divided, and requantized to the
//! 12-bit on-chip width. The max probability is compared against the
//! progressive-quantization threshold to decide whether LSBs must be
//! fetched.

use serde::{Deserialize, Serialize};

/// Taylor-expansion order for `exp` (as in the paper's reference [16]).
const EXP_TAYLOR_ORDER: u32 = 5;

/// Pipeline depth: dequant(1) + exp stages + accumulate(1) + divide(4) +
/// requant(1).
const PIPELINE_LATENCY: u64 = 1 + EXP_TAYLOR_ORDER as u64 + 1 + 4 + 1;

/// One softmax evaluation's outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxOutput {
    /// Quantized-then-normalized probabilities.
    pub probs: Vec<f32>,
    /// Maximum probability (input to the LSB-fetch decision).
    pub max_prob: f32,
    /// Whether the progressive-quantization comparator requested LSBs.
    pub needs_lsb: bool,
    /// Cycles consumed.
    pub cycles: u64,
}

/// The softmax functional unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoftmaxUnit {
    parallelism: usize,
    prob_frac_bits: u32,
    total_cycles: u64,
    total_exp_ops: u64,
    total_fmas: u64,
}

impl SoftmaxUnit {
    /// A unit evaluating `parallelism` exponentials per cycle (8 in
    /// Table I), requantizing probabilities to `prob_frac_bits` fractional
    /// bits (12-bit datapath).
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn new(parallelism: usize, prob_frac_bits: u32) -> Self {
        assert!(parallelism > 0, "parallelism must be positive");
        Self {
            parallelism,
            prob_frac_bits,
            total_cycles: 0,
            total_exp_ops: 0,
            total_fmas: 0,
        }
    }

    /// Exponentials evaluated per cycle.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Lifetime busy cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Lifetime exponential evaluations (for FMA energy).
    pub fn total_exp_ops(&self) -> u64 {
        self.total_exp_ops
    }

    /// Lifetime floating-point FMA operations (Taylor terms + divides).
    pub fn total_fmas(&self) -> u64 {
        self.total_fmas
    }

    /// Evaluates one score row: probabilities, max-probability comparator,
    /// and cycle cost. `lsb_threshold` is the progressive-quantization
    /// threshold (`needs_lsb = max_prob < lsb_threshold`).
    pub fn evaluate(&mut self, scores: &[f32], lsb_threshold: f32) -> SoftmaxOutput {
        let n = scores.len();
        let cycles = (n as u64).div_ceil(self.parallelism as u64) + PIPELINE_LATENCY;
        self.total_cycles += cycles;
        self.total_exp_ops += n as u64;
        // Taylor terms per exp + one divide per element.
        self.total_fmas += n as u64 * (u64::from(EXP_TAYLOR_ORDER) + 1);

        let probs_exact = spatten_quant::softmax(scores);
        // Requantize to the fixed-point probability width.
        let q = (1u32 << self.prob_frac_bits) as f32;
        let probs: Vec<f32> = probs_exact.iter().map(|p| (p * q).round() / q).collect();
        let max_prob = probs_exact.iter().copied().fold(0.0f32, f32::max);
        SoftmaxOutput {
            probs,
            max_prob,
            needs_lsb: max_prob < lsb_threshold,
            cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> SoftmaxUnit {
        SoftmaxUnit::new(8, 12)
    }

    #[test]
    fn probabilities_sum_to_one_within_quantization() {
        let mut u = unit();
        let out = u.evaluate(&[1.0, 2.0, 0.5, -1.0], 0.1);
        let sum: f32 = out.probs.iter().sum();
        assert!((sum - 1.0).abs() < 4.0 / 4096.0, "sum {sum}");
    }

    #[test]
    fn flat_distribution_requests_lsb() {
        let mut u = unit();
        let flat = u.evaluate(&vec![0.0; 64], 0.1);
        assert!(flat.needs_lsb, "max_prob {}", flat.max_prob);
        let peaked = u.evaluate(&[8.0, 0.0, 0.0, 0.0], 0.1);
        assert!(!peaked.needs_lsb, "max_prob {}", peaked.max_prob);
    }

    #[test]
    fn cycles_scale_with_length_and_parallelism() {
        let mut u8x = SoftmaxUnit::new(8, 12);
        let mut u1x = SoftmaxUnit::new(1, 12);
        let scores = vec![0.1f32; 128];
        let c8 = u8x.evaluate(&scores, 0.1).cycles;
        let c1 = u1x.evaluate(&scores, 0.1).cycles;
        assert_eq!(c8, 128 / 8 + 12);
        assert_eq!(c1, 128 + 12);
    }

    #[test]
    fn fma_accounting_counts_taylor_terms() {
        let mut u = unit();
        u.evaluate(&[0.0; 10], 0.1);
        assert_eq!(u.total_exp_ops(), 10);
        assert_eq!(u.total_fmas(), 10 * 6);
    }

    #[test]
    fn requantization_is_monotone() {
        let mut u = unit();
        let out = u.evaluate(&[3.0, 2.0, 1.0], 0.1);
        assert!(out.probs[0] >= out.probs[1]);
        assert!(out.probs[1] >= out.probs[2]);
    }
}
