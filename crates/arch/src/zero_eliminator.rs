//! The zero eliminator (paper Fig. 10).
//!
//! After the comparator arrays of the top-k engine null out elements on the
//! wrong side of the pivot, the zero eliminator compacts the survivors while
//! preserving order. In hardware it is a prefix-sum over "is zero" flags
//! followed by a `log₂ n`-stage shifter: in stage `s`, an element shifts
//! left by `2^s` iff bit `s` of its zero count is set.
//!
//! The functional model here executes those stages literally (not with a
//! `retain`) so the structural claim — `log n` stages suffice — is what the
//! tests verify.

/// Zero eliminator over fixed-width vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroEliminator {
    width: usize,
}

impl ZeroEliminator {
    /// An eliminator for vectors of at most `width` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        Self { width }
    }

    /// Lane count.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of shifter stages for `n` lanes: `⌈log₂ n⌉` (zero for n ≤ 1).
    pub fn stages(n: usize) -> u32 {
        if n <= 1 {
            0
        } else {
            usize::BITS - (n - 1).leading_zeros()
        }
    }

    /// Pipeline latency in cycles for one vector (one cycle per stage, plus
    /// one for the prefix sum).
    pub fn latency_cycles(&self) -> u64 {
        u64::from(Self::stages(self.width)) + 1
    }

    /// Compacts non-zero (`Some`) elements to the front, preserving order,
    /// by executing the staged shifter.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` exceeds the configured width.
    pub fn eliminate<T: Copy>(&self, lanes: &[Option<T>]) -> Vec<T> {
        assert!(lanes.len() <= self.width, "input wider than the eliminator");
        let n = lanes.len();
        // Prefix count of zeros before (and including) each position.
        let mut zero_cnt = vec![0usize; n];
        let mut running = 0usize;
        for (i, lane) in lanes.iter().enumerate() {
            if lane.is_none() {
                running += 1;
            }
            zero_cnt[i] = running;
        }

        // Staged shifter: stage s moves a lane left by 2^s iff bit s of its
        // zero count is set. Zero lanes are holes the shifts may overwrite.
        let mut data: Vec<Option<T>> = lanes.to_vec();
        let mut counts = zero_cnt;
        for s in 0..Self::stages(n) {
            let shift = 1usize << s;
            let mut next: Vec<Option<T>> = vec![None; n];
            let mut next_counts = vec![0usize; n];
            for i in 0..n {
                if data[i].is_none() {
                    continue;
                }
                let (dst, remaining) = if counts[i] & shift != 0 {
                    (i - shift, counts[i] - shift)
                } else {
                    (i, counts[i])
                };
                next[dst] = data[i];
                next_counts[dst] = remaining;
            }
            data = next;
            counts = next_counts;
        }

        let survivors = lanes.iter().filter(|l| l.is_some()).count();
        data.into_iter().take(survivors).flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compacts_preserving_order() {
        let ze = ZeroEliminator::new(8);
        let lanes = [
            Some('a'),
            None,
            Some('b'),
            None,
            Some('c'),
            Some('d'),
            None,
            Some('e'),
        ];
        assert_eq!(ze.eliminate(&lanes), vec!['a', 'b', 'c', 'd', 'e']);
    }

    #[test]
    fn paper_example_shift_pattern() {
        // Fig. 10: a0b0cd0e → abcde.
        let ze = ZeroEliminator::new(8);
        let lanes = [
            Some('a'),
            None,
            Some('b'),
            None,
            Some('c'),
            Some('d'),
            None,
            Some('e'),
        ];
        let out = ze.eliminate(&lanes);
        assert_eq!(out, vec!['a', 'b', 'c', 'd', 'e']);
    }

    #[test]
    fn all_zero_and_all_nonzero() {
        let ze = ZeroEliminator::new(4);
        assert!(ze.eliminate::<u8>(&[None, None, None, None]).is_empty());
        let full = [Some(1), Some(2), Some(3), Some(4)];
        assert_eq!(ze.eliminate(&full), vec![1, 2, 3, 4]);
    }

    #[test]
    fn stage_count_is_log2() {
        assert_eq!(ZeroEliminator::stages(1), 0);
        assert_eq!(ZeroEliminator::stages(2), 1);
        assert_eq!(ZeroEliminator::stages(8), 3);
        assert_eq!(ZeroEliminator::stages(9), 4);
        assert_eq!(ZeroEliminator::stages(1024), 10);
    }

    #[test]
    fn matches_naive_filter_on_many_patterns() {
        let ze = ZeroEliminator::new(16);
        for mask in 0u32..1 << 12 {
            let lanes: Vec<Option<u32>> =
                (0..12).map(|i| (mask >> i & 1 == 1).then_some(i)).collect();
            let expect: Vec<u32> = lanes.iter().copied().flatten().collect();
            assert_eq!(ze.eliminate(&lanes), expect, "mask {mask:b}");
        }
    }

    #[test]
    #[should_panic(expected = "wider")]
    fn oversize_input_rejected() {
        let ze = ZeroEliminator::new(2);
        let _ = ze.eliminate(&[Some(1), Some(2), Some(3)]);
    }
}
