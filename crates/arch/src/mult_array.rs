//! The 512-multiplier array with reconfigurable adder tree (paper Fig. 11).
//!
//! One row of K is loaded from SRAM per cycle and multiplied against the
//! broadcast query; the adder tree reduces products into attention scores.
//! For head dimension `D < 512`, `512/D` key rows are packed per SRAM line
//! and the adder tree is reconfigured into `512/D` independent `D`-way
//! trees, producing `512/D` scores per cycle. The same array is reused by
//! the prob·V module with the broadcast/reduce roles adjusted.

use serde::{Deserialize, Serialize};

/// How the adder tree is carved up for a given vector dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdderTreeConfig {
    /// Independent reduction trees (`multipliers / d`).
    pub trees: usize,
    /// Reduction width of each tree.
    pub d: usize,
}

/// The multiplier array + adder tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultArray {
    multipliers: usize,
    total_cycles: u64,
    total_macs: u64,
}

impl MultArray {
    /// An array with `multipliers` multipliers (512 in SpAtten, 128 in the
    /// 1/8-scale variant compared against A3/MNNFast).
    ///
    /// # Panics
    ///
    /// Panics if `multipliers` is zero.
    pub fn new(multipliers: usize) -> Self {
        assert!(multipliers > 0, "need at least one multiplier");
        Self {
            multipliers,
            total_cycles: 0,
            total_macs: 0,
        }
    }

    /// Multiplier count.
    pub fn multipliers(&self) -> usize {
        self.multipliers
    }

    /// The adder-tree configuration for vectors of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or exceeds the multiplier count.
    pub fn tree_config(&self, d: usize) -> AdderTreeConfig {
        assert!(d > 0, "dimension must be positive");
        assert!(
            d <= self.multipliers,
            "dimension {d} exceeds {} multipliers",
            self.multipliers
        );
        AdderTreeConfig {
            trees: self.multipliers / d,
            d,
        }
    }

    /// Cycles to compute `rows` dot products of dimension `d` (e.g. one
    /// query against `rows` keys): `⌈rows / (multipliers/d)⌉`, the Fig. 11
    /// packing. Also books the MAC count for energy accounting.
    pub fn dot_batch_cycles(&mut self, rows: usize, d: usize) -> u64 {
        let cfg = self.tree_config(d);
        let cycles = (rows as u64).div_ceil(cfg.trees as u64);
        self.total_cycles += cycles;
        self.total_macs += rows as u64 * d as u64;
        cycles
    }

    /// Cycles for a dense `m×k · k×n` matrix multiply tiled over the array
    /// (used by the SpAtten-e2e FFN extension): one k-dim dot product per
    /// tree per cycle.
    pub fn matmul_cycles(&mut self, m: usize, k: usize, n: usize) -> u64 {
        // m*n dot products of dimension k; trees = multipliers/min(k, mult)
        let d = k.min(self.multipliers);
        let dots = m as u64 * n as u64 * (k as u64).div_ceil(d as u64);
        let cfg = self.tree_config(d);
        let cycles = dots.div_ceil(cfg.trees as u64);
        self.total_cycles += cycles;
        self.total_macs += m as u64 * k as u64 * n as u64;
        cycles
    }

    /// Lifetime busy cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Lifetime multiply-accumulates (for energy accounting).
    pub fn total_macs(&self) -> u64 {
        self.total_macs
    }

    /// Functional fixed-point dot product at `frac_bits`, saturating each
    /// operand to `bits` first — bit-accurate with the 12-bit datapath.
    pub fn dot_fixed(a: &[f32], b: &[f32], bits: u32, frac_bits: u32) -> f32 {
        assert_eq!(a.len(), b.len(), "dot operands must match");
        let scale = f64::from(1u32 << frac_bits);
        let max = (1i64 << (bits - 1)) - 1;
        let min = -(1i64 << (bits - 1));
        let mut acc: i64 = 0;
        for (&x, &y) in a.iter().zip(b) {
            let xi = ((x as f64 * scale).round() as i64).clamp(min, max);
            let yi = ((y as f64 * scale).round() as i64).clamp(min, max);
            acc += xi * yi;
        }
        (acc as f64 / (scale * scale)) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_config_packs_512_over_64() {
        let arr = MultArray::new(512);
        let cfg = arr.tree_config(64);
        assert_eq!(cfg.trees, 8); // 8 keys per cycle, as in the paper
        assert_eq!(cfg.d, 64);
    }

    #[test]
    fn dot_batch_cycles_match_paper_example() {
        // 1024 keys of dimension 64 on 512 multipliers → 128 cycles.
        let mut arr = MultArray::new(512);
        assert_eq!(arr.dot_batch_cycles(1024, 64), 128);
        assert_eq!(arr.total_macs(), 1024 * 64);
    }

    #[test]
    fn eighth_scale_array_is_8x_slower() {
        let mut big = MultArray::new(512);
        let mut small = MultArray::new(128);
        let b = big.dot_batch_cycles(4096, 64);
        let s = small.dot_batch_cycles(4096, 64);
        assert_eq!(s, b * 4);
    }

    #[test]
    fn matmul_cycles_scale_with_work() {
        let mut arr = MultArray::new(512);
        let small = arr.matmul_cycles(1, 768, 768);
        let mut arr2 = MultArray::new(512);
        let big = arr2.matmul_cycles(1, 768, 3072);
        assert_eq!(big, small * 4);
    }

    #[test]
    fn fixed_dot_tracks_float_within_quantization_error() {
        let a: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.37).sin()).collect();
        let b: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.23).cos()).collect();
        let exact: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let fixed = MultArray::dot_fixed(&a, &b, 12, 8);
        assert!((exact - fixed).abs() < 0.1, "exact {exact} fixed {fixed}");
    }

    #[test]
    fn fixed_dot_saturates_extremes() {
        // Inputs beyond the representable range clamp instead of wrapping.
        let a = [100.0f32];
        let b = [100.0f32];
        let v = MultArray::dot_fixed(&a, &b, 12, 8);
        assert!(v > 0.0 && v < 100.0 * 100.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_dimension_rejected() {
        let arr = MultArray::new(128);
        let _ = arr.tree_config(512);
    }
}
