//! Bounded FIFOs with occupancy statistics.
//!
//! SpAtten places 64-deep FIFOs on both sides of its crossbars (32 address
//! FIFOs of 8 B, 32 data FIFOs of 16 B — Table I / §IV-A). The simulator
//! uses this type wherever the hardware has an elastic buffer; the recorded
//! high-water mark feeds the design-space exploration.

use std::collections::VecDeque;

/// A bounded FIFO.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    max_occupancy: usize,
    total_pushes: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
            max_occupancy: 0,
            total_pushes: 0,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether full (producer must stall).
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Pushes an item; returns it back if the FIFO is full (caller stalls).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        self.items.push_back(item);
        self.total_pushes += 1;
        self.max_occupancy = self.max_occupancy.max(self.items.len());
        Ok(())
    }

    /// Pops the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Highest occupancy ever reached.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Lifetime number of successful pushes.
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }

    /// Drains all items into a vector (simulation shortcut between coarse
    /// pipeline phases).
    pub fn drain_all(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_fifo_order() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn full_fifo_rejects_and_returns_item() {
        let mut f = Fifo::new(2);
        f.push('a').unwrap();
        f.push('b').unwrap();
        assert!(f.is_full());
        assert_eq!(f.push('c'), Err('c'));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn stats_track_high_water_mark() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.push(i).unwrap();
        }
        f.pop();
        f.pop();
        f.push(9).unwrap();
        assert_eq!(f.max_occupancy(), 5);
        assert_eq!(f.total_pushes(), 6);
    }

    #[test]
    fn drain_all_empties() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.drain_all(), vec![1, 2]);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }
}
