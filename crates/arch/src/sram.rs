//! On-chip SRAMs (the 196 KB Key and Value buffers of Table I).
//!
//! The size is chosen as `2 × 1024 tokens × 64 dims × 12 bits`: double
//! buffering for a 1024-token context at head dimension 64. The simulator
//! tracks accesses for energy accounting and answers capacity questions for
//! the design-space exploration (Fig. 19b).

use serde::{Deserialize, Serialize};

/// A sized SRAM with access counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sram {
    name: &'static str,
    bytes: u64,
    line_bytes: u64,
    double_buffered: bool,
    reads: u64,
    writes: u64,
}

impl Sram {
    /// A new SRAM of `bytes` total capacity with `line_bytes` access width.
    ///
    /// # Panics
    ///
    /// Panics if sizes are zero or the line exceeds the capacity.
    pub fn new(name: &'static str, bytes: u64, line_bytes: u64, double_buffered: bool) -> Self {
        assert!(bytes > 0 && line_bytes > 0, "sizes must be positive");
        assert!(line_bytes <= bytes, "line exceeds capacity");
        Self {
            name,
            bytes,
            line_bytes,
            double_buffered,
            reads: 0,
            writes: 0,
        }
    }

    /// The 196 KB Key/Value SRAM of Table I (line = 512 × 12 bit = 768 B).
    pub fn spatten_kv(name: &'static str) -> Self {
        Self::new(name, 196 * 1024, 768, true)
    }

    /// Name for reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total capacity in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Usable capacity per buffer (half when double-buffered).
    pub fn usable_bytes(&self) -> u64 {
        if self.double_buffered {
            self.bytes / 2
        } else {
            self.bytes
        }
    }

    /// Whether `payload_bytes` fits in one buffer.
    pub fn fits(&self, payload_bytes: u64) -> bool {
        payload_bytes <= self.usable_bytes()
    }

    /// Max token rows that fit, given `bits_per_token` storage per row.
    pub fn token_capacity(&self, bits_per_token: u64) -> u64 {
        self.usable_bytes() * 8 / bits_per_token
    }

    /// Books `n` line reads.
    pub fn read_lines(&mut self, n: u64) {
        self.reads += n;
    }

    /// Books `n` line writes.
    pub fn write_lines(&mut self, n: u64) {
        self.writes += n;
    }

    /// Line reads so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Line writes so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Bytes moved (reads + writes) for energy accounting.
    pub fn bytes_moved(&self) -> u64 {
        (self.reads + self.writes) * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_kv_sram_holds_1024_tokens_double_buffered() {
        let s = Sram::spatten_kv("key");
        // 1024 tokens × 64 dims × 12 bits = 98 304 B per buffer.
        assert!(s.fits(1024 * 64 * 12 / 8));
        assert!(!s.fits(2 * 1024 * 64 * 12 / 8));
        assert_eq!(s.token_capacity(64 * 12), 1024 * 196 / 192); // ≈ 1045
    }

    #[test]
    fn access_counters_accumulate() {
        let mut s = Sram::new("t", 1024, 64, false);
        s.read_lines(3);
        s.write_lines(2);
        assert_eq!(s.reads(), 3);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.bytes_moved(), 5 * 64);
    }

    #[test]
    fn single_buffered_uses_full_capacity() {
        let s = Sram::new("t", 1024, 64, false);
        assert_eq!(s.usable_bytes(), 1024);
        let d = Sram::new("t", 1024, 64, true);
        assert_eq!(d.usable_bytes(), 512);
    }

    #[test]
    #[should_panic(expected = "line exceeds capacity")]
    fn oversized_line_rejected() {
        let _ = Sram::new("t", 64, 128, false);
    }
}
