//! The 32×16 address and 16×32 data crossbars (paper §IV-D).
//!
//! The Q-K-V fetcher emits up to 32 read requests per cycle; the address
//! crossbar routes them to 16 HBM channels. "There is no memory access
//! conflict because the crossbar generates at most one memory request for
//! each channel at a time" — so the timing model serializes per *output
//! port*: a batch of requests takes as many cycles as the most-subscribed
//! destination needs.

use serde::{Deserialize, Serialize};

/// A master×slave crossbar timing/routing model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Crossbar {
    masters: usize,
    slaves: usize,
    total_grants: u64,
    total_cycles: u64,
}

impl Crossbar {
    /// A crossbar with `masters` input and `slaves` output ports.
    ///
    /// # Panics
    ///
    /// Panics if either port count is zero.
    pub fn new(masters: usize, slaves: usize) -> Self {
        assert!(masters > 0 && slaves > 0, "port counts must be positive");
        Self {
            masters,
            slaves,
            total_grants: 0,
            total_cycles: 0,
        }
    }

    /// Input port count.
    pub fn masters(&self) -> usize {
        self.masters
    }

    /// Output port count.
    pub fn slaves(&self) -> usize {
        self.slaves
    }

    /// Routes one batch of requests (`destinations[i]` is the slave port of
    /// request `i`). Returns the cycles needed: each slave accepts one
    /// request per cycle and each master issues at most one per cycle.
    ///
    /// # Panics
    ///
    /// Panics if a destination is out of range.
    pub fn route(&mut self, destinations: &[usize]) -> u64 {
        let mut per_slave = vec![0u64; self.slaves];
        for &d in destinations {
            assert!(d < self.slaves, "destination {d} out of range");
            per_slave[d] += 1;
        }
        let slave_bound = per_slave.iter().copied().max().unwrap_or(0);
        let master_bound = (destinations.len() as u64).div_ceil(self.masters as u64);
        let cycles = slave_bound.max(master_bound);
        self.total_grants += destinations.len() as u64;
        self.total_cycles += cycles;
        cycles
    }

    /// Lifetime requests routed.
    pub fn total_grants(&self) -> u64 {
        self.total_grants
    }

    /// Lifetime cycles spent routing.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_batch_is_single_cycle_per_wave() {
        let mut xbar = Crossbar::new(32, 16);
        // 16 requests, one per channel: one cycle.
        let dests: Vec<usize> = (0..16).collect();
        assert_eq!(xbar.route(&dests), 1);
    }

    #[test]
    fn hotspot_serializes_on_the_slave() {
        let mut xbar = Crossbar::new(32, 16);
        let dests = vec![3usize; 10];
        assert_eq!(xbar.route(&dests), 10);
    }

    #[test]
    fn master_width_bounds_issue_rate() {
        let mut xbar = Crossbar::new(32, 16);
        // 64 perfectly balanced requests: 4 per slave, but also 2 waves of
        // 32 masters → slave bound (4) dominates.
        let dests: Vec<usize> = (0..64).map(|i| i % 16).collect();
        assert_eq!(xbar.route(&dests), 4);
        // 48 requests to 16 slaves = 3 each; master bound 48/32 = 2 → 3.
        let dests: Vec<usize> = (0..48).map(|i| i % 16).collect();
        assert_eq!(xbar.route(&dests), 3);
    }

    #[test]
    fn empty_batch_is_free() {
        let mut xbar = Crossbar::new(32, 16);
        assert_eq!(xbar.route(&[]), 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut xbar = Crossbar::new(4, 2);
        xbar.route(&[0, 1]);
        xbar.route(&[1, 1, 1]);
        assert_eq!(xbar.total_grants(), 5);
        assert_eq!(xbar.total_cycles(), 1 + 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_panics() {
        let mut xbar = Crossbar::new(4, 2);
        xbar.route(&[2]);
    }
}
