//! The bitwidth converter (paper §IV-D).
//!
//! DRAM stores 4/6/8/10/12-bit MSB planes and 4-bit LSB planes; the on-chip
//! datapath is fixed 12-bit. The converter widens fetched MSBs (and splices
//! in LSBs when progressive quantization fetched them) using MUXes and a
//! shifter for unaligned reads. It is fully pipelined (one line per cycle),
//! so its contribution to timing is a fixed latency; what matters is the
//! functional widening and the conversion count for energy.

use serde::{Deserialize, Serialize};
use spatten_quant::SplitQuantized;

/// Pipeline latency of the converter in cycles.
const CONVERT_LATENCY: u64 = 2;

/// The DRAM-to-on-chip bitwidth converter.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitwidthConverter {
    conversions: u64,
}

impl BitwidthConverter {
    /// A fresh converter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixed pipeline latency.
    pub fn latency_cycles(&self) -> u64 {
        CONVERT_LATENCY
    }

    /// Lifetime elements converted.
    pub fn conversions(&self) -> u64 {
        self.conversions
    }

    /// Widens the MSB plane of `tensor` to on-chip values (LSBs read as
    /// zero), booking the conversions.
    pub fn widen_msb_only(&mut self, tensor: &SplitQuantized) -> Vec<f32> {
        self.conversions += tensor.len() as u64;
        tensor.dequantize_msb_only()
    }

    /// Splices MSB and LSB planes into full-precision on-chip values.
    pub fn widen_full(&mut self, tensor: &SplitQuantized) -> Vec<f32> {
        self.conversions += tensor.len() as u64;
        tensor.dequantize_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_quant::BitwidthScheme;

    #[test]
    fn widen_matches_split_quantized_semantics() {
        let data = [0.4f32, -0.8, 0.05, 0.9];
        let sq = SplitQuantized::from_f32(&data, BitwidthScheme::Msb8Lsb4);
        let mut conv = BitwidthConverter::new();
        assert_eq!(conv.widen_msb_only(&sq), sq.dequantize_msb_only());
        assert_eq!(conv.widen_full(&sq), sq.dequantize_full());
        assert_eq!(conv.conversions(), 8);
    }

    #[test]
    fn latency_is_constant() {
        let conv = BitwidthConverter::new();
        assert_eq!(conv.latency_cycles(), 2);
    }
}
