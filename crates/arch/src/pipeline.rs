//! Pipeline composition (paper §IV-A: "modules on the critical path
//! (6, 7, 8, 10, 11) are fully pipelined to maximize the throughput").
//!
//! A chain of pipelined stages each with an initiation interval (cycles per
//! item once full) and a fill latency processes `items` work units in
//! `Σ latency + max(II) · (items − 1) + 1` cycles: the slowest stage's
//! initiation interval bounds steady-state throughput and every stage's
//! latency is paid once while the pipeline fills.

use serde::{Deserialize, Serialize};

/// One pipelined stage's timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (for breakdown reports).
    pub name: &'static str,
    /// Cycles between consecutive items in steady state (≥ 1).
    pub initiation_interval: u64,
    /// One-time fill latency in cycles.
    pub latency: u64,
}

impl StageTiming {
    /// Convenience constructor.
    pub const fn new(name: &'static str, initiation_interval: u64, latency: u64) -> Self {
        Self {
            name,
            initiation_interval,
            latency,
        }
    }
}

/// Total cycles for `items` units flowing through `stages`.
///
/// Zero items cost nothing; an empty stage list is a wire.
///
/// # Panics
///
/// Panics if any stage has a zero initiation interval.
pub fn pipeline_cycles(items: u64, stages: &[StageTiming]) -> u64 {
    if items == 0 || stages.is_empty() {
        return 0;
    }
    let mut fill = 0u64;
    let mut bottleneck = 1u64;
    for s in stages {
        assert!(
            s.initiation_interval >= 1,
            "stage {} has zero initiation interval",
            s.name
        );
        fill += s.latency;
        bottleneck = bottleneck.max(s.initiation_interval);
    }
    fill + bottleneck * (items - 1) + 1
}

/// Identifies the bottleneck stage (largest initiation interval; first wins
/// ties). Returns `None` for an empty list.
pub fn bottleneck_stage(stages: &[StageTiming]) -> Option<&StageTiming> {
    stages.iter().max_by(|a, b| {
        a.initiation_interval
            .cmp(&b.initiation_interval)
            .then(std::cmp::Ordering::Greater) // keep the earlier on ties
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages() -> Vec<StageTiming> {
        vec![
            StageTiming::new("fetch", 1, 4),
            StageTiming::new("qk", 2, 3),
            StageTiming::new("softmax", 1, 12),
            StageTiming::new("pv", 2, 3),
        ]
    }

    #[test]
    fn single_item_pays_only_latencies() {
        assert_eq!(pipeline_cycles(1, &stages()), 4 + 3 + 12 + 3 + 1);
    }

    #[test]
    fn steady_state_is_bottleneck_bound() {
        let many = pipeline_cycles(1001, &stages());
        let one = pipeline_cycles(1, &stages());
        // 1000 extra items at II = 2 each.
        assert_eq!(many - one, 1000 * 2);
    }

    #[test]
    fn zero_items_cost_nothing() {
        assert_eq!(pipeline_cycles(0, &stages()), 0);
        assert_eq!(pipeline_cycles(5, &[]), 0);
    }

    #[test]
    fn bottleneck_identified() {
        let s = stages();
        let b = bottleneck_stage(&s).unwrap();
        assert_eq!(b.initiation_interval, 2);
    }

    #[test]
    #[should_panic(expected = "zero initiation interval")]
    fn zero_ii_rejected() {
        let bad = [StageTiming::new("bad", 0, 0)];
        let _ = pipeline_cycles(1, &bad);
    }
}
