//! The high-parallelism top-k engine (paper Fig. 9 / Algorithm 3) and the
//! Batcher sorting-network baseline it is compared against (§IV-B).
//!
//! The engine runs quick-select: a pivot partitions the live FIFO through
//! two comparator arrays (elements `< pivot` survive in the left array,
//! `> pivot` in the right; equal elements are only counted); zero
//! eliminators compact each side back into FIFO_L / FIFO_R. The control
//! logic of Algorithm 3 updates the residual target `k` until the pivot
//! *is* the k-th largest. A final filter pass over the (order-preserving)
//! input buffer emits the top-k elements in their original order — which is
//! what lets the datapath keep fetching K/V rows sequentially.
//!
//! Timing: each partition or filter pass over `m` live elements costs
//! `⌈m / parallelism⌉` cycles through the comparator arrays plus a small
//! constant for pivot selection / state transition; the zero eliminator is
//! pipelined and adds its latency once per pass.

use crate::zero_eliminator::ZeroEliminator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-pass constant overhead: pivot broadcast + FSM transition.
const PASS_OVERHEAD_CYCLES: u64 = 2;

/// Outcome of one top-k query.
#[derive(Debug, Clone, PartialEq)]
pub struct TopkResult {
    /// Indices of the selected elements in the *original* input order.
    pub indices: Vec<usize>,
    /// The selection threshold (the terminating pivot of Algorithm 3).
    /// Every selected element is `≥ threshold`; when the pivot splits the
    /// array at exactly `k`, this may be *smaller* than the k-th largest
    /// value — the filter output is identical either way.
    pub threshold: f32,
    /// Cycles the engine spent on this query.
    pub cycles: u64,
    /// Number of quick-select partition passes executed.
    pub passes: u32,
    /// Elements streamed through the comparator arrays during quick-select
    /// (excludes the filter pass, whose length is always `n`).
    pub visits: u64,
}

/// Configuration + statistics of the top-k engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopkEngine {
    parallelism: usize,
    rng: StdRngState,
    total_cycles: u64,
    total_queries: u64,
}

/// Seeded RNG wrapper so the engine stays deterministic and serializable.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StdRngState {
    seed: u64,
    draws: u64,
}

impl StdRngState {
    fn new(seed: u64) -> Self {
        Self { seed, draws: 0 }
    }

    fn next_index(&mut self, len: usize) -> usize {
        // Re-derive the stream position; draw counts stay tiny (O(passes)).
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(self.draws));
        self.draws += 1;
        rng.gen_range(0..len)
    }
}

impl TopkEngine {
    /// An engine with `parallelism` comparators per array (the paper uses
    /// 16) and a deterministic pivot-selection seed.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn new(parallelism: usize, seed: u64) -> Self {
        assert!(parallelism > 0, "parallelism must be positive");
        Self {
            parallelism,
            rng: StdRngState::new(seed),
            total_cycles: 0,
            total_queries: 0,
        }
    }

    /// Comparators per array.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Lifetime cycles spent.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Lifetime queries served.
    pub fn total_queries(&self) -> u64 {
        self.total_queries
    }

    fn pass_cycles(&self, live: usize) -> u64 {
        (live as u64).div_ceil(self.parallelism as u64)
            + PASS_OVERHEAD_CYCLES
            + ZeroEliminator::new(self.parallelism).latency_cycles()
    }

    /// Selects the `k` largest of `values`, returning their original-order
    /// indices, the threshold, and the cycle cost.
    ///
    /// Ties at the threshold are broken by input order, matching the
    /// hardware filter (`num_eq_k_th_largest` counts how many equals pass).
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN (scores are fixed-point on hardware).
    pub fn select(&mut self, values: &[f32], k: usize) -> TopkResult {
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "top-k input must not contain NaN"
        );
        self.total_queries += 1;
        let n = values.len();

        if k == 0 || n == 0 {
            self.total_cycles += PASS_OVERHEAD_CYCLES;
            return TopkResult {
                indices: Vec::new(),
                threshold: f32::INFINITY,
                cycles: PASS_OVERHEAD_CYCLES,
                passes: 0,
                visits: 0,
            };
        }
        if k >= n {
            // Everything survives: one filter pass streams the buffer out.
            let cycles = self.pass_cycles(n);
            self.total_cycles += cycles;
            let threshold = values.iter().copied().fold(f32::INFINITY, f32::min);
            return TopkResult {
                indices: (0..n).collect(),
                threshold,
                cycles,
                passes: 0,
                visits: n as u64,
            };
        }

        // --- Quick-select (Algorithm 3). ---
        let mut fifo_l: Vec<f32> = values.to_vec();
        let mut fifo_r: Vec<f32> = Vec::new();
        let mut target = k;
        let mut num_eq_pivot = 0usize;
        let mut pivot = f32::NAN; // set on the first pass
        let mut cycles = 0u64;
        let mut passes = 0u32;
        let mut visits = 0u64;

        let (threshold, num_eq_kth) = loop {
            // START state.
            if fifo_r.len() + num_eq_pivot <= target {
                // Pivot too large: the whole right side + equals survive.
                target -= fifo_r.len() + num_eq_pivot;
                fifo_r.clear();
                if fifo_l.is_empty() {
                    // All remaining mass was consumed exactly; the previous
                    // pivot is the threshold and no equals remain to pick.
                    break (pivot, 0);
                }
                pivot = fifo_l[self.rng.next_index(fifo_l.len())];
                let live = std::mem::take(&mut fifo_l);
                let (l, r, eq) = partition(&live, pivot);
                cycles += self.pass_cycles(live.len());
                passes += 1;
                visits += live.len() as u64;
                fifo_l = l;
                fifo_r = r;
                num_eq_pivot = eq;
            } else if fifo_r.len() > target {
                // Pivot too small: only the right side can matter.
                fifo_l.clear();
                pivot = fifo_r[self.rng.next_index(fifo_r.len())];
                let live = std::mem::take(&mut fifo_r);
                let (l, r, eq) = partition(&live, pivot);
                cycles += self.pass_cycles(live.len());
                passes += 1;
                visits += live.len() as u64;
                fifo_l = l;
                fifo_r = r;
                num_eq_pivot = eq;
            } else {
                // size(R) ≤ target < size(R) + num_eq_pivot: found it.
                break (pivot, target - fifo_r.len());
            }
        };

        // --- Filter pass over the original buffer (order-preserving). ---
        cycles += self.pass_cycles(n);
        let mut indices = Vec::with_capacity(k);
        let mut eq_left = num_eq_kth;
        for (i, &v) in values.iter().enumerate() {
            if v > threshold {
                indices.push(i);
            } else if v == threshold && eq_left > 0 {
                indices.push(i);
                eq_left -= 1;
            }
        }
        debug_assert_eq!(indices.len(), k, "filter must emit exactly k items");

        self.total_cycles += cycles;
        TopkResult {
            indices,
            threshold,
            cycles,
            passes,
            visits,
        }
    }

    /// Steady-state initiation interval of this query when queries stream
    /// back-to-back: the quick-select side processes `visits` elements at
    /// `parallelism` per cycle with one bubble per pass, while the filter
    /// side (its own FIFO + zero eliminator, Fig. 9 left) streams `n`
    /// elements concurrently. Pipeline fill latencies amortize away.
    pub fn steady_interval(&self, result: &TopkResult, n: usize) -> u64 {
        let p = self.parallelism as u64;
        let select = result.visits.div_ceil(p) + u64::from(result.passes);
        let filter = (n as u64).div_ceil(p) + 1;
        select.max(filter).max(1)
    }
}

fn partition(live: &[f32], pivot: f32) -> (Vec<f32>, Vec<f32>, usize) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut eq = 0usize;
    for &v in live {
        if v < pivot {
            left.push(v);
        } else if v > pivot {
            right.push(v);
        } else {
            eq += 1;
        }
    }
    (left, right, eq)
}

/// Reference selection: indices of the `k` largest, original order, ties by
/// position — the specification the engine must match.
pub fn reference_topk(values: &[f32], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut chosen: Vec<usize> = order.into_iter().take(k).collect();
    chosen.sort_unstable();
    chosen
}

/// Timing model of a Batcher odd–even merge sorting network processed
/// `width` compare-exchanges per cycle — the "regular full sorting unit"
/// SpAtten's engine is compared against in §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatcherSorter {
    width: usize,
}

impl BatcherSorter {
    /// A sorter with `width` hardware comparators.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        Self { width }
    }

    /// Network stage count for `n` inputs: `s(s+1)/2` with `s = ⌈log₂ n⌉`.
    pub fn stages(n: usize) -> u64 {
        let s = u64::from(ZeroEliminator::stages(n));
        s * (s + 1) / 2
    }

    /// Cycles to fully sort `n` elements: every stage has `n/2`
    /// compare-exchanges, `width` of them per cycle.
    pub fn sort_cycles(&self, n: usize) -> u64 {
        if n <= 1 {
            return 1;
        }
        let per_stage = (n as u64 / 2).div_ceil(self.width as u64).max(1);
        Self::stages(n) * per_stage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TopkEngine {
        TopkEngine::new(16, 0xC0FFEE)
    }

    #[test]
    fn selects_distinct_values_correctly() {
        let vals = [0.3f32, 1.2, -0.5, 0.9, 2.0, 0.1];
        let r = engine().select(&vals, 3);
        assert_eq!(r.indices, vec![1, 3, 4]);
        // The threshold separates: everything selected is ≥ it, everything
        // rejected is ≤ it.
        for (i, &v) in vals.iter().enumerate() {
            if r.indices.contains(&i) {
                assert!(v >= r.threshold);
            } else {
                assert!(v <= r.threshold);
            }
        }
    }

    #[test]
    fn paper_worked_example() {
        // Fig. 9: [0.6, 0.1, 0.5, 1.2, 0.6], k = 3 → {0.6, 1.2, 0.6}.
        let vals = [0.6f32, 0.1, 0.5, 1.2, 0.6];
        let r = engine().select(&vals, 3);
        assert_eq!(r.indices, vec![0, 3, 4]);
        assert!(r.threshold <= 0.6);
    }

    #[test]
    fn ties_broken_by_input_order() {
        let vals = [1.0f32, 1.0, 1.0, 1.0];
        let r = engine().select(&vals, 2);
        assert_eq!(r.indices, vec![0, 1]);
    }

    #[test]
    fn k_zero_and_k_full() {
        let vals = [5.0f32, 3.0, 4.0];
        assert!(engine().select(&vals, 0).indices.is_empty());
        assert_eq!(engine().select(&vals, 3).indices, vec![0, 1, 2]);
        assert_eq!(engine().select(&vals, 10).indices, vec![0, 1, 2]);
    }

    #[test]
    fn matches_reference_on_many_seeds() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(1..200);
            let vals: Vec<f32> = (0..n)
                .map(|_| (rng.gen_range(-100..100) as f32) / 8.0) // duplicates likely
                .collect();
            let k = rng.gen_range(0..=n);
            let mut eng = TopkEngine::new(16, seed);
            let got = eng.select(&vals, k);
            assert_eq!(got.indices, reference_topk(&vals, k), "seed {seed}");
        }
    }

    #[test]
    fn cycles_scale_inversely_with_parallelism() {
        let vals: Vec<f32> = (0..1024).map(|i| ((i * 37) % 1009) as f32).collect();
        let c1 = TopkEngine::new(1, 7).select(&vals, 512).cycles;
        let c16 = TopkEngine::new(16, 7).select(&vals, 512).cycles;
        assert!(
            c1 > c16 * 8,
            "parallelism should speed up: P1 {c1} vs P16 {c16}"
        );
    }

    #[test]
    fn expected_linear_time_in_input_size() {
        // Average cycles should grow roughly linearly (quick-select is
        // expected O(n)); allow generous slack over exact linearity.
        let cost = |n: usize| {
            let vals: Vec<f32> = (0..n).map(|i| ((i * 97) % 7919) as f32).collect();
            let mut total = 0u64;
            for seed in 0..10u64 {
                total += TopkEngine::new(16, seed).select(&vals, n / 2).cycles;
            }
            total / 10
        };
        let c256 = cost(256);
        let c1024 = cost(1024);
        assert!(
            c1024 < c256 * 12,
            "super-linear growth: 256→{c256}, 1024→{c1024}"
        );
    }

    #[test]
    fn engine_beats_full_sort_at_1024() {
        // §IV-B: 1.4× higher throughput than a Batcher sorter on the worst
        // case (median selection) at length 1024 with matched width.
        let vals: Vec<f32> = (0..1024).map(|i| ((i * 571) % 4093) as f32).collect();
        let mut worst = 0u64;
        for seed in 0..10u64 {
            worst = worst.max(TopkEngine::new(16, seed).select(&vals, 512).cycles);
        }
        let sorter = BatcherSorter::new(16).sort_cycles(1024);
        assert!(
            worst < sorter,
            "engine worst case {worst} vs full sort {sorter}"
        );
    }

    #[test]
    fn lifetime_stats_accumulate() {
        let mut eng = engine();
        let vals = [1.0f32, 2.0, 3.0];
        eng.select(&vals, 1);
        eng.select(&vals, 2);
        assert_eq!(eng.total_queries(), 2);
        assert!(eng.total_cycles() > 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = engine().select(&[1.0, f32::NAN], 1);
    }

    #[test]
    fn batcher_stage_counts() {
        // n = 1024 → s = 10 → 55 stages.
        assert_eq!(BatcherSorter::stages(1024), 55);
        assert_eq!(BatcherSorter::stages(2), 1);
    }
}
