//! Batcher odd–even merge sorting network — functional implementation.
//!
//! §IV-B compares the top-k engine against "a regular full sorting unit (a
//! Batcher's Odd-Even Sorter to perform merge-sort)". [`crate::topk`]
//! carries its *timing* model; this module builds the actual
//! compare-exchange network, sorts with it, and exposes the structural
//! counts (stages, comparators) the timing model relies on — with tests
//! proving the network really sorts (the 0-1 principle is exercised over
//! exhaustive boolean inputs for small n).

use serde::{Deserialize, Serialize};

/// A compare-exchange between lanes `(lo, hi)`.
pub type CompareExchange = (usize, usize);

/// A materialized Batcher odd–even merge network for `n = 2^k` lanes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OddEvenMergeNetwork {
    lanes: usize,
    /// Stages in execution order; each stage's comparators touch disjoint
    /// lanes and can run in one hardware cycle.
    stages: Vec<Vec<CompareExchange>>,
}

impl OddEvenMergeNetwork {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics unless `lanes` is a power of two ≥ 2.
    pub fn new(lanes: usize) -> Self {
        assert!(
            lanes >= 2 && lanes.is_power_of_two(),
            "Batcher network needs a power-of-two lane count ≥ 2"
        );
        // Knuth's iterative formulation of Batcher's odd-even merge sort:
        // passes p = 1, 2, 4, …; within each pass, sub-passes k = p, p/2, …
        let mut stages = Vec::new();
        let mut p = 1usize;
        while p < lanes {
            let mut k = p;
            while k >= 1 {
                let mut stage = Vec::new();
                let mut j = k % p;
                while j + k < lanes {
                    for i in 0..k.min(lanes - j - k) {
                        if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                            stage.push((i + j, i + j + k));
                        }
                    }
                    j += 2 * k;
                }
                stages.push(stage);
                k /= 2;
            }
            p *= 2;
        }
        Self { lanes, stages }
    }

    /// Lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of hardware stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total compare-exchange operations.
    pub fn comparator_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Sorts a slice ascending by executing the network.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != lanes`.
    pub fn sort<T: PartialOrd + Copy>(&self, data: &mut [T]) {
        assert_eq!(data.len(), self.lanes, "input width mismatch");
        for stage in &self.stages {
            for &(lo, hi) in stage {
                if data[lo] > data[hi] {
                    data.swap(lo, hi);
                }
            }
        }
    }

    /// Cycles to run the network with `width` physical comparators: each
    /// stage serializes into `⌈stage_size / width⌉` cycles.
    pub fn cycles(&self, width: usize) -> u64 {
        assert!(width > 0, "need at least one comparator");
        self.stages
            .iter()
            .map(|s| (s.len() as u64).div_ceil(width as u64).max(1))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_reversed_input() {
        let net = OddEvenMergeNetwork::new(16);
        let mut data: Vec<i32> = (0..16).rev().collect();
        net.sort(&mut data);
        assert_eq!(data, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zero_one_principle_exhaustive_n8() {
        // A comparison network sorts all inputs iff it sorts all 0-1
        // inputs (Knuth). Exhaust all 256 boolean vectors for n = 8.
        let net = OddEvenMergeNetwork::new(8);
        for mask in 0u32..256 {
            let mut data: Vec<u32> = (0..8).map(|i| (mask >> i) & 1).collect();
            net.sort(&mut data);
            assert!(data.windows(2).all(|w| w[0] <= w[1]), "mask {mask:08b}");
        }
    }

    #[test]
    fn stage_count_matches_closed_form() {
        // s(s+1)/2 stages for n = 2^s.
        for (n, expect) in [(2usize, 1usize), (4, 3), (8, 6), (16, 10), (1024, 55)] {
            let net = OddEvenMergeNetwork::new(n);
            assert_eq!(net.stage_count(), expect, "n = {n}");
        }
    }

    #[test]
    fn stages_touch_disjoint_lanes() {
        let net = OddEvenMergeNetwork::new(32);
        for (i, stage) in net.stages.iter().enumerate() {
            let mut seen = [false; 32];
            for &(lo, hi) in stage {
                assert!(!seen[lo] && !seen[hi], "stage {i} reuses a lane");
                seen[lo] = true;
                seen[hi] = true;
            }
        }
    }

    #[test]
    fn cycle_model_agrees_with_topk_module() {
        // The BatcherSorter timing model in `topk` must be consistent with
        // the materialized network's stage structure.
        use crate::topk::BatcherSorter;
        let net = OddEvenMergeNetwork::new(1024);
        let stages_model = BatcherSorter::stages(1024);
        assert_eq!(net.stage_count() as u64, stages_model);
        // With very wide hardware (n/2 comparators) both models give one
        // cycle per stage.
        assert_eq!(net.cycles(512), stages_model);
    }

    #[test]
    fn sorts_floats_with_duplicates() {
        let net = OddEvenMergeNetwork::new(8);
        let mut data = [0.5f32, -1.0, 0.5, 3.0, -1.0, 2.0, 0.0, 0.5];
        net.sort(&mut data);
        assert!(data.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = OddEvenMergeNetwork::new(12);
    }
}
