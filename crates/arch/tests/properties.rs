//! Property-based tests for the hardware modules.

use proptest::prelude::*;
use spatten_arch::topk::reference_topk;
use spatten_arch::{pipeline_cycles, StageTiming, TopkEngine, ZeroEliminator};

proptest! {
    #[test]
    fn topk_matches_sorted_reference(
        vals in prop::collection::vec(-1000i32..1000, 1..300),
        k_frac in 0.0f64..1.0,
        seed in 0u64..1000,
        parallelism in 1usize..33,
    ) {
        // Integer-derived values so duplicates are common.
        let vals: Vec<f32> = vals.iter().map(|&v| v as f32 / 4.0).collect();
        let k = ((vals.len() as f64) * k_frac) as usize;
        let mut eng = TopkEngine::new(parallelism, seed);
        let got = eng.select(&vals, k);
        prop_assert_eq!(got.indices, reference_topk(&vals, k));
    }

    #[test]
    fn topk_output_is_sorted_and_sized(
        vals in prop::collection::vec(-100.0f32..100.0, 1..100),
        k in 0usize..100,
    ) {
        let k = k.min(vals.len());
        let mut eng = TopkEngine::new(16, 1);
        let got = eng.select(&vals, k);
        prop_assert_eq!(got.indices.len(), k);
        // original order = strictly increasing indices
        prop_assert!(got.indices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn topk_threshold_separates(
        vals in prop::collection::vec(-50i32..50, 2..120),
        k in 1usize..119,
    ) {
        let vals: Vec<f32> = vals.iter().map(|&v| v as f32).collect();
        let k = k.min(vals.len());
        let mut eng = TopkEngine::new(8, 3);
        let got = eng.select(&vals, k);
        for (i, &v) in vals.iter().enumerate() {
            if got.indices.contains(&i) {
                prop_assert!(v >= got.threshold);
            } else {
                prop_assert!(v <= got.threshold);
            }
        }
    }

    #[test]
    fn zero_eliminator_equals_filter(
        lanes in prop::collection::vec(prop::option::of(0u32..100), 0..64),
    ) {
        let ze = ZeroEliminator::new(64);
        let expect: Vec<u32> = lanes.iter().copied().flatten().collect();
        prop_assert_eq!(ze.eliminate(&lanes), expect);
    }

    #[test]
    fn pipeline_cycles_monotone_in_items(
        items in 1u64..10_000,
        ii in 1u64..8,
        latency in 0u64..32,
    ) {
        let stages = [StageTiming::new("s", ii, latency)];
        let a = pipeline_cycles(items, &stages);
        let b = pipeline_cycles(items + 1, &stages);
        prop_assert_eq!(b - a, ii);
    }

    #[test]
    fn higher_parallelism_comparator_time_never_slower(
        vals in prop::collection::vec(-100.0f32..100.0, 16..256),
        k_frac in 0.1f64..0.9,
    ) {
        // Same seed → same pivots → same pass structure. Wider comparator
        // arrays strictly reduce per-pass streaming time, but their zero
        // eliminator is log₂(P) stages deeper, so allow that per-pass
        // latency difference (the passes count is identical).
        let k = ((vals.len() as f64) * k_frac) as usize;
        let lo = TopkEngine::new(2, 9).select(&vals, k);
        let hi = TopkEngine::new(32, 9).select(&vals, k);
        prop_assert_eq!(lo.passes, hi.passes);
        let ze_diff = (ZeroEliminator::new(32).latency_cycles()
            - ZeroEliminator::new(2).latency_cycles())
            * u64::from(hi.passes + 1);
        prop_assert!(hi.cycles <= lo.cycles + ze_diff);
    }
}
