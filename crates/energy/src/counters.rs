//! Event counters produced by the simulator and consumed by the energy
//! model.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Raw event counts of one simulation window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Fixed-point multiply-accumulates in the Q·K array.
    pub qk_macs: u64,
    /// Fixed-point multiply-accumulates in the prob·V array.
    pub pv_macs: u64,
    /// Fixed-point multiply-accumulates spent on FC/FFN work (SpAtten-e2e).
    pub fc_macs: u64,
    /// Floating-point FMA operations (softmax exp Taylor terms).
    pub softmax_fmas: u64,
    /// Floating-point divides (softmax normalization).
    pub softmax_divs: u64,
    /// Comparator operations in the top-k engines.
    pub topk_comparisons: u64,
    /// Bits moved through on-chip SRAM (reads + writes).
    pub sram_bits: u64,
    /// Bits moved through FIFOs.
    pub fifo_bits: u64,
    /// Bits read from DRAM.
    pub dram_read_bits: u64,
    /// Bits written to DRAM.
    pub dram_write_bits: u64,
    /// DRAM row activations.
    pub dram_activations: u64,
    /// Requests routed through the crossbars.
    pub xbar_requests: u64,
}

impl EventCounts {
    /// All-zero counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total fixed-point MACs.
    pub fn total_macs(&self) -> u64 {
        self.qk_macs + self.pv_macs + self.fc_macs
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        (self.dram_read_bits + self.dram_write_bits) / 8
    }

    /// FLOPs represented by the counted arithmetic (2 per MAC, 2 per FMA,
    /// 1 per divide), for throughput reporting.
    pub fn flops(&self) -> u64 {
        2 * self.total_macs() + 2 * self.softmax_fmas + self.softmax_divs
    }
}

impl Add for EventCounts {
    type Output = EventCounts;

    fn add(mut self, rhs: EventCounts) -> EventCounts {
        self += rhs;
        self
    }
}

impl AddAssign for EventCounts {
    fn add_assign(&mut self, rhs: EventCounts) {
        self.qk_macs += rhs.qk_macs;
        self.pv_macs += rhs.pv_macs;
        self.fc_macs += rhs.fc_macs;
        self.softmax_fmas += rhs.softmax_fmas;
        self.softmax_divs += rhs.softmax_divs;
        self.topk_comparisons += rhs.topk_comparisons;
        self.sram_bits += rhs.sram_bits;
        self.fifo_bits += rhs.fifo_bits;
        self.dram_read_bits += rhs.dram_read_bits;
        self.dram_write_bits += rhs.dram_write_bits;
        self.dram_activations += rhs.dram_activations;
        self.xbar_requests += rhs.xbar_requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_componentwise() {
        let a = EventCounts {
            qk_macs: 10,
            dram_read_bits: 100,
            ..EventCounts::new()
        };
        let b = EventCounts {
            qk_macs: 5,
            dram_activations: 3,
            ..EventCounts::new()
        };
        let c = a + b;
        assert_eq!(c.qk_macs, 15);
        assert_eq!(c.dram_read_bits, 100);
        assert_eq!(c.dram_activations, 3);
    }

    #[test]
    fn derived_totals() {
        let c = EventCounts {
            qk_macs: 4,
            pv_macs: 6,
            fc_macs: 10,
            softmax_fmas: 3,
            softmax_divs: 2,
            dram_read_bits: 64,
            dram_write_bits: 16,
            ..EventCounts::new()
        };
        assert_eq!(c.total_macs(), 20);
        assert_eq!(c.dram_bytes(), 10);
        assert_eq!(c.flops(), 40 + 6 + 2);
    }
}
