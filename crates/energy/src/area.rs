//! Area model (paper Fig. 13a: 18.71 mm² at TSMC 40 nm).
//!
//! Area does not emerge from simulation — it is a synthesis result — so this
//! module carries the paper's own module-level areas as calibrated
//! constants, and scales them for resized configurations (multiplier count,
//! SRAM size, top-k parallelism) so the design-space exploration and the
//! SpAtten-1/8 comparison (Table III) can report area efficiency.

use serde::{Deserialize, Serialize};

/// Module-level silicon areas in mm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Q·K multiplier array + adder tree + Key SRAM.
    pub qk_mm2: f64,
    /// prob·V multiplier array + adder tree + Value SRAM.
    pub pv_mm2: f64,
    /// Softmax pipeline (FMA/FPU units).
    pub softmax_mm2: f64,
    /// Both top-k engines.
    pub topk_mm2: f64,
    /// Q-K-V fetcher, crossbars, FIFOs, bitwidth converter.
    pub fetcher_mm2: f64,
    /// Control and everything else.
    pub others_mm2: f64,
}

impl AreaModel {
    /// The full-scale SpAtten configuration (Fig. 13a values).
    pub fn spatten() -> Self {
        Self {
            qk_mm2: 7.123,
            pv_mm2: 7.222,
            softmax_mm2: 0.790,
            topk_mm2: 0.498,
            fetcher_mm2: 2.649,
            others_mm2: 0.430,
        }
    }

    /// Scales the compute-proportional parts for a configuration with
    /// `mult_scale` × the multipliers, `sram_scale` × the K/V SRAM and
    /// `topk_scale` × the top-k comparator width.
    ///
    /// The Q·K / prob·V modules are split ≈ 45 % multipliers / 55 % SRAM at
    /// full scale (512 × 12-bit multipliers ≈ 3.2 mm²; 196 KB SRAM ≈ 4 mm²).
    pub fn scaled(mult_scale: f64, sram_scale: f64, topk_scale: f64) -> Self {
        let full = Self::spatten();
        let scale_array = |mm2: f64| mm2 * (0.45 * mult_scale + 0.55 * sram_scale);
        Self {
            qk_mm2: scale_array(full.qk_mm2),
            pv_mm2: scale_array(full.pv_mm2),
            softmax_mm2: full.softmax_mm2 * mult_scale,
            topk_mm2: full.topk_mm2 * topk_scale,
            fetcher_mm2: full.fetcher_mm2 * (0.5 + 0.5 * mult_scale),
            others_mm2: full.others_mm2,
        }
    }

    /// The SpAtten-1/8 configuration of Table III (128 multipliers; paper
    /// reports 1.55 mm²).
    pub fn spatten_eighth() -> Self {
        Self::scaled(0.125, 0.125, 1.0)
    }

    /// Total die area.
    pub fn total_mm2(&self) -> f64 {
        self.qk_mm2
            + self.pv_mm2
            + self.softmax_mm2
            + self.topk_mm2
            + self.fetcher_mm2
            + self.others_mm2
    }

    /// Named breakdown rows `(module, mm², percent)` for the Fig. 13 table.
    pub fn report(&self) -> AreaReport {
        let total = self.total_mm2();
        let row = |name: &str, mm2: f64| (name.to_owned(), mm2, 100.0 * mm2 / total);
        AreaReport {
            rows: vec![
                row("Q×K", self.qk_mm2),
                row("Attn_Prob×V", self.pv_mm2),
                row("Softmax", self.softmax_mm2),
                row("Top-k", self.topk_mm2),
                row("QKV Fetcher", self.fetcher_mm2),
                row("Others", self.others_mm2),
            ],
            total_mm2: total,
        }
    }
}

/// A printable area breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// `(module, mm², percent)` rows.
    pub rows: Vec<(String, f64, f64)>,
    /// Total area.
    pub total_mm2: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_fig13_total() {
        let a = AreaModel::spatten();
        assert!((a.total_mm2() - 18.712).abs() < 0.01);
    }

    #[test]
    fn arrays_dominate_area_as_in_fig13() {
        let a = AreaModel::spatten();
        let total = a.total_mm2();
        assert!((a.qk_mm2 / total - 0.381).abs() < 0.01);
        assert!((a.pv_mm2 / total - 0.386).abs() < 0.01);
        assert!(a.topk_mm2 / total < 0.03, "top-k must stay tiny");
    }

    #[test]
    fn eighth_scale_is_near_paper_1_55mm2() {
        let a = AreaModel::spatten_eighth();
        // Paper: 1.55 mm². Our split-based scaling should land within ~3×.
        assert!(
            (1.0..5.0).contains(&a.total_mm2()),
            "1/8-scale area {} mm²",
            a.total_mm2()
        );
    }

    #[test]
    fn report_percentages_sum_to_100() {
        let r = AreaModel::spatten().report();
        let sum: f64 = r.rows.iter().map(|(_, _, p)| p).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
