//! Per-event energy constants and the energy/power computation.

use crate::counters::EventCounts;
use serde::{Deserialize, Serialize};

/// Per-event energy constants (picojoules), 40 nm class.
///
/// Sources for the defaults (all documented substitutions for the paper's
/// tool flow):
///
/// * 12-bit fixed multiply + accumulate ≈ 1.5 pJ — the raw 12-bit
///   multiplier is ~0.45 pJ (scaled from Horowitz ISSCC'14: 8-bit mult
///   0.2 pJ, 32-bit add 0.1 pJ), tripled to account for pipeline
///   registers, operand muxing and clock distribution, which synthesis
///   attributes to the datapath (and which the paper's Genus numbers
///   include).
/// * fp32 FMA ≈ 2.5 pJ, divide ≈ 5 pJ — Salehi et al. 45 nm FPU numbers,
///   used (as in the paper) as an upper bound for 40 nm.
/// * SRAM ≈ 0.30 pJ/bit — CACTI-class number for ~100 KB banks at 40 nm
///   including peripheral/decoder energy.
/// * FIFO ≈ 0.02 pJ/bit — small register files.
/// * DRAM ≈ 3.9 pJ/bit + 900 pJ/activation — HBM2 from O'Connor et al.
///   (MICRO'17), the paper's own DRAM-energy source.
/// * Comparator ≈ 0.05 pJ — 12-bit compare.
/// * Crossbar ≈ 1.2 pJ/request — 32×16 switch traversal.
/// * Static leakage 0.30 W — small for a 18.7 mm² 40 nm die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Fixed-point MAC energy (pJ).
    pub mac_pj: f64,
    /// Floating-point FMA energy (pJ).
    pub fma_pj: f64,
    /// Floating-point divide energy (pJ).
    pub div_pj: f64,
    /// Top-k comparator energy (pJ).
    pub comparator_pj: f64,
    /// SRAM access energy (pJ/bit).
    pub sram_pj_per_bit: f64,
    /// FIFO access energy (pJ/bit).
    pub fifo_pj_per_bit: f64,
    /// DRAM transfer energy (pJ/bit).
    pub dram_pj_per_bit: f64,
    /// DRAM row-activation energy (pJ).
    pub dram_activation_pj: f64,
    /// Crossbar traversal energy (pJ/request).
    pub xbar_pj_per_request: f64,
    /// Static (leakage) power in watts.
    pub leakage_w: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            mac_pj: 1.5,
            fma_pj: 2.5,
            div_pj: 5.0,
            comparator_pj: 0.05,
            sram_pj_per_bit: 0.30,
            fifo_pj_per_bit: 0.02,
            dram_pj_per_bit: 3.9,
            dram_activation_pj: 900.0,
            xbar_pj_per_request: 1.2,
            leakage_w: 0.30,
        }
    }
}

/// Energy of one window, split the way Table II reports power.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Computation logic (MACs, FMAs, divides, comparators, crossbars), pJ.
    pub compute_pj: f64,
    /// On-chip memory (SRAM + FIFO), pJ.
    pub sram_pj: f64,
    /// DRAM (transfers + activations), pJ.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.dram_pj
    }

    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.total_pj() * 1e-12
    }
}

/// Power at a given runtime, Table II shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Computation-logic power (W).
    pub compute_w: f64,
    /// On-chip SRAM/FIFO power (W).
    pub sram_w: f64,
    /// DRAM power (W).
    pub dram_w: f64,
    /// Static leakage (W).
    pub leakage_w: f64,
}

impl PowerReport {
    /// Total power in watts.
    pub fn total_w(&self) -> f64 {
        self.compute_w + self.sram_w + self.dram_w + self.leakage_w
    }
}

/// Converts event counts into energy and power.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// A model with explicit constants.
    pub fn new(params: EnergyParams) -> Self {
        Self { params }
    }

    /// The constants in use.
    pub fn params(&self) -> EnergyParams {
        self.params
    }

    /// Energy of `counts`.
    pub fn energy(&self, counts: &EventCounts) -> EnergyBreakdown {
        let p = self.params;
        let compute_pj = counts.total_macs() as f64 * p.mac_pj
            + counts.softmax_fmas as f64 * p.fma_pj
            + counts.softmax_divs as f64 * p.div_pj
            + counts.topk_comparisons as f64 * p.comparator_pj
            + counts.xbar_requests as f64 * p.xbar_pj_per_request;
        let sram_pj = counts.sram_bits as f64 * p.sram_pj_per_bit
            + counts.fifo_bits as f64 * p.fifo_pj_per_bit;
        let dram_pj = (counts.dram_read_bits + counts.dram_write_bits) as f64 * p.dram_pj_per_bit
            + counts.dram_activations as f64 * p.dram_activation_pj;
        EnergyBreakdown {
            compute_pj,
            sram_pj,
            dram_pj,
        }
    }

    /// Power when `counts` happen over `cycles` at `clock_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn power(&self, counts: &EventCounts, cycles: u64, clock_ghz: f64) -> PowerReport {
        assert!(cycles > 0, "power needs a nonzero window");
        let seconds = cycles as f64 / (clock_ghz * 1e9);
        let e = self.energy(counts);
        PowerReport {
            compute_w: e.compute_pj * 1e-12 / seconds,
            sram_w: e.sram_pj * 1e-12 / seconds,
            dram_w: e.dram_pj * 1e-12 / seconds,
            leakage_w: self.params.leakage_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::default()
    }

    #[test]
    fn energy_is_linear_in_counts() {
        let c = EventCounts {
            qk_macs: 1000,
            sram_bits: 8000,
            dram_read_bits: 64_000,
            ..EventCounts::new()
        };
        let double = c + c;
        let e1 = model().energy(&c);
        let e2 = model().energy(&double);
        assert!((e2.total_pj() - 2.0 * e1.total_pj()).abs() < 1e-6);
    }

    #[test]
    fn dram_dominates_for_memory_bound_mixes() {
        // The Table II shape: a memory-heavy event mix should put the
        // majority of energy in DRAM (paper: 5.71 W of 8.30 W ≈ 69 %).
        let c = EventCounts {
            qk_macs: 4_000_000,
            pv_macs: 4_000_000,
            softmax_fmas: 400_000,
            sram_bits: 60_000_000,
            dram_read_bits: 8_000_000,
            dram_activations: 2_000,
            ..EventCounts::new()
        };
        let e = model().energy(&c);
        let frac = e.dram_pj / e.total_pj();
        assert!(
            (0.5..0.95).contains(&frac),
            "DRAM fraction {frac} out of Table II range"
        );
    }

    #[test]
    fn power_scales_inversely_with_time() {
        let c = EventCounts {
            qk_macs: 1_000_000,
            ..EventCounts::new()
        };
        let fast = model().power(&c, 1000, 1.0);
        let slow = model().power(&c, 2000, 1.0);
        assert!(
            (fast.compute_w - 2.0 * slow.compute_w).abs() < 1e-9,
            "dynamic power must halve when time doubles"
        );
        assert_eq!(fast.leakage_w, slow.leakage_w);
    }

    #[test]
    fn power_total_sums_components() {
        let c = EventCounts {
            qk_macs: 10,
            sram_bits: 10,
            dram_read_bits: 10,
            ..EventCounts::new()
        };
        let p = model().power(&c, 10, 1.0);
        let sum = p.compute_w + p.sram_w + p.dram_w + p.leakage_w;
        assert!((p.total_w() - sum).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nonzero window")]
    fn zero_cycle_power_rejected() {
        let _ = model().power(&EventCounts::new(), 0, 1.0);
    }
}
