//! Energy, area and power accounting for the SpAtten reproduction.
//!
//! The paper estimates power/area with Cadence Genus (logic, TSMC 40 nm),
//! CACTI (SRAM/FIFO) and Ramulator + energy numbers from O'Connor et al.
//! (DRAM); floating-point units come from Salehi et al. (45 nm, used as an
//! upper bound for 40 nm). None of those tools are available here, so this
//! crate carries **documented per-event constants** of the same technology
//! class and converts the simulator's event counts into energy, power and
//! area reports.
//!
//! Headline calibration targets from the paper:
//!
//! * Table II: computation logic 1.36 W, SRAM 1.24 W, DRAM 5.71 W, total
//!   8.30 W.
//! * Fig. 13: area 18.71 mm² dominated by the Q·K and prob·V arrays
//!   (≈ 38 % each); top-k engines only 2.7 % of area and 1 % of power.

pub mod area;
pub mod counters;
pub mod model;

pub use area::{AreaModel, AreaReport};
pub use counters::EventCounts;
pub use model::{EnergyBreakdown, EnergyModel, EnergyParams, PowerReport};
