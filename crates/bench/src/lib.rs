//! Shared helpers for the per-table/figure harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section and prints the same rows/series the paper
//! reports, alongside the paper's own numbers where available so the
//! reader can compare shapes directly. See DESIGN.md §3 for the index.

use spatten_core::{Accelerator, RunReport, SpAttenConfig};
use spatten_workloads::Benchmark;

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice or non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positives");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Prints a header row followed by a separator sized to it.
pub fn print_header(title: &str, columns: &str) {
    println!("\n=== {title} ===");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len().min(120)));
}

/// Runs the default-configuration accelerator on one benchmark.
pub fn run_spatten(bench: &Benchmark) -> RunReport {
    Accelerator::new(SpAttenConfig::default()).run(&bench.workload())
}

/// Formats a speedup-style factor compactly.
pub fn fmt_x(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else if v >= 10.0 {
        format!("{v:.1}x")
    } else {
        format!("{v:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_x_ranges() {
        assert_eq!(fmt_x(162.4), "162x");
        assert_eq!(fmt_x(35.2), "35.2x");
        assert_eq!(fmt_x(1.61), "1.61x");
    }

    #[test]
    #[should_panic(expected = "geomean of nothing")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }
}
