//! Sharding benchmark: tensor-parallel vs pipeline-parallel GPT-2 decode
//! across 1/2/4/8-way chip groups, plus tail latency under the
//! continuous-batching scheduler at equal *fleet size*.
//!
//! Protocol:
//!
//! 1. **Single-stream scaling curve** — one GPT-2-Small decode stream on a
//!    1/2/4/8-way group (ring interconnect, default links), tensor
//!    parallel and pipeline parallel side by side: tokens/s, speedup over
//!    one chip, and the per-shard KV working set against each chip's K/V
//!    SRAM budget.
//! 2. **Serving comparison** — the same 8 chips carved four ways
//!    (8×TP1, 4×TP2, 2×TP4, 1×TP8) serving one bursty MMPP decode trace
//!    under continuous batching: throughput and p50/p99, showing the
//!    throughput-vs-latency trade sharding buys at fixed silicon.
//! 3. **Heterogeneous placement** — a mixed fleet (full + 1/8-scale
//!    chips) carved into 2-way groups by the placement planner, served
//!    with the same trace.
//!
//! The JSON report goes to stdout; a human-readable summary goes to
//! stderr. The run fails (exit 1) if 4-way tensor-parallel decode doesn't
//! clear a 1.6× speedup over a single chip, or if any planned shard
//! overflows its KV budget — the acceptance floor of the cluster layer.
//!
//! ```text
//! shard_bench [--requests N] [--rate-frac F] [--seed S] [--smoke]
//! ```

use spatten_cluster::{
    shard_kv_footprint, simulate_cluster, ClusterConfig, ClusterCostModel, GroupSpec, ShardStrategy,
};
use spatten_core::SpAttenConfig;
use spatten_serve::json::{array, JsonObject};
use spatten_serve::{FleetCost, FleetReport, Policy};
use spatten_workloads::fleet::{FleetSpec, LinkSpec, TopologySpec};
use spatten_workloads::{ArrivalSpec, Benchmark, TraceSpec, Workload};

struct Args {
    requests: usize,
    rate_frac: f64,
    seed: u64,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 800,
        rate_frac: 0.85,
        seed: 20260726,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests N"),
            "--rate-frac" => args.rate_frac = value().parse().expect("--rate-frac F"),
            "--seed" => args.seed = value().parse().expect("--seed S"),
            "--smoke" => args.smoke = true,
            other => panic!("unknown flag {other} (see the shard_bench doc comment)"),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(60);
    }
    assert!(args.requests >= 1, "need at least one request");
    assert!(
        args.rate_frac > 0.0 && args.rate_frac <= 1.5,
        "rate fraction {} out of the sensible (0, 1.5] band",
        args.rate_frac
    );
    args
}

/// The decode workload the sweep prices: a chat-sized GPT-2-Small stream.
fn decode_workload() -> Workload {
    let mut w = Benchmark::gpt2_small_wikitext2().workload();
    w.seq_len = 256;
    w.gen_steps = 64;
    w
}

fn tp_group(ways: usize) -> GroupSpec {
    GroupSpec::homogeneous(
        SpAttenConfig::default(),
        ShardStrategy::tensor(ways),
        TopologySpec::Ring,
        LinkSpec::default(),
    )
}

fn pp_group(ways: usize) -> GroupSpec {
    GroupSpec::homogeneous(
        SpAttenConfig::default(),
        ShardStrategy::pipeline_even(decode_workload().model.layers, ways, 8),
        TopologySpec::Ring,
        LinkSpec::default(),
    )
}

/// `chips`-chip homogeneous cluster carved into `chips / ways` TP groups.
fn tp_cluster(chips: usize, ways: usize) -> ClusterConfig {
    ClusterConfig::new(
        vec![tp_group(ways); chips / ways],
        Policy::ContinuousBatching,
    )
}

struct SweepPoint {
    ways: usize,
    tp_tokens_per_s: f64,
    tp_speedup: f64,
    pp_tokens_per_s: f64,
    pp_speedup: f64,
    kv_per_shard_bytes: u64,
    kv_budget_bytes: u64,
}

fn main() {
    let wall = std::time::Instant::now();
    let args = parse_args();
    let w = decode_workload();
    let ctx = w.seq_len + w.gen_steps / 2; // mid-generation context
    let clock_hz = SpAttenConfig::default().clock_ghz * 1e9;
    let sweep: &[usize] = if args.smoke {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };

    // --- 1. Single-stream decode scaling curve. ---
    let tokens_per_s = |group: GroupSpec| -> f64 {
        let mut m = ClusterCostModel::new(vec![group], Some(8));
        clock_hz / m.decode_on(0, &w, ctx).serial_cycles as f64
    };
    let base_tps = tokens_per_s(tp_group(1));
    let budget = 2 * SpAttenConfig::default().kv_sram_bytes;
    let mut curve: Vec<SweepPoint> = Vec::new();
    eprintln!("single-stream GPT-2 decode (ctx {ctx}), ring interconnect:");
    eprintln!(
        "{:>5} {:>14} {:>10} {:>14} {:>10} {:>16}",
        "ways", "TP tokens/s", "TP x", "PP tokens/s", "PP x", "KV/shard"
    );
    for &ways in sweep {
        let tp = tokens_per_s(tp_group(ways));
        let pp = tokens_per_s(pp_group(ways));
        let kv = (0..ways)
            .map(|s| {
                shard_kv_footprint(
                    &SpAttenConfig::default(),
                    &w,
                    &ShardStrategy::tensor(ways),
                    s,
                )
            })
            .max()
            .expect("nonzero ways");
        assert!(
            kv <= budget,
            "{ways}-way TP shard KV {kv} overflows the {budget}-byte budget"
        );
        eprintln!(
            "{:>5} {:>14.0} {:>9.2}x {:>14.0} {:>9.2}x {:>10} B ({:>4.1}%)",
            ways,
            tp,
            tp / base_tps,
            pp,
            pp / base_tps,
            kv,
            kv as f64 / budget as f64 * 100.0
        );
        curve.push(SweepPoint {
            ways,
            tp_tokens_per_s: tp,
            tp_speedup: tp / base_tps,
            pp_tokens_per_s: pp,
            pp_speedup: pp / base_tps,
            kv_per_shard_bytes: kv,
            kv_budget_bytes: budget,
        });
    }
    let tp4_speedup = curve
        .iter()
        .find(|p| p.ways == 4)
        .map(|p| p.tp_speedup)
        .expect("sweep includes 4-way");

    // --- 2. Serving comparison at equal fleet size (8 chips). ---
    let chips = 8;
    let probe_trace = TraceSpec::gpt2_decode(
        ArrivalSpec::ClosedLoop {
            clients: chips * 8,
            think_s: 0.0,
            requests: if args.smoke { 48 } else { 192 },
        },
        args.seed ^ 0xCAFE,
    )
    .generate();
    let probe = simulate_cluster(&tp_cluster(chips, 1), &probe_trace);
    let rate = probe.throughput_rps * args.rate_frac;
    eprintln!(
        "\ncapacity probe: {chips}x1 sustains {:.0} req/s; offering {:.0} req/s \
         as a bursty MMPP stream ({} requests)",
        probe.throughput_rps, rate, args.requests
    );
    // Two-state MMPP averaging `rate`: calm at 0.5x for 200 ms, bursting
    // at 3x for 50 ms (dwell-weighted mean = 1.0x).
    let trace = TraceSpec::gpt2_decode(
        ArrivalSpec::OpenMmpp {
            calm_rps: 0.5 * rate,
            burst_rps: 3.0 * rate,
            mean_calm_s: 0.2,
            mean_burst_s: 0.05,
            requests: args.requests,
        },
        args.seed,
    )
    .generate();

    let mut serving: Vec<(String, usize, FleetReport)> = Vec::new();
    for &ways in sweep {
        if chips % ways != 0 {
            continue;
        }
        let name = format!("{}x tp{}", chips / ways, ways);
        let report = simulate_cluster(&tp_cluster(chips, ways), &trace);
        assert_eq!(report.completed, args.requests, "{name}: lost requests");
        eprintln!(
            "{:<8} p50 {:>9.3} ms   p99 {:>9.3} ms   ttft p99 {:>9.3} ms   thru {:>7.0} req/s",
            name,
            report.latency.p50 * 1e3,
            report.latency.p99 * 1e3,
            report.ttft.p99 * 1e3,
            report.throughput_rps
        );
        serving.push((name, ways, report));
    }

    // --- 3. Heterogeneous placement: mixed fleet, planned 2-way groups. ---
    let mixed = FleetSpec::mixed(4, 4);
    let het = ClusterConfig::carve(
        &mixed,
        &ShardStrategy::tensor(2),
        &w,
        Policy::ContinuousBatching,
    )
    .expect("mixed fleet places 2-way groups");
    let het_report = simulate_cluster(&het, &trace);
    assert_eq!(
        het_report.completed, args.requests,
        "heterogeneous: lost requests"
    );
    eprintln!(
        "{:<8} p50 {:>9.3} ms   p99 {:>9.3} ms   (4 full + 4 eighth chips, planner-placed 2-way TP)",
        "mixed",
        het_report.latency.p50 * 1e3,
        het_report.latency.p99 * 1e3,
    );

    // --- JSON report. ---
    let curve_json = array(curve.iter().map(|p| {
        JsonObject::new()
            .u64("ways", p.ways as u64)
            .f64("tp_tokens_per_s", p.tp_tokens_per_s)
            .f64("tp_speedup", p.tp_speedup)
            .f64("pp_tokens_per_s", p.pp_tokens_per_s)
            .f64("pp_speedup", p.pp_speedup)
            .u64("kv_per_shard_bytes", p.kv_per_shard_bytes)
            .u64("kv_budget_bytes", p.kv_budget_bytes)
            .build()
    }));
    let serving_json = array(serving.iter().map(|(name, ways, r)| {
        JsonObject::new()
            .str("config", name)
            .u64("tp_ways", *ways as u64)
            .raw("report", &r.to_json())
            .build()
    }));
    // Simulated-event throughput across the probe and every serving run:
    // the groundwork metric for the perf trajectory (each serving report
    // also carries its own `sim_events`).
    let sim_events_total: u64 = probe.sim_events
        + het_report.sim_events
        + serving.iter().map(|(_, _, r)| r.sim_events).sum::<u64>();
    let wall_s = wall.elapsed().as_secs_f64();
    let json = JsonObject::new()
        .str("benchmark", "spatten-cluster sharding sweep")
        .str(
            "paper",
            "SpAtten (HPCA 2021) — cluster-layer extension (TP/PP sharding)",
        )
        .u64("requests", args.requests as u64)
        .u64("seed", args.seed)
        .u64("chips", chips as u64)
        .u64("sim_events", sim_events_total)
        .f64("wall_s", wall_s)
        .f64(
            "sim_events_per_sec",
            sim_events_total as f64 / wall_s.max(f64::MIN_POSITIVE),
        )
        .f64("offered_rps", rate)
        .f64("tp4_decode_speedup", tp4_speedup)
        .raw("scaling_curve", &curve_json)
        .raw("serving", &serving_json)
        .raw("heterogeneous", &het_report.to_json())
        .build();
    println!("{json}");

    // Enforced after the report so a regression still leaves the JSON on
    // stdout for inspection.
    if tp4_speedup < 1.6 {
        eprintln!(
            "error: 4-way tensor-parallel decode must scale >= 1.6x over one chip \
             (got {tp4_speedup:.2}x)"
        );
        std::process::exit(1);
    }
    eprintln!("\n4-way TP decode speedup {tp4_speedup:.2}x (floor 1.6x) — ok");
}
