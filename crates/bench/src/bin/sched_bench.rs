//! Scheduling-policy benchmark: sweeps all six (admission, batching)
//! policies through the one generic event loop, on a single chip and on a
//! planner-placed sharded cluster, under Poisson and bursty MMPP
//! arrivals, and reports tail latency, decode cadence and SLO goodput.
//!
//! Protocol, per fleet:
//!
//! 1. **Capacity probe** — a closed-loop trace (saturating client
//!    population, zero think time) under continuous batching measures the
//!    fleet's sustainable request rate.
//! 2. **Policy sweep** — the same SLO-tagged mixed trace (BERT
//!    summarization + GPT-2 generation) at `rate_frac` of capacity runs
//!    under every [`Policy`]. Same trace, same fleet — only the policy
//!    differs. Poisson arrivals first, then MMPP bursts at the same
//!    average offered load.
//!
//! Headline invariant (enforced outside `--smoke`): **decode-prioritized
//! batching beats plain continuous batching on decode p99 (p99
//! time-between-tokens) at equal offered load** — reserving decode steps
//! first and capping per-iteration prefill keeps iterations short no
//! matter how many prefill passes are in flight.
//!
//! The JSON report goes to stdout; a human-readable summary goes to
//! stderr. Usage:
//!
//! ```text
//! sched_bench [--requests N] [--rate-frac F] [--seed S] [--smoke]
//! ```
//!
//! `--smoke` caps the trace at 90 requests and skips the enforcement
//! (p99-of-tbt over a tiny sample is a near-max statistic) — a fast CI
//! check that the binary still runs end to end.

use spatten_cluster::{ClusterConfig, ShardStrategy};
use spatten_serve::json::{array, JsonObject};
use spatten_serve::{simulate_fleet, FleetConfig, FleetReport, Policy};
use spatten_workloads::fleet::FleetSpec;
use spatten_workloads::{ArrivalSpec, Benchmark, Trace, TraceSpec};

struct Args {
    requests: usize,
    rate_frac: f64,
    seed: u64,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 900,
        rate_frac: 0.95,
        seed: 20260726,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests N"),
            "--rate-frac" => args.rate_frac = value().parse().expect("--rate-frac F"),
            "--seed" => args.seed = value().parse().expect("--seed S"),
            "--smoke" => args.smoke = true,
            other => panic!("unknown flag {other} (see sched_bench --help in the doc comment)"),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(90);
    }
    assert!(args.requests >= 1, "need at least one request");
    assert!(
        args.rate_frac > 0.0 && args.rate_frac <= 1.5,
        "rate fraction {} out of the sensible (0, 1.5] band",
        args.rate_frac
    );
    args
}

/// The SLO-tagged mixed request classes: interactive summarization under
/// a tight deadline, generation under a loose one. Best-effort traffic
/// would make the SLO-aware policy a no-op, so every class carries one.
fn slo_spec(arrival: ArrivalSpec, seed: u64) -> TraceSpec {
    let mut spec = TraceSpec::mixed(arrival, seed);
    spec.classes[0] = spec.classes[0].clone().with_slo(0.030);
    spec.classes[1] = spec.classes[1].clone().with_slo(0.300);
    spec
}

/// One fleet under test: either a bare chip or a planner-placed cluster.
enum Fleet {
    SingleChip,
    /// Planner-placed 2-way tensor-parallel groups carved from a mixed
    /// (full + 1/8-scale) fleet — heaviest shards on the fastest silicon.
    Cluster(ClusterConfig),
}

impl Fleet {
    fn name(&self) -> &'static str {
        match self {
            Fleet::SingleChip => "single-chip",
            Fleet::Cluster(_) => "planner-placed-cluster",
        }
    }

    fn simulate(&self, policy: Policy, trace: &Trace) -> FleetReport {
        match self {
            Fleet::SingleChip => simulate_fleet(&FleetConfig::new(1, policy), trace),
            Fleet::Cluster(cfg) => {
                let mut cfg = cfg.clone();
                cfg.policy = policy;
                spatten_cluster::simulate_cluster(&cfg, trace)
            }
        }
    }
}

fn policy_json(r: &FleetReport) -> String {
    JsonObject::new()
        .str("policy", &r.policy)
        .u64("completed", r.completed as u64)
        .u64("rejected", r.rejected as u64)
        .u64("slo_violations", r.slo_violations as u64)
        .f64("throughput_rps", r.throughput_rps)
        .f64("goodput_rps", r.goodput_rps)
        .f64("p99_s", r.latency.p99)
        .f64("ttft_p99_s", r.ttft.p99)
        .f64("tbt_p99_s", r.tbt.p99)
        .f64("mean_batch_occupancy", r.mean_occupancy())
        .build()
}

struct Scenario {
    fleet: &'static str,
    arrival: &'static str,
    offered_rps: f64,
    reports: Vec<FleetReport>,
}

fn sweep(fleet: &Fleet, arrival_name: &'static str, trace: &Trace, offered_rps: f64) -> Scenario {
    eprintln!(
        "\n{} / {} arrivals: {} requests at {:.0} req/s offered",
        fleet.name(),
        arrival_name,
        trace.len(),
        offered_rps
    );
    let mut reports = Vec::new();
    for policy in Policy::ALL {
        let r = fleet.simulate(policy, trace);
        assert_eq!(
            r.completed + r.rejected,
            trace.len(),
            "{}: lost requests",
            policy.name()
        );
        eprintln!(
            "{:<20} p99 {:>9.3} ms   tbt p99 {:>7.4} ms   goodput {:>6.0} req/s   \
             viol {:>4}   shed {:>4}",
            r.policy,
            r.latency.p99 * 1e3,
            r.tbt.p99 * 1e3,
            r.goodput_rps,
            r.slo_violations,
            r.rejected
        );
        reports.push(r);
    }
    Scenario {
        fleet: fleet.name(),
        arrival: arrival_name,
        offered_rps,
        reports,
    }
}

fn main() {
    let args = parse_args();
    let w = Benchmark::gpt2_small_wikitext2().workload();
    let fleets = [
        Fleet::SingleChip,
        Fleet::Cluster(
            ClusterConfig::carve(
                &FleetSpec::mixed(2, 2),
                &ShardStrategy::tensor(2),
                &w,
                Policy::ContinuousBatching,
            )
            .expect("mixed fleet hosts two 2-way groups"),
        ),
    ];

    let mut scenarios: Vec<Scenario> = Vec::new();
    for fleet in &fleets {
        // Capacity probe: closed loop, saturating, continuous batching.
        let probe_trace = TraceSpec::mixed(
            ArrivalSpec::ClosedLoop {
                clients: 32,
                think_s: 0.0,
                requests: 256,
            },
            args.seed ^ 0xCAFE,
        )
        .generate();
        let capacity_rps = fleet
            .simulate(Policy::ContinuousBatching, &probe_trace)
            .throughput_rps;
        eprintln!(
            "{}: capacity probe sustains {:.0} req/s",
            fleet.name(),
            capacity_rps
        );
        let rate = capacity_rps * args.rate_frac;

        let poisson = slo_spec(
            ArrivalSpec::OpenPoisson {
                rate_rps: rate,
                requests: args.requests,
            },
            args.seed,
        )
        .generate();
        scenarios.push(sweep(fleet, "poisson", &poisson, rate));

        // MMPP at the same average offered load: calm at half the rate,
        // bursts at 4x, dwell-weighted back to `rate` on average.
        let mmpp = slo_spec(
            ArrivalSpec::OpenMmpp {
                calm_rps: rate * 0.5,
                burst_rps: rate * 4.0,
                mean_calm_s: 0.3,
                mean_burst_s: 0.05,
                requests: args.requests,
            },
            args.seed ^ 0xBEEF,
        )
        .generate();
        scenarios.push(sweep(fleet, "mmpp", &mmpp, rate));
    }

    // Headline: decode-prioritized vs continuous batching on decode p99.
    let tbt_p99 = |s: &Scenario, p: Policy| {
        s.reports
            .iter()
            .find(|r| r.policy == p.name())
            .map(|r| r.tbt.p99)
            .expect("policy simulated")
    };
    let single_poisson = &scenarios[0];
    let cb = tbt_p99(single_poisson, Policy::ContinuousBatching);
    let dp = tbt_p99(single_poisson, Policy::DecodePrioritized);
    eprintln!(
        "\ndecode-prioritized tbt p99 is {:.2}x better than continuous batching \
         (single chip, poisson, equal offered load)",
        cb / dp
    );

    let json = JsonObject::new()
        .str("benchmark", "spatten-serve scheduling-policy comparison")
        .str(
            "paper",
            "SpAtten (HPCA 2021) — scheduling-layer extension (PR 3)",
        )
        .u64("requests", args.requests as u64)
        .u64("seed", args.seed)
        .f64("rate_frac", args.rate_frac)
        .f64("continuous_batching_tbt_p99_s", cb)
        .f64("decode_prioritized_tbt_p99_s", dp)
        .f64("tbt_p99_speedup_dp_over_cb", cb / dp)
        .raw(
            "scenarios",
            &array(scenarios.iter().map(|s| {
                JsonObject::new()
                    .str("fleet", s.fleet)
                    .str("arrival", s.arrival)
                    .f64("offered_rps", s.offered_rps)
                    .raw("policies", &array(s.reports.iter().map(policy_json)))
                    .build()
            })),
        )
        .build();
    println!("{json}");

    // Enforced after the report so a regression still leaves the JSON on
    // stdout for inspection. Tiny traces make tbt p99 a near-max
    // statistic, which is why `--smoke` runs skip it.
    if !args.smoke && dp >= cb {
        eprintln!(
            "error: decode-prioritized batching must beat continuous batching on \
             decode (tbt) p99 at equal offered load (dp {dp}s vs cb {cb}s)"
        );
        std::process::exit(1);
    }
}
