//! Scheduling-policy benchmark: sweeps all seven (admission, batching)
//! policies through the one generic event loop, on a single chip and on a
//! planner-placed sharded cluster, under Poisson and bursty MMPP
//! arrivals, and reports tail latency, decode cadence and SLO goodput —
//! then runs a **preemption × priority × routing grid** on a mixed
//! full/eighth-scale fleet.
//!
//! Protocol, per fleet:
//!
//! 1. **Capacity probe** — a closed-loop trace (saturating client
//!    population, zero think time) under continuous batching measures the
//!    fleet's sustainable request rate.
//! 2. **Policy sweep** — the same SLO-tagged mixed trace (BERT
//!    summarization + GPT-2 generation) at `rate_frac` of capacity runs
//!    under every [`Policy`]. Same trace, same fleet — only the policy
//!    differs. Poisson arrivals first, then MMPP bursts at the same
//!    average offered load.
//! 3. **Mixed-fleet grid** — a two-tier trace (high-priority interactive
//!    over low-priority batch) on 2 Table-I + 2 eighth-scale chips, swept
//!    over {continuous batching, priority admission} × {no preemption,
//!    priority preemption} × {shared queue, fastest-chip, churn-aware,
//!    least-KV, hash-affinity routing} × {stealing off, costliest-fit},
//!    at **three load points**: the loaded-but-not-saturated *placement
//!    band* (~70 % of probed capacity), where routing decides the tail;
//!    the overloaded *contention band* (2× capacity, batch-heavy mix),
//!    where chips stay packed with low-priority residents and priority
//!    admission + preemption decide whether interactive traffic lives or
//!    dies; and the **saturation band** (1.5× capacity, uniform
//!    priorities), where the PR 4 routing estimator broke — queued-only
//!    backlog goes blind once private queues drain into resident sets —
//!    and where work-stealing has to rescue deliberately adversarial
//!    hash-affinity placement.
//! 4. **Paged-KV grid** — the high-prefix-reuse chat mix (≥ 50 % of each
//!    prompt is a per-class system prefix) on two full chips with the
//!    batch-slot cap lifted, paged-with-prefix-sharing vs contiguous
//!    reservation at **equal `kv_sram_bytes`**, at the same two load
//!    bands (placement ~0.7×, saturation 3× of probed contiguous chat
//!    capacity — paged sustains ~2.4× contiguous on this mix, so the
//!    band must clear that for both sides to saturate). Shared prefix
//!    pages are charged once, so KV capacity — the binding constraint
//!    once slots stop being one — admits a strictly larger resident
//!    batch; and a warm prefix skips the shared head of the prefill
//!    pass, so the larger batch also drains faster.
//! 5. **Disaggregation grid** — the long-prefill/short-decode chat mix
//!    (prompts ~10× the generations, long shared system prefixes) on
//!    four full chips, paged KV everywhere, swept over a load ladder:
//!    the best co-located policy (over {continuous batching,
//!    decode-prioritized} × {shared queue, fastest-chip}) vs a
//!    disaggregated split (2 prefill specialists feeding 2 decode
//!    specialists via pool-aware routing and the priced KV handoff).
//!    The same grid runs the *unpruned twin* — identical arrivals and
//!    drawn lengths, dense KV — to price what cascade pruning saves the
//!    handoff, and scans the ladder for the load point where co-location
//!    wins end-to-end p99 (the handoff-tax inversion). `--disagg-out
//!    FILE` additionally writes this grid's JSON to `FILE`
//!    (`BENCH_disagg.json` in CI).
//! 6. **Elasticity grid** — the SLO-tagged mixed trace under a diurnal
//!    envelope (two load cycles across the trace, peak ~3.2× and trough
//!    ~0.8× of one chip's capacity) on a 2-chip base fleet with a 2-chip
//!    reserve: static under-provisioning (base only), static
//!    over-provisioning (base + reserve all online) and the
//!    threshold-hysteresis autoscaler over the same reserve, compared on
//!    SLO goodput and total online chip-cycles. A separate seeded
//!    revocation schedule runs against its fault-free twin to check that
//!    spot-style preemption loses no admitted work outside the displaced
//!    jobs. `--elastic-out FILE` additionally writes this grid's JSON to
//!    `FILE` (`BENCH_elastic.json` in CI).
//!
//! Headline invariants (the saturation-band pair is enforced in `--smoke`
//! too — it is the regression this bench exists to pin down; the rest
//! need full-size traces for a stable p99):
//!
//! * **decode-prioritized batching beats plain continuous batching on
//!   decode p99 (p99 time-between-tokens) at equal offered load** —
//!   reserving decode steps first and capping per-iteration prefill
//!   keeps iterations short no matter how many prefills are in flight;
//! * **preemptive priority scheduling beats non-preemptive continuous
//!   batching on high-priority p99** at equal load on the mixed fleet;
//! * **fastest-chip routing beats the chip-agnostic shared queue on
//!   fleet p99** on the mixed fleet in the placement band;
//! * **in-service-aware fastest-chip routing no longer loses to the
//!   shared queue at saturation** (the PR 4 defect: it regressed there);
//! * **work-stealing recovers ≥ 1.5× fleet p99 under adversarial
//!   hash-affinity routing at saturation** (≥ 1.2× in `--smoke`, where
//!   90-request p99s are near-max statistics);
//! * **paged KV with copy-on-write prefix sharing admits a larger mean
//!   batch AND improves p99 and goodput over contiguous reservation on
//!   the chat mix at saturation, at equal `kv_sram_bytes`** — enforced
//!   in `--smoke` too: the capacity win is the headline of the paged
//!   allocator and must never silently regress;
//! * **disaggregated prefill/decode pools beat the best co-located
//!   policy on TBT p99 under the long-prefill/short-decode mix** —
//!   enforced in `--smoke` too: decode specialists never share an
//!   iteration with a prompt pass, which is the subsystem's reason to
//!   exist;
//! * **pruned handoffs move strictly fewer bytes than the unpruned
//!   twin** (enforced in `--smoke` too — byte counters are deterministic
//!   at any trace size), and the full run must find a load point where
//!   co-location wins end-to-end p99 (the handoff tax is real);
//! * **contiguous KV with no pools reproduces the pre-disaggregation
//!   event stream bit-for-bit**, and an all-`Flex` pool spec is
//!   indistinguishable from no spec at all (always asserted);
//! * **the autoscaler beats the static under-provisioned fleet on
//!   diurnal SLO goodput AND the static over-provisioned fleet on total
//!   online chip-cycles** — enforced in `--smoke` too: riding the load
//!   envelope on both axes at once is the elasticity layer's reason to
//!   exist;
//! * **revocation with grace loses zero admitted work beyond the
//!   cutoff**: under a seeded revoke schedule every request still
//!   completes, and every completion the faults never displaced moves
//!   exactly its fault-free twin's tokens (enforced in `--smoke` too —
//!   token counters are deterministic at any trace size). An empty
//!   elasticity spec is bit-identical to no spec at all (always
//!   asserted);
//! * **the resumable step API reproduces the offline entry point
//!   bit-for-bit** (always asserted): `fleet_engine` driven by
//!   inject/`load_closed` + `drain` must land on the identical report as
//!   `simulate_fleet` on the pooled disaggregation fleet, the autoscaled
//!   diurnal fleet and the mid-service revocation schedule — the live
//!   front-end (`spatten-frontd`) steps the very same engine.
//!
//! The JSON report goes to stdout (every run records the `SchedKnobs`
//! and trace seed it used, so any row is reproducible from the report
//! alone); a human-readable summary goes to stderr. Usage:
//!
//! ```text
//! sched_bench [--requests N] [--rate-frac F] [--seed S] [--smoke]
//!             [--disagg-out FILE] [--elastic-out FILE] [--replay FILE]
//! ```
//!
//! `--smoke` caps the trace at 90 requests and skips all enforcement
//! except the saturation-band and paged-KV checks above — a fast CI gate
//! that the binary still runs end to end and neither the saturation nor
//! the paged-capacity regression can silently return.
//!
//! `--replay FILE` switches to replay mode: every policy is swept over a
//! recorded `arrival_ns,class,prefill_tokens,decode_tokens` CSV log (see
//! [`TraceSpec::replay`]; classes index the SLO-tagged mixed spec) on
//! both fleets, and the synthetic grids and their enforcement are
//! skipped — a production log carries whatever mix and load it carries.

use spatten_cluster::{ClusterConfig, ShardStrategy};
use spatten_core::SpAttenConfig;
use spatten_serve::json::{array, JsonObject};
use spatten_serve::{
    fleet_engine, simulate_fleet, AutoscaleSpec, ElasticSpec, FleetConfig, FleetEvents,
    FleetReport, KvSpec, LeaveMode, Policy, PoolSpec, PreemptSpec, RouteSpec, SchedKnobs,
    StealSpec,
};
use spatten_workloads::fleet::{FleetSpec, LinkSpec, PoolRole, TopologySpec};
use spatten_workloads::{ArrivalSpec, Benchmark, Trace, TraceSpec};

struct Args {
    requests: usize,
    rate_frac: f64,
    seed: u64,
    smoke: bool,
    disagg_out: Option<String>,
    elastic_out: Option<String>,
    replay: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 900,
        rate_frac: 0.95,
        seed: 20260726,
        smoke: false,
        disagg_out: None,
        elastic_out: None,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests N"),
            "--rate-frac" => args.rate_frac = value().parse().expect("--rate-frac F"),
            "--seed" => args.seed = value().parse().expect("--seed S"),
            "--smoke" => args.smoke = true,
            "--disagg-out" => args.disagg_out = Some(value()),
            "--elastic-out" => args.elastic_out = Some(value()),
            "--replay" => args.replay = Some(value()),
            other => panic!("unknown flag {other} (see sched_bench --help in the doc comment)"),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(90);
    }
    assert!(args.requests >= 1, "need at least one request");
    assert!(
        args.rate_frac > 0.0 && args.rate_frac <= 1.5,
        "rate fraction {} out of the sensible (0, 1.5] band",
        args.rate_frac
    );
    args
}

/// The SLO-tagged mixed request classes: interactive summarization under
/// a tight deadline, generation under a loose one. Best-effort traffic
/// would make the SLO-aware policy a no-op, so every class carries one.
fn slo_spec(arrival: ArrivalSpec, seed: u64) -> TraceSpec {
    let mut spec = TraceSpec::mixed(arrival, seed);
    spec.classes[0] = spec.classes[0].clone().with_slo(0.030);
    spec.classes[1] = spec.classes[1].clone().with_slo(0.300);
    spec
}

/// One fleet under test: either a bare chip or a planner-placed cluster.
enum Fleet {
    SingleChip,
    /// Planner-placed 2-way tensor-parallel groups carved from a mixed
    /// (full + 1/8-scale) fleet — heaviest shards on the fastest silicon.
    /// Boxed: a `ClusterConfig` dwarfs the dataless variant.
    Cluster(Box<ClusterConfig>),
}

impl Fleet {
    fn name(&self) -> &'static str {
        match self {
            Fleet::SingleChip => "single-chip",
            Fleet::Cluster(_) => "planner-placed-cluster",
        }
    }

    fn simulate(&self, policy: Policy, trace: &Trace) -> FleetReport {
        match self {
            Fleet::SingleChip => simulate_fleet(&FleetConfig::new(1, policy), trace),
            Fleet::Cluster(cfg) => {
                let mut cfg = cfg.clone();
                cfg.policy = policy;
                spatten_cluster::simulate_cluster(&cfg, trace)
            }
        }
    }
}

/// Serializes the knobs a run used — the report alone reproduces the run.
fn knobs_json(k: &SchedKnobs) -> String {
    JsonObject::new()
        .u64("prefill_chunk_cycles", k.prefill_chunk_cycles)
        .u64("prefill_budget_cycles", k.prefill_budget_cycles)
        .u64("max_skip", u64::from(k.max_skip))
        .str("route", k.route.name())
        .str("steal", k.steal.name())
        .str("preempt", k.preempt.name())
        .u64("max_preemptions", u64::from(k.max_preemptions))
        .str("kv", k.kv.name())
        .build()
}

fn policy_json(r: &FleetReport) -> String {
    JsonObject::new()
        .str("policy", &r.policy)
        .u64("completed", r.completed as u64)
        .u64("rejected", r.rejected as u64)
        .u64("slo_violations", r.slo_violations as u64)
        .f64("throughput_rps", r.throughput_rps)
        .f64("goodput_rps", r.goodput_rps)
        .f64("p99_s", r.latency.p99)
        .f64("ttft_p99_s", r.ttft.p99)
        .f64("tbt_p99_s", r.tbt.p99)
        .f64("mean_batch_occupancy", r.mean_occupancy())
        .u64("sim_events", r.sim_events)
        .build()
}

struct Scenario {
    fleet: &'static str,
    arrival: &'static str,
    offered_rps: f64,
    seed: u64,
    knobs: SchedKnobs,
    reports: Vec<FleetReport>,
}

fn sweep(
    fleet: &Fleet,
    arrival_name: &'static str,
    trace: &Trace,
    offered_rps: f64,
    seed: u64,
) -> Scenario {
    eprintln!(
        "\n{} / {} arrivals: {} requests at {:.0} req/s offered",
        fleet.name(),
        arrival_name,
        trace.len(),
        offered_rps
    );
    let mut reports = Vec::new();
    for policy in Policy::ALL {
        let r = fleet.simulate(policy, trace);
        assert_eq!(
            r.completed + r.rejected,
            trace.len(),
            "{}: lost requests",
            policy.name()
        );
        eprintln!(
            "{:<20} p99 {:>9.3} ms   tbt p99 {:>7.4} ms   goodput {:>6.0} req/s   \
             viol {:>4}   shed {:>4}",
            r.policy,
            r.latency.p99 * 1e3,
            r.tbt.p99 * 1e3,
            r.goodput_rps,
            r.slo_violations,
            r.rejected
        );
        reports.push(r);
    }
    Scenario {
        fleet: fleet.name(),
        arrival: arrival_name,
        offered_rps,
        seed,
        knobs: SchedKnobs::default(),
        reports,
    }
}

/// One cell of a mixed-fleet preemption × priority × routing × stealing
/// sweep.
struct GridRun {
    policy: Policy,
    route: RouteSpec,
    preempt: PreemptSpec,
    steal: StealSpec,
    knobs: SchedKnobs,
    report: FleetReport,
}

impl GridRun {
    fn label(&self) -> String {
        let mut label = format!(
            "{}+{}+{}",
            self.policy.name(),
            self.route.name(),
            self.preempt.name()
        );
        if self.steal != StealSpec::Off {
            label.push_str("+steal");
        }
        label
    }

    /// End-to-end p99 of the high-priority class (class 0 in the tiered
    /// spec).
    fn high_priority_p99(&self) -> f64 {
        self.report.class_stats[0].latency.p99
    }

    /// Jobs stolen across the fleet.
    fn steals(&self) -> u64 {
        self.report.chip_stats.iter().map(|c| c.steals).sum()
    }
}

/// Runs one (policy, route, preempt, steal) grid over the same trace and
/// fleet.
fn grid_sweep(
    label: &str,
    chips: &[SpAttenConfig],
    cells: &[(Policy, RouteSpec, PreemptSpec, StealSpec)],
    trace: &Trace,
    offered_rps: f64,
) -> Vec<GridRun> {
    eprintln!(
        "\nmixed-fleet {label} (2 full + 2 eighth chips): {} requests at {:.0} req/s offered",
        trace.len(),
        offered_rps
    );
    cells
        .iter()
        .copied()
        .map(|(policy, route, preempt, steal)| {
            let mut cfg = FleetConfig::with_chips(chips.to_vec(), policy);
            cfg.sched.route = route;
            cfg.sched.preempt = preempt;
            cfg.sched.steal = steal;
            let report = simulate_fleet(&cfg, trace);
            assert_eq!(
                report.completed + report.rejected,
                trace.len(),
                "{}: lost requests",
                policy.name()
            );
            let run = GridRun {
                policy,
                route,
                preempt,
                steal,
                knobs: cfg.sched,
                report,
            };
            eprintln!(
                "{:<45} p99 {:>9.3} ms   hi-pri p99 {:>9.3} ms   preempt {:>4}   steals {:>4}   goodput {:>5.0} req/s",
                run.label(),
                run.report.latency.p99 * 1e3,
                run.high_priority_p99() * 1e3,
                run.report.preemptions,
                run.steals(),
                run.report.goodput_rps
            );
            run
        })
        .collect()
}

fn main() {
    let wall = std::time::Instant::now();
    let args = parse_args();
    let w = Benchmark::gpt2_small_wikitext2().workload();
    let fleets = [
        Fleet::SingleChip,
        Fleet::Cluster(Box::new(
            ClusterConfig::carve(
                &FleetSpec::mixed(2, 2),
                &ShardStrategy::tensor(2),
                &w,
                Policy::ContinuousBatching,
            )
            .expect("mixed fleet hosts two 2-way groups"),
        )),
    ];

    // Replay mode: sweep every policy over the recorded log on each
    // fleet, then stop — the synthetic grids (and their enforcement)
    // assume trace mixes a production log does not promise.
    if let Some(path) = &args.replay {
        let csv = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--replay {path}: {e}"));
        let spec = slo_spec(
            ArrivalSpec::OpenPoisson {
                rate_rps: 1.0,
                requests: 1,
            },
            args.seed,
        );
        let trace = spec.replay(&csv);
        let span_s = match &trace {
            Trace::Open { requests } => requests.last().map_or(0.0, |r| r.arrival_ns as f64 / 1e9),
            Trace::Closed { .. } => unreachable!("replay traces are open-loop"),
        };
        let rate = trace.len() as f64 / span_s.max(f64::MIN_POSITIVE);
        eprintln!(
            "replaying {path}: {} requests over {span_s:.3} s ({rate:.0} req/s recorded)",
            trace.len()
        );
        let scenarios: Vec<Scenario> = fleets
            .iter()
            .map(|fleet| sweep(fleet, "replay", &trace, rate, args.seed))
            .collect();
        let json = JsonObject::new()
            .str("benchmark", "spatten-serve scheduling-policy comparison")
            .str("replay", path)
            .u64("requests", trace.len() as u64)
            .f64("recorded_rps", rate)
            .f64("wall_s", wall.elapsed().as_secs_f64())
            .raw(
                "scenarios",
                &array(scenarios.iter().map(|s| {
                    JsonObject::new()
                        .str("fleet", s.fleet)
                        .str("arrival", s.arrival)
                        .f64("offered_rps", s.offered_rps)
                        .u64("seed", s.seed)
                        .raw("sched_knobs", &knobs_json(&s.knobs))
                        .raw("policies", &array(s.reports.iter().map(policy_json)))
                        .build()
                })),
            )
            .build();
        println!("{json}");
        return;
    }

    let mut scenarios: Vec<Scenario> = Vec::new();
    for fleet in &fleets {
        // Capacity probe: closed loop, saturating, continuous batching.
        let probe_trace = TraceSpec::mixed(
            ArrivalSpec::ClosedLoop {
                clients: 32,
                think_s: 0.0,
                requests: 256,
            },
            args.seed ^ 0xCAFE,
        )
        .generate();
        let capacity_rps = fleet
            .simulate(Policy::ContinuousBatching, &probe_trace)
            .throughput_rps;
        eprintln!(
            "{}: capacity probe sustains {:.0} req/s",
            fleet.name(),
            capacity_rps
        );
        let rate = capacity_rps * args.rate_frac;

        let poisson = slo_spec(
            ArrivalSpec::OpenPoisson {
                rate_rps: rate,
                requests: args.requests,
            },
            args.seed,
        )
        .generate();
        scenarios.push(sweep(fleet, "poisson", &poisson, rate, args.seed));

        // MMPP at the same average offered load: calm at half the rate,
        // bursts at 4x, dwell-weighted back to `rate` on average.
        let mmpp = slo_spec(
            ArrivalSpec::OpenMmpp {
                calm_rps: rate * 0.5,
                burst_rps: rate * 4.0,
                mean_calm_s: 0.3,
                mean_burst_s: 0.05,
                requests: args.requests,
            },
            args.seed ^ 0xBEEF,
        )
        .generate();
        scenarios.push(sweep(fleet, "mmpp", &mmpp, rate, args.seed ^ 0xBEEF));
    }

    // Mixed-fleet preemption × priority × routing grids: a two-tier
    // trace (interactive traffic at priority 2 over the batch tier) on
    // 2 full + 2 eighth-scale chips, at two load points.
    //
    // *Placement band* (~70 % of probed shared-queue capacity): chips are
    // loaded but queues stay finite, so where a job lands decides its
    // tail — the routing regime. *Contention band* (2× capacity,
    // batch-heavy 25/75 mix): every chip stays packed with long
    // low-priority generations, so whether an interactive arrival can
    // jump the queue and displace a resident decides its tail — the
    // priority + preemption regime. Past saturation placement stops
    // mattering (every queue grows without bound), which is exactly why
    // the two claims need two load points.
    let mixed_chips = vec![
        SpAttenConfig::default(),
        SpAttenConfig::default(),
        SpAttenConfig::eighth(),
        SpAttenConfig::eighth(),
    ];
    let probe_trace = TraceSpec::mixed(
        ArrivalSpec::ClosedLoop {
            clients: 32,
            think_s: 0.0,
            requests: 256.min(args.requests),
        },
        args.seed ^ 0xCAFE,
    )
    .generate();
    let mixed_capacity = simulate_fleet(
        &FleetConfig::with_chips(mixed_chips.clone(), Policy::ContinuousBatching),
        &probe_trace,
    )
    .throughput_rps;
    eprintln!("\nmixed fleet: capacity probe sustains {mixed_capacity:.0} req/s");
    let grid_rate = mixed_capacity * args.rate_frac * 0.7;
    let grid_seed = args.seed ^ 0xD00D;
    let mut tiered = slo_spec(
        ArrivalSpec::OpenPoisson {
            rate_rps: grid_rate,
            requests: args.requests,
        },
        grid_seed,
    );
    tiered.classes[0] = tiered.classes[0].clone().with_priority(2);
    let grid = grid_sweep(
        "routing grid (placement band)",
        &mixed_chips,
        &[
            (
                Policy::ContinuousBatching,
                RouteSpec::SharedQueue,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::ContinuousBatching,
                RouteSpec::FastestChip,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::ContinuousBatching,
                RouteSpec::LeastKvLoaded,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::ContinuousBatching,
                RouteSpec::HashAffinity,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::Priority,
                RouteSpec::SharedQueue,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::Priority,
                RouteSpec::SharedQueue,
                PreemptSpec::Priority,
                StealSpec::Off,
            ),
            (
                Policy::Priority,
                RouteSpec::FastestChip,
                PreemptSpec::Priority,
                StealSpec::Off,
            ),
        ],
        &tiered.generate(),
        grid_rate,
    );

    let burst_rate = mixed_capacity * 2.0;
    let burst_seed = args.seed ^ 0xF1EE;
    let mut contended = slo_spec(
        ArrivalSpec::OpenPoisson {
            rate_rps: burst_rate,
            requests: args.requests,
        },
        burst_seed,
    );
    contended.classes[0] = contended.classes[0].clone().with_priority(2);
    contended.classes[0].weight = 0.25;
    contended.classes[1].weight = 0.75;
    let burst_grid = grid_sweep(
        "preemption grid (contention band)",
        &mixed_chips,
        &[
            (
                Policy::ContinuousBatching,
                RouteSpec::SharedQueue,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::Priority,
                RouteSpec::SharedQueue,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::Priority,
                RouteSpec::SharedQueue,
                PreemptSpec::Priority,
                StealSpec::Off,
            ),
            (
                Policy::Priority,
                RouteSpec::FastestChip,
                PreemptSpec::Priority,
                StealSpec::Off,
            ),
            (
                Policy::Priority,
                RouteSpec::ChurnAware,
                PreemptSpec::Priority,
                StealSpec::Off,
            ),
        ],
        &contended.generate(),
        burst_rate,
    );

    // Saturation band: 1.5× probed capacity, uniform priorities — the
    // regime where PR 4's queued-only backlog estimate went blind and
    // fastest-chip routing *lost* to the shared queue. Two claims are
    // pinned here: (1) the in-service-aware estimator keeps fixed routing
    // at least even with the work-conserving shared queue, and (2)
    // work-stealing recovers most of the tail that deliberately
    // adversarial hash-affinity routing gives away. Both are enforced
    // even in --smoke (with slack — tiny-trace p99 is a near-max
    // statistic) so the regression this grid exists for can never
    // silently return.
    let sat_rate = mixed_capacity * 1.5;
    let sat_seed = args.seed ^ 0x5A77;
    let saturated = slo_spec(
        ArrivalSpec::OpenPoisson {
            rate_rps: sat_rate,
            requests: args.requests,
        },
        sat_seed,
    );
    let sat_grid = grid_sweep(
        "saturation grid (1.5x capacity)",
        &mixed_chips,
        &[
            (
                Policy::ContinuousBatching,
                RouteSpec::SharedQueue,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::ContinuousBatching,
                RouteSpec::FastestChip,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::ContinuousBatching,
                RouteSpec::FastestChip,
                PreemptSpec::None,
                StealSpec::CostliestFit,
            ),
            (
                Policy::ContinuousBatching,
                RouteSpec::FastestStealAware,
                PreemptSpec::None,
                StealSpec::CostliestFit,
            ),
            (
                Policy::ContinuousBatching,
                RouteSpec::LeastKvLoaded,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::ContinuousBatching,
                RouteSpec::HashAffinity,
                PreemptSpec::None,
                StealSpec::Off,
            ),
            (
                Policy::ContinuousBatching,
                RouteSpec::HashAffinity,
                PreemptSpec::None,
                StealSpec::CostliestFit,
            ),
        ],
        &saturated.generate(),
        sat_rate,
    );

    // Paged-KV grid: the high-prefix-reuse chat mix (each class opens
    // with a shared system prefix covering >= 50 % of the prompt) on two
    // full chips with the batch-slot cap lifted, so KV capacity is the
    // binding admission constraint. Paged allocation with copy-on-write
    // prefix sharing charges the prefix pages once per class; contiguous
    // reservation charges every job its full footprint. Equal
    // `kv_sram_bytes` on both sides — the win is purely allocator
    // policy, not provisioning.
    let kv_chips = vec![SpAttenConfig::default(), SpAttenConfig::default()];
    let kv_fleet = |kv: KvSpec| {
        let mut cfg = FleetConfig::with_chips(kv_chips.clone(), Policy::ContinuousBatching);
        cfg.max_batch = 64;
        cfg.sched.kv = kv;
        cfg
    };
    let chat_slo = |arrival: ArrivalSpec, seed: u64| {
        let mut spec = TraceSpec::chat(arrival, seed);
        spec.classes[0] = spec.classes[0].clone().with_slo(0.050);
        spec.classes[1] = spec.classes[1].clone().with_slo(0.500);
        spec
    };
    let kv_probe = chat_slo(
        ArrivalSpec::ClosedLoop {
            clients: 64,
            think_s: 0.0,
            requests: 256.min(args.requests.max(64)),
        },
        args.seed ^ 0xCAFE,
    )
    .generate();
    let chat_capacity = simulate_fleet(&kv_fleet(KvSpec::Contiguous), &kv_probe).throughput_rps;
    eprintln!("\npaged-KV chat fleet: capacity probe sustains {chat_capacity:.0} req/s");
    struct KvRun {
        kv: KvSpec,
        knobs: SchedKnobs,
        report: FleetReport,
    }
    impl KvRun {
        fn kv_counter(&self, f: impl Fn(&spatten_serve::KvStats) -> u64) -> u64 {
            self.report.chip_stats.iter().map(|c| f(&c.kv)).sum()
        }
    }
    let kv_bands: Vec<(&'static str, f64, u64, Vec<KvRun>)> = [
        (
            "placement-band",
            chat_capacity * args.rate_frac * 0.7,
            args.seed ^ 0xFACE,
        ),
        // 3× the *contiguous* probe: warm-prefix prefill skipping lets
        // the paged allocator sustain ~2.4× the contiguous throughput on
        // this mix, so the band must clear that for both sides to
        // saturate — the regime where the occupancy and drain-rate wins
        // show together.
        ("saturation-band", chat_capacity * 3.0, args.seed ^ 0xFEED),
    ]
    .into_iter()
    .map(|(band, rate, seed)| {
        let trace = chat_slo(
            ArrivalSpec::OpenPoisson {
                rate_rps: rate,
                requests: args.requests,
            },
            seed,
        )
        .generate();
        eprintln!(
            "\npaged-KV grid ({band}, chat mix): {} requests at {rate:.0} req/s offered",
            trace.len()
        );
        let runs: Vec<KvRun> = [KvSpec::Contiguous, KvSpec::paged()]
            .into_iter()
            .map(|kv| {
                let cfg = kv_fleet(kv);
                let report = simulate_fleet(&cfg, &trace);
                assert_eq!(
                    report.completed + report.rejected,
                    trace.len(),
                    "{}: lost requests",
                    kv.name()
                );
                let run = KvRun {
                    kv,
                    knobs: cfg.sched,
                    report,
                };
                eprintln!(
                    "{:<12} p99 {:>9.3} ms   occupancy {:>6.2}   goodput {:>6.0} req/s   \
                     shared hits {:>5}   reclaimed {:>5}",
                    run.kv.name(),
                    run.report.latency.p99 * 1e3,
                    run.report.mean_occupancy(),
                    run.report.goodput_rps,
                    run.kv_counter(|k| k.shared_hits),
                    run.kv_counter(|k| k.blocks_reclaimed),
                );
                run
            })
            .collect();
        (band, rate, seed, runs)
    })
    .collect();
    let kv_sat = &kv_bands.last().unwrap().3;
    let (kv_contig, kv_paged) = (&kv_sat[0], &kv_sat[1]);

    // Disaggregation grid: the long-prefill/short-decode chat mix
    // (prompts ~10× the generations, long shared system prefixes) on
    // four full chips, paged KV on both sides. Co-located serving runs
    // each job end-to-end wherever it lands, so every resident decode
    // stream pays its time-between-tokens tail to other jobs' prompt
    // passes — the strongest co-located baselines (decode-prioritized
    // batching, fastest-chip routing) only cap that interference.
    // Disaggregation (2 prefill specialists feeding 2 decode
    // specialists) removes it: decode chips run nothing but decode
    // steps, and each job migrates once, paying the priced KV handoff
    // (unique dirty blocks of the pruned survivor set; warm shared
    // prefix blocks ride free). The load ladder exposes the crossover:
    // at light load there is no interference to remove, so the handoff
    // tax and the halved prefill capacity let co-location win
    // end-to-end — the inversion point the JSON records.
    let disagg_chips = vec![SpAttenConfig::default(); 4];
    let disagg_cfg = |policy: Policy, route: RouteSpec, pools: Option<PoolSpec>| {
        let mut cfg = FleetConfig::with_chips(disagg_chips.clone(), policy);
        cfg.max_batch = 64;
        cfg.sched.kv = KvSpec::paged();
        cfg.sched.route = route;
        cfg.pools = pools;
        cfg
    };
    let disagg_probe = TraceSpec::disagg_chat(
        ArrivalSpec::ClosedLoop {
            clients: 64,
            think_s: 0.0,
            requests: 256.min(args.requests.max(64)),
        },
        args.seed ^ 0xCAFE,
    )
    .generate();
    let disagg_capacity = simulate_fleet(
        &disagg_cfg(Policy::ContinuousBatching, RouteSpec::SharedQueue, None),
        &disagg_probe,
    )
    .throughput_rps;
    eprintln!(
        "\ndisaggregation fleet (4 full chips): co-located capacity probe sustains \
         {disagg_capacity:.0} req/s on the long-prefill chat mix"
    );
    struct DisaggRun {
        label: String,
        disagg: bool,
        report: FleetReport,
    }
    impl DisaggRun {
        fn handoffs(&self) -> u64 {
            self.report.chip_stats.iter().map(|c| c.handoffs).sum()
        }
        fn handoff_bytes(&self) -> u64 {
            self.report.chip_stats.iter().map(|c| c.handoff_bytes).sum()
        }
        fn handoff_cycles(&self) -> u64 {
            self.report
                .chip_stats
                .iter()
                .map(|c| c.handoff_cycles)
                .sum()
        }
    }
    let colo_cells = [
        (Policy::ContinuousBatching, RouteSpec::SharedQueue),
        (Policy::ContinuousBatching, RouteSpec::FastestChip),
        (Policy::DecodePrioritized, RouteSpec::SharedQueue),
        (Policy::DecodePrioritized, RouteSpec::FastestChip),
    ];
    let disagg_seed = args.seed ^ 0xD15A;
    let disagg_bands: Vec<(f64, f64, Vec<DisaggRun>)> = [0.3, 0.6, 0.9, 1.2]
        .into_iter()
        .map(|frac| {
            let rate = disagg_capacity * frac;
            let trace = TraceSpec::disagg_chat(
                ArrivalSpec::OpenPoisson {
                    rate_rps: rate,
                    requests: args.requests,
                },
                disagg_seed,
            )
            .generate();
            eprintln!(
                "\ndisaggregation grid ({frac}x co-located capacity): {} requests at \
                 {rate:.0} req/s offered",
                trace.len()
            );
            let mut runs: Vec<DisaggRun> = colo_cells
                .iter()
                .map(|&(policy, route)| DisaggRun {
                    label: format!("colocated {}+{}", policy.name(), route.name()),
                    disagg: false,
                    report: simulate_fleet(&disagg_cfg(policy, route, None), &trace),
                })
                .collect();
            runs.push(DisaggRun {
                label: "disagg 2 prefill + 2 decode".into(),
                disagg: true,
                report: simulate_fleet(
                    &disagg_cfg(
                        Policy::ContinuousBatching,
                        RouteSpec::PoolAware,
                        Some(PoolSpec::split(2, 2)),
                    ),
                    &trace,
                ),
            });
            for run in &runs {
                assert_eq!(
                    run.report.completed + run.report.rejected,
                    trace.len(),
                    "{}: lost requests",
                    run.label
                );
                eprintln!(
                    "{:<45} tbt p99 {:>7.4} ms   p99 {:>10.3} ms   handoffs {:>4} \
                     ({:>10} B, {:>9} cyc)",
                    run.label,
                    run.report.tbt.p99 * 1e3,
                    run.report.latency.p99 * 1e3,
                    run.handoffs(),
                    run.handoff_bytes(),
                    run.handoff_cycles()
                );
            }
            (frac, rate, runs)
        })
        .collect();
    let (_, head_rate, head_runs) = disagg_bands.last().expect("bands simulated");
    let disagg_head = head_runs.iter().find(|r| r.disagg).expect("disagg run");
    let best_colo = head_runs
        .iter()
        .filter(|r| !r.disagg)
        .min_by(|a, b| a.report.tbt.p99.total_cmp(&b.report.tbt.p99))
        .expect("co-located runs");
    // The unpruned twin: identical arrivals and drawn lengths (pruning
    // parameters add no random draws), dense KV — the control that
    // prices what cascade pruning saves the handoff.
    let sum_bytes = |r: &FleetReport| r.chip_stats.iter().map(|c| c.handoff_bytes).sum::<u64>();
    let unpruned_report = simulate_fleet(
        &disagg_cfg(
            Policy::ContinuousBatching,
            RouteSpec::PoolAware,
            Some(PoolSpec::split(2, 2)),
        ),
        &TraceSpec::disagg_chat(
            ArrivalSpec::OpenPoisson {
                rate_rps: *head_rate,
                requests: args.requests,
            },
            disagg_seed,
        )
        .unpruned()
        .generate(),
    );
    let pruned_handoff_bytes = disagg_head.handoff_bytes();
    let unpruned_handoff_bytes = sum_bytes(&unpruned_report);
    eprintln!(
        "\ndisaggregation beats the best co-located policy ({}) {:.2}x on tbt p99 at \
         1.2x load; pruned handoffs move {} bytes vs {} unpruned ({:.1}% saved)",
        best_colo.label,
        best_colo.report.tbt.p99 / disagg_head.report.tbt.p99,
        pruned_handoff_bytes,
        unpruned_handoff_bytes,
        (1.0 - pruned_handoff_bytes as f64 / unpruned_handoff_bytes.max(1) as f64) * 100.0
    );
    // The inversion point: the lightest load band where the best
    // co-located end-to-end p99 beats disaggregation's — below the
    // interference regime the handoff tax and the halved prefill
    // capacity are pure cost.
    let inversion = disagg_bands.iter().find_map(|(_, rate, runs)| {
        let d = runs.iter().find(|r| r.disagg).expect("disagg run");
        let best = runs
            .iter()
            .filter(|r| !r.disagg)
            .map(|r| r.report.latency.p99)
            .fold(f64::INFINITY, f64::min);
        (best < d.report.latency.p99).then_some(*rate)
    });
    match inversion {
        Some(rate) => {
            eprintln!("co-location inverts (wins end-to-end p99) at {rate:.0} req/s offered");
        }
        None => eprintln!("co-location never won end-to-end p99 on this ladder"),
    }
    // Contiguous KV + no pools must reproduce the pre-disaggregation
    // event stream bit-for-bit, and an all-Flex pool spec must be
    // indistinguishable from declaring no pools at all.
    let legacy_cfg = FleetConfig::with_chips(disagg_chips.clone(), Policy::ContinuousBatching);
    let legacy = simulate_fleet(&legacy_cfg, &disagg_probe);
    let mut flex_cfg = legacy_cfg.clone();
    flex_cfg.pools = Some(PoolSpec::new(
        vec![PoolRole::Flex; disagg_chips.len()],
        TopologySpec::FullyConnected,
        LinkSpec::default(),
    ));
    let flex = simulate_fleet(&flex_cfg, &disagg_probe);
    assert_eq!(
        legacy.completions, flex.completions,
        "all-Flex pools must be bit-identical to no pools"
    );
    assert_eq!(legacy.makespan_cycles, flex.makespan_cycles);
    assert_eq!(legacy.sim_events, flex.sim_events);
    assert_eq!(sum_bytes(&flex), 0, "Flex chips never migrate");

    // ── Elasticity grid ──────────────────────────────────────────────
    // A diurnal envelope over a small fleet: static under-provisioning
    // (trough-sized), static over-provisioning (peak-sized), and the
    // threshold-hysteresis autoscaler over the same reserve. The
    // autoscaler has to beat the under-provisioned fleet on SLO goodput
    // AND the over-provisioned one on total online chip-cycles — one
    // without the other is just picking a different static fleet.
    let elastic_seed = args.seed ^ 0xE1A5;
    let chip_probe = TraceSpec::mixed(
        ArrivalSpec::ClosedLoop {
            clients: 32,
            think_s: 0.0,
            requests: 256,
        },
        elastic_seed ^ 0xCAFE,
    )
    .generate();
    let chip_capacity = simulate_fleet(
        &FleetConfig::new(1, Policy::ContinuousBatching),
        &chip_probe,
    )
    .throughput_rps;
    let base_chips = 2usize;
    let reserve_chips = 2usize;
    // Mean load sized so the peak (base × 1.6) overwhelms the base fleet
    // while the trough (base × 0.4) idles half of it.
    let base_rps = chip_capacity * 2.0;
    let swing = 0.6;
    let elastic_span_s = args.requests as f64 / base_rps;
    let diurnal = slo_spec(
        ArrivalSpec::Diurnal {
            base_rps,
            swing,
            period_s: elastic_span_s / 2.0,
            requests: args.requests,
        },
        elastic_seed,
    )
    .generate();
    eprintln!(
        "\nelasticity fleet ({base_chips} base + {reserve_chips} reserve full chips): diurnal \
         envelope at {base_rps:.0} req/s mean, swing {swing}, {:.3} s period",
        elastic_span_s / 2.0
    );
    let elastic_fleet = |chips: usize, elastic: Option<ElasticSpec>| {
        let mut cfg = FleetConfig::new(chips, Policy::ContinuousBatching);
        cfg.elastic = elastic;
        cfg
    };
    let under = simulate_fleet(&elastic_fleet(base_chips, None), &diurnal);
    let over = simulate_fleet(&elastic_fleet(base_chips + reserve_chips, None), &diurnal);
    let auto_run = simulate_fleet(
        &elastic_fleet(
            base_chips,
            Some(ElasticSpec {
                events: FleetEvents::default(),
                reserve: vec![SpAttenConfig::default(); reserve_chips],
                autoscale: Some(AutoscaleSpec::default()),
                models: None,
            }),
        ),
        &diurnal,
    );
    let online_cost = |r: &FleetReport| {
        r.chip_stats
            .iter()
            .map(|c| c.elastic.online_cycles)
            .sum::<u64>()
    };
    let elastic_sum = |r: &FleetReport, f: fn(&spatten_serve::ElasticChipStats) -> u64| {
        r.chip_stats.iter().map(|c| f(&c.elastic)).sum::<u64>()
    };
    let auto_ups = elastic_sum(&auto_run, |e| e.joins);
    eprintln!(
        "autoscaler goodput {:.0} req/s vs {:.0} static under-provisioned ({:.2}x); online cost \
         {} chip-cycles vs {} static over-provisioned ({:.1}% saved, {} reserve bring-ups)",
        auto_run.goodput_rps,
        under.goodput_rps,
        auto_run.goodput_rps / under.goodput_rps.max(f64::MIN_POSITIVE),
        online_cost(&auto_run),
        online_cost(&over),
        (1.0 - online_cost(&auto_run) as f64 / online_cost(&over).max(1) as f64) * 100.0,
        auto_ups
    );
    // An empty elasticity spec must be bit-identical to no spec at all
    // (the fixed-fleet fast path) — always asserted, like the all-Flex
    // pool gate above.
    let empty_elastic = simulate_fleet(
        &elastic_fleet(base_chips, Some(ElasticSpec::default())),
        &diurnal,
    );
    assert_eq!(
        under.completions, empty_elastic.completions,
        "an empty elasticity spec must be bit-identical to a fixed fleet"
    );
    assert_eq!(under.makespan_cycles, empty_elastic.makespan_cycles);
    assert_eq!(under.sim_events, empty_elastic.sim_events);

    // Revocation-with-grace conservation: the first seed offset whose
    // drawn schedule actually revokes, against the fault-free twin on
    // the identical trace. Every request must still complete, and every
    // completion the revocations never displaced must move exactly the
    // twin's tokens.
    let fault_chips = 4usize;
    let fault_rate = chip_capacity * fault_chips as f64 * 0.9;
    let fault_trace = slo_spec(
        ArrivalSpec::OpenPoisson {
            rate_rps: fault_rate,
            requests: args.requests,
        },
        elastic_seed ^ 0xFA11,
    )
    .generate();
    let fault_horizon_ns = (args.requests as f64 / fault_rate * 1e9) as u64;
    let fault_twin = simulate_fleet(&elastic_fleet(fault_chips, None), &fault_trace);
    // Seeded graces can span an eighth of the horizon — long enough for
    // every resident to finish politely, which tests nothing. Clamp them
    // tight so the cutoff lands mid-service, and scan seed offsets until
    // the drawn schedule actually displaces a job (deterministic in the
    // base seed; offset 0 almost always suffices).
    let (fault_events, faulted) = (0u64..64)
        .find_map(|i| {
            let mut events =
                FleetEvents::seeded(elastic_seed.wrapping_add(i), fault_chips, fault_horizon_ns);
            let mut revokes = false;
            for l in &mut events.leaves {
                if let LeaveMode::Revoke { grace_ns } = &mut l.mode {
                    *grace_ns = (*grace_ns).min(fault_horizon_ns / 256);
                    revokes = true;
                }
            }
            if !revokes {
                return None;
            }
            let report = simulate_fleet(
                &elastic_fleet(
                    fault_chips,
                    Some(ElasticSpec {
                        events: events.clone(),
                        ..ElasticSpec::default()
                    }),
                ),
                &fault_trace,
            );
            report
                .completions
                .iter()
                .any(|c| c.revoked)
                .then_some((events, report))
        })
        .expect("a seeded revoke schedule within 64 offsets displaces work");
    let twin_tokens: Vec<(u64, usize, usize)> = {
        let mut t: Vec<(u64, usize, usize)> = fault_twin
            .completions
            .iter()
            .map(|c| (c.id, c.prefill_tokens, c.generated_tokens))
            .collect();
        t.sort_unstable();
        t
    };
    let untouched_diverged = faulted
        .completions
        .iter()
        .filter(|c| !c.revoked)
        .filter(|c| {
            twin_tokens
                .binary_search(&(c.id, c.prefill_tokens, c.generated_tokens))
                .is_err()
        })
        .count();
    let revoked_completions = faulted.completions.iter().filter(|c| c.revoked).count();
    eprintln!(
        "revocation conservation: {} scheduled leaves displaced {} jobs; {} of {} untouched \
         completions diverged from the fault-free twin",
        fault_events.leaves.len(),
        revoked_completions,
        untouched_diverged,
        faulted.completions.len() - revoked_completions
    );

    let elastic_run_json = |label: &str, r: &FleetReport| {
        JsonObject::new()
            .str("config", label)
            .f64("goodput_rps", r.goodput_rps)
            .f64("p99_s", r.latency.p99)
            .u64("slo_violations", r.slo_violations as u64)
            .u64("online_chip_cycles", online_cost(r))
            .u64(
                "weight_load_cycles",
                elastic_sum(r, |e| e.weight_load_cycles),
            )
            .u64("joins", elastic_sum(r, |e| e.joins))
            .u64("leaves", elastic_sum(r, |e| e.leaves))
            .u64("revoked_jobs", elastic_sum(r, |e| e.revoked_jobs))
            .u64("sim_events", r.sim_events)
            .build()
    };
    let elastic_json = JsonObject::new()
        .str("benchmark", "spatten-serve elastic fleet membership")
        .str(
            "mix",
            "SLO-tagged mixed trace under a diurnal envelope (two load cycles)",
        )
        .u64("requests", args.requests as u64)
        .u64("seed", elastic_seed)
        .f64("chip_capacity_rps", chip_capacity)
        .f64("base_rps", base_rps)
        .f64("swing", swing)
        .u64("base_chips", base_chips as u64)
        .u64("reserve_chips", reserve_chips as u64)
        .f64(
            "goodput_gain_over_under_provisioned",
            auto_run.goodput_rps / under.goodput_rps.max(f64::MIN_POSITIVE),
        )
        .f64(
            "online_cost_saving_vs_over_provisioned_frac",
            1.0 - online_cost(&auto_run) as f64 / online_cost(&over).max(1) as f64,
        )
        .u64("reserve_bring_ups", auto_ups)
        .raw(
            "runs",
            &array(
                [
                    ("static under-provisioned (base only)", &under),
                    ("static over-provisioned (base + reserve)", &over),
                    ("threshold-hysteresis autoscaler", &auto_run),
                ]
                .into_iter()
                .map(|(label, r)| elastic_run_json(label, r)),
            ),
        )
        .raw(
            "revocation",
            &JsonObject::new()
                .f64("offered_rps", fault_rate)
                .u64("chips", fault_chips as u64)
                .u64("scheduled_leaves", fault_events.leaves.len() as u64)
                .u64("revoked_completions", revoked_completions as u64)
                .u64("untouched_diverged", untouched_diverged as u64)
                .bool("all_completed", faulted.completed == args.requests)
                .u64("sim_events", faulted.sim_events)
                .build(),
        )
        .build();
    if let Some(path) = &args.elastic_out {
        std::fs::write(path, format!("{elastic_json}\n")).expect("write --elastic-out");
        eprintln!("wrote elasticity grid to {path}");
    }

    // ── Engine bit-identity gate ─────────────────────────────────────
    // The offline entry point is now a thin replay wrapper over the
    // resumable `FleetEngine`; driving the same `FleetConfig` through
    // the live step API (inject / load_closed, then drain) must
    // reproduce the one-shot report bit-for-bit. Always asserted, like
    // the pool and elasticity gates above, on this run's hardest cells:
    // the pooled disaggregation fleet (closed-loop handoffs), the
    // autoscaled diurnal fleet (reserve chips extend the roster, so the
    // heterogeneous lowering is on the line), and the mid-service
    // revocation schedule.
    let engine_replay = |cfg: &FleetConfig, trace: &Trace| -> FleetReport {
        let mut engine = fleet_engine(cfg);
        match trace {
            Trace::Open { requests } => {
                for r in requests {
                    engine.inject(r);
                }
            }
            Trace::Closed { clients, think_ns } => engine.load_closed(clients, *think_ns),
        }
        engine.drain()
    };
    let disagg_split_cfg = disagg_cfg(
        Policy::ContinuousBatching,
        RouteSpec::PoolAware,
        Some(PoolSpec::split(2, 2)),
    );
    assert_eq!(
        engine_replay(&disagg_split_cfg, &disagg_probe),
        simulate_fleet(&disagg_split_cfg, &disagg_probe),
        "step-API replay diverged from simulate_fleet on the pooled disaggregation fleet"
    );
    let auto_cfg = elastic_fleet(
        base_chips,
        Some(ElasticSpec {
            events: FleetEvents::default(),
            reserve: vec![SpAttenConfig::default(); reserve_chips],
            autoscale: Some(AutoscaleSpec::default()),
            models: None,
        }),
    );
    assert_eq!(
        engine_replay(&auto_cfg, &diurnal),
        auto_run,
        "step-API replay diverged from simulate_fleet on the autoscaled diurnal fleet"
    );
    let fault_cfg = elastic_fleet(
        fault_chips,
        Some(ElasticSpec {
            events: fault_events.clone(),
            ..ElasticSpec::default()
        }),
    );
    assert_eq!(
        engine_replay(&fault_cfg, &fault_trace),
        faulted,
        "step-API replay diverged from simulate_fleet under mid-service revocation"
    );
    eprintln!(
        "\nengine bit-identity gate: the resumable step API reproduced all three offline \
         reports (pooled disaggregation, autoscaled diurnal, mid-service revocation) \
         bit-for-bit"
    );

    // Headline: decode-prioritized vs continuous batching on decode p99.
    let tbt_p99 = |s: &Scenario, p: Policy| {
        s.reports
            .iter()
            .find(|r| r.policy == p.name())
            .map(|r| r.tbt.p99)
            .expect("policy simulated")
    };
    let single_poisson = &scenarios[0];
    let cb = tbt_p99(single_poisson, Policy::ContinuousBatching);
    let dp = tbt_p99(single_poisson, Policy::DecodePrioritized);
    eprintln!(
        "\ndecode-prioritized tbt p99 is {:.2}x better than continuous batching \
         (single chip, poisson, equal offered load)",
        cb / dp
    );

    // Grid headliners.
    fn cell(
        runs: &[GridRun],
        policy: Policy,
        route: RouteSpec,
        preempt: PreemptSpec,
        steal: StealSpec,
    ) -> &GridRun {
        runs.iter()
            .find(|r| {
                r.policy == policy && r.route == route && r.preempt == preempt && r.steal == steal
            })
            .expect("grid cell simulated")
    }
    let routed_base = cell(
        &grid,
        Policy::ContinuousBatching,
        RouteSpec::SharedQueue,
        PreemptSpec::None,
        StealSpec::Off,
    );
    let routed = cell(
        &grid,
        Policy::ContinuousBatching,
        RouteSpec::FastestChip,
        PreemptSpec::None,
        StealSpec::Off,
    );
    let burst_base = cell(
        &burst_grid,
        Policy::ContinuousBatching,
        RouteSpec::SharedQueue,
        PreemptSpec::None,
        StealSpec::Off,
    );
    let preemptive = cell(
        &burst_grid,
        Policy::Priority,
        RouteSpec::SharedQueue,
        PreemptSpec::Priority,
        StealSpec::Off,
    );
    let sat_shared = cell(
        &sat_grid,
        Policy::ContinuousBatching,
        RouteSpec::SharedQueue,
        PreemptSpec::None,
        StealSpec::Off,
    );
    let sat_fastest = cell(
        &sat_grid,
        Policy::ContinuousBatching,
        RouteSpec::FastestChip,
        PreemptSpec::None,
        StealSpec::Off,
    );
    let sat_fastest_steal = cell(
        &sat_grid,
        Policy::ContinuousBatching,
        RouteSpec::FastestChip,
        PreemptSpec::None,
        StealSpec::CostliestFit,
    );
    let sat_steal_aware = cell(
        &sat_grid,
        Policy::ContinuousBatching,
        RouteSpec::FastestStealAware,
        PreemptSpec::None,
        StealSpec::CostliestFit,
    );
    let sat_hash = cell(
        &sat_grid,
        Policy::ContinuousBatching,
        RouteSpec::HashAffinity,
        PreemptSpec::None,
        StealSpec::Off,
    );
    let sat_hash_steal = cell(
        &sat_grid,
        Policy::ContinuousBatching,
        RouteSpec::HashAffinity,
        PreemptSpec::None,
        StealSpec::CostliestFit,
    );
    eprintln!(
        "\npreemptive priority scheduling improves high-priority p99 {:.2}x over \
         non-preemptive continuous batching (mixed fleet, contention band, equal \
         offered load, {} evictions)",
        burst_base.high_priority_p99() / preemptive.high_priority_p99(),
        preemptive.report.preemptions
    );
    eprintln!(
        "fastest-chip routing improves fleet p99 {:.2}x over the chip-agnostic \
         shared queue (mixed fleet, placement band, equal offered load)",
        routed_base.report.latency.p99 / routed.report.latency.p99
    );
    eprintln!(
        "at saturation (1.5x capacity) in-service-aware fastest-chip routing \
         holds {:.2}x vs the shared queue (PR 4's queued-only estimate lost \
         this band)",
        sat_shared.report.latency.p99 / sat_fastest.report.latency.p99
    );
    eprintln!(
        "steal-aware routing holds {:.2}x fleet p99 vs plain fastest-chip under \
         costliest-fit stealing at saturation ({} steals vs {})",
        sat_fastest_steal.report.latency.p99 / sat_steal_aware.report.latency.p99,
        sat_steal_aware.steals(),
        sat_fastest_steal.steals()
    );
    eprintln!(
        "work-stealing recovers {:.2}x fleet p99 under adversarial hash-affinity \
         routing at saturation ({} steals, {} cycles relieved)",
        sat_hash.report.latency.p99 / sat_hash_steal.report.latency.p99,
        sat_hash_steal.steals(),
        sat_hash_steal
            .report
            .chip_stats
            .iter()
            .map(|c| c.stolen_cycles)
            .sum::<u64>()
    );
    eprintln!(
        "paged KV with prefix sharing admits a {:.2}x larger mean batch, \
         {:.2}x better p99 and {:.2}x goodput vs contiguous reservation on the \
         chat mix at saturation, equal kv_sram_bytes ({} shared-prefix hits, \
         {} blocks reclaimed mid-decode by cascade pruning)",
        kv_paged.report.mean_occupancy() / kv_contig.report.mean_occupancy().max(f64::MIN_POSITIVE),
        kv_contig.report.latency.p99 / kv_paged.report.latency.p99,
        kv_paged.report.goodput_rps / kv_contig.report.goodput_rps.max(f64::MIN_POSITIVE),
        kv_paged.kv_counter(|k| k.shared_hits),
        kv_paged.kv_counter(|k| k.blocks_reclaimed),
    );

    // The disaggregation grid serializes standalone so `--disagg-out`
    // can check it in as `BENCH_disagg.json` (the perf trajectory) while
    // the same object rides inside the main report.
    let disagg_json = JsonObject::new()
        .str(
            "benchmark",
            "spatten-serve disaggregated prefill/decode serving",
        )
        .str(
            "mix",
            "disagg-chat (long prefill, short decode, shared system prefixes)",
        )
        .u64("requests", args.requests as u64)
        .u64("seed", disagg_seed)
        .f64("colocated_capacity_rps", disagg_capacity)
        .str("best_colocated", &best_colo.label)
        .f64("best_colocated_tbt_p99_s", best_colo.report.tbt.p99)
        .f64("disagg_tbt_p99_s", disagg_head.report.tbt.p99)
        .f64(
            "tbt_p99_speedup_disagg_over_best_colocated",
            best_colo.report.tbt.p99 / disagg_head.report.tbt.p99,
        )
        .u64("handoffs", disagg_head.handoffs())
        .u64("handoff_bytes_pruned", pruned_handoff_bytes)
        .u64("handoff_bytes_unpruned", unpruned_handoff_bytes)
        .f64(
            "handoff_bytes_saved_by_pruning_frac",
            1.0 - pruned_handoff_bytes as f64 / unpruned_handoff_bytes.max(1) as f64,
        )
        .raw(
            "colocation_inversion_rps",
            &inversion.map_or_else(|| "null".to_string(), |r| format!("{r}")),
        )
        .raw(
            "bands",
            &array(disagg_bands.iter().map(|(frac, rate, runs)| {
                JsonObject::new()
                    .f64("load_frac_of_colocated_capacity", *frac)
                    .f64("offered_rps", *rate)
                    .u64("seed", disagg_seed)
                    .raw(
                        "runs",
                        &array(runs.iter().map(|r| {
                            JsonObject::new()
                                .str("config", &r.label)
                                .bool("disaggregated", r.disagg)
                                .f64("tbt_p99_s", r.report.tbt.p99)
                                .f64("ttft_p99_s", r.report.ttft.p99)
                                .f64("p99_s", r.report.latency.p99)
                                .f64("goodput_rps", r.report.goodput_rps)
                                .f64("mean_batch_occupancy", r.report.mean_occupancy())
                                .u64("handoffs", r.handoffs())
                                .u64("handoff_bytes", r.handoff_bytes())
                                .u64("handoff_cycles", r.handoff_cycles())
                                .u64("sim_events", r.report.sim_events)
                                .build()
                        })),
                    )
                    .build()
            })),
        )
        .build();
    if let Some(path) = &args.disagg_out {
        std::fs::write(path, format!("{disagg_json}\n")).expect("write --disagg-out");
        eprintln!("wrote disaggregation grid to {path}");
    }

    // Simulated-event throughput over every recorded run (probes and
    // twins excluded): the groundwork metric for the perf trajectory.
    let sim_events_total: u64 = scenarios
        .iter()
        .flat_map(|s| &s.reports)
        .map(|r| r.sim_events)
        .chain(
            grid.iter()
                .chain(&burst_grid)
                .chain(&sat_grid)
                .map(|r| r.report.sim_events),
        )
        .chain(
            kv_bands
                .iter()
                .flat_map(|(_, _, _, runs)| runs)
                .map(|r| r.report.sim_events),
        )
        .chain(
            disagg_bands
                .iter()
                .flat_map(|(_, _, runs)| runs)
                .map(|r| r.report.sim_events),
        )
        .chain(
            [&under, &over, &auto_run, &fault_twin, &faulted]
                .into_iter()
                .map(|r| r.sim_events),
        )
        .sum();
    let wall_s = wall.elapsed().as_secs_f64();

    let json = JsonObject::new()
        .str("benchmark", "spatten-serve scheduling-policy comparison")
        .str(
            "paper",
            "SpAtten (HPCA 2021) — scheduling-layer extension (PRs 3-4)",
        )
        .u64("requests", args.requests as u64)
        .u64("seed", args.seed)
        .f64("rate_frac", args.rate_frac)
        .u64("sim_events", sim_events_total)
        .f64("wall_s", wall_s)
        .f64(
            "sim_events_per_sec",
            sim_events_total as f64 / wall_s.max(f64::MIN_POSITIVE),
        )
        .f64("continuous_batching_tbt_p99_s", cb)
        .f64("decode_prioritized_tbt_p99_s", dp)
        .f64("tbt_p99_speedup_dp_over_cb", cb / dp)
        .f64(
            "high_priority_p99_speedup_preempt_over_cb",
            burst_base.high_priority_p99() / preemptive.high_priority_p99(),
        )
        .f64(
            "fleet_p99_speedup_routed_over_shared",
            routed_base.report.latency.p99 / routed.report.latency.p99,
        )
        .f64(
            "saturation_p99_ratio_shared_over_fastest",
            sat_shared.report.latency.p99 / sat_fastest.report.latency.p99,
        )
        .f64(
            "saturation_p99_recovery_steal_over_hash",
            sat_hash.report.latency.p99 / sat_hash_steal.report.latency.p99,
        )
        .u64("saturation_steals", sat_hash_steal.steals())
        .f64(
            "paged_occupancy_gain_over_contiguous",
            kv_paged.report.mean_occupancy()
                / kv_contig.report.mean_occupancy().max(f64::MIN_POSITIVE),
        )
        .f64(
            "paged_p99_speedup_over_contiguous",
            kv_contig.report.latency.p99 / kv_paged.report.latency.p99,
        )
        .f64(
            "paged_goodput_gain_over_contiguous",
            kv_paged.report.goodput_rps / kv_contig.report.goodput_rps.max(f64::MIN_POSITIVE),
        )
        .u64("paged_shared_hits", kv_paged.kv_counter(|k| k.shared_hits))
        .u64(
            "paged_blocks_reclaimed",
            kv_paged.kv_counter(|k| k.blocks_reclaimed),
        )
        .raw(
            "scenarios",
            &array(scenarios.iter().map(|s| {
                JsonObject::new()
                    .str("fleet", s.fleet)
                    .str("arrival", s.arrival)
                    .f64("offered_rps", s.offered_rps)
                    .u64("seed", s.seed)
                    .raw("sched_knobs", &knobs_json(&s.knobs))
                    .raw("policies", &array(s.reports.iter().map(policy_json)))
                    .build()
            })),
        )
        .raw(
            "mixed_fleet_grids",
            &array(
                [
                    ("placement-band", grid_rate, grid_seed, &grid),
                    ("contention-band", burst_rate, burst_seed, &burst_grid),
                    ("saturation-band", sat_rate, sat_seed, &sat_grid),
                ]
                .into_iter()
                .map(|(band, rate, seed, runs)| {
                    JsonObject::new()
                        .str("band", band)
                        .f64("capacity_rps", mixed_capacity)
                        .f64("offered_rps", rate)
                        .u64("seed", seed)
                        .raw(
                            "runs",
                            &array(runs.iter().map(|r| {
                                JsonObject::new()
                                    .str("policy", r.policy.name())
                                    .str("route", r.route.name())
                                    .str("preempt", r.preempt.name())
                                    .str("steal", r.steal.name())
                                    .u64("seed", seed)
                                    .raw("sched_knobs", &knobs_json(&r.knobs))
                                    .f64("p99_s", r.report.latency.p99)
                                    .f64("high_priority_p99_s", r.high_priority_p99())
                                    .f64("low_priority_p99_s", r.report.class_stats[1].latency.p99)
                                    .u64("preemptions", r.report.preemptions)
                                    .u64("steals", r.steals())
                                    .f64("goodput_rps", r.report.goodput_rps)
                                    .u64(
                                        "swap_cycles",
                                        r.report.chip_stats.iter().map(|c| c.swap_cycles).sum(),
                                    )
                                    .u64(
                                        "stolen_cycles",
                                        r.report.chip_stats.iter().map(|c| c.stolen_cycles).sum(),
                                    )
                                    .u64("sim_events", r.report.sim_events)
                                    .build()
                            })),
                        )
                        .build()
                }),
            ),
        )
        .raw(
            "paged_kv_grid",
            &array(kv_bands.iter().map(|(band, rate, seed, runs)| {
                JsonObject::new()
                    .str("band", band)
                    .f64("capacity_rps", chat_capacity)
                    .f64("offered_rps", *rate)
                    .u64("seed", *seed)
                    .raw(
                        "runs",
                        &array(runs.iter().map(|r| {
                            JsonObject::new()
                                .str("kv", r.kv.name())
                                .u64("seed", *seed)
                                .raw("sched_knobs", &knobs_json(&r.knobs))
                                .f64("p99_s", r.report.latency.p99)
                                .f64("ttft_p99_s", r.report.ttft.p99)
                                .f64("tbt_p99_s", r.report.tbt.p99)
                                .f64("goodput_rps", r.report.goodput_rps)
                                .f64("mean_batch_occupancy", r.report.mean_occupancy())
                                .u64("slo_violations", r.report.slo_violations as u64)
                                .u64("kv_blocks_allocated", r.kv_counter(|k| k.blocks_allocated))
                                .u64("kv_blocks_freed", r.kv_counter(|k| k.blocks_freed))
                                .u64("kv_blocks_reclaimed", r.kv_counter(|k| k.blocks_reclaimed))
                                .u64("kv_shared_hits", r.kv_counter(|k| k.shared_hits))
                                .u64(
                                    "kv_cache_evicted_blocks",
                                    r.kv_counter(|k| k.cache_evicted_blocks),
                                )
                                .u64("sim_events", r.report.sim_events)
                                .build()
                        })),
                    )
                    .build()
            })),
        )
        .raw("disagg", &disagg_json)
        .f64(
            "elastic_goodput_gain_over_under_provisioned",
            auto_run.goodput_rps / under.goodput_rps.max(f64::MIN_POSITIVE),
        )
        .f64(
            "elastic_online_cost_saving_vs_over_provisioned_frac",
            1.0 - online_cost(&auto_run) as f64 / online_cost(&over).max(1) as f64,
        )
        .raw("elastic", &elastic_json)
        .build();
    println!("{json}");

    // Enforced after the report so a regression still leaves the JSON on
    // stdout for inspection. Tiny traces make tbt p99 a near-max
    // statistic, which is why `--smoke` runs skip it.
    if !args.smoke && dp >= cb {
        eprintln!(
            "error: decode-prioritized batching must beat continuous batching on \
             decode (tbt) p99 at equal offered load (dp {dp}s vs cb {cb}s)"
        );
        std::process::exit(1);
    }
    if !args.smoke && preemptive.high_priority_p99() >= burst_base.high_priority_p99() {
        eprintln!(
            "error: preemptive priority scheduling must beat non-preemptive continuous \
             batching on high-priority p99 at equal offered load ({}s vs {}s)",
            preemptive.high_priority_p99(),
            burst_base.high_priority_p99()
        );
        std::process::exit(1);
    }
    if !args.smoke && preemptive.report.preemptions == 0 {
        eprintln!("error: the contention band must actually evict (0 preemptions recorded)");
        std::process::exit(1);
    }
    if !args.smoke && routed.report.latency.p99 >= routed_base.report.latency.p99 {
        eprintln!(
            "error: fastest-chip routing must beat the chip-agnostic shared queue on \
             fleet p99 on a mixed fleet ({}s vs {}s)",
            routed.report.latency.p99, routed_base.report.latency.p99
        );
        std::process::exit(1);
    }
    // The saturation-band pair is enforced in --smoke too (with slack:
    // a 90-request p99 is a near-max statistic): this is the regression
    // this bench exists to pin down, so the fast CI gate must see it.
    let sat_slack = if args.smoke { 1.10 } else { 1.0 };
    if sat_fastest.report.latency.p99 > sat_shared.report.latency.p99 * sat_slack {
        eprintln!(
            "error: in-service-aware fastest-chip routing must not lose to the \
             shared queue at saturation (1.5x capacity): routed p99 {}s vs shared \
             {}s (the PR 4 queued-only estimator regressed exactly here)",
            sat_fastest.report.latency.p99, sat_shared.report.latency.p99
        );
        std::process::exit(1);
    }
    let steal_floor = if args.smoke { 1.2 } else { 1.5 };
    let recovery = sat_hash.report.latency.p99 / sat_hash_steal.report.latency.p99;
    if recovery < steal_floor {
        eprintln!(
            "error: work-stealing must recover >= {steal_floor}x fleet p99 under \
             adversarial hash-affinity routing at saturation (got {recovery:.2}x: \
             {}s stealing vs {}s stuck)",
            sat_hash_steal.report.latency.p99, sat_hash.report.latency.p99
        );
        std::process::exit(1);
    }
    if sat_hash_steal.steals() == 0 {
        eprintln!("error: the saturation band must actually steal (0 steals recorded)");
        std::process::exit(1);
    }
    // The paged-capacity win is enforced in --smoke too: it is the
    // headline of the paged allocator. Occupancy and goodput are means —
    // stable even on 90-request traces — so they get no slack; p99 gets
    // the usual tiny-trace latitude.
    if kv_paged.report.mean_occupancy() <= kv_contig.report.mean_occupancy() {
        eprintln!(
            "error: paged KV with prefix sharing must admit a larger mean batch than \
             contiguous reservation on the chat mix at saturation ({:.2} vs {:.2})",
            kv_paged.report.mean_occupancy(),
            kv_contig.report.mean_occupancy()
        );
        std::process::exit(1);
    }
    let kv_slack = if args.smoke { 1.10 } else { 1.0 };
    if kv_paged.report.latency.p99 >= kv_contig.report.latency.p99 * kv_slack {
        eprintln!(
            "error: paged KV must beat contiguous reservation on chat p99 at saturation \
             ({}s vs {}s at equal kv_sram_bytes)",
            kv_paged.report.latency.p99, kv_contig.report.latency.p99
        );
        std::process::exit(1);
    }
    if kv_paged.report.goodput_rps <= kv_contig.report.goodput_rps {
        eprintln!(
            "error: paged KV must beat contiguous reservation on chat goodput at \
             saturation ({} vs {} req/s)",
            kv_paged.report.goodput_rps, kv_contig.report.goodput_rps
        );
        std::process::exit(1);
    }
    if kv_paged.kv_counter(|k| k.shared_hits) == 0 {
        eprintln!("error: the chat mix must actually share prefix pages (0 shared hits)");
        std::process::exit(1);
    }
    // Disaggregation headliners — the TBT win and the pruning discount
    // are enforced in --smoke too: the first is this subsystem's reason
    // to exist, the second is a deterministic byte counter, stable at
    // any trace size. The inversion scan needs full-size traces for a
    // stable end-to-end p99.
    let disagg_slack = if args.smoke { 1.10 } else { 1.0 };
    if disagg_head.report.tbt.p99 >= best_colo.report.tbt.p99 * disagg_slack {
        eprintln!(
            "error: disaggregated pools must beat the best co-located policy on tbt \
             p99 under the long-prefill/short-decode mix (disagg {}s vs {} {}s)",
            disagg_head.report.tbt.p99, best_colo.label, best_colo.report.tbt.p99
        );
        std::process::exit(1);
    }
    if disagg_head.handoffs() == 0 {
        eprintln!("error: the disaggregation band must actually migrate (0 handoffs recorded)");
        std::process::exit(1);
    }
    if pruned_handoff_bytes >= unpruned_handoff_bytes {
        eprintln!(
            "error: pruned handoffs must move fewer bytes than the unpruned twin \
             ({pruned_handoff_bytes} vs {unpruned_handoff_bytes})"
        );
        std::process::exit(1);
    }
    if !args.smoke && inversion.is_none() {
        eprintln!(
            "error: the load ladder must expose a point where co-location wins \
             end-to-end p99 (the handoff tax must be real)"
        );
        std::process::exit(1);
    }
    // Elasticity headliners — enforced in --smoke too. Goodput is a
    // mean, online cost a deterministic cycle counter, and the
    // revocation-conservation check a token-count identity: all three
    // are stable at any trace size.
    if auto_run.goodput_rps <= under.goodput_rps {
        eprintln!(
            "error: the autoscaler must beat the static under-provisioned fleet on \
             diurnal SLO goodput ({} vs {} req/s)",
            auto_run.goodput_rps, under.goodput_rps
        );
        std::process::exit(1);
    }
    if online_cost(&auto_run) >= online_cost(&over) {
        eprintln!(
            "error: the autoscaler must beat the static over-provisioned fleet on \
             total online chip-cycles ({} vs {})",
            online_cost(&auto_run),
            online_cost(&over)
        );
        std::process::exit(1);
    }
    if auto_ups == 0 {
        eprintln!("error: the diurnal peak must actually bring reserve up (0 joins recorded)");
        std::process::exit(1);
    }
    if faulted.completed != args.requests {
        eprintln!(
            "error: every request must survive the revocation schedule ({} of {} completed)",
            faulted.completed, args.requests
        );
        std::process::exit(1);
    }
    if revoked_completions == 0 {
        eprintln!("error: the revocation schedule must actually displace work (0 revoked jobs)");
        std::process::exit(1);
    }
    if untouched_diverged != 0 {
        eprintln!(
            "error: revocation with grace must lose zero admitted work beyond the cutoff \
             ({untouched_diverged} untouched completions diverged from the fault-free twin)"
        );
        std::process::exit(1);
    }
}
