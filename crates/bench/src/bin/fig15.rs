//! Figure 15: end-to-end speedup of SpAtten-e2e over TITAN Xp and Xeon on
//! the eight GPT-2 benchmarks, with FC weights at 8 and 12 bits.
//!
//! Paper geomeans: 8-bit 35× / 122×; 12-bit 24× / 83×.

use spatten_baselines::DeviceModel;
use spatten_bench::{fmt_x, geomean, print_header};
use spatten_core::{SpAttenConfig, SpAttenE2e};
use spatten_workloads::Benchmark;

fn main() {
    let gpu = DeviceModel::titan_xp();
    let cpu = DeviceModel::xeon();

    print_header(
        "Figure 15: SpAtten-e2e end-to-end speedup (GPT-2 generation)",
        &format!(
            "{:<26} {:>12} {:>12} {:>12} {:>12}",
            "benchmark", "8b vs GPU", "8b vs CPU", "12b vs GPU", "12b vs CPU"
        ),
    );

    let mut g8 = Vec::new();
    let mut c8 = Vec::new();
    let mut g12 = Vec::new();
    let mut c12 = Vec::new();
    for bench in Benchmark::gpt2_suite() {
        let w = bench.workload();
        let (gattn, gfc) = gpu.end_to_end_split(&w);
        let (cattn, cfc) = cpu.end_to_end_split(&w);
        let gpu_s = gattn + gfc;
        let cpu_s = cattn + cfc;
        let e8 = SpAttenE2e::new(SpAttenConfig::default(), 8)
            .run(&w)
            .seconds();
        let e12 = SpAttenE2e::new(SpAttenConfig::default(), 12)
            .run(&w)
            .seconds();
        g8.push(gpu_s / e8);
        c8.push(cpu_s / e8);
        g12.push(gpu_s / e12);
        c12.push(cpu_s / e12);
        println!(
            "{:<26} {:>12} {:>12} {:>12} {:>12}",
            bench.id,
            fmt_x(gpu_s / e8),
            fmt_x(cpu_s / e8),
            fmt_x(gpu_s / e12),
            fmt_x(cpu_s / e12)
        );
    }
    println!(
        "\ngeomean: 8-bit {} vs GPU (paper 35x), {} vs CPU (paper 122x)",
        fmt_x(geomean(&g8)),
        fmt_x(geomean(&c8))
    );
    println!(
        "         12-bit {} vs GPU (paper 24x), {} vs CPU (paper 83x)",
        fmt_x(geomean(&g12)),
        fmt_x(geomean(&c12))
    );
}
