//! Figure 20: speedup breakdown over TITAN Xp on the GPT-2 benchmarks.
//!
//! The paper's ladder: specialized datapath 22.1× → +token pruning 1.1× →
//! +head pruning 1.1× → +high-parallelism top-k engine 3× → +static
//! quantization 1.6× → +progressive quantization 1.7× (total ≈ 209×).

use spatten_baselines::DeviceModel;
use spatten_bench::{fmt_x, geomean, print_header};
use spatten_core::ablation::{ladder, run_rung};
use spatten_workloads::Benchmark;

fn main() {
    let gpu = DeviceModel::titan_xp();

    print_header(
        "Figure 20: cumulative speedup over TITAN Xp (geomean of 8 GPT-2 benchmarks)",
        &format!(
            "{:<30} {:>12} {:>12} {:>10}",
            "configuration", "cumulative", "step gain", "paper cum"
        ),
    );

    println!("note: the serial-engine rungs can even *lose* speedup — cascade");
    println!("pruning makes top-k the bottleneck until the parallel engine lands");
    println!("(the paper reports the same effect as gains capped at 1.1x).");
    let mut prev = 1.0f64;
    for rung in ladder() {
        let mut speedups = Vec::new();
        for bench in Benchmark::gpt2_suite() {
            let w = bench.workload();
            let r = run_rung(&rung, &w);
            let base = gpu.attention_latency(&w);
            speedups.push(base / r.seconds());
        }
        let cum = geomean(&speedups);
        println!(
            "{:<30} {:>12} {:>11.2}x {:>9.0}x",
            rung.name,
            fmt_x(cum),
            cum / prev,
            rung.paper_cumulative
        );
        prev = cum;
    }
}
