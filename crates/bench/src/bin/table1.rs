//! Table I: the architectural setup of SpAtten.

use spatten_bench::print_header;
use spatten_core::SpAttenConfig;

fn main() {
    let c = SpAttenConfig::default();
    print_header("Table I: SpAtten architectural setup", "parameter | value");
    println!("Q-K-V fetcher      | 32×16 address crossbar, 16×32 data crossbar, 64-deep FIFOs");
    println!(
        "Q × K              | 196KB Key SRAM; {}×12-bit multipliers; adder tree ≤ {} items/cycle",
        c.multipliers_per_array,
        c.multipliers_per_array / 64
    );
    println!(
        "Softmax            | FIFO depth 128; parallelism {}",
        c.softmax_parallelism
    );
    println!(
        "Attention Prob × V | {}KB Value SRAM; {}×12-bit multipliers",
        c.kv_sram_bytes / 1024,
        c.multipliers_per_array
    );
    println!(
        "top-k engine       | {} comparators per array; quick-select + zero eliminators",
        c.topk_parallelism
    );
    println!(
        "HBM                | {} channels × {} B/cycle @ {} GHz = {:.0} GB/s",
        c.hbm.channels,
        c.hbm.bytes_per_cycle,
        c.clock_ghz,
        c.peak_bandwidth() / 1e9
    );
    println!(
        "compute roof       | {:.3} TFLOPS ({} total multipliers @ {} GHz)",
        c.peak_flops() / 1e12,
        2 * c.multipliers_per_array,
        c.clock_ghz
    );
}
