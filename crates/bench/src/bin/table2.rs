//! Table II: power breakdown of SpAtten (logic / SRAM / DRAM / total).
//!
//! Measured by running the full 30-benchmark suite and converting event
//! counts to power; see also `fig13` for the module-level view.

use spatten_bench::{print_header, run_spatten};
use spatten_energy::{EnergyModel, EventCounts};
use spatten_workloads::Benchmark;

fn main() {
    let model = EnergyModel::default();
    let mut counts = EventCounts::new();
    let mut cycles = 0u64;
    for bench in Benchmark::all() {
        let r = run_spatten(&bench);
        counts += r.counts;
        cycles += r.total_cycles;
    }
    let p = model.power(&counts, cycles, 1.0);

    print_header(
        "Table II: power breakdown over the 30-benchmark suite",
        &format!("{:<22} {:>10} {:>10}", "component", "measured W", "paper W"),
    );
    println!(
        "{:<22} {:>10.2} {:>10.2}",
        "computation logic", p.compute_w, 1.36
    );
    println!("{:<22} {:>10.2} {:>10.2}", "SRAM", p.sram_w, 1.24);
    println!("{:<22} {:>10.2} {:>10.2}", "DRAM", p.dram_w, 5.71);
    println!(
        "{:<22} {:>10.2} {:>10.2}",
        "total (+leakage)",
        p.total_w(),
        8.30
    );
    println!(
        "\nDRAM share: measured {:.0}% (paper 69%)",
        100.0 * p.dram_w / p.total_w()
    );
}
