//! Figure 2: end-to-end GPT-2 latency breakdown on GPU/CPU/mobile GPU, and
//! the attention-op breakdown on TITAN Xp.
//!
//! Paper: attention accounts for ~50 % / 61 % / 49 % of end-to-end latency
//! on TITAN Xp / Xeon / Nano; inside GPU attention, data movement (split
//! heads, concat, reshape, transpose) takes ~73 % and matmuls only 27 %.

use spatten_baselines::DeviceModel;
use spatten_bench::print_header;
use spatten_workloads::Benchmark;

fn main() {
    let w = Benchmark::by_id("gpt2-small-wikitext2")
        .expect("registry")
        .workload();

    print_header(
        "Figure 2 (left): end-to-end GPT-2 latency breakdown",
        &format!(
            "{:<16} {:>12} {:>12} {:>14} {:>14}",
            "device", "attention s", "FC s", "attention %", "paper %"
        ),
    );
    let paper_share = [
        ("TITAN Xp", 50.0),
        ("Xeon E5-2640", 61.0),
        ("Jetson Nano", 49.0),
    ];
    for dev in [
        DeviceModel::titan_xp(),
        DeviceModel::xeon(),
        DeviceModel::nano(),
    ] {
        let (attn, fc) = dev.end_to_end_split(&w);
        let share = 100.0 * attn / (attn + fc);
        let paper = paper_share
            .iter()
            .find(|(n, _)| *n == dev.name)
            .map(|(_, p)| *p)
            .unwrap_or(f64::NAN);
        println!(
            "{:<16} {:>12.4} {:>12.4} {:>13.1}% {:>13.1}%",
            dev.name, attn, fc, share, paper
        );
    }

    // Right panel: the attention-op breakdown the paper profiled on TITAN
    // Xp. The data-movement dominance is a *measured property of GPU
    // software stacks*, carried here as the paper's own calibration.
    print_header(
        "Figure 2 (right): TITAN Xp attention-op breakdown (paper profile)",
        &format!("{:<34} {:>8}", "operation", "share"),
    );
    for (op, share) in [
        ("Q × K matmul", 10.6),
        ("Attention Prob × V matmul", 16.4),
        ("Transpose & Softmax", 39.6),
        ("Split heads / concat / reshape", 33.3),
    ] {
        println!("{op:<34} {share:>7.1}%");
    }
    println!("matmuls only: 27.0% — data movement: 73.0%");
}
