//! Figure 14: speedup and energy efficiency of SpAtten over TITAN Xp,
//! Xeon, Jetson Nano and Raspberry Pi on all 30 benchmarks.
//!
//! Paper geomeans: 162× / 347× / 1095× / 5071× speedup and
//! 1193× / 4059× / 406× / 1910× energy savings.

use spatten_baselines::DeviceModel;
use spatten_bench::{fmt_x, geomean, print_header, run_spatten};
use spatten_energy::EnergyModel;
use spatten_workloads::Benchmark;

fn main() {
    let devices = DeviceModel::all();
    let energy_model = EnergyModel::default();

    print_header(
        "Figure 14: SpAtten speedup over baselines (attention layers)",
        &format!(
            "{:<26} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "benchmark", "SpAtten ms", "vs GPU", "vs Xeon", "vs Nano", "vs Pi"
        ),
    );

    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); devices.len()];
    let mut energy_ratios: Vec<Vec<f64>> = vec![Vec::new(); devices.len()];

    for bench in Benchmark::all() {
        let report = run_spatten(&bench);
        let spatten_s = report.seconds();
        let spatten_j =
            report.energy(&energy_model).total_j() + energy_model.params().leakage_w * spatten_s;
        let w = bench.workload();

        let mut row = format!("{:<26} {:>10.3}", bench.id, spatten_s * 1e3);
        for (i, dev) in devices.iter().enumerate() {
            let base = dev.run(&w);
            let speedup = base.latency_s / spatten_s;
            let energy = base.energy_j / spatten_j;
            speedups[i].push(speedup);
            energy_ratios[i].push(energy);
            row += &format!(" {:>10}", fmt_x(speedup));
        }
        println!("{row}");
    }

    println!(
        "\n{:<14} {:>14} {:>20} {:>22}",
        "device", "geomean speedup", "paper speedup", "geomean energy ratio"
    );
    let paper_speedups = [162.0, 347.0, 1095.0, 5071.0];
    let paper_energy = [1193.0, 4059.0, 406.0, 1910.0];
    for (i, dev) in devices.iter().enumerate() {
        println!(
            "{:<14} {:>15} {:>15} {:>15}   (paper energy {:.0}x)",
            dev.name,
            fmt_x(geomean(&speedups[i])),
            fmt_x(paper_speedups[i]),
            fmt_x(geomean(&energy_ratios[i])),
            paper_energy[i],
        );
    }
}
