//! Figure 18: roofline analysis — SpAtten vs TITAN Xp on BERT and GPT-2.
//!
//! Paper: SpAtten achieves 1.61 TFLOPS on BERT (near the 2 TFLOPS compute
//! roof) and 0.43 TFLOPS on GPT-2 (near the 512 GB/s bandwidth roof); the
//! GPU sits at 0.02 / 0.01 TFLOPS, far from its roofs.

use spatten_baselines::DeviceModel;
use spatten_bench::{print_header, run_spatten};
use spatten_core::{roofline::roof_tflops, RooflinePoint, SpAttenConfig};
use spatten_workloads::Benchmark;

fn main() {
    let cfg = SpAttenConfig::default();
    print_header(
        "Figure 18: roofline (SpAtten roofs: 2.048 TFLOPS compute, 512 GB/s bandwidth)",
        &format!(
            "{:<30} {:>12} {:>12} {:>10} {:>12}",
            "point", "OI (FLOP/B)", "achieved TF", "roof TF", "bound"
        ),
    );

    for id in [
        "bert-base-sst-2",
        "bert-base-squad-v1",
        "gpt2-small-wikitext2",
        "gpt2-medium-1bw",
    ] {
        let bench = Benchmark::by_id(id).expect("registry");
        let report = run_spatten(&bench);
        let p = RooflinePoint::from_report(&cfg, &report);
        println!(
            "SpAtten {:<22} {:>12.2} {:>12.3} {:>10.3} {:>12}",
            p.name,
            p.intensity,
            p.achieved_tflops,
            p.roof_tflops,
            if p.is_memory_bound(&cfg) {
                "memory"
            } else {
                "compute"
            }
        );
    }

    // GPU points from the paper's own measurements (Fig. 18): the device
    // model reproduces its effective attention throughputs.
    let gpu = DeviceModel::titan_xp();
    for (name, w, intensity) in [
        (
            "TITAN Xp BERT",
            Benchmark::bert_base_sst2().workload(),
            32.1, // paper's plotted operational intensity for BERT on GPU
        ),
        (
            "TITAN Xp GPT-2",
            Benchmark::gpt2_small_wikitext2().workload(),
            0.5, // generation: ~0.5 ops/byte (paper §I: 0.5 ops/Byte)
        ),
    ] {
        let flops = DeviceModel::attention_flops(&w) as f64;
        let achieved = flops / gpu.attention_latency(&w) / 1e12;
        println!(
            "{:<30} {:>12.2} {:>12.3} {:>10.3} {:>12}",
            name,
            intensity,
            achieved,
            (gpu.peak_flops / 1e12).min(gpu.peak_bandwidth * intensity / 1e12),
            "far below"
        );
    }
    println!(
        "\nroof at OI 0.5: {:.3} TFLOPS; at OI 32: {:.3} TFLOPS",
        roof_tflops(&cfg, 0.5),
        roof_tflops(&cfg, 32.0)
    );
}
