//! Figure 19: design-space exploration.
//!
//! (a) top-k engine parallelism sweep — performance saturates once the
//!     engine matches the Q·K score rate (paper: ~16 comparators).
//! (b) K/V SRAM size sweep — flat beyond 196 KB because the pipeline is
//!     fully pipelined and 196 KB already holds a 1024-token context.

use spatten_bench::print_header;
use spatten_core::{Accelerator, SpAttenConfig};
use spatten_workloads::Benchmark;

fn main() {
    let w = Benchmark::gpt2_small_wikitext2().workload();

    print_header(
        "Figure 19a: top-k engine parallelism sweep (GPT-2-Small, wikitext-2)",
        &format!(
            "{:<14} {:>14} {:>12}",
            "parallelism", "GFLOP/s", "rel. perf"
        ),
    );
    let mut base = None;
    for p in [1usize, 2, 4, 8, 16, 32] {
        let cfg = SpAttenConfig {
            topk_parallelism: p,
            ..SpAttenConfig::default()
        };
        let r = Accelerator::new(cfg).run(&w);
        let gflops = r.flops as f64 / r.seconds() / 1e9;
        let b = *base.get_or_insert(gflops);
        println!("{p:<14} {gflops:>14.0} {:>11.2}x", gflops / b);
    }
    println!("paper: 168 → 299 → 485 → 653 → 776 → 771 GFLOP/s (saturates at 16)");

    print_header(
        "Figure 19b: K/V SRAM size sweep",
        &format!("{:<14} {:>14} {:>12}", "KB", "GFLOP/s", "rel. perf"),
    );
    let mut base = None;
    for kb in [98u64, 196, 392, 784] {
        let cfg = SpAttenConfig {
            kv_sram_bytes: kb * 1024,
            ..SpAttenConfig::default()
        };
        let r = Accelerator::new(cfg).run(&w);
        let gflops = r.flops as f64 / r.seconds() / 1e9;
        let b = *base.get_or_insert(gflops);
        println!("{kb:<14} {gflops:>14.0} {:>11.2}x", gflops / b);
    }
    println!("paper: flat 776 / 785 / 775 GFLOP/s at 196/392/784 KB — bigger buys nothing");
}
