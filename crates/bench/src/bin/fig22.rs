//! Figures 5, 22 & 23: cascade token pruning visualized on sentences.
//!
//! Runs the Fig. 22 sentences through a small model with cascade pruning
//! and prints the progressively shortened sentence per layer plus the
//! cumulative importance scores — content words should outlive fillers.

use spatten_bench::print_header;
use spatten_core::PruningTrace;
use spatten_nn::{Model, ModelConfig, ModelKind};
use spatten_workloads::{ExampleSentence, PruningSpec, Vocabulary};

fn main() {
    let examples = ExampleSentence::fig22();
    let mut vocab = Vocabulary::new();
    // Intern all words first so the model vocabulary covers everything.
    let tokenized: Vec<Vec<usize>> = examples.iter().map(|e| vocab.tokenize(e.text)).collect();

    let cfg = ModelConfig {
        kind: ModelKind::Bert,
        layers: 6,
        heads: 4,
        hidden: 48,
        ffn: 96,
        vocab: vocab.len().max(64),
    };
    let model = Model::new_classifier(cfg, 128, 2, 99);

    for (example, tokens) in examples.iter().zip(&tokenized) {
        print_header(
            &format!("Fig. 22 — {} ({})", example.task, example.outcome),
            "layer | surviving sentence",
        );
        let words: Vec<&str> = example.words();
        let trace = PruningTrace::capture(
            &model,
            tokens,
            PruningSpec::with_keeps(0.45, 1.0),
            Some(&words),
        );
        for layer in 0..trace.survivors_per_layer.len() {
            println!("  L{layer}  | {}", trace.render_layer(layer));
        }

        // Fig. 23-style: top cumulative importance scores.
        let mut ranked: Vec<_> = trace.tokens.iter().collect();
        ranked.sort_by(|a, b| b.importance.partial_cmp(&a.importance).unwrap());
        let top: Vec<String> = ranked
            .iter()
            .take(6)
            .map(|t| {
                format!(
                    "{}({:.1})",
                    t.word.clone().unwrap_or_default(),
                    t.importance
                )
            })
            .collect();
        println!("  most attended: {}", top.join(" "));
    }

    println!("\nNote: the model here is seeded, not pretrained — the mechanism");
    println!("(importance accumulation → cascade survival) is what is demonstrated;");
    println!("with a trained model the survivors align with content words (fig21");
    println!("shows the trained-accuracy counterpart).");
}
