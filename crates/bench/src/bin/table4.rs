//! Table IV: FC vs attention GFLOPs and latency on GPT-2-Medium, GPU vs
//! SpAtten-e2e.
//!
//! Paper: GPU — FC 19.3 GFLOPs (85.6 %) / 388.3 ms (51.4 %), attention
//! 3.3 GFLOPs / 366.7 ms. SpAtten-e2e — FC 19.3 GFLOPs (95.5 %) /
//! 25.75 ms (92.4 %), attention 0.9 GFLOPs / 2.13 ms (7.6 %).

use spatten_baselines::DeviceModel;
use spatten_bench::print_header;
use spatten_core::{SpAttenConfig, SpAttenE2e};
use spatten_workloads::Benchmark;

fn main() {
    // Average over the four GPT-2-Medium benchmarks, as in the paper.
    let benches: Vec<_> = Benchmark::gpt2_suite()
        .into_iter()
        .filter(|b| b.id.contains("medium"))
        .collect();
    let gpu = DeviceModel::titan_xp();
    let e2e = SpAttenE2e::new(SpAttenConfig::default(), 12);

    let mut gpu_attn_s = 0.0;
    let mut gpu_fc_s = 0.0;
    let mut sp_attn_s = 0.0;
    let mut sp_fc_s = 0.0;
    let mut fc_gflops = 0.0;
    let mut attn_dense_gflops = 0.0;
    let mut attn_pruned_gflops = 0.0;
    for b in &benches {
        let w = b.workload();
        let (a, f) = gpu.end_to_end_split(&w);
        gpu_attn_s += a;
        gpu_fc_s += f;
        let r = e2e.run(&w);
        sp_fc_s += r.fc_cycles as f64 / 1e9;
        sp_attn_s += r.attention.total_cycles as f64 / 1e9;
        fc_gflops += r.fc_flops as f64 / 1e9;
        attn_dense_gflops += DeviceModel::attention_flops(&w) as f64 / 1e9;
        attn_pruned_gflops += r.attention.flops as f64 / 1e9;
    }
    let n = benches.len() as f64;
    for v in [
        &mut gpu_attn_s,
        &mut gpu_fc_s,
        &mut sp_attn_s,
        &mut sp_fc_s,
        &mut fc_gflops,
        &mut attn_dense_gflops,
        &mut attn_pruned_gflops,
    ] {
        *v /= n;
    }

    print_header(
        "Table IV: FC & attention FLOPs/latency on GPT-2-Medium (avg of 4 benchmarks)",
        &format!(
            "{:<14} {:>12} {:>12} {:>14} {:>14}",
            "platform", "FC GFLOPs", "Attn GFLOPs", "FC ms (%)", "Attn ms (%)"
        ),
    );
    let pct = |x: f64, y: f64| 100.0 * x / (x + y);
    println!(
        "{:<14} {:>12.1} {:>12.1} {:>8.1} ({:>4.1}%) {:>8.1} ({:>4.1}%)",
        "GPU",
        fc_gflops,
        attn_dense_gflops,
        gpu_fc_s * 1e3,
        pct(gpu_fc_s, gpu_attn_s),
        gpu_attn_s * 1e3,
        pct(gpu_attn_s, gpu_fc_s),
    );
    println!(
        "{:<14} {:>12.1} {:>12.1} {:>8.2} ({:>4.1}%) {:>8.2} ({:>4.1}%)",
        "SpAtten-e2e",
        fc_gflops,
        attn_pruned_gflops,
        sp_fc_s * 1e3,
        pct(sp_fc_s, sp_attn_s),
        sp_attn_s * 1e3,
        pct(sp_attn_s, sp_fc_s),
    );
    println!("\npaper: GPU FC 19.3 (85.6%) / 388.3 ms (51.4%), attn 3.3 / 366.7 ms");
    println!("       SpAtten-e2e FC 19.3 (95.5%) / 25.75 ms (92.4%), attn 0.9 / 2.13 ms (7.6%)");
}
