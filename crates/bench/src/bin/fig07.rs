//! Figure 7: quantization error vs. attention-probability dominance.
//!
//! Sweeps synthetic attention rows from flat to dominated, quantizes the
//! Q/K inputs at 4 bits, and reports the mean probability error per
//! max-probability bucket — the paper's scatter shows error falling as the
//! max probability grows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatten_bench::print_header;
use spatten_quant::qk_softmax_quant_error;

fn main() {
    let d = 64usize;
    let keys_n = 32usize;
    let mut rng = StdRng::seed_from_u64(7);

    // Collect (max_prob, error) samples across dominance levels. Dominance
    // is controlled by *direction* (how aligned one key is with the query),
    // not magnitude — all keys share the same norm, so the quantizer's
    // dynamic range (and hence Δs) stays constant across the sweep, exactly
    // as in the paper where every row shares the tensor's quantizer.
    let mut samples = Vec::new();
    for trial in 0..600 {
        let align = trial as f32 / 600.0; // 0 = flat, 1 = dominated
        let query: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let qnorm = query.iter().map(|v| v * v).sum::<f32>().sqrt();
        let key_norm = 8.0f32;
        let mut keys: Vec<Vec<f32>> = Vec::with_capacity(keys_n);
        for _ in 0..keys_n {
            let noise: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let nnorm = noise.iter().map(|v| v * v).sum::<f32>().sqrt();
            keys.push(noise.iter().map(|v| v / nnorm * key_norm).collect());
        }
        // Mix the first key toward the query direction by `align`.
        let mixed: Vec<f32> = query
            .iter()
            .zip(&keys[0])
            .map(|(q, k)| align * q / qnorm * key_norm + (1.0 - align) * k)
            .collect();
        let mnorm = mixed.iter().map(|v| v * v).sum::<f32>().sqrt();
        keys[0] = mixed.iter().map(|v| v / mnorm * key_norm).collect();
        samples.push(qk_softmax_quant_error(&query, &keys, 4));
    }

    print_header(
        "Figure 7: int4 softmax error vs max attention probability",
        &format!(
            "{:<22} {:>8} {:>16}",
            "max-prob bucket", "rows", "mean |Δprob|"
        ),
    );
    let edges = [0.0f32, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.01];
    let mut last_mean = f32::INFINITY;
    let mut decreasing = true;
    for pair in edges.windows(2) {
        let bucket: Vec<f32> = samples
            .iter()
            .filter(|s| s.max_prob >= pair[0] && s.max_prob < pair[1])
            .map(|s| s.mean_error)
            .collect();
        if bucket.is_empty() {
            continue;
        }
        let mean = bucket.iter().sum::<f32>() / bucket.len() as f32;
        println!(
            "[{:.2}, {:.2})        {:>8} {:>16.5}",
            pair[0],
            pair[1],
            bucket.len(),
            mean
        );
        if mean > last_mean * 1.15 {
            decreasing = false;
        }
        last_mean = mean;
    }
    println!(
        "\ntrend: error {} with dominance (paper: larger max prob => smaller error)",
        if decreasing { "FALLS" } else { "does not fall" }
    );
}
