//! §V-B headline numbers: DRAM access reduction (paper: 10.0×), computation
//! reduction (2.1×), achieved throughput (1.61 TFLOPS on BERT,
//! 0.43 TFLOPS on GPT-2), token+local-V pruning (1.9× overall / 3.8× on
//! GPT-2), head pruning (1.1×), LSB fetch fraction (5.9 %).

use spatten_bench::{geomean, print_header, run_spatten};
use spatten_workloads::{Benchmark, TaskKind};

fn main() {
    print_header(
        "Headline (paper §V-B)",
        &format!(
            "{:<26} {:>9} {:>9} {:>10} {:>9} {:>8}",
            "benchmark", "TFLOPS", "DRAM red", "compute red", "LSB frac", "ms"
        ),
    );

    let mut bert_tflops = Vec::new();
    let mut gpt2_tflops = Vec::new();
    let mut dram_reductions = Vec::new();
    let mut compute_reductions = Vec::new();

    for bench in Benchmark::all() {
        let r = run_spatten(&bench);
        println!(
            "{:<26} {:>9.3} {:>8.1}x {:>9.2}x {:>9.3} {:>8.3}",
            bench.id,
            r.tflops(),
            r.dram_reduction(),
            r.computation_reduction(),
            r.lsb_fraction,
            r.seconds() * 1e3
        );
        if bench.kind == TaskKind::Discriminative {
            bert_tflops.push(r.tflops());
        } else {
            gpt2_tflops.push(r.tflops());
        }
        dram_reductions.push(r.dram_reduction());
        compute_reductions.push(r.computation_reduction());
    }

    println!("\nsummary                          measured    paper");
    println!(
        "BERT TFLOPS (geomean)            {:>8.2}    1.61",
        geomean(&bert_tflops)
    );
    println!(
        "GPT-2 TFLOPS (geomean)           {:>8.2}    0.43",
        geomean(&gpt2_tflops)
    );
    println!(
        "DRAM reduction (geomean)         {:>7.1}x    10.0x",
        geomean(&dram_reductions)
    );
    println!(
        "computation reduction (geomean)  {:>7.1}x    2.1x",
        geomean(&compute_reductions)
    );
}
