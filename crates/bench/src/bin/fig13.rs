//! Figure 13 + Table II: on-chip area and power breakdowns.
//!
//! Area comes from the calibrated synthesis model; power is *measured* by
//! running the full 30-benchmark suite through the simulator, converting
//! event counts to energy, and dividing by runtime.

use spatten_bench::{print_header, run_spatten};
use spatten_energy::{AreaModel, EnergyModel, EventCounts};
use spatten_workloads::Benchmark;

fn main() {
    // --- Area (Fig. 13a). ---
    let area = AreaModel::spatten();
    print_header(
        "Figure 13a: area breakdown (paper total: 18.71 mm², TSMC 40 nm)",
        &format!("{:<16} {:>10} {:>8}", "module", "mm²", "share"),
    );
    for (name, mm2, pct) in &area.report().rows {
        println!("{name:<16} {mm2:>10.3} {pct:>7.1}%");
    }
    println!("total            {:>10.3}", area.total_mm2());

    // --- Power (Fig. 13b / Table II), measured over the whole suite. ---
    let model = EnergyModel::default();
    let mut counts = EventCounts::new();
    let mut cycles = 0u64;
    for bench in Benchmark::all() {
        let r = run_spatten(&bench);
        counts += r.counts;
        cycles += r.total_cycles;
    }
    let power = model.power(&counts, cycles, 1.0);
    print_header(
        "Table II: power breakdown (paper: logic 1.36 W, SRAM 1.24 W, DRAM 5.71 W, total 8.30 W)",
        &format!("{:<22} {:>10} {:>10}", "component", "watts", "paper W"),
    );
    println!(
        "{:<22} {:>10.2} {:>10.2}",
        "computation logic", power.compute_w, 1.36
    );
    println!(
        "{:<22} {:>10.2} {:>10.2}",
        "SRAM + FIFO", power.sram_w, 1.24
    );
    println!("{:<22} {:>10.2} {:>10.2}", "DRAM", power.dram_w, 5.71);
    println!("{:<22} {:>10.2} {:>10}", "leakage", power.leakage_w, "-");
    println!("{:<22} {:>10.2} {:>10.2}", "total", power.total_w(), 8.30);
}
