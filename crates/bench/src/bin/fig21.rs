//! Figure 21: accuracy vs. token/head pruning ratio trade-off curves.
//!
//! Trains a tiny transformer from scratch on the planted-keyword task
//! (the documented substitution for GPT-2/PTB and BERT/CoLA), then sweeps
//! the token and head pruning ratios. Expected shape (paper): flat
//! accuracy up to several-× token pruning — small ratios may even help —
//! then a cliff; head pruning tolerates ~1.2× before degrading.

use spatten_bench::print_header;
use spatten_core::CascadePruner;
use spatten_nn::train::{evaluate, SyntheticTask, Trainer};
use spatten_nn::{Model, ModelConfig, ModelKind, NoPruning};
use spatten_workloads::PruningSpec;

fn main() {
    // Train.
    let cfg = ModelConfig {
        kind: ModelKind::Bert,
        layers: 4,
        heads: 4,
        hidden: 48,
        ffn: 96,
        vocab: 48,
    };
    // Majority-vote task: 4 label-class keywords vs 3 distractors among 17
    // fillers. Keeping fewer than ~7 tokens starts losing votes — the
    // accuracy cliff of Fig. 21 appears around 24/7 ≈ 3.4×.
    let task = SyntheticTask {
        vocab: cfg.vocab,
        n_classes: 2,
        keywords_per_class: 4,
        seq_len: 24,
        keywords_per_example: 4,
        distractors_per_example: 3,
    };
    let mut model = Model::new_classifier(cfg, 64, task.n_classes, 42);
    let train_set = task.sample_many(512, 1001);
    let test_set = task.sample_many(256, 2002);
    let mut trainer = Trainer::new(2e-3);
    println!("training tiny transformer on the planted-keyword task…");
    for epoch in 0..10 {
        let mut last = 0.0;
        for chunk in train_set.chunks(32) {
            last = trainer.train_batch(&mut model, chunk);
        }
        println!("  epoch {epoch}: loss {last:.4}");
    }
    let dense_acc = evaluate(&model, &test_set, || NoPruning);
    println!("dense accuracy: {:.1}%", dense_acc * 100.0);

    // Token-pruning sweep (head pruning off), as in Fig. 21 left.
    print_header(
        "Figure 21 (left): token pruning ratio vs accuracy loss",
        &format!("{:<14} {:>12} {:>14}", "ratio", "accuracy", "loss vs dense"),
    );
    for keep in [1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2, 0.12] {
        let acc = evaluate(&model, &test_set, || {
            PrunerFor::new(PruningSpec::with_keeps(keep, 1.0), cfg)
        });
        println!(
            "{:<13.1}x {:>11.1}% {:>+13.1}%",
            1.0 / keep,
            acc * 100.0,
            (acc - dense_acc) * 100.0
        );
    }
    println!("paper (GPT-2/PTB): flat to ~4x, −1.3% at 4.4x, −40% at 8.3x");

    // Head-pruning sweep (token pruning off), Fig. 21 right.
    print_header(
        "Figure 21 (right): head pruning ratio vs accuracy loss",
        &format!("{:<14} {:>12} {:>14}", "ratio", "accuracy", "loss vs dense"),
    );
    for keep in [1.0, 0.75, 0.5, 0.25] {
        let acc = evaluate(&model, &test_set, || {
            PrunerFor::new(PruningSpec::with_keeps(1.0, keep), cfg)
        });
        println!(
            "{:<13.2}x {:>11.1}% {:>+13.1}%",
            1.0 / keep,
            acc * 100.0,
            (acc - dense_acc) * 100.0
        );
    }
    println!("paper (BERT/CoLA): ~flat to 1.2x, −16% at 2x");
}

/// Helper wrapping a fresh pruner per example.
struct PrunerFor(CascadePruner);

impl PrunerFor {
    fn new(spec: PruningSpec, cfg: ModelConfig) -> Self {
        // Token count is fixed per task; 24 here.
        Self(CascadePruner::new(spec, cfg.layers, 24, cfg.heads))
    }
}

impl spatten_nn::AttentionObserver for PrunerFor {
    fn after_layer(
        &mut self,
        record: &spatten_nn::LayerRecord,
        active: &mut spatten_nn::ActiveSet,
    ) {
        self.0.after_layer(record, active);
    }
}
