//! Table III: SpAtten-1/8 vs A3 vs MNNFast at matched resources
//! (128 multipliers, 64 GB/s, 40 nm, 1 GHz).
//!
//! Paper: MNNFast 120 GOP/s / 120 GOP/J; A3 221 GOP/s / 269 GOP/J
//! (2.08 mm²); SpAtten-1/8 360 GOP/s / 382 GOP/J (1.55 mm²) —
//! 1.6×/3.0× throughput, 1.4×/3.2× energy eff., 2.2× area eff. over
//! A3/MNNFast.

use spatten_baselines::{A3Model, MnnFastModel};
use spatten_bench::{geomean, print_header};
use spatten_core::{Accelerator, SpAttenConfig};
use spatten_energy::{AreaModel, EnergyModel};
use spatten_workloads::Benchmark;

fn main() {
    let spatten = Accelerator::new(SpAttenConfig::eighth());
    let a3 = A3Model::default();
    let mnnfast = MnnFastModel::default();
    let energy_model = EnergyModel::default();

    // Effective GOP/s = dense-equivalent attention ops / latency, geomean
    // over the 22 BERT benchmarks (the set all three support).
    let mut sp_gops = Vec::new();
    let mut a3_gops = Vec::new();
    let mut mn_gops = Vec::new();
    let mut sp_gopj = Vec::new();
    let mut a3_gopj = Vec::new();
    let mut mn_gopj = Vec::new();

    for bench in Benchmark::bert_suite() {
        let w = bench.workload();
        let m = w.model;
        let dense_ops = (m.layers as u64) * m.attention_core_flops(w.seq_len, w.seq_len, m.heads);
        let dense_ops = dense_ops as f64;

        let r = spatten.run(&w);
        let s = r.seconds();
        let e = r.energy(&energy_model).total_j() + 0.1 * s; // small leakage share
        sp_gops.push(dense_ops / s / 1e9);
        sp_gopj.push(dense_ops / e / 1e9);

        let ra = a3.run(&w).expect("A3 supports BERT");
        a3_gops.push(dense_ops / ra.latency_s / 1e9);
        a3_gopj.push(dense_ops / ra.energy_j / 1e9);

        let rm = mnnfast.run(&w).expect("MNNFast supports BERT");
        mn_gops.push(dense_ops / rm.latency_s / 1e9);
        mn_gopj.push(dense_ops / rm.energy_j / 1e9);
    }

    let sp_t = geomean(&sp_gops);
    let a3_t = geomean(&a3_gops);
    let mn_t = geomean(&mn_gops);
    let sp_e = geomean(&sp_gopj);
    let a3_e = geomean(&a3_gopj);
    let mn_e = geomean(&mn_gopj);

    let a3_area = 2.08;
    let sp_area = AreaModel::spatten_eighth().total_mm2();

    print_header(
        "Table III: SpAtten-1/8 vs prior attention accelerators (22 BERT benchmarks)",
        &format!(
            "{:<26} {:>12} {:>12} {:>14}",
            "design", "GOP/s", "GOP/J", "GOP/s/mm²"
        ),
    );
    println!(
        "{:<26} {:>12.0} {:>12.0} {:>14}",
        "MNNFast (paper 120/120)", mn_t, mn_e, "-"
    );
    println!(
        "{:<26} {:>12.0} {:>12.0} {:>14.0}",
        "A3 (paper 221/269/106)",
        a3_t,
        a3_e,
        a3_t / a3_area
    );
    println!(
        "{:<26} {:>12.0} {:>12.0} {:>14.0}",
        "SpAtten-1/8 (paper 360/382/238)",
        sp_t,
        sp_e,
        sp_t / sp_area
    );
    println!(
        "\nSpAtten-1/8 vs A3:      {:.1}x throughput (paper 1.6x), {:.1}x energy eff. (paper 1.4x), {:.1}x area eff. (paper 2.2x)",
        sp_t / a3_t,
        sp_e / a3_e,
        (sp_t / sp_area) / (a3_t / a3_area)
    );
    println!(
        "SpAtten-1/8 vs MNNFast: {:.1}x throughput (paper 3.0x), {:.1}x energy eff. (paper 3.2x)",
        sp_t / mn_t,
        sp_e / mn_e
    );
    println!("\nfeature matrix (paper Table III):");
    for (feature, mnn, a3f, sp) in [
        ("cascade head pruning", "no", "no", "YES"),
        ("cascade token pruning", "no", "no", "YES"),
        ("local value pruning", "yes", "yes", "YES"),
        ("progressive quantization", "no", "no", "YES"),
        ("preprocessing overhead", "no", "YES", "no"),
        ("reduces FFN computation", "no", "no", "YES"),
        ("accelerates GPT-2", "no", "no", "YES"),
    ] {
        println!("  {feature:<26} MNNFast: {mnn:<4} A3: {a3f:<4} SpAtten: {sp}");
    }
}
