//! Figures 16 & 17: co-designing the model architecture for SpAtten-e2e
//! (Hardware-Aware Transformer search).
//!
//! The paper searches (embedding dim, FFN hidden dim, decoder layers) for
//! Pareto-optimal models under SpAtten-e2e latency, finding that — because
//! SpAtten makes attention cheap while FC stays memory-bound — co-designed
//! models shift capacity from FFN to attention: 1.9× faster and 2.8×
//! smaller than vanilla Transformer-Big at matched quality.
//!
//! Quality here is a documented substitution: a saturating BLEU proxy
//! `q = 28.5 − 3.0/√(attn params) − 1.5/√(FFN params)` (millions). The
//! saturation encodes the empirical fact HAT exploits — large vanilla
//! models are overparameterized, so a smaller, attention-rich model can
//! sit within a fraction of a BLEU point — and weights attention capacity
//! above FFN capacity, as HAT's accuracy predictor finds.

use spatten_bench::print_header;
use spatten_core::{SpAttenConfig, SpAttenE2e};
use spatten_nn::{ModelConfig, ModelKind};
use spatten_workloads::{PruningSpec, QuantPolicy, Workload};

#[derive(Clone, Copy)]
struct Candidate {
    embed: usize,
    ffn: usize,
    layers: usize,
}

impl Candidate {
    fn config(&self) -> ModelConfig {
        ModelConfig {
            kind: ModelKind::Gpt2,
            layers: self.layers,
            heads: (self.embed / 64).max(1),
            hidden: self.embed,
            ffn: self.ffn,
            vocab: 32768,
        }
    }

    /// Saturating BLEU proxy (see module docs).
    fn quality(&self) -> f64 {
        let cfg = self.config();
        let attn_m = 4.0 * (cfg.hidden as f64).powi(2) * cfg.layers as f64 / 1e6;
        let ffn_m = 2.0 * cfg.hidden as f64 * cfg.ffn as f64 * cfg.layers as f64 / 1e6;
        28.5 - 3.0 / attn_m.sqrt() - 1.5 / ffn_m.sqrt()
    }

    fn params_m(&self) -> f64 {
        let cfg = self.config();
        cfg.block_fc_params() as f64 * cfg.layers as f64 / 1e6
    }

    fn latency_ms(&self) -> f64 {
        let w = Workload {
            name: "hat-candidate".into(),
            model: self.config(),
            seq_len: 30,
            gen_steps: 30,
            pruning: PruningSpec::with_keeps(0.5, 1.0),
            quant: QuantPolicy::progressive(spatten_quant::BitwidthScheme::Msb8Lsb4),
            seed: 7,
        };
        SpAttenE2e::new(SpAttenConfig::default(), 8)
            .run(&w)
            .seconds()
            * 1e3
    }
}

fn main() {
    // Search space (paper §V-B): embed ∈ {512,640,768}, FFN ∈ {512,1024,
    // 2048,3072}, layers ∈ {1..6}.
    let mut candidates = Vec::new();
    for &embed in &[512usize, 640, 768] {
        for &ffn in &[512usize, 1024, 2048, 3072] {
            for layers in 1..=6usize {
                candidates.push(Candidate { embed, ffn, layers });
            }
        }
    }

    // Vanilla scaling baselines (FFN = 4×embed, as in the original
    // Transformer): Base is 512/2048/6, Big is 1024/4096/6 — Big sits
    // *outside* the co-design search space.
    let vanilla: Vec<Candidate> = vec![
        Candidate {
            embed: 512,
            ffn: 2048,
            layers: 6,
        }, // Transformer-Base
        Candidate {
            embed: 1024,
            ffn: 4096,
            layers: 6,
        }, // Transformer-Big
    ];

    // Pareto frontier of the search space under SpAtten-e2e latency.
    let mut scored: Vec<(Candidate, f64, f64)> = candidates
        .iter()
        .map(|c| (*c, c.latency_ms(), c.quality()))
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut frontier: Vec<(Candidate, f64, f64)> = Vec::new();
    let mut best_q = f64::NEG_INFINITY;
    for (c, lat, q) in scored {
        if q > best_q {
            best_q = q;
            frontier.push((c, lat, q));
        }
    }

    print_header(
        "Figure 16: co-designed Pareto frontier under SpAtten-e2e latency",
        &format!(
            "{:<10} {:>6} {:>6} {:>8} {:>12} {:>10} {:>10}",
            "kind", "embed", "ffn", "layers", "latency ms", "quality", "params M"
        ),
    );
    for (c, lat, q) in frontier.iter().rev().take(7).rev() {
        println!(
            "{:<10} {:>6} {:>6} {:>8} {:>12.2} {:>10.1} {:>10.1}",
            "co-design",
            c.embed,
            c.ffn,
            c.layers,
            lat,
            q,
            c.params_m()
        );
    }
    for v in &vanilla {
        println!(
            "{:<10} {:>6} {:>6} {:>8} {:>12.2} {:>10.1} {:>10.1}",
            "vanilla",
            v.embed,
            v.ffn,
            v.layers,
            v.latency_ms(),
            v.quality(),
            v.params_m()
        );
    }

    // The headline comparison: best co-designed candidate within 0.3 BLEU
    // of the vanilla big model (the paper's Fig. 16 operating points also
    // trade a fraction of a BLEU for the latency win).
    let big = &vanilla[1];
    let big_q = big.quality();
    let best = frontier
        .iter()
        .filter(|(_, _, q)| *q >= big_q - 0.3)
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    if let Some((c, lat, _)) = best {
        println!(
            "\nco-designed @ iso-quality: {:.2} ms vs vanilla-big {:.2} ms → {:.1}x faster (paper: 1.9x)",
            lat,
            big.latency_ms(),
            big.latency_ms() / lat
        );
        println!(
            "model size: {:.1}M vs {:.1}M → {:.1}x smaller (paper: 2.8x)",
            c.params_m(),
            big.params_m(),
            big.params_m() / c.params_m()
        );
    }

    // Fig. 17: FLOP shift between attention and FC.
    print_header(
        "Figure 17: co-designed models trade FC FLOPs for attention FLOPs",
        &format!("{:<22} {:>14} {:>14}", "model", "FC GFLOPs", "Attn GFLOPs"),
    );
    for (label, c) in [
        ("vanilla base", &vanilla[0]),
        (
            "co-designed",
            best.map(|(c, _, _)| c).unwrap_or(&vanilla[0]),
        ),
    ] {
        let cfg = c.config();
        let fc = cfg.block_fc_params() as f64 * cfg.layers as f64 * 2.0 * 30.0 / 1e9;
        let attn = (cfg.layers as u64 * cfg.attention_core_flops(30, 30, cfg.heads)) as f64 / 1e9;
        println!("{label:<22} {fc:>14.2} {attn:>14.3}");
    }
    println!("paper: FC 2.7G → 1.9G while attention 28.9M → 30.5M");
}
