//! Serving-fleet benchmark: schedules a mixed BERT/GPT-2 request trace
//! across a multi-chip SpAtten fleet under every scheduler policy and emits
//! a JSON report with throughput, utilization and tail latency.
//!
//! Protocol:
//!
//! 1. **Capacity probe** — a closed-loop trace (saturating client
//!    population, zero think time) under continuous batching measures the
//!    fleet's sustainable request rate.
//! 2. **Open-loop comparison** — a Poisson trace at `rate_frac` of that
//!    capacity (default 0.95: heavy load, still under the batching
//!    fleet's knee) runs under every scheduling policy (FIFO,
//!    shortest-job-first, continuous batching, decode-prioritized,
//!    KV-aware, SLO-aware). Same trace, same fleet — only the scheduler
//!    differs. For the SLO-centric sweep (per-class deadlines, goodput,
//!    MMPP bursts, planner-placed clusters) see `sched_bench`.
//!
//! The JSON report goes to stdout; a human-readable summary goes to
//! stderr. Usage:
//!
//! ```text
//! serve_bench [--requests N] [--chips N] [--rate-frac F] [--seed S] [--smoke]
//! ```
//!
//! `--smoke` caps the trace at 100 requests and skips the p99 win
//! enforcement (p99 over a tiny sample is a near-max statistic) — a fast
//! CI check that the binary still runs end to end.

use spatten_serve::json::{array, JsonObject};
use spatten_serve::{simulate_fleet, FleetConfig, FleetReport, Policy};
use spatten_workloads::{ArrivalSpec, TraceSpec};

struct Args {
    requests: usize,
    chips: usize,
    rate_frac: f64,
    seed: u64,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 1200,
        chips: 4,
        rate_frac: 0.95,
        seed: 20260726,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests N"),
            "--chips" => args.chips = value().parse().expect("--chips N"),
            "--rate-frac" => args.rate_frac = value().parse().expect("--rate-frac F"),
            "--seed" => args.seed = value().parse().expect("--seed S"),
            "--smoke" => args.smoke = true,
            other => panic!("unknown flag {other} (see serve_bench --help in the doc comment)"),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(100);
    }
    assert!(args.requests >= 1, "need at least one request");
    assert!(args.chips >= 1, "need at least one chip");
    assert!(
        args.rate_frac > 0.0 && args.rate_frac <= 1.5,
        "rate fraction {} out of the sensible (0, 1.5] band",
        args.rate_frac
    );
    args
}

fn report_json(offered_rps: f64, r: &FleetReport) -> String {
    JsonObject::new()
        .f64("offered_rps", offered_rps)
        .raw("report", &r.to_json())
        .build()
}

fn main() {
    let wall = std::time::Instant::now();
    let args = parse_args();

    // --- 1. Capacity probe (closed loop, saturating). ---
    let probe_requests = 256.max(args.chips * 32);
    let probe_trace = TraceSpec::mixed(
        ArrivalSpec::ClosedLoop {
            clients: args.chips * 16,
            think_s: 0.0,
            requests: probe_requests,
        },
        args.seed ^ 0xCAFE,
    )
    .generate();
    let probe = simulate_fleet(
        &FleetConfig::new(args.chips, Policy::ContinuousBatching),
        &probe_trace,
    );
    let capacity_rps = probe.throughput_rps;
    eprintln!(
        "capacity probe: {} chips sustain {:.0} req/s ({:.0} tokens/s, occupancy {:.2})",
        args.chips,
        capacity_rps,
        probe.tokens_per_sec,
        probe.mean_occupancy()
    );

    // --- 2. Open-loop comparison at equal offered load. ---
    let rate_rps = capacity_rps * args.rate_frac;
    let trace = TraceSpec::mixed(
        ArrivalSpec::OpenPoisson {
            rate_rps,
            requests: args.requests,
        },
        args.seed,
    )
    .generate();
    eprintln!(
        "open loop: {} requests at {:.0} req/s offered ({}% of capacity)",
        args.requests,
        rate_rps,
        (args.rate_frac * 100.0).round()
    );

    let mut reports: Vec<(Policy, FleetReport)> = Vec::new();
    for policy in Policy::ALL {
        let report = simulate_fleet(&FleetConfig::new(args.chips, policy), &trace);
        assert_eq!(
            report.completed,
            args.requests,
            "{}: lost requests",
            policy.name()
        );
        eprintln!(
            "{:<20} p50 {:>9.3} ms   p95 {:>9.3} ms   p99 {:>9.3} ms   thru {:>7.0} req/s   util {:>5.1}%",
            policy.name(),
            report.latency.p50 * 1e3,
            report.latency.p95 * 1e3,
            report.latency.p99 * 1e3,
            report.throughput_rps,
            report.utilization * 100.0
        );
        reports.push((policy, report));
    }

    let p99 = |p: Policy| {
        reports
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, r)| r.latency.p99)
            .expect("policy simulated")
    };
    let fifo_p99 = p99(Policy::Fifo);
    let cb_p99 = p99(Policy::ContinuousBatching);
    eprintln!(
        "continuous batching p99 is {:.2}x better than FIFO at equal offered load",
        fifo_p99 / cb_p99
    );

    // Simulated-event throughput across the probe and every policy run:
    // the groundwork metric for the perf trajectory (each per-policy
    // report also carries its own `sim_events`).
    let sim_events_total: u64 =
        probe.sim_events + reports.iter().map(|(_, r)| r.sim_events).sum::<u64>();
    let wall_s = wall.elapsed().as_secs_f64();
    let json = JsonObject::new()
        .str("benchmark", "spatten-serve fleet comparison")
        .str("paper", "SpAtten (HPCA 2021) — serving-layer extension")
        .u64("requests", args.requests as u64)
        .u64("chips", args.chips as u64)
        .u64("seed", args.seed)
        .u64("sim_events", sim_events_total)
        .f64("wall_s", wall_s)
        .f64(
            "sim_events_per_sec",
            sim_events_total as f64 / wall_s.max(f64::MIN_POSITIVE),
        )
        .f64("capacity_probe_rps", capacity_rps)
        .f64("capacity_probe_tokens_per_sec", probe.tokens_per_sec)
        .f64("offered_rps", rate_rps)
        .f64("rate_frac", args.rate_frac)
        .f64("fifo_p99_s", fifo_p99)
        .f64("continuous_batching_p99_s", cb_p99)
        .f64("p99_speedup_cb_over_fifo", fifo_p99 / cb_p99)
        .raw(
            "policies",
            &array(reports.iter().map(|(_, r)| report_json(rate_rps, r))),
        )
        .build();
    println!("{json}");

    // Enforced after the report so a regression still leaves the JSON on
    // stdout for inspection. At the default scale (4 chips, ≥ 1000
    // requests) this invariant holds with a 2–4× margin; tiny fleets or
    // tiny traces make p99 a near-max statistic and may trip it — which
    // is why `--smoke` runs skip it.
    if !args.smoke && cb_p99 >= fifo_p99 {
        eprintln!(
            "error: continuous batching must beat FIFO on p99 at equal offered load \
             (cb {cb_p99}s vs fifo {fifo_p99}s)"
        );
        std::process::exit(1);
    }
}
