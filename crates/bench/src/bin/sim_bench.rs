//! Raw simulator-throughput benchmark: how many discrete events per
//! second does the serving core sustain on large traces?
//!
//! Every other serving bench (`sched_bench`, `serve_bench`) measures
//! *policy quality* — tail latency, goodput, handoff bytes — on ~1k
//! request traces. This bench measures the *simulator itself*: wall-clock
//! throughput in simulated events per second, on 10k/100k/1M-request
//! traces, across three representative fleet shapes:
//!
//! * **colo** — 4 full chips, continuous batching, contiguous KV, the
//!   mixed BERT + GPT-2 trace. The cheapest per-event path (no pager, no
//!   pools): an upper bound on raw event-loop speed.
//! * **paged** — 2 full chips, batch-slot cap lifted, paged KV with
//!   copy-on-write prefix sharing, the chat mix. Exercises the pager on
//!   every admission, round and completion.
//! * **disagg** — 4 full chips split 2 prefill + 2 decode, paged KV,
//!   pool-aware routing, the long-prefill/short-decode chat mix.
//!   Exercises routing snapshots, graduate migration and the priced
//!   handoff path.
//!
//! Each (config, size) cell reports `sim_events`, simulation wall time
//! (trace generation is timed separately and excluded) and the derived
//! `sim_events_per_sec` — the figure of merit `BENCH_sim.json` tracks
//! across revisions, RZBENCH-style: the checked-in baseline is the first
//! point of the trajectory, and the enforced floor keeps future PRs from
//! silently regressing it.
//!
//! After the grid, the largest disagg cell is re-run under
//! [`SimMode::ParallelRounds`] and the two [`FleetReport`]s compared with
//! `assert_eq!` — the parallel mode's bit-identical-or-bust contract is
//! enforced on every bench run, and the serial/parallel wall-clock ratio
//! is recorded.
//!
//! Usage:
//!
//! ```text
//! sim_bench [--smoke] [--max-requests N] [--seed S] [--out FILE]
//!           [--shapes A,B] [--replay FILE]
//! ```
//!
//! `--smoke` caps every cell at 2k requests and relaxes the floor —
//! shared CI runners are noisy — while still enforcing that the
//! simulator clears a conservative events/sec bar. `--out FILE` writes
//! the JSON report to FILE as well as stdout. `--replay FILE` replays a
//! recorded `arrival_ns,class,prefill_tokens,decode_tokens` CSV log
//! (see [`TraceSpec::replay`]) through each selected shape instead of
//! generating Poisson traces; floors are not enforced on replays, whose
//! offered load is whatever the log says it was.

use spatten_core::SpAttenConfig;
use spatten_serve::json::{array, JsonObject};
use spatten_serve::{
    simulate_fleet, FleetConfig, FleetReport, KvSpec, Policy, PoolSpec, RouteSpec, SimMode,
};
use spatten_workloads::{ArrivalSpec, Trace, TraceSpec};

/// Aggregate events/sec the pre-optimization revision sustained on the
/// 10k/100k cells of this grid (the first point of the
/// `BENCH_sim.json` trajectory, measured on the reference builder; the
/// 1M cells were impractical to run at that revision, which is rather
/// the point).
const BASELINE_EPS: f64 = 574_312.0;
/// Full runs must beat the baseline by this factor.
const FULL_FLOOR_X: f64 = 3.0;
/// Smoke runs (2k-request cells on noisy shared CI runners, where
/// fixed costs dominate) must clear this absolute events/sec bar.
const SMOKE_FLOOR_EPS: f64 = 100_000.0;

struct Args {
    smoke: bool,
    max_requests: usize,
    seed: u64,
    out: Option<String>,
    /// Shape-name filter (`--shapes colo,disagg`); empty runs all.
    shapes: Vec<String>,
    /// Replay CSV path; `Some` switches the grid to replay mode.
    replay: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        max_requests: usize::MAX,
        seed: 20260808,
        out: None,
        shapes: Vec::new(),
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--max-requests" => args.max_requests = value().parse().expect("--max-requests N"),
            "--seed" => args.seed = value().parse().expect("--seed S"),
            "--out" => args.out = Some(value()),
            "--shapes" => args.shapes = value().split(',').map(str::to_string).collect(),
            "--replay" => args.replay = Some(value()),
            other => panic!("unknown flag {other} (see sim_bench doc comment)"),
        }
    }
    if args.smoke {
        args.max_requests = args.max_requests.min(2_000);
    }
    args
}

/// One fleet shape under test.
struct Shape {
    name: &'static str,
    cfg: FleetConfig,
    /// Builds the request mix for this shape.
    spec: fn(ArrivalSpec, u64) -> TraceSpec,
}

fn shapes() -> Vec<Shape> {
    let colo = FleetConfig::with_chips(
        vec![SpAttenConfig::default(); 4],
        Policy::ContinuousBatching,
    );
    let mut paged = FleetConfig::with_chips(
        vec![SpAttenConfig::default(); 2],
        Policy::ContinuousBatching,
    );
    paged.max_batch = 64;
    paged.sched.kv = KvSpec::paged();
    let mut disagg = FleetConfig::with_chips(
        vec![SpAttenConfig::default(); 4],
        Policy::ContinuousBatching,
    );
    disagg.max_batch = 64;
    disagg.sched.kv = KvSpec::paged();
    disagg.sched.route = RouteSpec::PoolAware;
    disagg.pools = Some(PoolSpec::split(2, 2));
    vec![
        Shape {
            name: "colo",
            cfg: colo,
            spec: TraceSpec::mixed,
        },
        Shape {
            name: "paged",
            cfg: paged,
            spec: TraceSpec::chat,
        },
        Shape {
            name: "disagg",
            cfg: disagg,
            spec: TraceSpec::disagg_chat,
        },
    ]
}

/// One measured cell of the (shape × size) grid.
struct Cell {
    shape: &'static str,
    requests: usize,
    offered_rps: f64,
    seed: u64,
    gen_wall_s: f64,
    sim_wall_s: f64,
    report: FleetReport,
}

impl Cell {
    fn events_per_sec(&self) -> f64 {
        self.report.sim_events as f64 / self.sim_wall_s.max(f64::MIN_POSITIVE)
    }

    fn json(&self) -> String {
        JsonObject::new()
            .str("config", self.shape)
            .u64("requests", self.requests as u64)
            .f64("offered_rps", self.offered_rps)
            .u64("seed", self.seed)
            .u64("sim_events", self.report.sim_events)
            .f64("gen_wall_s", self.gen_wall_s)
            .f64("sim_wall_s", self.sim_wall_s)
            .f64("sim_events_per_sec", self.events_per_sec())
            .u64("completed", self.report.completed as u64)
            .u64("rejected", self.report.rejected as u64)
            .build()
    }
}

fn probe_capacity(cfg: &FleetConfig, spec: fn(ArrivalSpec, u64) -> TraceSpec, seed: u64) -> f64 {
    let probe = spec(
        ArrivalSpec::ClosedLoop {
            clients: 64,
            think_s: 0.0,
            requests: 256,
        },
        seed ^ 0xCAFE,
    )
    .generate();
    simulate_fleet(cfg, &probe).throughput_rps
}

fn run_cell(shape: &Shape, requests: usize, rate: f64, seed: u64) -> Cell {
    let gen_t = std::time::Instant::now();
    let trace = (shape.spec)(
        ArrivalSpec::OpenPoisson {
            rate_rps: rate,
            requests,
        },
        seed,
    )
    .generate();
    let gen_wall_s = gen_t.elapsed().as_secs_f64();
    run_trace_cell(shape, &trace, rate, seed, gen_wall_s)
}

fn run_trace_cell(shape: &Shape, trace: &Trace, rate: f64, seed: u64, gen_wall_s: f64) -> Cell {
    let requests = trace.len();
    let sim_t = std::time::Instant::now();
    let report = simulate_fleet(&shape.cfg, trace);
    let sim_wall_s = sim_t.elapsed().as_secs_f64();
    assert_eq!(
        report.completed + report.rejected,
        trace.len(),
        "{}: lost requests",
        shape.name
    );
    let cell = Cell {
        shape: shape.name,
        requests,
        offered_rps: rate,
        seed,
        gen_wall_s,
        sim_wall_s,
        report,
    };
    eprintln!(
        "{:<8} {:>9} req   {:>12} events   sim {:>8.3} s   gen {:>7.3} s   {:>12.0} events/s",
        cell.shape,
        cell.requests,
        cell.report.sim_events,
        cell.sim_wall_s,
        cell.gen_wall_s,
        cell.events_per_sec()
    );
    cell
}

fn main() {
    let wall = std::time::Instant::now();
    let args = parse_args();
    let sizes: Vec<usize> = [10_000usize, 100_000, 1_000_000]
        .into_iter()
        .map(|s| s.min(args.max_requests))
        .collect::<Vec<_>>()
        .into_iter()
        .scan(0usize, |prev, s| {
            // Capping can collapse sizes onto each other; run each once.
            let keep = s != *prev;
            *prev = s;
            Some((keep, s))
        })
        .filter_map(|(keep, s)| keep.then_some(s))
        .collect();

    let replay_csv = args
        .replay
        .as_ref()
        .map(|p| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("--replay {p}: {e}")));
    if let Some(p) = &args.replay {
        eprintln!(
            "sim_bench: replaying {p}, seed {} (grid disabled)",
            args.seed
        );
    } else {
        eprintln!("sim_bench: sizes {sizes:?}, seed {}", args.seed);
    }
    let mut cells: Vec<Cell> = Vec::new();
    let mut parallel: Option<JsonObject> = None;
    for shape in shapes() {
        if !args.shapes.is_empty() && !args.shapes.iter().any(|s| s == shape.name) {
            continue;
        }
        if let Some(csv) = &replay_csv {
            // Replay mode: the recorded log through this shape, offered
            // load derived from the log's own span.
            let gen_t = std::time::Instant::now();
            let spec = (shape.spec)(
                ArrivalSpec::OpenPoisson {
                    rate_rps: 1.0,
                    requests: 1,
                },
                args.seed,
            );
            let trace = spec.replay(csv);
            let gen_wall_s = gen_t.elapsed().as_secs_f64();
            let span_s = match &trace {
                Trace::Open { requests } => {
                    requests.last().map_or(0.0, |r| r.arrival_ns as f64 / 1e9)
                }
                Trace::Closed { .. } => unreachable!("replay traces are open-loop"),
            };
            let rate = trace.len() as f64 / span_s.max(f64::MIN_POSITIVE);
            cells.push(run_trace_cell(&shape, &trace, rate, args.seed, gen_wall_s));
            continue;
        }
        // Offered load at 90% of probed capacity: loaded enough that
        // batches stay full (the hot path this bench exists to time),
        // bounded enough that queues do not grow without limit.
        let capacity = probe_capacity(&shape.cfg, shape.spec, args.seed);
        let rate = capacity * 0.9;
        eprintln!(
            "\n{}: capacity probe sustains {capacity:.0} req/s, offering {rate:.0} req/s",
            shape.name
        );
        for &requests in &sizes {
            cells.push(run_cell(&shape, requests, rate, args.seed));
        }
        // Parallel-mode checkpoint on the disagg shape's largest cell:
        // rerun it under ParallelRounds and demand the report match the
        // serial run bit for bit, recording the wall-clock ratio.
        if shape.name == "disagg" {
            let serial = cells.last().expect("disagg cell just ran");
            let trace = (shape.spec)(
                ArrivalSpec::OpenPoisson {
                    rate_rps: rate,
                    requests: serial.requests,
                },
                args.seed,
            )
            .generate();
            let mut cfg = shape.cfg.clone();
            cfg.sched.mode = SimMode::ParallelRounds { threads: 0 };
            let threads = cfg.sched.mode.threads();
            let par_t = std::time::Instant::now();
            let par_report = simulate_fleet(&cfg, &trace);
            let par_wall_s = par_t.elapsed().as_secs_f64();
            assert_eq!(
                par_report, serial.report,
                "ParallelRounds diverged from the serial report"
            );
            let speedup = serial.sim_wall_s / par_wall_s.max(f64::MIN_POSITIVE);
            eprintln!(
                "disagg parallel ({threads} threads): sim {par_wall_s:>8.3} s vs serial \
                 {:.3} s ({speedup:.2}x), report bit-identical",
                serial.sim_wall_s
            );
            parallel = Some(
                JsonObject::new()
                    .str("config", "disagg")
                    .u64("requests", serial.requests as u64)
                    .u64("threads", threads as u64)
                    .f64("serial_sim_wall_s", serial.sim_wall_s)
                    .f64("parallel_sim_wall_s", par_wall_s)
                    .f64("speedup", speedup)
                    .bool("report_identical", true),
            );
        }
    }

    // Fleet-wide figure of merit: total events over total simulation
    // wall — the number the BENCH_sim.json trajectory tracks.
    let total_events: u64 = cells.iter().map(|c| c.report.sim_events).sum();
    let total_sim_wall: f64 = cells.iter().map(|c| c.sim_wall_s).sum();
    let aggregate_eps = total_events as f64 / total_sim_wall.max(f64::MIN_POSITIVE);
    let wall_s = wall.elapsed().as_secs_f64();
    eprintln!(
        "\naggregate: {total_events} events in {total_sim_wall:.3} s of simulation \
         ({aggregate_eps:.0} events/s); whole bench took {wall_s:.1} s"
    );

    let mut json = JsonObject::new()
        .str("benchmark", "spatten-serve raw simulator throughput")
        .u64("seed", args.seed)
        .bool("smoke", args.smoke)
        .bool("replay", args.replay.is_some())
        .f64("baseline_events_per_sec", BASELINE_EPS)
        .u64("sim_events", total_events)
        .f64("wall_s", wall_s)
        .f64("sim_wall_s", total_sim_wall)
        .f64("sim_events_per_sec", aggregate_eps)
        .f64("speedup_vs_baseline", aggregate_eps / BASELINE_EPS)
        .raw("cells", &array(cells.iter().map(Cell::json)));
    if let Some(p) = parallel {
        json = json.raw("parallel", &p.build());
    }
    let json = json.build();
    println!("{json}");

    // The enforced floor: full runs must clear FULL_FLOOR_X over the
    // checked-in baseline, smoke runs a conservative absolute bar.
    // Replays carry whatever load the log recorded, so no floor applies.
    if args.replay.is_none() {
        let floor = if args.smoke {
            SMOKE_FLOOR_EPS
        } else {
            BASELINE_EPS * FULL_FLOOR_X
        };
        assert!(
            aggregate_eps >= floor,
            "simulator throughput regressed: {aggregate_eps:.0} events/s is under the \
             {floor:.0} events/s floor ({}; baseline {BASELINE_EPS:.0} events/s)",
            if args.smoke {
                "smoke bar"
            } else {
                "3x the checked-in baseline"
            }
        );
        eprintln!("floor check: {aggregate_eps:.0} events/s >= {floor:.0} events/s — ok");
    }
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).expect("write --out");
        eprintln!("wrote report to {path}");
    }
}
