//! Criterion microbenchmarks for the top-k engine (paper §IV-B claims:
//! O(n) expected time, 1.4× throughput over a full Batcher sort at n=1024,
//! 3× end-to-end gain over a serial engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatten_arch::{BatcherSorter, TopkEngine};
use std::hint::black_box;

fn inputs(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i * 2654435761) % 10007) as f32).collect()
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_select");
    for n in [64usize, 256, 1024, 4096] {
        let vals = inputs(n);
        group.bench_with_input(BenchmarkId::new("quickselect", n), &vals, |b, vals| {
            let mut eng = TopkEngine::new(16, 1);
            b.iter(|| black_box(eng.select(black_box(vals), vals.len() / 2)));
        });
        group.bench_with_input(BenchmarkId::new("sort_reference", n), &vals, |b, vals| {
            b.iter(|| {
                let mut v = vals.clone();
                v.sort_by(|a, b| b.partial_cmp(a).unwrap());
                v.truncate(vals.len() / 2);
                black_box(v);
            });
        });
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_model_cycles");
    let vals = inputs(1024);
    for p in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("parallelism", p), &p, |b, &p| {
            let mut eng = TopkEngine::new(p, 1);
            b.iter(|| black_box(eng.select(black_box(&vals), 512)));
        });
    }
    group.finish();

    // Print the modelled-cycle comparison the paper makes (§IV-B).
    let mut eng = TopkEngine::new(16, 1);
    let r = eng.select(&vals, 512);
    let sorter = BatcherSorter::new(16);
    println!(
        "modelled cycles @n=1024: quick-select {} vs Batcher full sort {} ({:.2}x)",
        r.cycles,
        sorter.sort_cycles(1024),
        sorter.sort_cycles(1024) as f64 / r.cycles as f64
    );
}

criterion_group!(benches, bench_select, bench_parallelism);
criterion_main!(benches);
