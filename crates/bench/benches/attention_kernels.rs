//! Criterion microbenchmarks for the functional attention substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spatten_nn::{Matrix, MultiHeadAttention};
use spatten_quant::{softmax, BitwidthScheme, KMeansQuantizer, LinearQuantizer, SplitQuantized};
use std::hint::black_box;

fn bench_attention_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("mha_forward");
    for &(len, hidden, heads) in &[(32usize, 64usize, 4usize), (128, 128, 8)] {
        let mut rng = StdRng::seed_from_u64(3);
        let mha = MultiHeadAttention::new_seeded(hidden, heads, &mut rng);
        let x = Matrix::randn(len, hidden, 1.0, &mut rng);
        let ids: Vec<usize> = (0..len).collect();
        let mask = vec![true; heads];
        group.bench_with_input(
            BenchmarkId::new("forward", format!("L{len}_H{hidden}")),
            &x,
            |b, x| {
                b.iter(|| black_box(mha.forward(x, x, &ids, &ids, false, &mask)));
            },
        );
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    for n in [64usize, 1024] {
        let scores: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        group.bench_with_input(BenchmarkId::new("row", n), &scores, |b, s| {
            b.iter(|| black_box(softmax(black_box(s))));
        });
    }
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.11).cos()).collect();
    c.bench_function("split_quantize_4096", |b| {
        b.iter(|| {
            black_box(SplitQuantized::from_f32(
                black_box(&data),
                BitwidthScheme::Msb8Lsb4,
            ))
        });
    });

    // §III-D: linear symmetric is "much faster than K-Means" — measure it.
    let mut group = c.benchmark_group("quantizer_fit_4096");
    group.bench_function("linear_symmetric", |b| {
        b.iter(|| black_box(LinearQuantizer::fit(black_box(&data), 4)));
    });
    group.bench_function("kmeans_16_levels", |b| {
        b.iter(|| black_box(KMeansQuantizer::fit(black_box(&data), 16, 10)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_attention_forward,
    bench_softmax,
    bench_quantization
);
criterion_main!(benches);
