//! Criterion benchmarks for the cycle-level accelerator simulator itself
//! (simulation throughput, not modelled hardware speed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatten_core::{Accelerator, SpAttenConfig};
use spatten_workloads::Benchmark;
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for id in [
        "bert-base-sst-2",
        "bert-base-squad-v1",
        "gpt2-small-wikitext2",
    ] {
        let w = Benchmark::by_id(id).expect("registry").workload();
        group.bench_with_input(BenchmarkId::new("workload", id), &w, |b, w| {
            let accel = Accelerator::new(SpAttenConfig::default());
            b.iter(|| black_box(accel.run(black_box(w))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
