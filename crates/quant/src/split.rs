//! MSB/LSB bit-plane storage for progressive quantization.
//!
//! SpAtten stores the MSBs and LSBs of quantized Q/K/V *contiguously and
//! separately* in DRAM so that each plane can be fetched on its own
//! (§III-D). The accelerator eagerly fetches only the MSB plane; if the
//! softmax output is too flat it fetches the LSB plane and recomputes.
//!
//! The paper evaluates five schemes: 4+4, 6+4, 8+4, 10+4 and 12+4
//! (MSB+LSB bits). Within one task the scheme is fixed; *whether* LSBs are
//! fetched is decided per input on the fly.

use crate::linear::LinearQuantizer;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the paper's MSB+LSB bitwidth settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitwidthScheme {
    /// 4 MSBs + 4 LSBs (8-bit full precision).
    Msb4Lsb4,
    /// 6 MSBs + 4 LSBs (10-bit full precision).
    Msb6Lsb4,
    /// 8 MSBs + 4 LSBs (12-bit full precision).
    Msb8Lsb4,
    /// 10 MSBs + 4 LSBs (14-bit full precision).
    Msb10Lsb4,
    /// 12 MSBs + 4 LSBs (16-bit full precision).
    Msb12Lsb4,
}

impl BitwidthScheme {
    /// All five schemes in increasing MSB width, as swept in the paper.
    pub const ALL: [BitwidthScheme; 5] = [
        BitwidthScheme::Msb4Lsb4,
        BitwidthScheme::Msb6Lsb4,
        BitwidthScheme::Msb8Lsb4,
        BitwidthScheme::Msb10Lsb4,
        BitwidthScheme::Msb12Lsb4,
    ];

    /// Number of bits in the MSB plane.
    pub const fn msb_bits(self) -> u32 {
        match self {
            BitwidthScheme::Msb4Lsb4 => 4,
            BitwidthScheme::Msb6Lsb4 => 6,
            BitwidthScheme::Msb8Lsb4 => 8,
            BitwidthScheme::Msb10Lsb4 => 10,
            BitwidthScheme::Msb12Lsb4 => 12,
        }
    }

    /// Number of bits in the LSB plane (always 4 in the paper).
    pub const fn lsb_bits(self) -> u32 {
        4
    }

    /// Total bits when both planes are fetched.
    pub const fn total_bits(self) -> u32 {
        self.msb_bits() + self.lsb_bits()
    }
}

impl fmt::Display for BitwidthScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.msb_bits(), self.lsb_bits())
    }
}

/// How much DRAM traffic a fetch of `n` elements costs under a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchPlan {
    /// Bits moved when fetching the MSB plane of the tensor.
    pub msb_plane_bits: u64,
    /// Bits moved when (additionally) fetching the LSB plane.
    pub lsb_plane_bits: u64,
}

impl FetchPlan {
    /// Fetch cost for `elements` values under `scheme`.
    pub fn for_elements(elements: u64, scheme: BitwidthScheme) -> Self {
        Self {
            msb_plane_bits: elements * u64::from(scheme.msb_bits()),
            lsb_plane_bits: elements * u64::from(scheme.lsb_bits()),
        }
    }

    /// Total bits if both planes are fetched.
    pub fn full_bits(&self) -> u64 {
        self.msb_plane_bits + self.lsb_plane_bits
    }
}

/// A tensor quantized at full precision and stored as separable MSB/LSB
/// planes.
///
/// # Examples
///
/// ```
/// use spatten_quant::{BitwidthScheme, SplitQuantized};
///
/// let data = [0.9f32, -0.4, 0.1, 0.7];
/// let sq = SplitQuantized::from_f32(&data, BitwidthScheme::Msb4Lsb4);
/// let coarse = sq.dequantize_msb_only();
/// let fine = sq.dequantize_full();
/// // full precision is at least as accurate pointwise as MSB-only
/// for ((x, c), f) in data.iter().zip(&coarse).zip(&fine) {
///     assert!((x - f).abs() <= (x - c).abs() + 1e-6);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitQuantized {
    /// Full-precision integer levels (MSB∥LSB concatenated).
    levels: Vec<i64>,
    quantizer: LinearQuantizer,
    scheme: BitwidthScheme,
}

impl SplitQuantized {
    /// Quantizes `data` at the scheme's full precision and splits the levels
    /// into bit planes.
    pub fn from_f32(data: &[f32], scheme: BitwidthScheme) -> Self {
        let quantizer = LinearQuantizer::fit(data, scheme.total_bits());
        let levels = data.iter().map(|&x| quantizer.level(x)).collect();
        Self {
            levels,
            quantizer,
            scheme,
        }
    }

    /// The bitwidth scheme in use.
    pub fn scheme(&self) -> BitwidthScheme {
        self.scheme
    }

    /// The underlying full-precision quantizer.
    pub fn quantizer(&self) -> LinearQuantizer {
        self.quantizer
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The MSB-plane levels: the full level arithmetically shifted right by
    /// the LSB width (two's-complement truncation, exactly what dropping the
    /// LSB plane in memory produces).
    pub fn msb_levels(&self) -> Vec<i64> {
        let shift = self.scheme.lsb_bits();
        self.levels.iter().map(|&l| l >> shift).collect()
    }

    /// Reconstruction using only the MSB plane (LSBs read as zero).
    pub fn dequantize_msb_only(&self) -> Vec<f32> {
        let shift = self.scheme.lsb_bits();
        self.levels
            .iter()
            .map(|&l| self.quantizer.value((l >> shift) << shift))
            .collect()
    }

    /// Reconstruction using both planes (full precision).
    pub fn dequantize_full(&self) -> Vec<f32> {
        self.levels
            .iter()
            .map(|&l| self.quantizer.value(l))
            .collect()
    }

    /// The DRAM fetch plan for this tensor.
    pub fn fetch_plan(&self) -> FetchPlan {
        FetchPlan::for_elements(self.levels.len() as u64, self.scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_bit_accounting() {
        assert_eq!(BitwidthScheme::Msb4Lsb4.total_bits(), 8);
        assert_eq!(BitwidthScheme::Msb12Lsb4.total_bits(), 16);
        assert_eq!(BitwidthScheme::Msb8Lsb4.to_string(), "8+4");
    }

    #[test]
    fn fetch_plan_counts_planes_separately() {
        let plan = FetchPlan::for_elements(100, BitwidthScheme::Msb6Lsb4);
        assert_eq!(plan.msb_plane_bits, 600);
        assert_eq!(plan.lsb_plane_bits, 400);
        assert_eq!(plan.full_bits(), 1000);
    }

    #[test]
    fn msb_only_matches_truncation_semantics() {
        let data = [0.81f32, -0.33, 0.02, -0.96, 0.5];
        let sq = SplitQuantized::from_f32(&data, BitwidthScheme::Msb4Lsb4);
        let shift = sq.scheme().lsb_bits();
        for (&level, &msb) in sq.levels.iter().zip(&sq.msb_levels()) {
            assert_eq!(msb, level >> shift);
        }
    }

    #[test]
    fn full_reconstruction_is_monotonically_better_on_average() {
        let data: Vec<f32> = (0..512).map(|i| ((i as f32) * 0.171).sin()).collect();
        let sq = SplitQuantized::from_f32(&data, BitwidthScheme::Msb4Lsb4);
        let err = |recon: &[f32]| -> f32 {
            data.iter()
                .zip(recon)
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / data.len() as f32
        };
        assert!(err(&sq.dequantize_full()) < err(&sq.dequantize_msb_only()));
    }

    #[test]
    fn wider_msb_planes_reduce_msb_only_error() {
        let data: Vec<f32> = (0..512).map(|i| ((i as f32) * 0.37).cos()).collect();
        let mean_err = |scheme| {
            let sq = SplitQuantized::from_f32(&data, scheme);
            let recon = sq.dequantize_msb_only();
            data.iter()
                .zip(&recon)
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / data.len() as f32
        };
        assert!(mean_err(BitwidthScheme::Msb4Lsb4) > mean_err(BitwidthScheme::Msb8Lsb4));
        assert!(mean_err(BitwidthScheme::Msb8Lsb4) > mean_err(BitwidthScheme::Msb12Lsb4));
    }

    #[test]
    fn negative_values_truncate_toward_negative_infinity() {
        // Arithmetic shift on two's complement floors; confirm reconstruction
        // never overshoots the true value from above for negatives.
        let data = [-0.51f32, -0.13, -0.99];
        let sq = SplitQuantized::from_f32(&data, BitwidthScheme::Msb4Lsb4);
        for (truncated, full) in sq.dequantize_msb_only().iter().zip(sq.dequantize_full()) {
            assert!(*truncated <= full + 1e-6);
        }
    }
}
