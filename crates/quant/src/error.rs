//! Empirical quantization-error metrics on softmax outputs.
//!
//! These helpers drive the Fig. 7 reproduction: sample attention-score rows,
//! quantize the underlying Q/K inputs at a given bitwidth, and relate the
//! resulting *mean attention-probability error* to the *maximum attention
//! probability* of the row. The paper observes that rows with a dominant
//! probability are robust to 4-bit inputs while flat rows are not.

use crate::linear::LinearQuantizer;
use crate::softmax;
use serde::{Deserialize, Serialize};

/// Mean absolute elementwise difference between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_abs_error(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty slices have no mean error");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32
}

/// Maximum absolute elementwise difference between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_error(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// One observation for the Fig. 7 scatter: a row's dominance vs. its
/// quantization-induced probability error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxErrorSample {
    /// Maximum probability of the float32 reference distribution.
    pub max_prob: f32,
    /// Mean |p_float − p_quant| over the row.
    pub mean_error: f32,
}

/// Quantizes a row of attention scores at `bits` (scale fitted to this row)
/// and measures the softmax output error against the float32 reference.
pub fn softmax_quant_error(scores: &[f32], bits: u32) -> SoftmaxErrorSample {
    softmax_quant_error_with(scores, &LinearQuantizer::fit(scores, bits))
}

/// Like [`softmax_quant_error`] but with a caller-provided quantizer, so that
/// different rows can share one scale (as Q/K tensors do on the hardware).
pub fn softmax_quant_error_with(scores: &[f32], q: &LinearQuantizer) -> SoftmaxErrorSample {
    let reference = softmax(scores);
    let quantized: Vec<f32> = q.quantize(scores).dequantize();
    let perturbed = softmax(&quantized);
    let max_prob = reference.iter().copied().fold(0.0f32, f32::max);
    SoftmaxErrorSample {
        max_prob,
        mean_error: mean_abs_error(&reference, &perturbed),
    }
}

/// The full Fig. 7 experiment for one query row: quantize the *inputs*
/// (query and keys) at `bits`, recompute the attention scores
/// `q·kᵢ/√D` in quantized arithmetic, and compare the softmax outputs.
///
/// # Panics
///
/// Panics if `keys` is empty or any key's length differs from the query's.
pub fn qk_softmax_quant_error(query: &[f32], keys: &[Vec<f32>], bits: u32) -> SoftmaxErrorSample {
    assert!(!keys.is_empty(), "need at least one key");
    let d = query.len();
    assert!(keys.iter().all(|k| k.len() == d), "key dimension mismatch");
    let inv_sqrt_d = 1.0 / (d as f32).sqrt();

    let score = |q: &[f32], k: &[f32]| -> f32 {
        q.iter().zip(k).map(|(a, b)| a * b).sum::<f32>() * inv_sqrt_d
    };

    let exact: Vec<f32> = keys.iter().map(|k| score(query, k)).collect();

    // One shared quantizer per tensor, as on the hardware.
    let qq = LinearQuantizer::fit(query, bits);
    let flat_keys: Vec<f32> = keys.iter().flatten().copied().collect();
    let kq = LinearQuantizer::fit(&flat_keys, bits);
    let query_q: Vec<f32> = qq.quantize(query).dequantize();
    let approx: Vec<f32> = keys
        .iter()
        .map(|k| score(&query_q, &kq.quantize(k).dequantize()))
        .collect();

    let reference = softmax(&exact);
    let perturbed = softmax(&approx);
    SoftmaxErrorSample {
        max_prob: reference.iter().copied().fold(0.0f32, f32::max),
        mean_error: mean_abs_error(&reference, &perturbed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_max_error_basics() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.5f32, 2.0, 2.0];
        assert!((mean_abs_error(&a, &b) - 0.5).abs() < 1e-6);
        assert!((max_abs_error(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn identical_slices_have_zero_error() {
        let a = [0.25f32; 8];
        assert_eq!(mean_abs_error(&a, &a), 0.0);
        assert_eq!(max_abs_error(&a, &a), 0.0);
    }

    #[test]
    fn dominated_rows_have_smaller_quant_error_int4() {
        // Reproduce the Fig. 7 claim on controlled inputs: with one shared
        // quantizer (same Δs for all rows), a peaked score row loses less
        // probability mass to 4-bit quantization than a near-flat row.
        let peaked: Vec<f32> = (0..32)
            .map(|i| if i == 5 { 6.0 } else { 0.1 * (i as f32 % 3.0) })
            .collect();
        let flat: Vec<f32> = (0..32).map(|i| 0.2 * ((i as f32) * 0.9).sin()).collect();
        let all: Vec<f32> = peaked.iter().chain(&flat).copied().collect();
        let shared = LinearQuantizer::fit(&all, 4);
        let e_peaked = softmax_quant_error_with(&peaked, &shared);
        let e_flat = softmax_quant_error_with(&flat, &shared);
        assert!(e_peaked.max_prob > e_flat.max_prob);
        assert!(
            e_peaked.mean_error < e_flat.mean_error,
            "peaked {:?} flat {:?}",
            e_peaked,
            e_flat
        );
    }

    #[test]
    fn qk_level_experiment_shows_fig7_trend() {
        // Keys aligned with the query produce a dominated distribution;
        // orthogonal-ish keys produce a flat one. The dominated row should
        // tolerate 4-bit inputs better.
        let d = 64usize;
        let query: Vec<f32> = (0..d).map(|i| ((i as f32) * 0.31).sin()).collect();
        let mut aligned: Vec<Vec<f32>> = (0..16)
            .map(|k| {
                (0..d)
                    .map(|i| 0.05 * ((i + k) as f32 * 0.77).cos())
                    .collect()
            })
            .collect();
        // one key strongly aligned with the query → dominant probability
        aligned[3] = query.iter().map(|v| v * 1.2).collect();
        let flat: Vec<Vec<f32>> = (0..16)
            .map(|k| {
                (0..d)
                    .map(|i| 0.3 * ((2 * i + 3 * k) as f32 * 0.53).sin())
                    .collect()
            })
            .collect();
        let e_peaked = qk_softmax_quant_error(&query, &aligned, 4);
        let e_flat = qk_softmax_quant_error(&query, &flat, 4);
        assert!(e_peaked.max_prob > e_flat.max_prob);
        assert!(
            e_peaked.mean_error < e_flat.mean_error,
            "peaked {:?} flat {:?}",
            e_peaked,
            e_flat
        );
    }

    #[test]
    fn more_bits_reduce_quant_error() {
        let scores: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.23).sin() * 1.5).collect();
        let e4 = softmax_quant_error(&scores, 4).mean_error;
        let e8 = softmax_quant_error(&scores, 8).mean_error;
        let e12 = softmax_quant_error(&scores, 12).mean_error;
        assert!(e4 > e8, "e4={e4} e8={e8}");
        assert!(e8 > e12 || e8 < 1e-5, "e8={e8} e12={e12}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mean_abs_error(&[1.0], &[1.0, 2.0]);
    }
}
