//! K-means (Lloyd) quantization — the baseline SpAtten rejects.
//!
//! §III-D: "we conduct linear symmetric quantization, which is much faster
//! than K-Means quantization". This module implements 1-D k-means codebook
//! quantization so that trade-off is measurable in this repository: k-means
//! reaches lower reconstruction error on skewed distributions (tested
//! below) but costs an iterative fit and a codebook lookup per element
//! (benchmarked in `spatten-bench`), while linear symmetric needs one max
//! and a multiply.

use serde::{Deserialize, Serialize};

/// A fitted 1-D k-means codebook.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansQuantizer {
    /// Sorted centroids.
    centroids: Vec<f32>,
}

impl KMeansQuantizer {
    /// Fits `levels` centroids to `data` with at most `iterations` Lloyd
    /// steps, starting from evenly spaced quantiles (deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, `levels` is zero, or any value is NaN.
    pub fn fit(data: &[f32], levels: usize, iterations: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit a codebook to nothing");
        assert!(levels >= 1, "need at least one level");
        assert!(data.iter().all(|v| !v.is_nan()), "NaN in input");

        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));

        // Quantile initialization.
        let mut centroids: Vec<f32> = (0..levels)
            .map(|i| {
                let idx = (i * 2 + 1) * sorted.len() / (2 * levels);
                sorted[idx.min(sorted.len() - 1)]
            })
            .collect();
        centroids.dedup();

        for _ in 0..iterations {
            // Assign by nearest centroid (centroids stay sorted, so the
            // boundaries are midpoints) and recompute means in one sweep.
            let mut sums = vec![0.0f64; centroids.len()];
            let mut counts = vec![0u64; centroids.len()];
            for &v in &sorted {
                let c = nearest(&centroids, v);
                sums[c] += f64::from(v);
                counts[c] += 1;
            }
            let mut moved = 0.0f32;
            for i in 0..centroids.len() {
                if counts[i] > 0 {
                    let next = (sums[i] / counts[i] as f64) as f32;
                    moved += (next - centroids[i]).abs();
                    centroids[i] = next;
                }
            }
            centroids.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            if moved < 1e-7 {
                break;
            }
        }
        Self { centroids }
    }

    /// The codebook.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Codebook index of the nearest centroid.
    pub fn encode(&self, value: f32) -> usize {
        nearest(&self.centroids, value)
    }

    /// Reconstruction of a codebook index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn decode(&self, index: usize) -> f32 {
        self.centroids[index]
    }

    /// Quantize-dequantize a whole tensor.
    pub fn reconstruct(&self, data: &[f32]) -> Vec<f32> {
        data.iter().map(|&v| self.decode(self.encode(v))).collect()
    }

    /// Mean squared reconstruction error on `data`.
    pub fn mse(&self, data: &[f32]) -> f32 {
        assert!(!data.is_empty());
        data.iter()
            .map(|&v| {
                let r = self.decode(self.encode(v));
                (v - r) * (v - r)
            })
            .sum::<f32>()
            / data.len() as f32
    }
}

fn nearest(sorted_centroids: &[f32], value: f32) -> usize {
    match sorted_centroids.binary_search_by(|c| c.partial_cmp(&value).expect("no NaN")) {
        Ok(i) => i,
        Err(0) => 0,
        Err(i) if i == sorted_centroids.len() => i - 1,
        Err(i) => {
            if (value - sorted_centroids[i - 1]).abs() <= (sorted_centroids[i] - value).abs() {
                i - 1
            } else {
                i
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearQuantizer;

    fn skewed_data() -> Vec<f32> {
        // Bimodal: a dense cluster near 0 plus a sparse tail near 10 —
        // exactly where uniform (linear) levels waste codewords.
        let mut v: Vec<f32> = (0..900).map(|i| (i as f32 % 30.0) * 0.01).collect();
        v.extend((0..100).map(|i| 10.0 + (i as f32 % 10.0) * 0.01));
        v
    }

    #[test]
    fn centroids_are_sorted_and_within_range() {
        let data = skewed_data();
        let q = KMeansQuantizer::fit(&data, 16, 25);
        let c = q.centroids();
        assert!(c.windows(2).all(|w| w[0] <= w[1]));
        assert!(c.iter().all(|&x| (0.0..=10.2).contains(&x)));
    }

    #[test]
    fn kmeans_beats_linear_on_skewed_data() {
        let data = skewed_data();
        let km = KMeansQuantizer::fit(&data, 16, 25);
        let lin = LinearQuantizer::fit(&data, 4); // 16 levels
        let lin_mse: f32 = data
            .iter()
            .zip(lin.quantize(&data).dequantize())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / data.len() as f32;
        assert!(
            km.mse(&data) < lin_mse * 0.5,
            "k-means {} vs linear {}",
            km.mse(&data),
            lin_mse
        );
    }

    #[test]
    fn encode_decode_roundtrip_on_centroids() {
        let data = skewed_data();
        let q = KMeansQuantizer::fit(&data, 8, 20);
        for (i, &c) in q.centroids().iter().enumerate() {
            assert_eq!(q.encode(c), i);
            assert_eq!(q.decode(i), c);
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let data = skewed_data();
        let a = KMeansQuantizer::fit(&data, 8, 20);
        let b = KMeansQuantizer::fit(&data, 8, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn single_level_collapses_to_mean_cluster() {
        let q = KMeansQuantizer::fit(&[1.0, 2.0, 3.0], 1, 10);
        assert_eq!(q.centroids().len(), 1);
        assert!((q.decode(0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn more_levels_never_hurt() {
        let data = skewed_data();
        let coarse = KMeansQuantizer::fit(&data, 4, 25).mse(&data);
        let fine = KMeansQuantizer::fit(&data, 32, 25).mse(&data);
        assert!(fine <= coarse);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn empty_input_rejected() {
        let _ = KMeansQuantizer::fit(&[], 4, 5);
    }
}
