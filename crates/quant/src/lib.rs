//! Quantization substrate for the SpAtten reproduction.
//!
//! SpAtten (HPCA 2021, §III-D) quantizes attention inputs (Q, K, V) with
//! *linear symmetric* quantization and stores the quantized values as two
//! separately fetchable bit planes: most-significant bits (MSBs) and
//! least-significant bits (LSBs). The accelerator first fetches only the MSB
//! plane; when the resulting attention-probability distribution is flat
//! (its maximum is below a threshold) the LSB plane is fetched and attention
//! is recomputed — *progressive quantization*, trading compute for DRAM
//! traffic.
//!
//! This crate provides the numeric machinery for that scheme:
//!
//! * [`fixed`] — scaled-integer fixed-point values matching the 12-bit
//!   on-chip datapath.
//! * [`linear`] — per-tensor linear symmetric quantizers.
//! * [`split`] — MSB/LSB bit-plane storage ([`SplitQuantized`]) and the five
//!   bitwidth schemes the paper evaluates (4+4, 6+4, 8+4, 10+4, 12+4).
//! * [`error`] — empirical quantization-error metrics on softmax outputs
//!   (the Fig. 7 experiment).
//! * [`theory`] — the closed-form softmax error analysis of Eq. (1)–(2):
//!   a score perturbation Δs changes the output distribution by at most
//!   `2·p·(1−p)·Δs < Δs/2`.
//! * [`kmeans`] — the K-means codebook quantizer the paper explicitly
//!   rejects on speed grounds, implemented for comparison.

pub mod error;
pub mod fixed;
pub mod kmeans;
pub mod linear;
pub mod split;
pub mod theory;

pub use error::{
    max_abs_error, mean_abs_error, qk_softmax_quant_error, softmax_quant_error,
    softmax_quant_error_with, SoftmaxErrorSample,
};
pub use fixed::Fixed;
pub use kmeans::KMeansQuantizer;
pub use linear::{LinearQuantizer, QuantizedTensor};
pub use split::{BitwidthScheme, FetchPlan, SplitQuantized};
pub use theory::{softmax_error_bound, softmax_jacobian_entry};

/// Numerically stable softmax over a slice, used as the f32 reference
/// implementation throughout the workspace.
///
/// Returns a vector of the same length whose entries are non-negative and sum
/// to 1 (up to rounding). An empty input yields an empty output.
///
/// # Examples
///
/// ```
/// let p = spatten_quant::softmax(&[1.0, 2.0, 3.0]);
/// assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(p[2] > p[1] && p[1] > p[0]);
/// ```
pub fn softmax(scores: &[f32]) -> Vec<f32> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::softmax;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[0.1, -2.0, 3.5, 0.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[11.0, 12.0, 13.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extremes_without_nan() {
        let p = softmax(&[1e30, -1e30, 0.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_input() {
        assert!(softmax(&[]).is_empty());
    }
}
