//! Closed-form softmax quantization-error analysis (paper Eq. (1)–(2)).
//!
//! Quantizing Q and K perturbs each attention *score* by some Δs. The paper
//! shows the induced total variation on the attention *probabilities* is
//!
//! ```text
//! error = |Δs₀·p₀·(1−p₀)| + Σ_{i≠0} |−Δs₀·p₀·p_i| = 2·Δs₀·p₀·(1−p₀) < Δs₀/2
//! ```
//!
//! so the softmax *shrinks* quantization error, and shrinks it most when the
//! distribution is dominated (p₀ near 0 or 1). This is the theoretical basis
//! of progressive quantization: peaked distributions tolerate MSB-only
//! inputs; flat distributions need the LSBs.

/// Entry `∂p_i/∂s_j` of the softmax Jacobian given the output distribution.
///
/// `p[i]·(1 − p[i])` on the diagonal, `−p[i]·p[j]` off it.
///
/// # Panics
///
/// Panics if `i` or `j` are out of bounds.
pub fn softmax_jacobian_entry(probs: &[f32], i: usize, j: usize) -> f32 {
    let pi = probs[i];
    let pj = probs[j];
    if i == j {
        pi * (1.0 - pi)
    } else {
        -pi * pj
    }
}

/// The paper's first-order bound on the total absolute probability error
/// caused by perturbing score `j` by `delta_s`:
/// `2·|Δs|·p_j·(1−p_j)`.
pub fn softmax_error_bound(probs: &[f32], j: usize, delta_s: f32) -> f32 {
    let p = probs[j];
    2.0 * delta_s.abs() * p * (1.0 - p)
}

/// First-order predicted total absolute error summed over all outputs, for a
/// perturbation vector `delta_s` applied to all scores.
pub fn predicted_total_error(probs: &[f32], delta_s: &[f32]) -> f32 {
    assert_eq!(probs.len(), delta_s.len());
    let mut total = 0.0f32;
    for i in 0..probs.len() {
        let mut dp = 0.0f32;
        for (j, &ds) in delta_s.iter().enumerate() {
            dp += softmax_jacobian_entry(probs, i, j) * ds;
        }
        total += dp.abs();
    }
    total
}

/// Measured total absolute probability error between the softmax of `scores`
/// and the softmax of `scores + delta_s`.
pub fn measured_total_error(scores: &[f32], delta_s: &[f32]) -> f32 {
    assert_eq!(scores.len(), delta_s.len());
    let base = crate::softmax(scores);
    let perturbed: Vec<f32> = scores.iter().zip(delta_s).map(|(s, d)| s + d).collect();
    let shifted = crate::softmax(&perturbed);
    base.iter().zip(&shifted).map(|(a, b)| (a - b).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax;

    #[test]
    fn jacobian_rows_sum_to_zero() {
        // Σ_j ∂p_i/∂s_j = 0 because probabilities always sum to 1.
        let probs = softmax(&[0.3, -1.0, 2.0, 0.0]);
        for i in 0..probs.len() {
            let row_sum: f32 = (0..probs.len())
                .map(|j| softmax_jacobian_entry(&probs, i, j))
                .sum();
            assert!(row_sum.abs() < 1e-6, "row {i} sums to {row_sum}");
        }
    }

    #[test]
    fn bound_is_maximal_at_half() {
        let peaked = softmax(&[10.0, 0.0, 0.0]);
        let flat = softmax(&[0.0, 0.0]);
        // flat two-way distribution has p = 0.5 → bound Δs/2 (the maximum)
        let b_flat = softmax_error_bound(&flat, 0, 1.0);
        let b_peak = softmax_error_bound(&peaked, 0, 1.0);
        assert!((b_flat - 0.5).abs() < 1e-6);
        assert!(b_peak < b_flat);
    }

    #[test]
    fn bound_never_exceeds_half_delta() {
        for s in [-3.0f32, -1.0, 0.0, 0.5, 2.0, 8.0] {
            let probs = softmax(&[s, 0.0, 1.0, -1.0]);
            for j in 0..probs.len() {
                assert!(softmax_error_bound(&probs, j, 1.0) <= 0.5 + 1e-6);
            }
        }
    }

    #[test]
    fn first_order_prediction_tracks_measurement_for_small_perturbations() {
        let scores = [0.2f32, 1.1, -0.7, 0.0, 0.4];
        let probs = softmax(&scores);
        let delta = [0.01f32, -0.005, 0.0, 0.008, -0.002];
        let predicted = predicted_total_error(&probs, &delta);
        let measured = measured_total_error(&scores, &delta);
        assert!(
            (predicted - measured).abs() < 0.05 * measured.max(1e-4) + 1e-4,
            "predicted {predicted} vs measured {measured}"
        );
    }

    #[test]
    fn peaked_distributions_suffer_less_measured_error() {
        // The Fig. 7 phenomenon in closed form: the same score perturbation
        // causes less probability movement when one token dominates.
        let delta = [0.3f32, -0.3, 0.3, -0.3];
        let peaked = measured_total_error(&[8.0, 0.0, 0.0, 0.0], &delta);
        let flat = measured_total_error(&[0.0, 0.0, 0.0, 0.0], &delta);
        assert!(peaked < flat, "peaked {peaked} flat {flat}");
    }
}
