//! Linear symmetric quantization.
//!
//! SpAtten uses *linear symmetric* quantization (§III-D: "we conduct linear
//! symmetric quantization, which is much faster than K-Means quantization").
//! A tensor is mapped to signed integer levels `q = round(x / scale)` with
//! `scale = max|x| / (2^(bits−1) − 1)`, so zero maps exactly to zero and no
//! zero-point is needed.

use crate::fixed::saturate_level;
use serde::{Deserialize, Serialize};

/// A per-tensor linear symmetric quantizer.
///
/// # Examples
///
/// ```
/// use spatten_quant::LinearQuantizer;
///
/// let data = [0.5f32, -1.0, 0.25, 0.75];
/// let q = LinearQuantizer::fit(&data, 8);
/// let t = q.quantize(&data);
/// let back = t.dequantize();
/// for (a, b) in data.iter().zip(&back) {
///     assert!((a - b).abs() < 0.01);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearQuantizer {
    scale: f32,
    bits: u32,
}

impl LinearQuantizer {
    /// Builds a quantizer from an explicit scale and bitwidth.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive, or `bits` is outside
    /// `2..=32`.
    pub fn new(scale: f32, bits: u32) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive and finite"
        );
        assert!((2..=32).contains(&bits), "bits must be in 2..=32");
        Self { scale, bits }
    }

    /// Fits a symmetric quantizer to the dynamic range of `data`.
    ///
    /// An all-zero (or empty) tensor yields a unit scale so that
    /// quantization is still well defined.
    pub fn fit(data: &[f32], bits: u32) -> Self {
        let max_abs = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let levels = ((1i64 << (bits - 1)) - 1) as f32;
        let scale = if max_abs > 0.0 { max_abs / levels } else { 1.0 };
        Self::new(scale, bits)
    }

    /// The quantization step size.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Total bitwidth of the integer levels.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantizes a single value to its integer level (saturating).
    pub fn level(&self, x: f32) -> i64 {
        saturate_level((x / self.scale).round() as i64, self.bits)
    }

    /// Reconstructs the real value of an integer level.
    pub fn value(&self, level: i64) -> f32 {
        level as f32 * self.scale
    }

    /// Quantizes a whole tensor.
    pub fn quantize(&self, data: &[f32]) -> QuantizedTensor {
        QuantizedTensor {
            levels: data.iter().map(|&x| self.level(x)).collect(),
            quantizer: *self,
        }
    }

    /// The worst-case absolute rounding error for in-range inputs
    /// (half a step).
    pub fn max_rounding_error(&self) -> f32 {
        self.scale / 2.0
    }
}

/// A tensor stored as integer levels plus its quantizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    levels: Vec<i64>,
    quantizer: LinearQuantizer,
}

impl QuantizedTensor {
    /// The integer levels.
    pub fn levels(&self) -> &[i64] {
        &self.levels
    }

    /// The quantizer that produced this tensor.
    pub fn quantizer(&self) -> LinearQuantizer {
        self.quantizer
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Reconstructs the approximate real values.
    pub fn dequantize(&self) -> Vec<f32> {
        self.levels
            .iter()
            .map(|&l| self.quantizer.value(l))
            .collect()
    }

    /// DRAM footprint in bits at this tensor's bitwidth.
    pub fn storage_bits(&self) -> u64 {
        self.levels.len() as u64 * u64::from(self.quantizer.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_covers_dynamic_range() {
        let data = [3.0f32, -4.0, 1.0];
        let q = LinearQuantizer::fit(&data, 8);
        // max |x| = 4.0 must map to the top level, 127.
        assert_eq!(q.level(4.0), 127);
        assert_eq!(q.level(-4.0), -127);
    }

    #[test]
    fn zero_maps_to_zero_exactly() {
        let q = LinearQuantizer::fit(&[1.0, -2.0], 6);
        assert_eq!(q.level(0.0), 0);
        assert_eq!(q.value(0), 0.0);
    }

    #[test]
    fn all_zero_tensor_is_handled() {
        let q = LinearQuantizer::fit(&[0.0; 4], 8);
        let t = q.quantize(&[0.0; 4]);
        assert_eq!(t.dequantize(), vec![0.0; 4]);
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_step() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin() * 2.5).collect();
        let q = LinearQuantizer::fit(&data, 8);
        let back = q.quantize(&data).dequantize();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= q.max_rounding_error() + 1e-6);
        }
    }

    #[test]
    fn storage_bits_counts_bitwidth() {
        let q = LinearQuantizer::fit(&[1.0; 16], 12);
        let t = q.quantize(&[1.0; 16]);
        assert_eq!(t.storage_bits(), 16 * 12);
    }

    #[test]
    fn coarser_bitwidth_has_larger_error() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.11).cos()).collect();
        let err = |bits| {
            let q = LinearQuantizer::fit(&data, bits);
            let back = q.quantize(&data).dequantize();
            data.iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err(4) > err(8));
        assert!(err(8) > err(12));
    }
}
