//! Scaled-integer fixed-point values.
//!
//! SpAtten's on-chip datapath is 12-bit fixed point (Table I: 512 × 12-bit
//! multipliers); DRAM holds 4/8/12-bit planes that a bitwidth converter
//! widens to the on-chip width. [`Fixed`] models a signed integer with an
//! associated number of fractional bits, wide enough (i64) to hold adder-tree
//! partial sums without overflow.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A signed fixed-point number: `value = raw · 2^(−frac_bits)`.
///
/// `Fixed` is deliberately minimal: the simulator mostly needs conversion to
/// and from `f32`, saturating narrowing to a given bitwidth, and exact
/// integer addition/multiplication as performed by the hardware multiplier
/// array and adder tree.
///
/// # Examples
///
/// ```
/// use spatten_quant::Fixed;
///
/// let a = Fixed::from_f32(1.5, 8);
/// let b = Fixed::from_f32(2.0, 8);
/// let c = a.mul(b); // product has 16 fractional bits
/// assert!((c.to_f32() - 3.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fixed {
    raw: i64,
    frac_bits: u32,
}

impl Fixed {
    /// Creates a fixed-point value directly from a raw integer and fractional
    /// bit count.
    pub const fn from_raw(raw: i64, frac_bits: u32) -> Self {
        Self { raw, frac_bits }
    }

    /// Quantizes an `f32` to fixed point with `frac_bits` fractional bits
    /// (round to nearest).
    pub fn from_f32(value: f32, frac_bits: u32) -> Self {
        let scaled = (value as f64) * f64::from(1u32 << frac_bits.min(31));
        Self {
            raw: scaled.round() as i64,
            frac_bits,
        }
    }

    /// The raw underlying integer.
    pub const fn raw(self) -> i64 {
        self.raw
    }

    /// Number of fractional bits.
    pub const fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Converts back to `f32`.
    pub fn to_f32(self) -> f32 {
        (self.raw as f64 / f64::from(1u32 << self.frac_bits.min(31))) as f32
    }

    /// Exact addition; both operands must share `frac_bits`.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different fractional widths — the hardware
    /// adder tree only ever adds aligned products.
    #[allow(clippy::should_implement_trait)] // explicit hardware semantics
    pub fn add(self, other: Self) -> Self {
        assert_eq!(
            self.frac_bits, other.frac_bits,
            "fixed-point addition requires aligned fractional widths"
        );
        Self {
            raw: self.raw + other.raw,
            frac_bits: self.frac_bits,
        }
    }

    /// Exact multiplication; the product carries the summed fractional width,
    /// as in the hardware multiplier array.
    #[allow(clippy::should_implement_trait)] // explicit hardware semantics
    pub fn mul(self, other: Self) -> Self {
        Self {
            raw: self.raw * other.raw,
            frac_bits: self.frac_bits + other.frac_bits,
        }
    }

    /// Rescales to a new fractional width with round-to-nearest, as the
    /// bitwidth converter does after the multiplier array.
    pub fn rescale(self, frac_bits: u32) -> Self {
        if frac_bits >= self.frac_bits {
            Self {
                raw: self.raw << (frac_bits - self.frac_bits),
                frac_bits,
            }
        } else {
            let shift = self.frac_bits - frac_bits;
            let half = 1i64 << (shift - 1);
            Self {
                raw: (self.raw + half) >> shift,
                frac_bits,
            }
        }
    }

    /// Saturates the raw value into a signed `bits`-wide integer range
    /// `[−2^(bits−1), 2^(bits−1) − 1]`, as the narrowing stage of the
    /// bitwidth converter does.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    pub fn saturate(self, bits: u32) -> Self {
        assert!((1..=32).contains(&bits), "bitwidth must be in 1..=32");
        let max = (1i64 << (bits - 1)) - 1;
        let min = -(1i64 << (bits - 1));
        Self {
            raw: self.raw.clamp(min, max),
            frac_bits: self.frac_bits,
        }
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(q{})", self.to_f32(), self.frac_bits)
    }
}

/// Saturates a raw integer level into the representable range of a signed
/// `bits`-wide integer. Free function used by the quantizers.
pub fn saturate_level(level: i64, bits: u32) -> i64 {
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    level.clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_value_within_lsb() {
        for &v in &[0.0f32, 1.0, -1.0, 0.123, -7.75, 2.625] {
            let fx = Fixed::from_f32(v, 12);
            assert!((fx.to_f32() - v).abs() <= 1.0 / 4096.0, "v = {v}");
        }
    }

    #[test]
    fn mul_widens_fraction() {
        let a = Fixed::from_f32(0.5, 8);
        let b = Fixed::from_f32(0.25, 8);
        let c = a.mul(b);
        assert_eq!(c.frac_bits(), 16);
        assert!((c.to_f32() - 0.125).abs() < 1e-4);
    }

    #[test]
    fn rescale_down_rounds_to_nearest() {
        let fx = Fixed::from_raw(0b1011, 3); // 1.375
        let down = fx.rescale(1); // nearest multiple of 0.5 → 1.5
        assert_eq!(down.raw(), 3);
        assert!((down.to_f32() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn saturate_clamps_to_signed_range() {
        let fx = Fixed::from_raw(300, 0).saturate(8);
        assert_eq!(fx.raw(), 127);
        let fx = Fixed::from_raw(-300, 0).saturate(8);
        assert_eq!(fx.raw(), -128);
    }

    #[test]
    #[should_panic(expected = "aligned fractional widths")]
    fn add_rejects_misaligned_fractions() {
        let _ = Fixed::from_f32(1.0, 4).add(Fixed::from_f32(1.0, 8));
    }

    #[test]
    fn saturate_level_bounds() {
        assert_eq!(saturate_level(1000, 8), 127);
        assert_eq!(saturate_level(-1000, 8), -128);
        assert_eq!(saturate_level(5, 8), 5);
    }
}
