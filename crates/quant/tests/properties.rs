//! Property-based tests for the quantization substrate.

use proptest::prelude::*;
use spatten_quant::{
    max_abs_error, softmax, softmax_error_bound, BitwidthScheme, Fixed, LinearQuantizer,
    SplitQuantized,
};

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1000.0f32..1000.0).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    #[test]
    fn softmax_always_sums_to_one(scores in prop::collection::vec(-30.0f32..30.0, 1..256)) {
        let p = softmax(&scores);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn softmax_preserves_order(scores in prop::collection::vec(-10.0f32..10.0, 2..64)) {
        let p = softmax(&scores);
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] > scores[j] {
                    prop_assert!(p[i] >= p[j] - 1e-6);
                }
            }
        }
    }

    #[test]
    fn quantizer_roundtrip_bounded_by_half_step(
        data in prop::collection::vec(finite_f32(), 1..128),
        bits in 3u32..16,
    ) {
        let q = LinearQuantizer::fit(&data, bits);
        let back = q.quantize(&data).dequantize();
        let half_step = q.max_rounding_error();
        prop_assert!(max_abs_error(&data, &back) <= half_step * (1.0 + 1e-3) + 1e-5);
    }

    #[test]
    fn quantize_is_idempotent(
        data in prop::collection::vec(finite_f32(), 1..64),
        bits in 3u32..14,
    ) {
        // Quantizing already-quantized data with the same quantizer is exact.
        let q = LinearQuantizer::fit(&data, bits);
        let once = q.quantize(&data).dequantize();
        let twice = q.quantize(&once).dequantize();
        prop_assert!(max_abs_error(&once, &twice) < 1e-5);
    }

    #[test]
    fn split_full_recovers_at_least_msb_accuracy(
        data in prop::collection::vec(-4.0f32..4.0, 1..128),
    ) {
        for scheme in BitwidthScheme::ALL {
            let sq = SplitQuantized::from_f32(&data, scheme);
            let full = sq.dequantize_full();
            let msb = sq.dequantize_msb_only();
            let full_err: f32 = data.iter().zip(&full).map(|(a, b)| (a - b).abs()).sum();
            let msb_err: f32 = data.iter().zip(&msb).map(|(a, b)| (a - b).abs()).sum();
            prop_assert!(full_err <= msb_err + 1e-4);
        }
    }

    #[test]
    fn error_bound_below_half_delta(
        scores in prop::collection::vec(-8.0f32..8.0, 2..64),
        j in 0usize..64,
        delta in 0.0f32..2.0,
    ) {
        let j = j % scores.len();
        let p = softmax(&scores);
        // Eq. (2): 2·p·(1−p)·Δs < Δs/2 because p(1−p) ≤ 1/4.
        prop_assert!(softmax_error_bound(&p, j, delta) <= delta * 0.5 + 1e-6);
    }

    #[test]
    fn fixed_add_matches_float(
        a in -100.0f32..100.0,
        b in -100.0f32..100.0,
    ) {
        let fa = Fixed::from_f32(a, 12);
        let fb = Fixed::from_f32(b, 12);
        let sum = fa.add(fb).to_f32();
        prop_assert!((sum - (a + b)).abs() < 2.0 / 4096.0);
    }

    #[test]
    fn fixed_rescale_roundtrip_widening_is_exact(raw in -10_000i64..10_000) {
        let fx = Fixed::from_raw(raw, 4);
        let wide = fx.rescale(12);
        let back = wide.rescale(4);
        prop_assert_eq!(back.raw(), raw);
    }
}
