//! Pruning hooks: how SpAtten's cascade pruning attaches to a forward pass.
//!
//! The accelerator decides *during* inference which tokens and heads survive
//! into the following layers (paper Fig. 4). The model therefore exposes an
//! [`AttentionObserver`] that is called after every layer with that layer's
//! attention probabilities and head magnitudes — exactly the signals
//! Algorithm 2 accumulates — and may deactivate tokens/heads in the shared
//! [`ActiveSet`]. Deactivation is *monotone*: once pruned, a token or head
//! never reappears ("cascade").

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// The surviving token and head sets, shared across layers of one forward
/// pass.
///
/// Token indices refer to *original* sequence positions; the model compacts
/// its working set internally but always reports original ids.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveSet {
    token_active: Vec<bool>,
    head_active: Vec<bool>,
}

impl ActiveSet {
    /// A fresh set with all `tokens` tokens and `heads` heads active.
    pub fn new(tokens: usize, heads: usize) -> Self {
        Self {
            token_active: vec![true; tokens],
            head_active: vec![true; heads],
        }
    }

    /// Number of token slots (active or not).
    pub fn token_capacity(&self) -> usize {
        self.token_active.len()
    }

    /// Number of head slots.
    pub fn head_capacity(&self) -> usize {
        self.head_active.len()
    }

    /// Grows the token set by one (a newly generated token), active.
    pub fn push_token(&mut self) -> usize {
        self.token_active.push(true);
        self.token_active.len() - 1
    }

    /// Whether token `i` is still active.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn is_token_active(&self, i: usize) -> bool {
        self.token_active[i]
    }

    /// Whether head `h` is still active.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of bounds.
    pub fn is_head_active(&self, h: usize) -> bool {
        self.head_active[h]
    }

    /// Deactivates token `i` (idempotent; monotone).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn prune_token(&mut self, i: usize) {
        self.token_active[i] = false;
    }

    /// Deactivates head `h` (idempotent; monotone).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of bounds.
    pub fn prune_head(&mut self, h: usize) {
        self.head_active[h] = false;
    }

    /// Original indices of all active tokens, ascending.
    pub fn active_tokens(&self) -> Vec<usize> {
        self.token_active
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect()
    }

    /// Indices of all active heads, ascending.
    pub fn active_heads(&self) -> Vec<usize> {
        self.head_active
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect()
    }

    /// Count of active tokens.
    pub fn active_token_count(&self) -> usize {
        self.token_active.iter().filter(|&&a| a).count()
    }

    /// Count of active heads.
    pub fn active_head_count(&self) -> usize {
        self.head_active.iter().filter(|&&a| a).count()
    }
}

/// What one attention layer produced, as visible to the pruning engine.
#[derive(Debug, Clone)]
pub struct LayerRecord {
    /// Layer index (0-based).
    pub layer: usize,
    /// Per *active* head: the attention-probability matrix. Rows are the
    /// active queries, columns the active keys.
    pub probs: Vec<Matrix>,
    /// Head index of each entry of `probs`.
    pub head_ids: Vec<usize>,
    /// Original token id of each probability column.
    pub key_token_ids: Vec<usize>,
    /// Original token id of each probability row.
    pub query_token_ids: Vec<usize>,
    /// Per active head: `Σ |E[head]|`, the head-importance statistic of
    /// Algorithm 2 (magnitude of the head's output chunk before the
    /// concatenating FC).
    pub head_abs_sums: Vec<f32>,
}

/// A hook invoked after every attention layer, allowed to prune.
pub trait AttentionObserver {
    /// Inspects the layer's record and may deactivate tokens/heads in
    /// `active`. Deactivations take effect from the *next* layer on.
    fn after_layer(&mut self, record: &LayerRecord, active: &mut ActiveSet);
}

/// The identity observer: no pruning (dense baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPruning;

impl AttentionObserver for NoPruning {
    fn after_layer(&mut self, _record: &LayerRecord, _active: &mut ActiveSet) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_set_is_fully_active() {
        let s = ActiveSet::new(5, 3);
        assert_eq!(s.active_token_count(), 5);
        assert_eq!(s.active_head_count(), 3);
        assert_eq!(s.active_tokens(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pruning_is_monotone_and_idempotent() {
        let mut s = ActiveSet::new(4, 2);
        s.prune_token(2);
        s.prune_token(2);
        s.prune_head(0);
        assert_eq!(s.active_tokens(), vec![0, 1, 3]);
        assert_eq!(s.active_heads(), vec![1]);
        assert!(!s.is_token_active(2));
        assert!(!s.is_head_active(0));
    }

    #[test]
    fn push_token_extends_active() {
        let mut s = ActiveSet::new(2, 1);
        s.prune_token(0);
        let id = s.push_token();
        assert_eq!(id, 2);
        assert_eq!(s.active_tokens(), vec![1, 2]);
    }
}
