//! Multi-head attention (Algorithm 1 of the paper) with probability capture
//! and a KV cache for the generation stage.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// What one multi-head attention invocation produced, before the output FC.
#[derive(Debug, Clone)]
pub struct AttentionRecord {
    /// Per active head: attention probabilities (`l0 × l1`).
    pub probs: Vec<Matrix>,
    /// Head index of each `probs` entry.
    pub head_ids: Vec<usize>,
    /// Per active head: `Σ |E[head]|` over the head's output chunk.
    pub head_abs_sums: Vec<f32>,
}

/// Cached keys/values of one layer during generation, with the original
/// token id of every cached row so cascade pruning can evict rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCache {
    k: Matrix,
    v: Matrix,
    token_ids: Vec<usize>,
}

impl KvCache {
    /// An empty cache for keys/values of width `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            k: Matrix::zeros(0, dim),
            v: Matrix::zeros(0, dim),
            token_ids: Vec::new(),
        }
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        self.token_ids.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.token_ids.is_empty()
    }

    /// Cached keys.
    pub fn keys(&self) -> &Matrix {
        &self.k
    }

    /// Cached values.
    pub fn values(&self) -> &Matrix {
        &self.v
    }

    /// Original token ids of the cached rows.
    pub fn token_ids(&self) -> &[usize] {
        &self.token_ids
    }

    /// Appends one token's key/value rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows' widths disagree with the cache width.
    pub fn append(&mut self, k_row: &[f32], v_row: &[f32], token_id: usize) {
        assert_eq!(k_row.len(), self.k.cols(), "key width mismatch");
        assert_eq!(v_row.len(), self.v.cols(), "value width mismatch");
        self.k = self
            .k
            .vcat(&Matrix::from_vec(1, k_row.len(), k_row.to_vec()));
        self.v = self
            .v
            .vcat(&Matrix::from_vec(1, v_row.len(), v_row.to_vec()));
        self.token_ids.push(token_id);
    }

    /// Evicts every cached row whose token id fails `keep`.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let survivors: Vec<usize> = self
            .token_ids
            .iter()
            .enumerate()
            .filter_map(|(row, &id)| keep(id).then_some(row))
            .collect();
        if survivors.len() == self.token_ids.len() {
            return;
        }
        self.k = self.k.select_rows(&survivors);
        self.v = self.v.select_rows(&survivors);
        self.token_ids = survivors.iter().map(|&r| self.token_ids[r]).collect();
    }
}

/// Multi-head attention weights for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    heads: usize,
}

impl MultiHeadAttention {
    /// Fresh seeded weights (`hidden × hidden` each, scaled init).
    pub fn new_seeded(hidden: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert!(
            hidden.is_multiple_of(heads),
            "hidden must divide evenly into heads"
        );
        let std = 1.0 / (hidden as f32).sqrt();
        Self {
            wq: Matrix::randn(hidden, hidden, std, rng),
            wk: Matrix::randn(hidden, hidden, std, rng),
            wv: Matrix::randn(hidden, hidden, std, rng),
            wo: Matrix::randn(hidden, hidden, std, rng),
            heads,
        }
    }

    /// Builds from explicit weights (used by the trainer).
    pub fn from_weights(wq: Matrix, wk: Matrix, wv: Matrix, wo: Matrix, heads: usize) -> Self {
        assert!(wq.cols().is_multiple_of(heads));
        Self {
            wq,
            wk,
            wv,
            wo,
            heads,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.wq.cols() / self.heads
    }

    /// Accessors for the projection weights (for the trainer).
    pub fn weights(&self) -> (&Matrix, &Matrix, &Matrix, &Matrix) {
        (&self.wq, &self.wk, &self.wv, &self.wo)
    }

    /// Mutable accessors for the projection weights (for the trainer).
    pub fn weights_mut(&mut self) -> (&mut Matrix, &mut Matrix, &mut Matrix, &mut Matrix) {
        (&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo)
    }

    /// Projects `x` to Q, K, V.
    pub fn project(&self, x: &Matrix) -> (Matrix, Matrix, Matrix) {
        (x.matmul(&self.wq), x.matmul(&self.wk), x.matmul(&self.wv))
    }

    /// Batch (summarization-stage) attention.
    ///
    /// `query_ids`/`key_ids` are the original token positions of the rows of
    /// Q and K/V; when `causal` is set, a query may only attend to keys with
    /// `key_id <= query_id` (this is id-based so it stays correct after
    /// cascade pruning compacts the token set). `head_active[h]` disables a
    /// head entirely: its output chunk is zero and no probabilities are
    /// recorded for it.
    ///
    /// Returns the attention output *after* the output projection, plus the
    /// record for the pruning engine.
    ///
    /// # Panics
    ///
    /// Panics if id slices disagree with the matrix shapes or
    /// `head_active.len() != heads`.
    pub fn forward(
        &self,
        x_q: &Matrix,
        x_kv: &Matrix,
        query_ids: &[usize],
        key_ids: &[usize],
        causal: bool,
        head_active: &[bool],
    ) -> (Matrix, AttentionRecord) {
        assert_eq!(query_ids.len(), x_q.rows(), "query id count mismatch");
        assert_eq!(key_ids.len(), x_kv.rows(), "key id count mismatch");
        assert_eq!(head_active.len(), self.heads, "head mask length mismatch");

        let q = x_q.matmul(&self.wq);
        let k = x_kv.matmul(&self.wk);
        let v = x_kv.matmul(&self.wv);
        self.attend(&q, &k, &v, query_ids, key_ids, causal, head_active)
    }

    /// Attention core on already-projected Q/K/V (used by the generation
    /// path, where K/V come from the cache).
    #[allow(clippy::too_many_arguments)] // mirrors the hardware interface
    pub fn attend(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        query_ids: &[usize],
        key_ids: &[usize],
        causal: bool,
        head_active: &[bool],
    ) -> (Matrix, AttentionRecord) {
        let d = self.head_dim();
        let scale = 1.0 / (d as f32).sqrt();
        let l0 = q.rows();
        let hidden = self.wq.cols();

        let mut concat = Matrix::zeros(l0, hidden);
        let mut record = AttentionRecord {
            probs: Vec::new(),
            head_ids: Vec::new(),
            head_abs_sums: Vec::new(),
        };

        for (h, &active) in head_active.iter().enumerate() {
            if !active {
                continue; // pruned head: chunk stays zero, no compute
            }
            let qh = q.slice_cols(h * d, d);
            let kh = k.slice_cols(h * d, d);
            let vh = v.slice_cols(h * d, d);

            let mut scores = qh.matmul_nt(&kh);
            scores.scale_assign(scale);
            if causal {
                for (r, &qid) in query_ids.iter().enumerate() {
                    for (c, &kid) in key_ids.iter().enumerate() {
                        if kid > qid {
                            scores.set(r, c, f32::NEG_INFINITY);
                        }
                    }
                }
            }
            crate::ops::softmax_rows(&mut scores, false, 0);

            let e = scores.matmul(&vh);
            record.head_abs_sums.push(e.abs_sum());
            concat.write_cols(h * d, &e);
            record.probs.push(scores);
            record.head_ids.push(h);
        }

        (concat.matmul(&self.wo), record)
    }

    /// One generation step: a single new token row against the cache.
    ///
    /// Projects the token, appends its K/V to `cache`, attends over the full
    /// cache (all cached ids precede the new token, so no mask is needed),
    /// and returns the output row plus the record.
    pub fn forward_step(
        &self,
        x_row: &Matrix,
        token_id: usize,
        cache: &mut KvCache,
        head_active: &[bool],
    ) -> (Matrix, AttentionRecord) {
        assert_eq!(x_row.rows(), 1, "generation step takes one token row");
        let (q, k, v) = self.project(x_row);
        cache.append(k.row(0), v.row(0), token_id);
        let ids: Vec<usize> = cache.token_ids().to_vec();
        self.attend(
            &q,
            cache.keys(),
            cache.values(),
            &[token_id],
            &ids,
            false,
            head_active,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn ids(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn probabilities_sum_to_one_per_row() {
        let mut r = rng();
        let mha = MultiHeadAttention::new_seeded(16, 4, &mut r);
        let x = Matrix::randn(6, 16, 1.0, &mut r);
        let (_, rec) = mha.forward(&x, &x, &ids(6), &ids(6), false, &[true; 4]);
        assert_eq!(rec.probs.len(), 4);
        for p in &rec.probs {
            for row in 0..p.rows() {
                let s: f32 = p.row(row).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn causal_mask_respects_token_ids_after_compaction() {
        let mut r = rng();
        let mha = MultiHeadAttention::new_seeded(8, 2, &mut r);
        // Token ids 0,2,5 survive pruning; query with id 2 must not attend
        // to key with id 5.
        let x = Matrix::randn(3, 8, 1.0, &mut r);
        let tid = [0usize, 2, 5];
        let (_, rec) = mha.forward(&x, &x, &tid, &tid, true, &[true; 2]);
        for p in &rec.probs {
            assert_eq!(p.get(0, 1), 0.0);
            assert_eq!(p.get(0, 2), 0.0);
            assert_eq!(p.get(1, 2), 0.0);
            assert!(p.get(2, 0) >= 0.0);
        }
    }

    #[test]
    fn pruned_heads_produce_no_record_and_change_output() {
        let mut r = rng();
        let mha = MultiHeadAttention::new_seeded(16, 4, &mut r);
        let x = Matrix::randn(4, 16, 1.0, &mut r);
        let (full, rec_full) = mha.forward(&x, &x, &ids(4), &ids(4), false, &[true; 4]);
        let mask = [true, false, true, false];
        let (half, rec_half) = mha.forward(&x, &x, &ids(4), &ids(4), false, &mask);
        assert_eq!(rec_full.probs.len(), 4);
        assert_eq!(rec_half.probs.len(), 2);
        assert_eq!(rec_half.head_ids, vec![0, 2]);
        assert_ne!(full, half);
    }

    #[test]
    fn generation_steps_match_batch_causal_attention() {
        // Running tokens one by one through the KV cache must equal the
        // batch causal forward pass.
        let mut r = rng();
        let mha = MultiHeadAttention::new_seeded(12, 3, &mut r);
        let x = Matrix::randn(5, 12, 1.0, &mut r);
        let (batch, _) = mha.forward(&x, &x, &ids(5), &ids(5), true, &[true; 3]);

        let mut cache = KvCache::new(12);
        let mut rows = Vec::new();
        for t in 0..5 {
            let xr = Matrix::from_vec(1, 12, x.row(t).to_vec());
            let (out, _) = mha.forward_step(&xr, t, &mut cache, &[true; 3]);
            rows.push(out);
        }
        for (t, row) in rows.iter().enumerate() {
            for c in 0..12 {
                assert!(
                    (batch.get(t, c) - row.get(0, c)).abs() < 1e-4,
                    "mismatch at token {t} col {c}"
                );
            }
        }
    }

    #[test]
    fn cache_retain_evicts_pruned_tokens() {
        let mut cache = KvCache::new(4);
        for t in 0..4 {
            cache.append(&[t as f32; 4], &[t as f32; 4], t);
        }
        cache.retain(|id| id != 1 && id != 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.token_ids(), &[0, 3]);
        assert_eq!(cache.keys().row(1), &[3.0; 4]);
    }

    #[test]
    fn head_abs_sums_track_head_magnitude() {
        let mut r = rng();
        let mha = MultiHeadAttention::new_seeded(8, 2, &mut r);
        let x = Matrix::randn(3, 8, 1.0, &mut r);
        let (_, rec) = mha.forward(&x, &x, &ids(3), &ids(3), false, &[true; 2]);
        assert_eq!(rec.head_abs_sums.len(), 2);
        assert!(rec.head_abs_sums.iter().all(|&s| s > 0.0));
    }
}
