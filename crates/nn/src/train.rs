//! Training a tiny transformer from scratch (manual backprop + Adam).
//!
//! The paper's accuracy results (Fig. 21: accuracy loss vs. token/head
//! pruning ratio) require a model whose attention genuinely concentrates on
//! informative tokens. Pretrained checkpoints are unavailable here, so we
//! *train* one: a synthetic classification task plants a few keyword tokens
//! (whose class determines the label) among many filler tokens — the same
//! redundancy structure the paper exploits in natural language. After
//! training, cascade token pruning should be able to discard most fillers
//! with no accuracy loss, reproducing the shape of Fig. 21.
//!
//! The trainer re-implements the forward pass of [`Model`] with cached
//! intermediates and derives gradients for every parameter (embeddings,
//! positional table, attention projections, FFN, layer norms, classifier).

use crate::config::ModelConfig;
use crate::matrix::Matrix;
use crate::model::Model;
use crate::observer::AttentionObserver;
use crate::ops::{argmax, cross_entropy_with_grad, gelu, gelu_grad};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LN_EPS: f32 = 1e-5;

// ---------------------------------------------------------------------------
// Synthetic task
// ---------------------------------------------------------------------------

/// The planted-keyword classification task.
///
/// Vocabulary layout: ids `0..n_classes*keywords_per_class` are keywords
/// (`id / keywords_per_class` is their class); the rest are fillers. Each
/// example plants `keywords_per_example` keywords of the label class and
/// `distractors_per_example` keywords of one other class — the label is the
/// *majority* keyword class, so a model (or a pruner) that loses keyword
/// tokens loses the vote and the accuracy cliff of Fig. 21 appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticTask {
    /// Total vocabulary size (must exceed the keyword block).
    pub vocab: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Distinct keyword tokens per class.
    pub keywords_per_class: usize,
    /// Sequence length of every example.
    pub seq_len: usize,
    /// Majority-class keywords planted per example.
    pub keywords_per_example: usize,
    /// Opposing-class keywords planted per example (must be fewer).
    pub distractors_per_example: usize,
}

impl SyntheticTask {
    /// The default task used by the Fig. 21 experiments: 2 classes, length
    /// 24, 3 keywords among 21 fillers.
    pub fn default_for(config: &ModelConfig) -> Self {
        Self {
            vocab: config.vocab,
            n_classes: 2,
            keywords_per_class: 4,
            seq_len: 24,
            keywords_per_example: 3,
            distractors_per_example: 0,
        }
    }

    /// First filler token id.
    pub fn filler_start(&self) -> usize {
        self.n_classes * self.keywords_per_class
    }

    /// Whether a token id is a keyword.
    pub fn is_keyword(&self, token: usize) -> bool {
        token < self.filler_start()
    }

    /// Samples one `(tokens, label)` example.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary cannot hold keywords + at least one filler,
    /// or if distractors would outvote the label keywords.
    pub fn sample(&self, rng: &mut StdRng) -> (Vec<usize>, usize) {
        assert!(self.filler_start() < self.vocab, "vocab too small for task");
        assert!(
            self.distractors_per_example < self.keywords_per_example,
            "distractors must stay a minority"
        );
        let label = rng.gen_range(0..self.n_classes);
        let other = (label + 1 + rng.gen_range(0..self.n_classes - 1)) % self.n_classes;
        let mut tokens: Vec<usize> = (0..self.seq_len)
            .map(|_| rng.gen_range(self.filler_start()..self.vocab))
            .collect();
        let mut positions: Vec<usize> = (0..self.seq_len).collect();
        let planted = self.keywords_per_example + self.distractors_per_example;
        for i in 0..planted.min(self.seq_len) {
            let pick = rng.gen_range(i..positions.len());
            positions.swap(i, pick);
            let class = if i < self.keywords_per_example {
                label
            } else {
                other
            };
            let kw = class * self.keywords_per_class + rng.gen_range(0..self.keywords_per_class);
            tokens[positions[i]] = kw;
        }
        (tokens, label)
    }

    /// Samples a whole dataset.
    pub fn sample_many(&self, n: usize, seed: u64) -> Vec<(Vec<usize>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Gradient bookkeeping
// ---------------------------------------------------------------------------

/// Gradients matching [`Model::trainable_params_mut`] order: matrices are
/// `[embed, (per block: wq wk wv wo w1 w2), classifier]`, vectors are
/// `[(per block: b1 b2), classifier_bias]`.
#[derive(Debug, Clone)]
struct Grads {
    mats: Vec<Matrix>,
    vecs: Vec<Vec<f32>>,
}

impl Grads {
    fn zeros_like(model: &mut Model) -> Self {
        let (mats, vecs) = model.trainable_params_mut();
        Self {
            mats: mats
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect(),
            vecs: vecs.iter().map(|v| vec![0.0; v.len()]).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Forward with cached intermediates + backward
// ---------------------------------------------------------------------------

struct LayerNormCache {
    xhat: Matrix,
    inv_std: Vec<f32>,
}

fn layer_norm_cached(x: &Matrix) -> (Matrix, LayerNormCache) {
    let mut xhat = Matrix::zeros(x.rows(), x.cols());
    let mut inv_std = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let row = x.row(r);
        let n = row.len() as f32;
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let istd = 1.0 / (var + LN_EPS).sqrt();
        inv_std.push(istd);
        for (c, &v) in row.iter().enumerate() {
            xhat.set(r, c, (v - mean) * istd);
        }
    }
    (xhat.clone(), LayerNormCache { xhat, inv_std })
}

/// Backward through unit-affine layer norm (γ=1, β=0 are kept frozen in the
/// trainer; they contribute little for tiny models and keep the parameter
/// bookkeeping small).
fn layer_norm_backward(dy: &Matrix, cache: &LayerNormCache) -> Matrix {
    let n = dy.cols() as f32;
    let mut dx = Matrix::zeros(dy.rows(), dy.cols());
    for r in 0..dy.rows() {
        let dyr = dy.row(r);
        let xh = cache.xhat.row(r);
        let mean_dy: f32 = dyr.iter().sum::<f32>() / n;
        let mean_dy_xhat: f32 = dyr.iter().zip(xh).map(|(a, b)| a * b).sum::<f32>() / n;
        let istd = cache.inv_std[r];
        for c in 0..dy.cols() {
            dx.set(r, c, istd * (dyr[c] - mean_dy - xh[c] * mean_dy_xhat));
        }
    }
    dx
}

struct BlockCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    probs: Vec<Matrix>, // per head
    concat: Matrix,
    ln1: LayerNormCache,
    mid: Matrix,
    ffn_pre: Matrix,
    ffn_act: Matrix,
    ln2: LayerNormCache,
}

struct ForwardCache {
    tokens: Vec<usize>,
    x0: Matrix,
    blocks: Vec<BlockCache>,
    pooled: Vec<f32>,
    final_x: Matrix,
}

fn forward_cached(model: &Model, tokens: &[usize]) -> (Vec<f32>, ForwardCache) {
    let cfg = model.config();
    let heads = cfg.heads;
    let d = cfg.head_dim();
    let scale = 1.0 / (d as f32).sqrt();

    let mut x = model.embed_tokens(tokens);
    let x0 = x.clone();
    let mut blocks = Vec::with_capacity(model.blocks().len());

    for block in model.blocks() {
        let (wq, wk, wv, wo) = block.attention().weights();
        let q = x.matmul(wq);
        let k = x.matmul(wk);
        let v = x.matmul(wv);
        let mut concat = Matrix::zeros(x.rows(), cfg.hidden);
        let mut probs = Vec::with_capacity(heads);
        for h in 0..heads {
            let qh = q.slice_cols(h * d, d);
            let kh = k.slice_cols(h * d, d);
            let vh = v.slice_cols(h * d, d);
            let mut s = qh.matmul_nt(&kh);
            s.scale_assign(scale);
            crate::ops::softmax_rows(&mut s, false, 0);
            let e = s.matmul(&vh);
            concat.write_cols(h * d, &e);
            probs.push(s);
        }
        let attn_out = concat.matmul(wo);
        let mut mid_pre = attn_out;
        mid_pre.add_assign(&x);
        let (mid, ln1) = layer_norm_cached(&mid_pre);

        let (w1, b1, w2, b2) = block.ffn_weights_ref();
        let mut ffn_pre = mid.matmul(w1);
        ffn_pre.add_bias_assign(b1);
        let mut ffn_act = ffn_pre.clone();
        for val in ffn_act.data_mut() {
            *val = gelu(*val);
        }
        let mut ffn_out = ffn_act.matmul(w2);
        ffn_out.add_bias_assign(b2);
        ffn_out.add_assign(&mid);
        let (out, ln2) = layer_norm_cached(&ffn_out);

        blocks.push(BlockCache {
            x: x.clone(),
            q,
            k,
            v,
            probs,
            concat,
            ln1,
            mid,
            ffn_pre,
            ffn_act,
            ln2,
        });
        x = out;
    }

    // Mean pool + classifier.
    let mut pooled = vec![0.0f32; cfg.hidden];
    for r in 0..x.rows() {
        for (p, v) in pooled.iter_mut().zip(x.row(r)) {
            *p += v;
        }
    }
    for p in &mut pooled {
        *p /= x.rows() as f32;
    }
    let logits = classifier_logits(model, &pooled);

    (
        logits,
        ForwardCache {
            tokens: tokens.to_vec(),
            x0,
            blocks,
            pooled,
            final_x: x,
        },
    )
}

fn classifier_logits(model: &Model, pooled: &[f32]) -> Vec<f32> {
    let h = Matrix::from_vec(1, pooled.len(), pooled.to_vec());
    let m = model_classifier_ref(model);
    let mut out = h.matmul(m.0);
    out.add_bias_assign(m.1);
    out.row(0).to_vec()
}

fn model_classifier_ref(model: &Model) -> (&Matrix, &Vec<f32>) {
    model
        .classifier_ref()
        .expect("trainer needs a classifier model")
}

/// Softmax-row backward: `ds = p ⊙ (dp − (dp·p))` per row.
fn softmax_backward(dp: &Matrix, p: &Matrix) -> Matrix {
    let mut ds = Matrix::zeros(p.rows(), p.cols());
    for r in 0..p.rows() {
        let dot: f32 = dp.row(r).iter().zip(p.row(r)).map(|(a, b)| a * b).sum();
        for c in 0..p.cols() {
            ds.set(r, c, p.get(r, c) * (dp.get(r, c) - dot));
        }
    }
    ds
}

// ---------------------------------------------------------------------------
// Trainer
// ---------------------------------------------------------------------------

/// Adam optimizer state + training loop for classifier models.
#[derive(Debug)]
pub struct Trainer {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m_mats: Vec<Matrix>,
    v_mats: Vec<Matrix>,
    m_vecs: Vec<Vec<f32>>,
    v_vecs: Vec<Vec<f32>>,
}

impl Trainer {
    /// New Adam trainer with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m_mats: Vec::new(),
            v_mats: Vec::new(),
            m_vecs: Vec::new(),
            v_vecs: Vec::new(),
        }
    }

    /// Runs one minibatch (forward + backward + Adam update) and returns the
    /// mean loss.
    pub fn train_batch(&mut self, model: &mut Model, batch: &[(Vec<usize>, usize)]) -> f32 {
        assert!(!batch.is_empty(), "empty batch");
        let mut total_loss = 0.0f32;

        // Accumulate gradients over the batch.
        let mut grads = Grads::zeros_like(model);
        for (tokens, label) in batch {
            let (logits, cache) = forward_cached(model, tokens);
            let (loss, dlogits) = cross_entropy_with_grad(&logits, *label);
            total_loss += loss;
            backward(model, &cache, &dlogits, &mut grads);
        }
        let scale = 1.0 / batch.len() as f32;
        for g in &mut grads.mats {
            g.scale_assign(scale);
        }
        for g in &mut grads.vecs {
            for v in g {
                *v *= scale;
            }
        }

        // Adam update.
        self.step += 1;
        let (mut mats, mut vecs) = model.trainable_params_mut();
        if self.m_mats.is_empty() {
            self.m_mats = mats
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect();
            self.v_mats = self.m_mats.clone();
            self.m_vecs = vecs.iter().map(|v| vec![0.0; v.len()]).collect();
            self.v_vecs = self.m_vecs.clone();
        }
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for ((p, g), (m, v)) in mats
            .iter_mut()
            .zip(&grads.mats)
            .zip(self.m_mats.iter_mut().zip(self.v_mats.iter_mut()))
        {
            for i in 0..p.data().len() {
                let gi = g.data()[i];
                m.data_mut()[i] = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                v.data_mut()[i] = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                let mhat = m.data()[i] / bc1;
                let vhat = v.data()[i] / bc2;
                p.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
        for ((p, g), (m, v)) in vecs
            .iter_mut()
            .zip(&grads.vecs)
            .zip(self.m_vecs.iter_mut().zip(self.v_vecs.iter_mut()))
        {
            for i in 0..p.len() {
                let gi = g[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * gi;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * gi * gi;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
        total_loss / batch.len() as f32
    }
}

/// Backward pass accumulating into `grads` (must match the parameter
/// order: embedding, then per block [wq wk wv wo w1 w2] mats and [b1 b2]
/// vecs, then classifier mat + bias vec).
fn backward(model: &Model, cache: &ForwardCache, dlogits: &[f32], grads: &mut Grads) {
    let cfg = model.config();
    let heads = cfg.heads;
    let d = cfg.head_dim();
    let scale = 1.0 / (d as f32).sqrt();
    let n_blocks = model.blocks().len();
    let rows = cache.final_x.rows();

    // Gradient index layout.
    let mat_idx_embed = 0usize;
    let mat_idx_block = |b: usize| 1 + b * 6; // wq wk wv wo w1 w2
    let mat_idx_cls = 1 + n_blocks * 6;
    let vec_idx_block = |b: usize| b * 2; // b1 b2
    let vec_idx_cls = n_blocks * 2;

    // Classifier.
    let (cls_w, _cls_b) = model_classifier_ref(model);
    let pooled = Matrix::from_vec(1, cfg.hidden, cache.pooled.clone());
    let dl = Matrix::from_vec(1, dlogits.len(), dlogits.to_vec());
    grads.mats[mat_idx_cls].add_assign(&pooled.matmul_tn(&dl));
    for (g, &dv) in grads.vecs[vec_idx_cls].iter_mut().zip(dlogits) {
        *g += dv;
    }
    let dpooled = dl.matmul_nt(cls_w); // 1 × hidden

    // Mean pool backward: every row receives dpooled / rows.
    let mut dx = Matrix::zeros(rows, cfg.hidden);
    for r in 0..rows {
        for c in 0..cfg.hidden {
            dx.set(r, c, dpooled.get(0, c) / rows as f32);
        }
    }

    // Blocks in reverse.
    for b in (0..n_blocks).rev() {
        let bc = &cache.blocks[b];
        let block = &model.blocks()[b];
        let (wq, wk, wv, wo) = block.attention().weights();
        let (w1, _b1, w2, _b2) = block.ffn_weights_ref();

        // ln2 backward.
        let d_ffn_residual = layer_norm_backward(&dx, &bc.ln2);
        // residual: d_mid gets a copy; FFN path gets the same.
        let mut d_mid = d_ffn_residual.clone();

        // FFN backward: ffn_out = gelu(mid·w1 + b1)·w2 + b2.
        let d_ffn_out = &d_ffn_residual;
        grads.mats[mat_idx_block(b) + 5].add_assign(&bc.ffn_act.matmul_tn(d_ffn_out)); // w2
        for c in 0..cfg.hidden {
            let mut s = 0.0;
            for r in 0..rows {
                s += d_ffn_out.get(r, c);
            }
            grads.vecs[vec_idx_block(b) + 1][c] += s; // b2
        }
        let mut d_act = d_ffn_out.matmul_nt(w2);
        for (i, v) in d_act.data_mut().iter_mut().enumerate() {
            *v *= gelu_grad(bc.ffn_pre.data()[i]);
        }
        grads.mats[mat_idx_block(b) + 4].add_assign(&bc.mid.matmul_tn(&d_act)); // w1
        for c in 0..cfg.ffn {
            let mut s = 0.0;
            for r in 0..rows {
                s += d_act.get(r, c);
            }
            grads.vecs[vec_idx_block(b)][c] += s; // b1
        }
        d_mid.add_assign(&d_act.matmul_nt(w1));

        // ln1 backward.
        let d_attn_residual = layer_norm_backward(&d_mid, &bc.ln1);
        let mut dx_block = d_attn_residual.clone(); // residual into x

        // attn_out = concat · wo.
        grads.mats[mat_idx_block(b) + 3].add_assign(&bc.concat.matmul_tn(&d_attn_residual)); // wo
        let d_concat = d_attn_residual.matmul_nt(wo);

        // Per-head attention backward.
        let mut dq = Matrix::zeros(rows, cfg.hidden);
        let mut dk = Matrix::zeros(rows, cfg.hidden);
        let mut dv = Matrix::zeros(rows, cfg.hidden);
        for h in 0..heads {
            let de = d_concat.slice_cols(h * d, d);
            let p = &bc.probs[h];
            let vh = bc.v.slice_cols(h * d, d);
            let kh = bc.k.slice_cols(h * d, d);
            let qh = bc.q.slice_cols(h * d, d);

            // e = p · vh
            let dp = de.matmul_nt(&vh);
            let dvh = p.matmul_tn(&de);
            let mut ds = softmax_backward(&dp, p);
            ds.scale_assign(scale);
            // s = qh · khᵀ
            let dqh = ds.matmul(&kh);
            let dkh = ds.matmul_tn(&qh);
            dq.write_cols(h * d, &dqh);
            dk.write_cols(h * d, &dkh);
            dv.write_cols(h * d, &dvh);
        }

        // q = x·wq etc.
        grads.mats[mat_idx_block(b)].add_assign(&bc.x.matmul_tn(&dq)); // wq
        grads.mats[mat_idx_block(b) + 1].add_assign(&bc.x.matmul_tn(&dk)); // wk
        grads.mats[mat_idx_block(b) + 2].add_assign(&bc.x.matmul_tn(&dv)); // wv
        dx_block.add_assign(&dq.matmul_nt(wq));
        dx_block.add_assign(&dk.matmul_nt(wk));
        dx_block.add_assign(&dv.matmul_nt(wv));

        dx = dx_block;
    }

    // Embedding rows (token + position share dx; positions are frozen).
    let _ = &cache.x0;
    for (r, &tok) in cache.tokens.iter().enumerate() {
        for c in 0..cfg.hidden {
            let cur = grads.mats[mat_idx_embed].get(tok, c) + dx.get(r, c);
            grads.mats[mat_idx_embed].set(tok, c, cur);
        }
    }
}

/// Classification accuracy of `model` on `dataset`, running each example
/// through `make_observer()` (pass a pruning observer to measure pruned
/// accuracy, or [`crate::observer::NoPruning`] for the dense baseline).
pub fn evaluate<O, F>(model: &Model, dataset: &[(Vec<usize>, usize)], mut make_observer: F) -> f32
where
    O: AttentionObserver,
    F: FnMut() -> O,
{
    assert!(!dataset.is_empty(), "empty dataset");
    let mut correct = 0usize;
    for (tokens, label) in dataset {
        let mut obs = make_observer();
        let out = model.forward(tokens, &mut obs);
        if argmax(&out.logits) == *label {
            correct += 1;
        }
    }
    correct as f32 / dataset.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelKind};
    use crate::observer::NoPruning;

    fn tiny_setup() -> (Model, SyntheticTask) {
        let cfg = ModelConfig::tiny(ModelKind::Bert).with_vocab(32);
        let task = SyntheticTask {
            vocab: 32,
            n_classes: 2,
            keywords_per_class: 3,
            seq_len: 12,
            keywords_per_example: 2,
            distractors_per_example: 0,
        };
        let model = Model::new_classifier(cfg, 64, task.n_classes, 9);
        (model, task)
    }

    #[test]
    fn task_plants_requested_keywords() {
        let (_, task) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let (tokens, label) = task.sample(&mut rng);
            assert_eq!(tokens.len(), task.seq_len);
            let kws: Vec<usize> = tokens
                .iter()
                .copied()
                .filter(|&t| task.is_keyword(t))
                .collect();
            assert_eq!(kws.len(), task.keywords_per_example);
            for kw in kws {
                assert_eq!(kw / task.keywords_per_class, label);
            }
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (mut model, task) = tiny_setup();
        let data = task.sample_many(64, 11);
        let mut trainer = Trainer::new(3e-3);
        let first = trainer.train_batch(&mut model, &data[..16]);
        let mut last = first;
        for epoch in 0..30 {
            for chunk in data.chunks(16) {
                last = trainer.train_batch(&mut model, chunk);
            }
            let _ = epoch;
        }
        assert!(
            last < first * 0.7,
            "loss did not fall: first {first}, last {last}"
        );
    }

    #[test]
    fn trained_model_beats_chance() {
        let (mut model, task) = tiny_setup();
        let train = task.sample_many(256, 21);
        let test = task.sample_many(128, 22);
        let mut trainer = Trainer::new(3e-3);
        for _ in 0..12 {
            for chunk in train.chunks(16) {
                trainer.train_batch(&mut model, chunk);
            }
        }
        let acc = evaluate(&model, &test, || NoPruning);
        assert!(acc > 0.8, "accuracy only {acc}");
    }

    #[test]
    fn gradient_matches_finite_difference_on_classifier() {
        let (mut model, task) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(33);
        let (tokens, label) = task.sample(&mut rng);

        // Analytic gradient of the classifier weight (0,0).
        let (logits, cache) = forward_cached(&model, &tokens);
        let (_, dlogits) = cross_entropy_with_grad(&logits, label);
        let mut grads = Grads::zeros_like(&mut model);
        backward(&model, &cache, &dlogits, &mut grads);
        let analytic = *grads.mats.last().unwrap().data().first().unwrap();

        // Finite difference.
        let h = 5e-3f32;
        let loss_at = |m: &Model| {
            let (lg, _) = forward_cached(m, &tokens);
            cross_entropy_with_grad(&lg, label).0
        };
        let mut mp = model.clone();
        if let Some((c, _)) = mp.classifier_mut() {
            let v = c.get(0, 0);
            c.set(0, 0, v + h);
        }
        let lp = loss_at(&mp);
        let mut mm = model.clone();
        if let Some((c, _)) = mm.classifier_mut() {
            let v = c.get(0, 0);
            c.set(0, 0, v - h);
        }
        let lm = loss_at(&mm);
        let fd = (lp - lm) / (2.0 * h);
        assert!(
            (analytic - fd).abs() < 0.05 * fd.abs().max(1e-2),
            "analytic {analytic} vs fd {fd}"
        );
    }

    #[test]
    fn gradient_matches_finite_difference_on_attention_weight() {
        let (mut model, task) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(44);
        let (tokens, label) = task.sample(&mut rng);

        let (logits, cache) = forward_cached(&model, &tokens);
        let (_, dlogits) = cross_entropy_with_grad(&logits, label);
        let mut grads = Grads::zeros_like(&mut model);
        backward(&model, &cache, &dlogits, &mut grads);
        let analytic = grads.mats[1].get(1, 1); // block 0 wq

        let h = 5e-3f32;
        let loss_with_wq = |model: &Model, delta: f32| {
            let mut m = model.clone();
            let (wq, _, _, _) = m.blocks_mut()[0].attention_mut().weights_mut();
            let v = wq.get(1, 1);
            wq.set(1, 1, v + delta);
            let (lg, _) = forward_cached(&m, &tokens);
            cross_entropy_with_grad(&lg, label).0
        };
        let fd = (loss_with_wq(&model, h) - loss_with_wq(&model, -h)) / (2.0 * h);
        assert!(
            (analytic - fd).abs() < 0.1 * fd.abs().max(1e-2),
            "analytic {analytic} vs fd {fd}"
        );
    }
}
