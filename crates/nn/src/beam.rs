//! Beam-search decoding with shared cascade pruning.
//!
//! §V-B: "our techniques can also accelerate the Beam Search case because
//! when a token (and its K, V) is pruned, it will not be used by *any*
//! beams." This module implements beam search over a GPT-2-kind [`Model`]:
//! all beams share one [`ActiveSet`] (and therefore one importance
//! accumulator when a pruning observer is attached), so a token pruned by
//! the shared decision disappears from every beam's KV cache — exactly the
//! paper's argument for why cascade pruning composes with beam search.

use crate::attention::KvCache;
use crate::model::Model;
use crate::observer::{ActiveSet, AttentionObserver, LayerRecord};
use crate::ops::argmax;
use serde::{Deserialize, Serialize};

/// One decoding hypothesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Beam {
    /// Generated token ids (excluding the prompt).
    pub tokens: Vec<usize>,
    /// Sum of log-probabilities of the generated tokens.
    pub log_prob: f32,
}

/// Result of a beam-search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeamSearchOutput {
    /// Hypotheses, best first.
    pub beams: Vec<Beam>,
    /// Tokens still active in the shared pruning state at the end.
    pub active_tokens: usize,
    /// Total prompt+generated token capacity.
    pub token_capacity: usize,
}

/// Log-softmax of a logit row (stable).
fn log_softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|&l| (l - max).exp()).sum::<f32>().ln() + max;
    logits.iter().map(|&l| l - log_sum).collect()
}

/// Runs beam search of width `width` for `steps` tokens, with one shared
/// pruning observer across all beams.
///
/// The prompt is processed once (shared KV); each surviving hypothesis
/// keeps per-beam copies of the post-prompt cache rows. Pruning decisions
/// made by `observer` act on the *shared* active set: once a prompt token
/// is pruned it is evicted from every beam's caches.
///
/// # Panics
///
/// Panics unless the model is a GPT-2-kind LM, `width ≥ 1`, and
/// `prompt.len() + steps ≤ max_len`.
pub fn beam_search(
    model: &Model,
    prompt: &[usize],
    steps: usize,
    width: usize,
    observer: &mut dyn AttentionObserver,
) -> BeamSearchOutput {
    assert!(width >= 1, "beam width must be at least 1");
    assert!(
        prompt.len() + steps <= model.max_len(),
        "prompt + steps exceeds max_len"
    );
    let config = model.config();
    let layers = model.blocks().len();

    // --- Shared prompt pass (fills the shared caches). ---
    let mut active = ActiveSet::new(prompt.len(), config.heads);
    let mut caches: Vec<KvCache> = (0..layers).map(|_| KvCache::new(config.hidden)).collect();
    let mut ids: Vec<usize> = (0..prompt.len()).collect();
    let mut x = model.embed_tokens(prompt);
    for (layer, block) in model.blocks().iter().enumerate() {
        let head_active: Vec<bool> = (0..config.heads)
            .map(|h| active.is_head_active(h))
            .collect();
        let (y, rec) = block.forward_cached(&x, &ids, &mut caches[layer], &head_active);
        x = y;
        let record = LayerRecord {
            layer,
            probs: rec.probs,
            head_ids: rec.head_ids,
            key_token_ids: caches[layer].token_ids().to_vec(),
            query_token_ids: ids.clone(),
            head_abs_sums: rec.head_abs_sums,
        };
        observer.after_layer(&record, &mut active);
        let keep: Vec<usize> = ids
            .iter()
            .enumerate()
            .filter_map(|(row, &id)| active.is_token_active(id).then_some(row))
            .collect();
        if keep.len() != ids.len() {
            x = x.select_rows(&keep);
            ids = keep.iter().map(|&r| ids[r]).collect();
        }
    }

    // --- Beam state: per-beam caches (cloned from the shared prompt) and
    //     per-beam last hidden state. ---
    struct BeamState {
        beam: Beam,
        caches: Vec<KvCache>,
        last_hidden: crate::matrix::Matrix,
    }
    let last = crate::matrix::Matrix::from_vec(1, config.hidden, x.row(x.rows() - 1).to_vec());
    let mut states = vec![BeamState {
        beam: Beam {
            tokens: Vec::new(),
            log_prob: 0.0,
        },
        caches: caches.clone(),
        last_hidden: last,
    }];

    for step in 0..steps {
        let pos_id = prompt.len() + step;
        let token_id = active.push_token();
        debug_assert_eq!(token_id, pos_id);

        // Expand every beam with its top-`width` continuations.
        let mut candidates: Vec<(usize, usize, f32)> = Vec::new(); // (beam, token, lp)
        for (b, state) in states.iter().enumerate() {
            let logits = state.last_hidden.matmul_nt(model.embedding());
            let lp = log_softmax(logits.row(0));
            let mut order: Vec<usize> = (0..lp.len()).collect();
            order.sort_by(|&i, &j| {
                lp[j]
                    .partial_cmp(&lp[i])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &t in order.iter().take(width) {
                candidates.push((b, t, state.beam.log_prob + lp[t]));
            }
        }
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(width);

        // Advance the chosen candidates through the blocks.
        let mut next_states = Vec::with_capacity(candidates.len());
        for &(b, token, log_prob) in &candidates {
            let parent = &states[b];
            let mut caches = parent.caches.clone();
            let e = model.embedding().row(token);
            let p = model.positional().row(pos_id);
            let row: Vec<f32> = e.iter().zip(p).map(|(a, b)| a + b).collect();
            let mut xr = crate::matrix::Matrix::from_vec(1, config.hidden, row);
            for (layer, block) in model.blocks().iter().enumerate() {
                let head_active: Vec<bool> = (0..config.heads)
                    .map(|h| active.is_head_active(h))
                    .collect();
                // Shared pruning: evict tokens pruned by *any* beam's stats.
                caches[layer].retain(|id| active.is_token_active(id) || id == token_id);
                let (y, rec) = block.forward_step(&xr, token_id, &mut caches[layer], &head_active);
                let record = LayerRecord {
                    layer,
                    probs: rec.probs,
                    head_ids: rec.head_ids,
                    key_token_ids: caches[layer].token_ids().to_vec(),
                    query_token_ids: vec![token_id],
                    head_abs_sums: rec.head_abs_sums,
                };
                observer.after_layer(&record, &mut active);
                xr = y;
            }
            let mut beam = parent.beam.clone();
            beam.tokens.push(token);
            beam.log_prob = log_prob;
            next_states.push(BeamState {
                beam,
                caches,
                last_hidden: xr,
            });
        }
        states = next_states;
    }

    let mut beams: Vec<Beam> = states.into_iter().map(|s| s.beam).collect();
    beams.sort_by(|a, b| {
        b.log_prob
            .partial_cmp(&a.log_prob)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    BeamSearchOutput {
        beams,
        active_tokens: active.active_token_count(),
        token_capacity: active.token_capacity(),
    }
}

/// Greedy decoding expressed as width-1 beam search (for equivalence tests).
pub fn greedy_decode(
    model: &Model,
    prompt: &[usize],
    steps: usize,
    observer: &mut dyn AttentionObserver,
) -> Vec<usize> {
    let out = beam_search(model, prompt, steps, 1, observer);
    out.beams[0].tokens.clone()
}

/// Argmax helper re-exported for parity with `Model::generate` tests.
pub fn best_token(logits: &[f32]) -> usize {
    argmax(logits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelKind};
    use crate::observer::NoPruning;

    fn lm() -> Model {
        Model::new_lm(ModelConfig::tiny(ModelKind::Gpt2), 64, 3)
    }

    #[test]
    fn width_one_matches_greedy_generation() {
        let m = lm();
        let prompt = [1usize, 5, 9, 2];
        let greedy = m.generate(&prompt, 5, &mut NoPruning).generated;
        let beam = greedy_decode(&m, &prompt, 5, &mut NoPruning);
        assert_eq!(greedy, beam);
    }

    #[test]
    fn wider_beams_never_have_lower_best_score() {
        let m = lm();
        let prompt = [2usize, 4, 8];
        let w1 = beam_search(&m, &prompt, 4, 1, &mut NoPruning);
        let w4 = beam_search(&m, &prompt, 4, 4, &mut NoPruning);
        assert!(w4.beams[0].log_prob >= w1.beams[0].log_prob - 1e-5);
        assert_eq!(w4.beams.len(), 4);
    }

    #[test]
    fn beams_are_sorted_by_score() {
        let m = lm();
        let out = beam_search(&m, &[3, 1, 4], 3, 4, &mut NoPruning);
        for pair in out.beams.windows(2) {
            assert!(pair[0].log_prob >= pair[1].log_prob);
        }
    }

    struct PrunePromptToken;
    impl AttentionObserver for PrunePromptToken {
        fn after_layer(&mut self, record: &LayerRecord, active: &mut ActiveSet) {
            if record.layer == 1 && active.is_token_active(0) {
                active.prune_token(0);
            }
        }
    }

    #[test]
    fn shared_pruning_evicts_from_every_beam() {
        let m = lm();
        let out = beam_search(&m, &[1, 2, 3, 4, 5], 3, 3, &mut PrunePromptToken);
        // Token 0 pruned once → absent from the shared active set; every
        // beam still decodes the requested number of tokens.
        assert!(out.active_tokens < out.token_capacity);
        for beam in &out.beams {
            assert_eq!(beam.tokens.len(), 3);
        }
    }

    #[test]
    fn log_softmax_normalizes() {
        let lp = log_softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = lp.iter().map(|l| l.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }
}
