//! Model shape presets and FLOP accounting.
//!
//! The paper evaluates four models: BERT-Base, BERT-Large (discriminative),
//! GPT-2-Small and GPT-2-Medium (generative). Their shapes determine every
//! performance number in the evaluation, so they live here together with the
//! FLOP accounting used by the accelerator model, the baselines and the
//! roofline analysis (Fig. 18, Table IV).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Discriminative (BERT-like) vs. generative (GPT-2-like) model family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Summarization stage only; bidirectional attention.
    Bert,
    /// Summarization + generation stages; causal attention with KV cache.
    Gpt2,
}

/// Which stage of Figure 3 a workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// All input tokens processed in a batch (`Q`, `K`, `V` all `L×D`).
    Summarization,
    /// One query token against a growing KV cache (`Q` is `1×D`).
    Generation,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Summarization => write!(f, "summarization"),
            Stage::Generation => write!(f, "generation"),
        }
    }
}

/// Transformer shape description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model family (attention masking + stages).
    pub kind: ModelKind,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Model (embedding) dimension `Din`.
    pub hidden: usize,
    /// Feed-forward inner dimension.
    pub ffn: usize,
    /// Vocabulary size (used for embedding/LM-head FLOPs; functional models
    /// may instantiate a smaller vocabulary).
    pub vocab: usize,
}

impl ModelConfig {
    /// BERT-Base: 12 layers, 12 heads, 768 hidden, 3072 FFN.
    pub const fn bert_base() -> Self {
        Self {
            kind: ModelKind::Bert,
            layers: 12,
            heads: 12,
            hidden: 768,
            ffn: 3072,
            vocab: 30522,
        }
    }

    /// BERT-Large: 24 layers, 16 heads, 1024 hidden, 4096 FFN.
    pub const fn bert_large() -> Self {
        Self {
            kind: ModelKind::Bert,
            layers: 24,
            heads: 16,
            hidden: 1024,
            ffn: 4096,
            vocab: 30522,
        }
    }

    /// GPT-2-Small: 12 layers, 12 heads, 768 hidden, 3072 FFN.
    pub const fn gpt2_small() -> Self {
        Self {
            kind: ModelKind::Gpt2,
            layers: 12,
            heads: 12,
            hidden: 768,
            ffn: 3072,
            vocab: 50257,
        }
    }

    /// GPT-2-Medium: 24 layers, 16 heads, 1024 hidden, 4096 FFN.
    pub const fn gpt2_medium() -> Self {
        Self {
            kind: ModelKind::Gpt2,
            layers: 24,
            heads: 16,
            hidden: 1024,
            ffn: 4096,
            vocab: 50257,
        }
    }

    /// A tiny functional model for tests and trained-accuracy experiments.
    pub const fn tiny(kind: ModelKind) -> Self {
        Self {
            kind,
            layers: 2,
            heads: 2,
            hidden: 32,
            ffn: 64,
            vocab: 64,
        }
    }

    /// Returns a copy with a different vocabulary (for functional
    /// instantiation of large shapes with a synthetic vocabulary).
    pub const fn with_vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self
    }

    /// Returns a copy with a different layer count.
    pub const fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Per-head feature dimension `D = hidden / heads`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn head_dim(&self) -> usize {
        assert!(
            self.hidden.is_multiple_of(self.heads),
            "hidden {} not divisible by heads {}",
            self.hidden,
            self.heads
        );
        self.hidden / self.heads
    }

    // ------------------------------------------------------------------
    // FLOP accounting (multiply + add = 2 FLOPs, matching the paper).
    // ------------------------------------------------------------------

    /// FLOPs of the Q/K/V projection FCs for `l` tokens in one layer.
    pub fn qkv_fc_flops(&self, l: usize) -> u64 {
        3 * 2 * l as u64 * (self.hidden as u64) * (self.hidden as u64)
    }

    /// FLOPs of the attention-output projection FC for `l` tokens.
    pub fn out_fc_flops(&self, l: usize) -> u64 {
        2 * l as u64 * (self.hidden as u64) * (self.hidden as u64)
    }

    /// FLOPs of the attention core (`Q·Kᵀ` and `prob·V` over all heads) for
    /// `l0` queries against `l1` keys, with `heads_active` surviving heads.
    pub fn attention_core_flops(&self, l0: usize, l1: usize, heads_active: usize) -> u64 {
        let d = self.head_dim() as u64;
        2 * 2 * heads_active as u64 * l0 as u64 * l1 as u64 * d
    }

    /// FLOPs of the feed-forward network for `l` tokens in one layer.
    pub fn ffn_flops(&self, l: usize) -> u64 {
        2 * 2 * l as u64 * (self.hidden as u64) * (self.ffn as u64)
    }

    /// FLOPs of the LM head (hidden → vocab) for one token.
    pub fn lm_head_flops(&self) -> u64 {
        2 * (self.hidden as u64) * (self.vocab as u64)
    }

    /// Total unpruned FLOPs of one summarization pass over `len` tokens.
    pub fn summarize_flops(&self, len: usize) -> u64 {
        (self.layers as u64)
            * (self.qkv_fc_flops(len)
                + self.attention_core_flops(len, len, self.heads)
                + self.out_fc_flops(len)
                + self.ffn_flops(len))
    }

    /// Total unpruned FLOPs of generating `steps` tokens from a context of
    /// `context` tokens (KV cache: each step is one query against a growing
    /// key set).
    pub fn generate_flops(&self, context: usize, steps: usize) -> u64 {
        let mut total = 0u64;
        for s in 0..steps {
            let l1 = context + s + 1;
            total += (self.layers as u64)
                * (self.qkv_fc_flops(1)
                    + self.attention_core_flops(1, l1, self.heads)
                    + self.out_fc_flops(1)
                    + self.ffn_flops(1));
            total += self.lm_head_flops();
        }
        total
    }

    /// Number of weight parameters in the FC parts of one block (QKV + out
    /// projection + FFN), used for weight-traffic accounting in SpAtten-e2e.
    pub fn block_fc_params(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ffn as u64;
        4 * h * h + 2 * h * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shapes() {
        let b = ModelConfig::bert_base();
        assert_eq!((b.layers, b.heads, b.hidden, b.ffn), (12, 12, 768, 3072));
        assert_eq!(b.head_dim(), 64);
        let g = ModelConfig::gpt2_medium();
        assert_eq!((g.layers, g.heads, g.hidden, g.ffn), (24, 16, 1024, 4096));
        assert_eq!(g.head_dim(), 64);
    }

    #[test]
    fn attention_is_small_fraction_of_total_flops_short_seq() {
        // Paper §II-B: attention is ~10% of FLOPs for typical lengths.
        let cfg = ModelConfig::gpt2_small();
        let len = 320;
        let attn = cfg.layers as u64 * cfg.attention_core_flops(len, len, cfg.heads);
        let total = cfg.summarize_flops(len);
        let frac = attn as f64 / total as f64;
        assert!(frac > 0.02 && frac < 0.2, "attention fraction {frac}");
    }

    #[test]
    fn attention_fraction_grows_with_length() {
        let cfg = ModelConfig::gpt2_small();
        let frac = |len: usize| {
            let attn = cfg.layers as u64 * cfg.attention_core_flops(len, len, cfg.heads);
            attn as f64 / cfg.summarize_flops(len) as f64
        };
        assert!(frac(1024) > frac(128));
    }

    #[test]
    fn generation_flops_grow_with_context() {
        let cfg = ModelConfig::gpt2_small();
        assert!(cfg.generate_flops(992, 32) > cfg.generate_flops(128, 32));
    }

    #[test]
    fn gpt2_medium_table4_gflops_shape() {
        // Table IV: GPT-2-Medium, 992 context + 32 generated tokens:
        // FC ≈ 19.3 GFLOPs (85.6%), attention ≈ 3.3 GFLOPs (14.4%).
        let cfg = ModelConfig::gpt2_medium();
        let steps = 32;
        let context = 992;
        let mut attn = 0u64;
        for s in 0..steps {
            attn += cfg.layers as u64 * cfg.attention_core_flops(1, context + s + 1, cfg.heads);
        }
        let total = cfg.generate_flops(context, steps);
        let fc = total - attn;
        let fc_g = fc as f64 / 1e9;
        let attn_g = attn as f64 / 1e9;
        assert!(
            (15.0..25.0).contains(&fc_g),
            "FC GFLOPs {fc_g} (paper: 19.3)"
        );
        assert!(
            (2.0..5.0).contains(&attn_g),
            "attention GFLOPs {attn_g} (paper: 3.3)"
        );
    }

    #[test]
    fn pruned_heads_reduce_attention_flops_linearly() {
        let cfg = ModelConfig::bert_base();
        let full = cfg.attention_core_flops(64, 64, 12);
        let pruned = cfg.attention_core_flops(64, 64, 6);
        assert_eq!(full, pruned * 2);
    }
}
