//! Elementwise and row-wise neural-network operations.

use crate::matrix::Matrix;

/// Row-wise softmax, optionally with a causal mask: row `r` may only attend
/// to columns `0..=r + offset` (offset is the number of cached context
/// tokens during generation).
pub fn softmax_rows(scores: &mut Matrix, causal: bool, offset: usize) {
    let cols = scores.cols();
    for r in 0..scores.rows() {
        let limit = if causal {
            (r + offset + 1).min(cols)
        } else {
            cols
        };
        let row = scores.row_mut(r);
        for v in row.iter_mut().skip(limit) {
            *v = f32::NEG_INFINITY;
        }
        let max = row[..limit]
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            if v.is_finite() {
                *v = (*v - max).exp();
                sum += *v;
            } else {
                *v = 0.0;
            }
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Layer normalization over each row: `γ ⊙ (x − μ)/σ + β`.
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from the column count.
pub fn layer_norm(x: &Matrix, gamma: &[f32], beta: &[f32], eps: f32) -> Matrix {
    assert_eq!(gamma.len(), x.cols(), "gamma length mismatch");
    assert_eq!(beta.len(), x.cols(), "beta length mismatch");
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let n = row.len() as f32;
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv_std = 1.0 / (var + eps).sqrt();
        let orow = out.row_mut(r);
        for (i, &v) in row.iter().enumerate() {
            orow[i] = gamma[i] * (v - mean) * inv_std + beta[i];
        }
    }
    out
}

/// GELU activation (tanh approximation, as used by BERT/GPT-2).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] (tanh approximation), for backprop.
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Applies [`gelu`] elementwise.
pub fn gelu_matrix(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for v in out.data_mut() {
        *v = gelu(*v);
    }
    out
}

/// Argmax of a slice. Returns 0 for an empty slice.
pub fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Cross-entropy loss of a logit row against a target class, together with
/// the gradient on the logits (softmax − one-hot).
pub fn cross_entropy_with_grad(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    let probs = spatten_quant::softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_normalizes_each_row() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]);
        softmax_rows(&mut m, false, 0);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!((m.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn causal_mask_zeroes_future_positions() {
        let mut m = Matrix::from_vec(3, 3, vec![1.0; 9]);
        softmax_rows(&mut m, true, 0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(1, 2), 0.0);
        assert!((m.get(1, 0) - 0.5).abs() < 1e-6);
        let s: f32 = m.row(2).iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn causal_mask_with_offset_allows_cached_context() {
        // One query with 3 cached tokens: may attend to all 4 positions.
        let mut m = Matrix::from_vec(1, 4, vec![0.0; 4]);
        softmax_rows(&mut m, true, 3);
        for c in 0..4 {
            assert!((m.get(0, c) - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn layer_norm_standardizes_rows() {
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let g = vec![1.0; 4];
        let b = vec![0.0; 4];
        let y = layer_norm(&x, &g, &b, 1e-5);
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y.row(0).iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-2);
    }

    #[test]
    fn gelu_matches_reference_points() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        assert!(gelu(10.0) > 9.99);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!((gelu_grad(x) - fd).abs() < 1e-3, "x = {x}");
        }
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let (loss, grad) = cross_entropy_with_grad(&[1.0, -1.0, 0.5], 2);
        assert!(loss > 0.0);
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
        assert!(grad[2] < 0.0);
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
