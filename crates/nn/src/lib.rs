//! Pure-Rust transformer substrate for the SpAtten reproduction.
//!
//! SpAtten is evaluated on attention layers of BERT (discriminative,
//! summarization stage only) and GPT-2 (generative, summarization +
//! generation stages). This crate implements that model family from scratch:
//!
//! * [`matrix`] — a minimal row-major `f32` matrix with the linear algebra
//!   the models need.
//! * [`ops`] — softmax rows, layer normalization, GELU, causal masking.
//! * [`config`] — model shape presets (BERT-Base/Large, GPT-2-Small/Medium
//!   and scaled-down functional variants) plus FLOP accounting.
//! * [`attention`] — multi-head attention (Algorithm 1 of the paper) with
//!   per-head attention-probability capture and a KV cache for the
//!   generation stage.
//! * [`block`] — the full transformer block (attention + residual + layer
//!   norm + feed-forward network).
//! * [`model`] — end-to-end models with embedding, blocks and
//!   classification/LM heads, supporting *pruned* execution: an
//!   `AttentionObserver` hooks may remove tokens
//!   and heads after every layer, exactly like SpAtten's cascade pruning.
//! * [`beam`] — beam-search decoding with *shared* cascade pruning across
//!   beams (§V-B: a pruned token's K/V is never used by any beam).
//! * [`train`] — manual backprop + Adam for a tiny transformer, used to
//!   produce genuine accuracy-vs-pruning-ratio curves (paper Fig. 21).
//!
//! The crate is deterministic: all weight initialization is seeded.

pub mod attention;
pub mod beam;
pub mod block;
pub mod config;
pub mod matrix;
pub mod model;
pub mod observer;
pub mod ops;
pub mod train;

pub use attention::{AttentionRecord, KvCache, MultiHeadAttention};
pub use beam::{beam_search, Beam, BeamSearchOutput};
pub use block::TransformerBlock;
pub use config::{ModelConfig, ModelKind, Stage};
pub use matrix::Matrix;
pub use model::{Model, ModelOutput};
pub use observer::{ActiveSet, AttentionObserver, LayerRecord, NoPruning};
