//! End-to-end models: embedding → blocks → classification / LM head, with
//! cascade-pruning hooks.
//!
//! The model compacts its working set after every layer: tokens pruned by
//! the [`AttentionObserver`] are physically dropped from the activation
//! matrix, so — exactly as on the SpAtten hardware — later layers do less
//! work for both attention *and* FFN.

use crate::attention::KvCache;
use crate::block::TransformerBlock;
use crate::config::{ModelConfig, ModelKind};
use crate::matrix::Matrix;
use crate::observer::{ActiveSet, AttentionObserver, LayerRecord};
use crate::ops::argmax;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Output of a summarization pass.
#[derive(Debug, Clone)]
pub struct ModelOutput {
    /// Task logits: classifier logits for BERT, next-token logits (over the
    /// instantiated vocabulary) for GPT-2.
    pub logits: Vec<f32>,
    /// Per-layer attention records (what the pruning engine saw).
    pub records: Vec<LayerRecord>,
    /// Original indices of the tokens that survived all layers.
    pub survivors: Vec<usize>,
    /// Final active set (tokens and heads).
    pub active: ActiveSet,
}

/// Output of a generation run.
#[derive(Debug, Clone)]
pub struct GenerationOutput {
    /// Generated token ids (greedy decoding), `steps` of them.
    pub generated: Vec<usize>,
    /// Per-layer records of every forward (prompt layers first, then
    /// `steps × layers` generation records).
    pub records: Vec<LayerRecord>,
    /// Final active set.
    pub active: ActiveSet,
}

/// A complete transformer model with seeded weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Model {
    config: ModelConfig,
    max_len: usize,
    embed: Matrix,
    pos: Matrix,
    blocks: Vec<TransformerBlock>,
    classifier: Option<Matrix>,
    classifier_bias: Vec<f32>,
}

impl Model {
    /// Builds a seeded language model (LM head tied to the embedding).
    pub fn new_lm(config: ModelConfig, max_len: usize, seed: u64) -> Self {
        Self::build(config, max_len, None, seed)
    }

    /// Builds a seeded classifier with `n_classes` output classes.
    pub fn new_classifier(
        config: ModelConfig,
        max_len: usize,
        n_classes: usize,
        seed: u64,
    ) -> Self {
        Self::build(config, max_len, Some(n_classes), seed)
    }

    fn build(config: ModelConfig, max_len: usize, n_classes: Option<usize>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = 0.02;
        let embed = Matrix::randn(config.vocab, config.hidden, std, &mut rng);
        let pos = Matrix::randn(max_len, config.hidden, std, &mut rng);
        let blocks = (0..config.layers)
            .map(|_| {
                TransformerBlock::new_seeded(config.hidden, config.heads, config.ffn, &mut rng)
            })
            .collect();
        let classifier = n_classes.map(|n| {
            Matrix::randn(
                config.hidden,
                n,
                1.0 / (config.hidden as f32).sqrt(),
                &mut rng,
            )
        });
        let n_cls = classifier.as_ref().map(|c| c.cols()).unwrap_or(0);
        Self {
            config,
            max_len,
            embed,
            pos,
            blocks,
            classifier,
            classifier_bias: vec![0.0; n_cls],
        }
    }

    /// The model's shape.
    pub fn config(&self) -> ModelConfig {
        self.config
    }

    /// Maximum sequence length (positional-embedding table size).
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The transformer blocks (read-only).
    pub fn blocks(&self) -> &[TransformerBlock] {
        &self.blocks
    }

    /// Mutable blocks (for the trainer).
    pub fn blocks_mut(&mut self) -> &mut [TransformerBlock] {
        &mut self.blocks
    }

    /// Embedding table (for the trainer).
    pub fn embedding(&self) -> &Matrix {
        &self.embed
    }

    /// Mutable embedding table (for the trainer).
    pub fn embedding_mut(&mut self) -> &mut Matrix {
        &mut self.embed
    }

    /// Positional-embedding table.
    pub fn positional(&self) -> &Matrix {
        &self.pos
    }

    /// Mutable classifier weights, if this is a classifier model.
    pub fn classifier_mut(&mut self) -> Option<(&mut Matrix, &mut Vec<f32>)> {
        let bias = &mut self.classifier_bias;
        self.classifier.as_mut().map(|c| (c, &mut *bias))
    }

    /// Read-only classifier weights, if this is a classifier model.
    pub fn classifier_ref(&self) -> Option<(&Matrix, &Vec<f32>)> {
        self.classifier.as_ref().map(|c| (c, &self.classifier_bias))
    }

    /// Every trainable parameter in a fixed order, as two parallel lists
    /// (matrices, bias vectors). Order: embedding; per block `[wq wk wv wo
    /// w1 w2]` / `[b1 b2]`; classifier weight / bias last (if present).
    pub fn trainable_params_mut(&mut self) -> (Vec<&mut Matrix>, Vec<&mut Vec<f32>>) {
        let mut mats: Vec<&mut Matrix> = vec![&mut self.embed];
        let mut vecs: Vec<&mut Vec<f32>> = Vec::new();
        for block in &mut self.blocks {
            let (m, v) = block.trainable_params_mut();
            mats.extend(m);
            vecs.extend(v);
        }
        if let Some(c) = self.classifier.as_mut() {
            mats.push(c);
            vecs.push(&mut self.classifier_bias);
        }
        (mats, vecs)
    }

    /// Embeds tokens at their original positions.
    ///
    /// # Panics
    ///
    /// Panics if a token id exceeds the vocabulary or the sequence exceeds
    /// `max_len`.
    pub fn embed_tokens(&self, tokens: &[usize]) -> Matrix {
        assert!(tokens.len() <= self.max_len, "sequence exceeds max_len");
        let mut x = Matrix::zeros(tokens.len(), self.config.hidden);
        for (row, &t) in tokens.iter().enumerate() {
            assert!(t < self.config.vocab, "token id {t} out of vocabulary");
            let e = self.embed.row(t);
            let p = self.pos.row(row);
            for (c, v) in x.row_mut(row).iter_mut().enumerate() {
                *v = e[c] + p[c];
            }
        }
        x
    }

    fn head_mask(&self, active: &ActiveSet) -> Vec<bool> {
        (0..self.config.heads)
            .map(|h| active.is_head_active(h))
            .collect()
    }

    /// Summarization-stage forward pass with pruning hooks.
    ///
    /// After every block the observer may prune tokens/heads; pruned tokens
    /// are physically dropped before the next block (cascade semantics). The
    /// final representation is the mean over surviving tokens for
    /// classifiers, or the last surviving token for LMs.
    pub fn forward(&self, tokens: &[usize], observer: &mut dyn AttentionObserver) -> ModelOutput {
        let causal = self.config.kind == ModelKind::Gpt2;
        let mut active = ActiveSet::new(tokens.len(), self.config.heads);
        let mut ids: Vec<usize> = (0..tokens.len()).collect();
        let mut x = self.embed_tokens(tokens);
        let mut records = Vec::with_capacity(self.blocks.len());

        for (layer, block) in self.blocks.iter().enumerate() {
            let head_active = self.head_mask(&active);
            let (y, rec) = block.forward(&x, &ids, causal, &head_active);
            x = y;
            let record = LayerRecord {
                layer,
                probs: rec.probs,
                head_ids: rec.head_ids,
                key_token_ids: ids.clone(),
                query_token_ids: ids.clone(),
                head_abs_sums: rec.head_abs_sums,
            };
            observer.after_layer(&record, &mut active);
            records.push(record);

            // Compact: drop pruned token rows before the next layer.
            let keep: Vec<usize> = ids
                .iter()
                .enumerate()
                .filter_map(|(row, &id)| active.is_token_active(id).then_some(row))
                .collect();
            if keep.len() != ids.len() {
                x = x.select_rows(&keep);
                ids = keep.iter().map(|&r| ids[r]).collect();
            }
            assert!(!ids.is_empty(), "cascade pruning removed every token");
        }

        let logits = self.task_logits(&x, &ids);
        ModelOutput {
            logits,
            records,
            survivors: ids,
            active,
        }
    }

    fn task_logits(&self, x: &Matrix, _ids: &[usize]) -> Vec<f32> {
        match (&self.classifier, self.config.kind) {
            (Some(cls), _) => {
                // Mean-pool surviving tokens, then classify.
                let mut pooled = vec![0.0f32; x.cols()];
                for r in 0..x.rows() {
                    for (p, v) in pooled.iter_mut().zip(x.row(r)) {
                        *p += v;
                    }
                }
                for p in &mut pooled {
                    *p /= x.rows() as f32;
                }
                let h = Matrix::from_vec(1, x.cols(), pooled);
                let mut out = h.matmul(cls);
                out.add_bias_assign(&self.classifier_bias);
                out.row(0).to_vec()
            }
            (None, _) => {
                // Weight-tied LM head on the last surviving token.
                let last = Matrix::from_vec(1, x.cols(), x.row(x.rows() - 1).to_vec());
                last.matmul_nt(&self.embed).row(0).to_vec()
            }
        }
    }

    /// Full generative run: processes `prompt` in batch (filling KV caches),
    /// then greedily generates `steps` tokens, invoking the observer after
    /// every layer of every iteration, with pruned tokens evicted from the
    /// caches.
    ///
    /// # Panics
    ///
    /// Panics unless this is a GPT-2-kind LM model, or if
    /// `prompt.len() + steps` exceeds `max_len`.
    pub fn generate(
        &self,
        prompt: &[usize],
        steps: usize,
        observer: &mut dyn AttentionObserver,
    ) -> GenerationOutput {
        assert_eq!(
            self.config.kind,
            ModelKind::Gpt2,
            "generation needs GPT-2 kind"
        );
        assert!(self.classifier.is_none(), "generation needs an LM model");
        assert!(
            prompt.len() + steps <= self.max_len,
            "prompt + steps exceeds max_len"
        );

        let mut active = ActiveSet::new(prompt.len(), self.config.heads);
        let mut caches: Vec<KvCache> = (0..self.blocks.len())
            .map(|_| KvCache::new(self.config.hidden))
            .collect();
        let mut records = Vec::new();

        // --- Summarization over the prompt (batch, filling caches). ---
        let mut ids: Vec<usize> = (0..prompt.len()).collect();
        let mut x = self.embed_tokens(prompt);
        for (layer, block) in self.blocks.iter().enumerate() {
            let head_active = self.head_mask(&active);
            caches[layer].retain(|id| active.is_token_active(id));
            let (y, rec) = block.forward_cached(&x, &ids, &mut caches[layer], &head_active);
            x = y;
            let cache_ids = caches[layer].token_ids().to_vec();
            let record = LayerRecord {
                layer,
                probs: rec.probs,
                head_ids: rec.head_ids,
                key_token_ids: cache_ids,
                query_token_ids: ids.clone(),
                head_abs_sums: rec.head_abs_sums,
            };
            observer.after_layer(&record, &mut active);
            records.push(record);
            let keep: Vec<usize> = ids
                .iter()
                .enumerate()
                .filter_map(|(row, &id)| active.is_token_active(id).then_some(row))
                .collect();
            if keep.len() != ids.len() {
                x = x.select_rows(&keep);
                ids = keep.iter().map(|&r| ids[r]).collect();
            }
        }
        let mut last_hidden = Matrix::from_vec(1, self.config.hidden, x.row(x.rows() - 1).to_vec());

        // --- Generation loop. ---
        let mut generated = Vec::with_capacity(steps);
        for step in 0..steps {
            let logits = last_hidden.matmul_nt(&self.embed);
            let next = argmax(logits.row(0));
            generated.push(next);

            let pos_id = prompt.len() + step;
            let token_id = active.push_token();
            debug_assert_eq!(token_id, pos_id);
            let e = self.embed.row(next);
            let p = self.pos.row(pos_id);
            let row: Vec<f32> = e.iter().zip(p).map(|(a, b)| a + b).collect();
            let mut xr = Matrix::from_vec(1, self.config.hidden, row);

            for (layer, block) in self.blocks.iter().enumerate() {
                let head_active = self.head_mask(&active);
                caches[layer].retain(|id| active.is_token_active(id) || id == token_id);
                let (y, rec) = block.forward_step(&xr, token_id, &mut caches[layer], &head_active);
                let cache_ids = caches[layer].token_ids().to_vec();
                let record = LayerRecord {
                    layer,
                    probs: rec.probs,
                    head_ids: rec.head_ids,
                    key_token_ids: cache_ids,
                    query_token_ids: vec![token_id],
                    head_abs_sums: rec.head_abs_sums,
                };
                observer.after_layer(&record, &mut active);
                records.push(record);
                xr = y;
            }
            last_hidden = xr;
        }

        GenerationOutput {
            generated,
            records,
            active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NoPruning;

    fn tiny_lm() -> Model {
        Model::new_lm(ModelConfig::tiny(ModelKind::Gpt2), 64, 3)
    }

    fn tiny_classifier() -> Model {
        Model::new_classifier(ModelConfig::tiny(ModelKind::Bert), 64, 2, 3)
    }

    #[test]
    fn classifier_forward_produces_logits_and_records() {
        let m = tiny_classifier();
        let out = m.forward(&[1, 2, 3, 4, 5], &mut NoPruning);
        assert_eq!(out.logits.len(), 2);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.survivors.len(), 5);
        assert!(out.logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn lm_forward_logits_cover_vocab() {
        let m = tiny_lm();
        let out = m.forward(&[0, 5, 9], &mut NoPruning);
        assert_eq!(out.logits.len(), m.config().vocab);
    }

    #[test]
    fn forward_is_deterministic() {
        let a = tiny_classifier().forward(&[3, 1, 4, 1, 5], &mut NoPruning);
        let b = tiny_classifier().forward(&[3, 1, 4, 1, 5], &mut NoPruning);
        assert_eq!(a.logits, b.logits);
    }

    #[test]
    fn generation_produces_requested_tokens() {
        let m = tiny_lm();
        let out = m.generate(&[1, 2, 3], 4, &mut NoPruning);
        assert_eq!(out.generated.len(), 4);
        assert!(out.generated.iter().all(|&t| t < m.config().vocab));
        // prompt layers + steps × layers records
        assert_eq!(out.records.len(), 2 + 4 * 2);
    }

    struct PruneFirstToken;
    impl AttentionObserver for PruneFirstToken {
        fn after_layer(&mut self, record: &LayerRecord, active: &mut ActiveSet) {
            if record.layer == 0 {
                active.prune_token(0);
            }
        }
    }

    #[test]
    fn pruned_token_disappears_from_later_layers() {
        let m = tiny_classifier();
        let out = m.forward(&[1, 2, 3, 4], &mut PruneFirstToken);
        assert_eq!(out.survivors, vec![1, 2, 3]);
        // layer 0 saw 4 key tokens; layer 1 saw 3
        assert_eq!(out.records[0].key_token_ids.len(), 4);
        assert_eq!(out.records[1].key_token_ids.len(), 3);
        assert_eq!(out.records[1].probs[0].cols(), 3);
    }

    struct PruneHeadZero;
    impl AttentionObserver for PruneHeadZero {
        fn after_layer(&mut self, record: &LayerRecord, active: &mut ActiveSet) {
            if record.layer == 0 {
                active.prune_head(0);
            }
        }
    }

    #[test]
    fn pruned_head_disappears_from_later_layers() {
        let m = tiny_classifier();
        let out = m.forward(&[1, 2, 3, 4], &mut PruneHeadZero);
        assert_eq!(out.records[0].head_ids, vec![0, 1]);
        assert_eq!(out.records[1].head_ids, vec![1]);
        assert_eq!(out.active.active_head_count(), 1);
    }

    #[test]
    fn pruning_changes_but_does_not_break_logits() {
        let m = tiny_classifier();
        let dense = m.forward(&[1, 2, 3, 4, 5, 6], &mut NoPruning);
        let pruned = m.forward(&[1, 2, 3, 4, 5, 6], &mut PruneFirstToken);
        assert_ne!(dense.logits, pruned.logits);
        assert!(pruned.logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn generation_with_pruning_keeps_caches_consistent() {
        struct PruneEarlyTokens;
        impl AttentionObserver for PruneEarlyTokens {
            fn after_layer(&mut self, record: &LayerRecord, active: &mut ActiveSet) {
                // prune token 0 once layer 1 of the prompt pass is done
                if record.layer == 1 && active.is_token_active(0) && active.token_capacity() == 4 {
                    active.prune_token(0);
                }
            }
        }
        let m = tiny_lm();
        let out = m.generate(&[1, 2, 3, 4], 3, &mut PruneEarlyTokens);
        assert_eq!(out.generated.len(), 3);
        assert!(!out.active.is_token_active(0));
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn overlong_sequence_panics() {
        let m = tiny_classifier();
        let tokens: Vec<usize> = (0..100).map(|i| i % 8).collect();
        let _ = m.forward(&tokens, &mut NoPruning);
    }
}
