//! A full transformer block: attention + residual + layer norm + FFN.

use crate::attention::{AttentionRecord, KvCache, MultiHeadAttention};
use crate::matrix::Matrix;
use crate::ops::{gelu_matrix, layer_norm};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

const LN_EPS: f32 = 1e-5;

/// One transformer block (post-norm, as in the original BERT/Transformer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ln1_gamma: Vec<f32>,
    ln1_beta: Vec<f32>,
    ln2_gamma: Vec<f32>,
    ln2_beta: Vec<f32>,
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
}

impl TransformerBlock {
    /// Fresh seeded block.
    pub fn new_seeded(hidden: usize, heads: usize, ffn: usize, rng: &mut StdRng) -> Self {
        let std1 = 1.0 / (hidden as f32).sqrt();
        let std2 = 1.0 / (ffn as f32).sqrt();
        Self {
            attn: MultiHeadAttention::new_seeded(hidden, heads, rng),
            ln1_gamma: vec![1.0; hidden],
            ln1_beta: vec![0.0; hidden],
            ln2_gamma: vec![1.0; hidden],
            ln2_beta: vec![0.0; hidden],
            w1: Matrix::randn(hidden, ffn, std1, rng),
            b1: vec![0.0; ffn],
            w2: Matrix::randn(ffn, hidden, std2, rng),
            b2: vec![0.0; hidden],
        }
    }

    /// The attention sublayer.
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attn
    }

    /// Mutable access to the attention sublayer (for the trainer).
    pub fn attention_mut(&mut self) -> &mut MultiHeadAttention {
        &mut self.attn
    }

    /// FFN weights (for the trainer): `(w1, b1, w2, b2)`.
    pub fn ffn_weights_mut(&mut self) -> (&mut Matrix, &mut Vec<f32>, &mut Matrix, &mut Vec<f32>) {
        (&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2)
    }

    /// Read-only FFN weights: `(w1, b1, w2, b2)`.
    pub fn ffn_weights_ref(&self) -> (&Matrix, &Vec<f32>, &Matrix, &Vec<f32>) {
        (&self.w1, &self.b1, &self.w2, &self.b2)
    }

    /// All trainable parameters of this block in a fixed order:
    /// `[wq, wk, wv, wo, w1, b1, w2, b2]`.
    pub fn trainable_params_mut(&mut self) -> (Vec<&mut Matrix>, Vec<&mut Vec<f32>>) {
        let (wq, wk, wv, wo) = self.attn.weights_mut();
        (
            vec![wq, wk, wv, wo, &mut self.w1, &mut self.w2],
            vec![&mut self.b1, &mut self.b2],
        )
    }

    /// Applies the FFN sublayer (without residual/norm).
    pub fn ffn(&self, x: &Matrix) -> Matrix {
        let mut h = x.matmul(&self.w1);
        h.add_bias_assign(&self.b1);
        let h = gelu_matrix(&h);
        let mut out = h.matmul(&self.w2);
        out.add_bias_assign(&self.b2);
        out
    }

    fn finish(&self, x: &Matrix, attn_out: Matrix) -> Matrix {
        let mut mid = attn_out;
        mid.add_assign(x);
        let mid = layer_norm(&mid, &self.ln1_gamma, &self.ln1_beta, LN_EPS);
        let mut out = self.ffn(&mid);
        out.add_assign(&mid);
        layer_norm(&out, &self.ln2_gamma, &self.ln2_beta, LN_EPS)
    }

    /// Summarization-stage forward (self-attention over `x`).
    pub fn forward(
        &self,
        x: &Matrix,
        token_ids: &[usize],
        causal: bool,
        head_active: &[bool],
    ) -> (Matrix, AttentionRecord) {
        let (attn_out, rec) = self
            .attn
            .forward(x, x, token_ids, token_ids, causal, head_active);
        (self.finish(x, attn_out), rec)
    }

    /// Summarization-stage forward that also fills a KV cache (GPT-2 prompt
    /// processing): K/V of every token are appended to `cache` before
    /// attending, so generation can continue from them.
    pub fn forward_cached(
        &self,
        x: &Matrix,
        token_ids: &[usize],
        cache: &mut KvCache,
        head_active: &[bool],
    ) -> (Matrix, AttentionRecord) {
        let (q, k, v) = self.attn.project(x);
        for (row, &id) in token_ids.iter().enumerate() {
            cache.append(k.row(row), v.row(row), id);
        }
        let cache_ids: Vec<usize> = cache.token_ids().to_vec();
        let (attn_out, rec) = self.attn.attend(
            &q,
            cache.keys(),
            cache.values(),
            token_ids,
            &cache_ids,
            true,
            head_active,
        );
        (self.finish(x, attn_out), rec)
    }

    /// Generation-stage forward for one token against the cache.
    pub fn forward_step(
        &self,
        x_row: &Matrix,
        token_id: usize,
        cache: &mut KvCache,
        head_active: &[bool],
    ) -> (Matrix, AttentionRecord) {
        let (attn_out, rec) = self.attn.forward_step(x_row, token_id, cache, head_active);
        (self.finish(x_row, attn_out), rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn forward_preserves_shape() {
        let mut r = rng();
        let block = TransformerBlock::new_seeded(16, 4, 32, &mut r);
        let x = Matrix::randn(5, 16, 1.0, &mut r);
        let ids: Vec<usize> = (0..5).collect();
        let (y, rec) = block.forward(&x, &ids, false, &[true; 4]);
        assert_eq!((y.rows(), y.cols()), (5, 16));
        assert_eq!(rec.probs.len(), 4);
    }

    #[test]
    fn output_rows_are_layer_normalized() {
        let mut r = rng();
        let block = TransformerBlock::new_seeded(32, 4, 64, &mut r);
        let x = Matrix::randn(3, 32, 2.0, &mut r);
        let ids: Vec<usize> = (0..3).collect();
        let (y, _) = block.forward(&x, &ids, false, &[true; 4]);
        for row in 0..y.rows() {
            let mean: f32 = y.row(row).iter().sum::<f32>() / 32.0;
            assert!(mean.abs() < 1e-4, "row {row} mean {mean}");
        }
    }

    #[test]
    fn cached_batch_matches_stepwise_generation() {
        let mut r = rng();
        let block = TransformerBlock::new_seeded(12, 3, 24, &mut r);
        let x = Matrix::randn(4, 12, 1.0, &mut r);
        let ids: Vec<usize> = (0..4).collect();

        let mut cache_a = KvCache::new(12);
        let (batch, _) = block.forward_cached(&x, &ids, &mut cache_a, &[true; 3]);

        let mut cache_b = KvCache::new(12);
        for t in 0..4 {
            let xr = Matrix::from_vec(1, 12, x.row(t).to_vec());
            let (out, _) = block.forward_step(&xr, t, &mut cache_b, &[true; 3]);
            for c in 0..12 {
                assert!(
                    (batch.get(t, c) - out.get(0, c)).abs() < 1e-4,
                    "token {t} col {c}"
                );
            }
        }
        assert_eq!(cache_a.len(), cache_b.len());
    }

    #[test]
    fn head_mask_flows_through_block() {
        let mut r = rng();
        let block = TransformerBlock::new_seeded(16, 4, 32, &mut r);
        let x = Matrix::randn(3, 16, 1.0, &mut r);
        let ids: Vec<usize> = (0..3).collect();
        let (_, rec) = block.forward(&x, &ids, false, &[true, true, false, false]);
        assert_eq!(rec.head_ids, vec![0, 1]);
    }
}
