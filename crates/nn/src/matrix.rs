//! A minimal row-major `f32` matrix.
//!
//! The SpAtten models only need dense GEMM-style operations; this type keeps
//! them dependency-free and deterministic. Performance is adequate for the
//! functional (small-model) experiments; the cycle-level accelerator
//! simulator never multiplies real matrices for the large configurations —
//! it works on shapes.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Gaussian-initialized matrix (mean 0, standard deviation `std`).
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Self {
        // Box–Muller from uniform samples; avoids needing rand_distr.
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(r * theta.sin() * std);
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let arow = self.row(r);
            for c in 0..other.rows {
                let brow = other.row(c);
                let dot: f32 = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
                out.set(r, c, dot);
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise in-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Adds a bias row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_bias_assign(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// New matrix keeping only the given rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            assert!(r < self.rows, "row index {r} out of bounds");
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// View of a contiguous column block `[start, start+len)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the column count.
    pub fn slice_cols(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.cols, "column slice out of bounds");
        Matrix::from_fn(self.rows, len, |r, c| self.get(r, start + c))
    }

    /// Writes `block` into columns `[start, start+block.cols())`.
    ///
    /// # Panics
    ///
    /// Panics on row mismatch or column overflow.
    pub fn write_cols(&mut self, start: usize, block: &Matrix) {
        assert_eq!(self.rows, block.rows, "row mismatch");
        assert!(start + block.cols <= self.cols, "column block overflow");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols + start..r * self.cols + start + block.cols];
            dst.copy_from_slice(block.row(r));
        }
    }

    /// Appends the rows of `other` below `self`.
    ///
    /// # Panics
    ///
    /// Panics on column mismatch.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of absolute values — the head-importance statistic of
    /// Algorithm 2 (`Σ |E[head][l0][d]|`).
    pub fn abs_sum(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let eye = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::randn(4, 6, 1.0, &mut rng);
        let b = Matrix::randn(5, 6, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::randn(6, 4, 1.0, &mut rng);
        let b = Matrix::randn(6, 5, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn select_rows_reorders() {
        let a = Matrix::from_fn(4, 2, |r, _| r as f32);
        let s = a.select_rows(&[3, 1]);
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn slice_and_write_cols_roundtrip() {
        let a = Matrix::from_fn(3, 8, |r, c| (r * 8 + c) as f32);
        let block = a.slice_cols(2, 4);
        let mut b = Matrix::zeros(3, 8);
        b.write_cols(2, &block);
        for r in 0..3 {
            for c in 2..6 {
                assert_eq!(b.get(r, c), a.get(r, c));
            }
            assert_eq!(b.get(r, 0), 0.0);
        }
    }

    #[test]
    fn vcat_stacks_rows() {
        let a = Matrix::from_fn(2, 3, |_, _| 1.0);
        let b = Matrix::from_fn(1, 3, |_, _| 2.0);
        let c = a.vcat(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.row(2), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn randn_is_deterministic_and_roughly_normal() {
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        let a = Matrix::randn(32, 32, 0.5, &mut rng1);
        let b = Matrix::randn(32, 32, 0.5, &mut rng2);
        assert_eq!(a, b);
        let mean: f32 = a.data().iter().sum::<f32>() / 1024.0;
        let var: f32 = a
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 1024.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn bias_add_applies_per_row() {
        let mut a = Matrix::zeros(2, 3);
        a.add_bias_assign(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn abs_sum_counts_magnitudes() {
        let a = Matrix::from_vec(1, 4, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.abs_sum(), 10.0);
    }
}
