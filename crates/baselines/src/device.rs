//! Analytic CPU/GPU device models.
//!
//! The paper measures attention latency with PyTorch + cuDNN/MKL on four
//! platforms. Those measurements are not reproducible here, so each device
//! is modelled by its *effective* throughput on attention workloads plus a
//! per-layer framework overhead, both calibrated against numbers the paper
//! itself reports:
//!
//! | device | peak | effective attention (disc / gen) | source |
//! |---|---|---|---|
//! | TITAN Xp | 12.1 TFLOPS | 0.020 / 0.010 TFLOPS | Fig. 18 roofline points |
//! | Xeon E5-2640 | 0.7 TFLOPS | 0.0093 / 0.0047 | Fig. 14: ≈ 2.1× slower than TITAN Xp |
//! | Jetson Nano | 0.47 TFLOPS | 0.0030 / 0.0015 | Fig. 14: ≈ 6.7× slower |
//! | Raspberry Pi | 0.024 TFLOPS | 0.00064 / 0.00032 | Fig. 14: ≈ 31× slower |
//!
//! Dynamic power values are chosen so the paper's energy-efficiency ratios
//! (1193× / 4059× / 406× / 1910× vs. SpAtten's 8.3 W) reproduce.

use serde::{Deserialize, Serialize};
use spatten_workloads::Workload;

/// Latency/energy of a baseline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Device name.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// Attention latency in seconds.
    pub latency_s: f64,
    /// Energy in joules (dynamic power × latency).
    pub energy_j: f64,
}

/// An analytic device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device name.
    pub name: String,
    /// Peak compute, FLOP/s (for the roofline plot).
    pub peak_flops: f64,
    /// Peak memory bandwidth, bytes/s.
    pub peak_bandwidth: f64,
    /// Effective attention throughput on discriminative (batched) work.
    pub attn_disc_flops: f64,
    /// Effective attention throughput on generative (vector) work.
    pub attn_gen_flops: f64,
    /// Effective FC throughput (for end-to-end splits, Fig. 2/Table IV).
    pub fc_flops: f64,
    /// Per-layer framework overhead in seconds (kernel launches, reshapes).
    pub per_layer_overhead_s: f64,
    /// Dynamic power in watts while running attention.
    pub dynamic_power_w: f64,
}

impl DeviceModel {
    /// NVIDIA TITAN Xp (server GPU).
    pub fn titan_xp() -> Self {
        Self {
            name: "TITAN Xp".into(),
            peak_flops: 12.15e12,
            peak_bandwidth: 547.6e9,
            attn_disc_flops: 0.020e12,
            attn_gen_flops: 0.010e12,
            fc_flops: 0.050e12,
            per_layer_overhead_s: 18e-6,
            dynamic_power_w: 61.0,
        }
    }

    /// Intel Xeon E5-2640 v4 (server CPU).
    pub fn xeon() -> Self {
        Self {
            name: "Xeon E5-2640".into(),
            peak_flops: 0.7e12,
            peak_bandwidth: 68e9,
            attn_disc_flops: 0.0093e12,
            attn_gen_flops: 0.0047e12,
            fc_flops: 0.025e12,
            per_layer_overhead_s: 40e-6,
            dynamic_power_w: 97.0,
        }
    }

    /// NVIDIA Jetson Nano (mobile GPU).
    pub fn nano() -> Self {
        Self {
            name: "Jetson Nano".into(),
            peak_flops: 0.472e12,
            peak_bandwidth: 25.6e9,
            attn_disc_flops: 0.0030e12,
            attn_gen_flops: 0.0015e12,
            fc_flops: 0.008e12,
            per_layer_overhead_s: 120e-6,
            dynamic_power_w: 3.1,
        }
    }

    /// Raspberry Pi 4 ARM A53 (mobile CPU).
    pub fn raspberry_pi() -> Self {
        Self {
            name: "Raspberry Pi ARM".into(),
            peak_flops: 0.024e12,
            peak_bandwidth: 4e9,
            attn_disc_flops: 0.00064e12,
            attn_gen_flops: 0.00032e12,
            fc_flops: 0.002e12,
            per_layer_overhead_s: 400e-6,
            dynamic_power_w: 3.1,
        }
    }

    /// The four baseline devices in the paper's comparison order.
    pub fn all() -> Vec<DeviceModel> {
        vec![
            Self::titan_xp(),
            Self::xeon(),
            Self::nano(),
            Self::raspberry_pi(),
        ]
    }

    /// Dense attention FLOPs of a workload (what the device must compute —
    /// baselines cannot prune).
    pub fn attention_flops(w: &Workload) -> u64 {
        let m = w.model;
        if w.gen_steps == 0 {
            (m.layers as u64) * m.attention_core_flops(w.seq_len, w.seq_len, m.heads)
        } else {
            let mut total = 0u64;
            for s in 0..w.gen_steps {
                total += (m.layers as u64) * m.attention_core_flops(1, w.seq_len + s + 1, m.heads);
            }
            total
        }
    }

    /// Attention latency of a workload on this device.
    pub fn attention_latency(&self, w: &Workload) -> f64 {
        let flops = Self::attention_flops(w) as f64;
        let eff = if w.gen_steps == 0 {
            self.attn_disc_flops
        } else {
            self.attn_gen_flops
        };
        let invocations = if w.gen_steps == 0 {
            w.model.layers as f64
        } else {
            (w.model.layers * w.gen_steps) as f64
        };
        flops / eff + invocations * self.per_layer_overhead_s
    }

    /// FC (QKV projections + FFN + LM head) latency of a workload.
    pub fn fc_latency(&self, w: &Workload) -> f64 {
        let m = w.model;
        let fc_flops = if w.gen_steps == 0 {
            (m.layers as u64)
                * (m.qkv_fc_flops(w.seq_len) + m.out_fc_flops(w.seq_len) + m.ffn_flops(w.seq_len))
        } else {
            let per_step = (m.layers as u64)
                * (m.qkv_fc_flops(1) + m.out_fc_flops(1) + m.ffn_flops(1))
                + m.lm_head_flops();
            per_step * w.gen_steps as u64
        };
        fc_flops as f64 / self.fc_flops
    }

    /// Full baseline report for a workload's attention layers.
    pub fn run(&self, w: &Workload) -> BaselineReport {
        let latency_s = self.attention_latency(w);
        BaselineReport {
            device: self.name.clone(),
            workload: w.name.clone(),
            latency_s,
            energy_j: latency_s * self.dynamic_power_w,
        }
    }

    /// End-to-end latency split `(attention_s, fc_s)` — the Fig. 2 /
    /// Table IV decomposition.
    pub fn end_to_end_split(&self, w: &Workload) -> (f64, f64) {
        (self.attention_latency(w), self.fc_latency(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_workloads::Benchmark;

    #[test]
    fn attention_is_half_of_gpt2_end_to_end_on_gpu() {
        // Fig. 2: attention ≈ 50 % of end-to-end GPT-2 latency on TITAN Xp.
        let w = Benchmark::by_id("gpt2-medium-wikitext2")
            .unwrap()
            .workload();
        let gpu = DeviceModel::titan_xp();
        let (attn, fc) = gpu.end_to_end_split(&w);
        let share = attn / (attn + fc);
        assert!((0.35..0.65).contains(&share), "attention share {share}");
    }

    #[test]
    fn table4_gpu_fc_and_attention_latency_shape() {
        // Table IV (GPT-2-Medium, GPU): FC 388 ms, attention 367 ms.
        let w = Benchmark::by_id("gpt2-medium-wikitext2")
            .unwrap()
            .workload();
        let gpu = DeviceModel::titan_xp();
        let (attn, fc) = gpu.end_to_end_split(&w);
        assert!(
            (0.15..0.8).contains(&attn),
            "attention {attn} s (paper 0.367)"
        );
        assert!((0.15..0.8).contains(&fc), "FC {fc} s (paper 0.388)");
    }

    #[test]
    fn device_ordering_matches_fig14() {
        // GPU < Xeon < Nano < Pi on every benchmark.
        let w = Benchmark::bert_base_sst2().workload();
        let l: Vec<f64> = DeviceModel::all()
            .iter()
            .map(|d| d.attention_latency(&w))
            .collect();
        assert!(l[0] < l[1] && l[1] < l[2] && l[2] < l[3], "{l:?}");
    }

    #[test]
    fn generation_is_slower_per_flop_than_summarization() {
        let gpu = DeviceModel::titan_xp();
        let bert = Benchmark::bert_base_sst2().workload();
        let gpt2 = Benchmark::gpt2_small_wikitext2().workload();
        let bert_rate = DeviceModel::attention_flops(&bert) as f64 / gpu.attention_latency(&bert);
        let gpt2_rate = DeviceModel::attention_flops(&gpt2) as f64 / gpu.attention_latency(&gpt2);
        assert!(bert_rate > gpt2_rate);
    }

    #[test]
    fn gpt2_attention_latency_is_hundreds_of_ms_on_gpu() {
        // Paper: a 30-token GPT-2 generation takes ~370 ms end-to-end on
        // TITAN Xp, half of it attention.
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let gpu = DeviceModel::titan_xp();
        let lat = gpu.attention_latency(&w);
        assert!((0.05..1.0).contains(&lat), "latency {lat} s");
    }

    #[test]
    fn energy_is_power_times_latency() {
        let w = Benchmark::bert_base_sst2().workload();
        let d = DeviceModel::xeon();
        let r = d.run(&w);
        assert!((r.energy_j - r.latency_s * 97.0).abs() < 1e-12);
    }
}
