//! Baseline device and accelerator models the paper compares against.
//!
//! * [`device`] — analytic models of TITAN Xp, Xeon, Jetson Nano and
//!   Raspberry Pi running attention through cuDNN/MKL-class libraries.
//!   The *effective attention throughputs* are calibrated from the paper's
//!   own measurements (Fig. 2 latency breakdowns, Fig. 18 roofline points:
//!   TITAN Xp achieves only 0.02 TFLOPS on BERT attention and 0.01 TFLOPS
//!   on GPT-2 generation despite a 12 TFLOPS peak, because of tiny matmuls
//!   and the 73 % of time spent on data movement).
//! * [`a3`] — the A3 accelerator (HPCA'20): sort-based key preprocessing +
//!   local approximate score pruning; fetches everything from DRAM first,
//!   so it only accelerates computation-bound models.
//! * [`mnnfast`] — MNNFast (ISCA'19): local value pruning by threshold.
//!
//! All three accelerator models run at Table III's matched resources
//! (128 multipliers, 64 GB/s, 1 GHz) for the head-to-head comparison with
//! SpAtten-1/8.

pub mod a3;
pub mod device;
pub mod mnnfast;

pub use a3::A3Model;
pub use device::{BaselineReport, DeviceModel};
pub use mnnfast::MnnFastModel;
