//! The MNNFast accelerator model (Jang et al., ISCA 2019).
//!
//! MNNFast prunes V vectors whose attention probability falls under a
//! threshold — local value pruning only. Like A3 it must fetch everything
//! from DRAM before it can decide what to skip, so it cannot accelerate
//! memory-bounded generative models, and it does not touch the Q·K work at
//! all. The paper reproduces MNNFast on a simulator at matched resources
//! (Table III: 120 GOP/s effective at 128 multipliers / 64 GB/s; originally
//! a Zynq-7020 FPGA design, optimistically scaled to 1 W as an ASIC).

use crate::device::BaselineReport;
use serde::{Deserialize, Serialize};
use spatten_workloads::Workload;

/// MNNFast at Table III resources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MnnFastModel {
    /// MACs retired per cycle. MNNFast is a Zynq-7020 FPGA design projected
    /// to 1 GHz; the paper's reproduced simulator lands at 120 GOP/s
    /// effective, which at its V-pruning work saving corresponds to
    /// ≈ 48 MACs/cycle of sustained utilization on 128 multipliers.
    pub macs_per_cycle: u64,
    /// DRAM bandwidth in bytes per cycle.
    pub bytes_per_cycle: u64,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Fraction of V rows kept after threshold pruning.
    pub v_keep_fraction: f64,
    /// Per-query pipeline bubble in cycles (threshold pass is not fully
    /// overlapped in the original design).
    pub per_query_bubble: u64,
    /// Dynamic power in watts (paper's optimistic ASIC estimate).
    pub dynamic_power_w: f64,
}

impl Default for MnnFastModel {
    fn default() -> Self {
        Self {
            macs_per_cycle: 48,
            bytes_per_cycle: 64,
            clock_ghz: 1.0,
            v_keep_fraction: 0.6,
            per_query_bubble: 8,
            dynamic_power_w: 1.0,
        }
    }
}

impl MnnFastModel {
    /// Attention latency, or `None` for generative workloads.
    pub fn attention_latency(&self, w: &Workload) -> Option<f64> {
        if w.gen_steps > 0 {
            return None;
        }
        let m = w.model;
        let d = m.head_dim() as u64;
        let l = w.seq_len as u64;
        let heads = m.heads as u64;
        let layers = m.layers as u64;

        let mut cycles = 0u64;
        for _ in 0..layers {
            // Full Q·K; V work reduced by the kept fraction.
            let qk_macs = l * l * d;
            let pv_macs = ((l * l * d) as f64 * self.v_keep_fraction).ceil() as u64;
            let compute = (qk_macs + pv_macs).div_ceil(self.macs_per_cycle);
            let bubbles = l * self.per_query_bubble;
            let dram = (3 * l * (m.hidden as u64) * 2).div_ceil(self.bytes_per_cycle);
            cycles += (heads * compute + bubbles).max(dram);
        }
        Some(cycles as f64 / (self.clock_ghz * 1e9))
    }

    /// Effective throughput in GOP/s (dense-equivalent ops / time).
    pub fn effective_gops(&self, w: &Workload) -> Option<f64> {
        let latency = self.attention_latency(w)?;
        let m = w.model;
        let dense_ops = (m.layers as u64) * m.attention_core_flops(w.seq_len, w.seq_len, m.heads);
        Some(dense_ops as f64 / latency / 1e9)
    }

    /// Baseline report (discriminative workloads only).
    pub fn run(&self, w: &Workload) -> Option<BaselineReport> {
        let latency_s = self.attention_latency(w)?;
        Some(BaselineReport {
            device: "MNNFast".into(),
            workload: w.name.clone(),
            latency_s,
            energy_j: latency_s * self.dynamic_power_w,
        })
    }

    /// Whether a workload is supported.
    pub fn supports(&self, w: &Workload) -> bool {
        w.gen_steps == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a3::A3Model;
    use spatten_workloads::Benchmark;

    #[test]
    fn rejects_generative_workloads() {
        let w = Benchmark::gpt2_small_wikitext2().workload();
        assert!(MnnFastModel::default().attention_latency(&w).is_none());
    }

    #[test]
    fn slower_than_a3_on_long_inputs() {
        // Table III: A3 is 1.8× MNNFast in effective throughput.
        let w = Benchmark::by_id("bert-base-squad-v1").unwrap().workload();
        let mnn = MnnFastModel::default().effective_gops(&w).unwrap();
        let a3 = A3Model::default().effective_gops(&w).unwrap();
        let ratio = a3 / mnn;
        assert!((1.2..2.6).contains(&ratio), "A3/MNNFast ratio {ratio}");
    }

    #[test]
    fn effective_gops_near_table3() {
        // Table III: 120 GOP/s.
        let w = Benchmark::by_id("bert-base-squad-v1").unwrap().workload();
        let gops = MnnFastModel::default().effective_gops(&w).unwrap();
        assert!(
            (60.0..250.0).contains(&gops),
            "MNNFast effective {gops} GOP/s (paper: 120)"
        );
    }

    #[test]
    fn local_v_pruning_helps_vs_no_pruning() {
        let w = Benchmark::by_id("bert-base-mrpc").unwrap().workload();
        let pruned = MnnFastModel::default().attention_latency(&w).unwrap();
        let dense = MnnFastModel {
            v_keep_fraction: 1.0,
            ..MnnFastModel::default()
        }
        .attention_latency(&w)
        .unwrap();
        assert!(pruned < dense);
    }
}
