//! The A3 accelerator model (Ham et al., HPCA 2020).
//!
//! A3 approximates attention by pre-sorting every dimension of the key
//! matrix, then computing partial scores from the largest/smallest entries
//! and pruning keys whose partial score falls under a threshold. Three
//! properties matter for the Table III comparison (and are modelled here):
//!
//! 1. **Everything is fetched from DRAM first** — candidate selection
//!    happens on-chip, so DRAM traffic is *not* reduced and memory-bounded
//!    (generative) models cannot be accelerated.
//! 2. **Preprocessing overhead** — the per-dimension sort costs
//!    `D · O(L log L)` work per layer before any query can issue.
//! 3. **Local pruning only** — the score computation shrinks (paper-matched
//!    ≈ 1.73× effective speedup on the attention kernel), but pruned keys
//!    are local to one head: FFN work and other layers see no benefit.

use crate::device::BaselineReport;
use serde::{Deserialize, Serialize};
use spatten_workloads::{TaskKind, Workload};

/// A3 at Table III resources: 128 multipliers (parallelism d = 64),
/// 64 GB/s, 1 GHz, 40 nm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct A3Model {
    /// MACs retired per cycle. The paper states A3's raw throughput as
    /// `2·d = 128 GFLOPS` at 1 GHz (its 128 multipliers serve the two-sided
    /// candidate search), i.e. 64 MACs/cycle.
    pub macs_per_cycle: u64,
    /// DRAM bandwidth in bytes per cycle (64 GB/s at 1 GHz = 64).
    pub bytes_per_cycle: u64,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Fraction of keys that survive the approximate score threshold; the
    /// surviving keys' scores and V rows are computed in full. Calibrated
    /// so the effective throughput matches the paper's 1.72× geomean
    /// speedup (128 → 221 GFLOPS): `1/1.72 ≈ 0.58`.
    pub key_keep_fraction: f64,
    /// Dynamic power in watts (Table III: 221 GOP/s at 269 GOP/J
    /// → ≈ 0.82 W).
    pub dynamic_power_w: f64,
}

impl Default for A3Model {
    fn default() -> Self {
        Self {
            macs_per_cycle: 64,
            bytes_per_cycle: 64,
            clock_ghz: 1.0,
            key_keep_fraction: 0.58,
            dynamic_power_w: 0.82,
        }
    }
}

impl A3Model {
    /// Attention latency, or `None` for generative workloads (A3 cannot
    /// reduce DRAM access, and the paper compares on BERT only).
    pub fn attention_latency(&self, w: &Workload) -> Option<f64> {
        if w.gen_steps > 0 {
            return None;
        }
        let m = w.model;
        let d = m.head_dim() as u64;
        let l = w.seq_len as u64;
        let heads = m.heads as u64;
        let layers = m.layers as u64;

        let mut cycles = 0u64;
        for _ in 0..layers {
            // Preprocessing: sort D dimensions of L keys per head
            // (bitonic-class network, 64 comparators wide).
            let sort_ops = d * l * (64 - l.leading_zeros() as u64);
            let sort_cycles = sort_ops.div_ceil(self.macs_per_cycle);
            // Surviving keys pay full Q·K and prob·V MACs.
            let kept = ((l as f64) * self.key_keep_fraction).ceil() as u64;
            let macs = l * (kept * d) * 2; // QK + PV per query over kept keys
            let compute = macs.div_ceil(self.macs_per_cycle);
            // DRAM: everything fetched at 16-bit, no reduction.
            let dram = (3 * l * (m.hidden as u64) * 2).div_ceil(self.bytes_per_cycle);
            cycles += (heads * (sort_cycles + compute)).max(dram);
        }
        Some(cycles as f64 / (self.clock_ghz * 1e9))
    }

    /// Effective throughput in GOP/s: dense-equivalent attention ops over
    /// the measured time (the Table III metric).
    pub fn effective_gops(&self, w: &Workload) -> Option<f64> {
        let latency = self.attention_latency(w)?;
        let m = w.model;
        let dense_ops = (m.layers as u64) * m.attention_core_flops(w.seq_len, w.seq_len, m.heads);
        Some(dense_ops as f64 / latency / 1e9)
    }

    /// Baseline report (discriminative workloads only).
    pub fn run(&self, w: &Workload) -> Option<BaselineReport> {
        let latency_s = self.attention_latency(w)?;
        Some(BaselineReport {
            device: "A3".into(),
            workload: w.name.clone(),
            latency_s,
            energy_j: latency_s * self.dynamic_power_w,
        })
    }

    /// Whether a workload is supported (Table III: "Accelerate BERT only").
    pub fn supports(&self, w: &Workload) -> bool {
        w.gen_steps == 0
    }

    /// Task kinds A3 accelerates.
    pub fn supported_kinds() -> &'static [TaskKind] {
        &[TaskKind::Discriminative]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_workloads::Benchmark;

    #[test]
    fn rejects_generative_workloads() {
        let w = Benchmark::gpt2_small_wikitext2().workload();
        assert!(A3Model::default().attention_latency(&w).is_none());
        assert!(!A3Model::default().supports(&w));
    }

    #[test]
    fn throughput_exceeds_dense_128_mult_baseline() {
        // A3's approximation must beat a dense 128-multiplier design
        // (Table III: 221 vs ~128 GOP/s effective).
        let w = Benchmark::by_id("bert-base-squad-v1").unwrap().workload();
        let gops = A3Model::default().effective_gops(&w).unwrap();
        assert!(
            (100.0..400.0).contains(&gops),
            "A3 effective {gops} GOP/s (paper: 221)"
        );
    }

    #[test]
    fn preprocessing_hurts_short_sequences() {
        // Sort overhead amortizes poorly on tiny inputs: effective GOP/s on
        // CoLA (len 11) must be far below SQuAD (len 180).
        let a3 = A3Model::default();
        let short = a3
            .effective_gops(&Benchmark::by_id("bert-base-cola").unwrap().workload())
            .unwrap();
        let long = a3
            .effective_gops(&Benchmark::by_id("bert-base-squad-v1").unwrap().workload())
            .unwrap();
        assert!(long > 1.2 * short, "short {short} vs long {long}");
    }

    #[test]
    fn energy_uses_dynamic_power() {
        let w = Benchmark::bert_base_sst2().workload();
        let r = A3Model::default().run(&w).unwrap();
        assert!(r.energy_j > 0.0);
        assert!((r.energy_j / r.latency_s - 0.82).abs() < 1e-9);
    }
}
