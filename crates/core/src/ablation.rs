//! The Fig. 20 ablation ladder as a reusable API.
//!
//! Each rung adds one SpAtten technique on top of the previous
//! configuration: specialized datapath → cascade token pruning → cascade
//! head pruning → high-parallelism top-k engine → static quantization →
//! progressive quantization. The bench binary `fig20` prints the ladder;
//! this module owns the rung definitions so they can be tested and reused.

use crate::accelerator::{Accelerator, SpAttenConfig};
use crate::perf::RunReport;
use serde::{Deserialize, Serialize};
use spatten_quant::BitwidthScheme;
use spatten_workloads::{QuantPolicy, Workload};

/// One rung: a configuration plus a quantization override.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rung {
    /// Human-readable name.
    pub name: &'static str,
    /// Hardware configuration of this rung.
    pub config: SpAttenConfig,
    /// Quantization policy override applied to the workload.
    pub quant: QuantPolicy,
    /// The paper's cumulative speedup at this rung (over TITAN Xp,
    /// geomean of the GPT-2 benchmarks).
    pub paper_cumulative: f64,
}

/// The six-rung ladder of Fig. 20.
pub fn ladder() -> Vec<Rung> {
    let full12 = QuantPolicy::full_precision();
    let static8 = QuantPolicy::static_msb(BitwidthScheme::Msb8Lsb4);
    let progressive = QuantPolicy::progressive(BitwidthScheme::Msb6Lsb4);

    let mut datapath = SpAttenConfig::default().datapath_only();
    datapath.topk_parallelism = 1;
    let mut token = datapath;
    token.token_pruning = true;
    token.local_value_pruning = true;
    let mut head = token;
    head.head_pruning = true;
    let mut engine = head;
    engine.topk_parallelism = 16;

    vec![
        Rung {
            name: "specialized datapath",
            config: datapath,
            quant: full12,
            paper_cumulative: 22.1,
        },
        Rung {
            name: "+ cascade token pruning",
            config: token,
            quant: full12,
            paper_cumulative: 24.3,
        },
        Rung {
            name: "+ cascade head pruning",
            config: head,
            quant: full12,
            paper_cumulative: 26.7,
        },
        Rung {
            name: "+ parallel top-k engine",
            config: engine,
            quant: full12,
            paper_cumulative: 74.2,
        },
        Rung {
            name: "+ static quantization",
            config: engine,
            quant: static8,
            paper_cumulative: 122.1,
        },
        Rung {
            name: "+ progressive quantization",
            config: engine,
            quant: progressive,
            paper_cumulative: 209.0,
        },
    ]
}

/// Runs one rung on a workload (applying its quantization override).
pub fn run_rung(rung: &Rung, workload: &Workload) -> RunReport {
    let mut w = workload.clone();
    w.quant = rung.quant;
    Accelerator::new(rung.config).run(&w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_workloads::Benchmark;

    #[test]
    fn ladder_has_six_rungs_in_paper_order() {
        let l = ladder();
        assert_eq!(l.len(), 6);
        assert!(l
            .windows(2)
            .all(|w| w[0].paper_cumulative <= w[1].paper_cumulative));
        assert!(!l[0].config.token_pruning);
        assert!(l[1].config.token_pruning && !l[1].config.head_pruning);
        assert_eq!(l[3].config.topk_parallelism, 16);
        assert!(l[5].quant.progressive);
    }

    #[test]
    fn final_rung_is_fastest_on_gpt2() {
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let l = ladder();
        let first = run_rung(&l[0], &w).total_cycles;
        let last = run_rung(&l[5], &w).total_cycles;
        assert!(
            first > 2 * last,
            "full SpAtten must beat the bare datapath: {first} vs {last}"
        );
    }

    #[test]
    fn parallel_engine_rung_delivers_about_3x() {
        // The paper's headline micro-claim: the high-parallelism engine is
        // worth ~3× once pruning is on.
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let l = ladder();
        let serial = run_rung(&l[2], &w).total_cycles as f64;
        let parallel = run_rung(&l[3], &w).total_cycles as f64;
        let gain = serial / parallel;
        assert!((2.0..5.0).contains(&gain), "engine gain {gain} (paper: 3x)");
    }

    #[test]
    fn quantization_rungs_cut_dram_traffic() {
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let l = ladder();
        let full = run_rung(&l[3], &w).dram_bytes;
        let static8 = run_rung(&l[4], &w).dram_bytes;
        let progressive = run_rung(&l[5], &w).dram_bytes;
        assert!(static8 < full, "8-bit must move less than 12-bit");
        assert!(
            progressive < static8,
            "6+4 progressive must move less than 8-bit"
        );
    }
}
