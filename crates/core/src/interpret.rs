//! Interpretability: token-level pruning traces (paper Fig. 22/23).
//!
//! Cascade token pruning is *structured and interpretable*: the cumulative
//! importance scores say which tokens the model attended to, and the
//! per-layer survivor sets can be printed as progressively shortened
//! sentences. This module runs a real (small) model with a
//! [`CascadePruner`] and packages the trace for display.

use crate::pruner::CascadePruner;
use serde::{Deserialize, Serialize};
use spatten_nn::Model;
use spatten_workloads::PruningSpec;

/// What happened to one token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenFate {
    /// Original position in the sentence.
    pub position: usize,
    /// The word (if a vocabulary was provided).
    pub word: Option<String>,
    /// The layer after which the token was pruned (`None` = survived).
    pub pruned_after_layer: Option<usize>,
    /// Final cumulative importance score.
    pub importance: f64,
}

/// A full pruning trace of one sentence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruningTrace {
    /// Per-token fates, in sentence order.
    pub tokens: Vec<TokenFate>,
    /// Surviving token positions after each layer.
    pub survivors_per_layer: Vec<Vec<usize>>,
    /// Heads surviving after the last layer.
    pub final_heads: Vec<usize>,
}

impl PruningTrace {
    /// Runs `tokens` through `model` with cascade pruning per `spec` and
    /// records every pruning decision. `words` optionally labels tokens.
    ///
    /// # Panics
    ///
    /// Panics if `words` is provided with a different length than `tokens`.
    pub fn capture(
        model: &Model,
        tokens: &[usize],
        spec: PruningSpec,
        words: Option<&[&str]>,
    ) -> Self {
        if let Some(w) = words {
            assert_eq!(w.len(), tokens.len(), "word labels must match tokens");
        }
        let cfg = model.config();
        let mut pruner = CascadePruner::new(spec, cfg.layers, tokens.len(), cfg.heads);
        let out = model.forward(tokens, &mut pruner);

        // Reconstruct survivor sets per layer from the records: the keys a
        // layer saw are the survivors *entering* it; fates come from diffs.
        let mut survivors_per_layer: Vec<Vec<usize>> = Vec::with_capacity(out.records.len());
        for rec in out.records.iter().skip(1) {
            survivors_per_layer.push(rec.key_token_ids.clone());
        }
        survivors_per_layer.push(out.survivors.clone());

        let mut fates: Vec<TokenFate> = (0..tokens.len())
            .map(|position| TokenFate {
                position,
                word: words.map(|w| w[position].to_owned()),
                pruned_after_layer: None,
                importance: pruner.importance().token_scores()[position],
            })
            .collect();
        for (layer, survivors) in survivors_per_layer.iter().enumerate() {
            for fate in fates.iter_mut() {
                if fate.pruned_after_layer.is_none() && !survivors.contains(&fate.position) {
                    fate.pruned_after_layer = Some(layer);
                }
            }
        }

        Self {
            tokens: fates,
            survivors_per_layer,
            final_heads: out.active.active_heads(),
        }
    }

    /// The sentence as it survives after `layer` (words joined, pruned
    /// tokens dropped). Tokens without word labels render as `·`.
    pub fn render_layer(&self, layer: usize) -> String {
        let survivors = &self.survivors_per_layer[layer.min(self.survivors_per_layer.len() - 1)];
        self.tokens
            .iter()
            .filter(|t| survivors.contains(&t.position))
            .map(|t| t.word.clone().unwrap_or_else(|| "·".to_owned()))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Tokens that survived every layer.
    pub fn final_survivors(&self) -> Vec<&TokenFate> {
        self.tokens
            .iter()
            .filter(|t| t.pruned_after_layer.is_none())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_nn::{ModelConfig, ModelKind};

    fn model() -> Model {
        let cfg = ModelConfig {
            kind: ModelKind::Bert,
            layers: 4,
            heads: 2,
            hidden: 32,
            ffn: 64,
            vocab: 64,
        };
        Model::new_classifier(cfg, 64, 2, 17)
    }

    #[test]
    fn trace_accounts_for_every_token() {
        let m = model();
        let tokens: Vec<usize> = (0..16).map(|i| (i * 5) % 64).collect();
        let trace = PruningTrace::capture(&m, &tokens, PruningSpec::with_keeps(0.5, 1.0), None);
        assert_eq!(trace.tokens.len(), 16);
        let survived = trace.final_survivors().len();
        let pruned = trace
            .tokens
            .iter()
            .filter(|t| t.pruned_after_layer.is_some())
            .count();
        assert_eq!(survived + pruned, 16);
        assert!(pruned > 0, "schedule must prune something");
    }

    #[test]
    fn survivor_sets_shrink() {
        let m = model();
        let tokens: Vec<usize> = (0..20).map(|i| (i * 3) % 64).collect();
        let trace = PruningTrace::capture(&m, &tokens, PruningSpec::with_keeps(0.4, 1.0), None);
        for pair in trace.survivors_per_layer.windows(2) {
            assert!(pair[1].len() <= pair[0].len());
        }
    }

    #[test]
    fn render_uses_words() {
        let m = model();
        let words = ["the", "film", "is", "almost", "perfect", "."];
        let tokens: Vec<usize> = (0..6).collect();
        let trace = PruningTrace::capture(&m, &tokens, PruningSpec::dense(), Some(&words));
        let rendered = trace.render_layer(3);
        assert_eq!(rendered, "the film is almost perfect .");
    }

    #[test]
    fn pruned_tokens_have_layer_stamps() {
        let m = model();
        let tokens: Vec<usize> = (0..16).map(|i| (i * 7) % 64).collect();
        let trace = PruningTrace::capture(&m, &tokens, PruningSpec::with_keeps(0.3, 1.0), None);
        for t in &trace.tokens {
            if let Some(layer) = t.pruned_after_layer {
                assert!(layer < 4);
            }
        }
    }
}
