//! Token pruning generalized to Memory-Augmented Networks.
//!
//! §VI-C: "Our token pruning idea can also be generalized to
//! Memory-Augmented Networks to remove unimportant memory vectors and
//! improve efficiency." This module implements that extension: a memory
//! bank read by attention accumulates per-slot importance (the column sums
//! of read probabilities — exactly Algorithm 2 applied to memory slots) and
//! prunes cold slots with the same top-k engine, shrinking every
//! subsequent read.

use spatten_arch::TopkEngine;
use spatten_nn::Matrix;
use spatten_quant::softmax;

/// An attention-read memory bank with cumulative slot importance.
#[derive(Debug, Clone)]
pub struct MemoryBank {
    slots: Matrix,
    slot_ids: Vec<usize>,
    importance: Vec<f64>, // indexed by original slot id
    engine: TopkEngine,
    reads: u64,
}

impl MemoryBank {
    /// A bank of `n` seeded random memory vectors of width `d`.
    pub fn new_seeded(n: usize, d: usize, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::from_slots(Matrix::randn(n, d, 1.0, &mut rng))
    }

    /// A bank over explicit memory vectors.
    pub fn from_slots(slots: Matrix) -> Self {
        let n = slots.rows();
        Self {
            slots,
            slot_ids: (0..n).collect(),
            importance: vec![0.0; n],
            engine: TopkEngine::new(16, 0xA11CE),
            reads: 0,
        }
    }

    /// Live slot count.
    pub fn len(&self) -> usize {
        self.slots.rows()
    }

    /// Whether every slot has been pruned.
    pub fn is_empty(&self) -> bool {
        self.slots.rows() == 0
    }

    /// Memory width.
    pub fn dim(&self) -> usize {
        self.slots.cols()
    }

    /// Reads performed so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Cumulative importance of the original slot ids.
    pub fn importance(&self) -> &[f64] {
        &self.importance
    }

    /// Attention read: softmax(`query · slotsᵀ / √d`) · slots, accumulating
    /// each live slot's read probability into its importance score.
    ///
    /// # Panics
    ///
    /// Panics if the query width mismatches or the bank is empty.
    pub fn read(&mut self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.dim(), "query width mismatch");
        assert!(!self.is_empty(), "reading an empty memory bank");
        self.reads += 1;
        let inv_sqrt_d = 1.0 / (self.dim() as f32).sqrt();
        let scores: Vec<f32> = (0..self.slots.rows())
            .map(|r| {
                self.slots
                    .row(r)
                    .iter()
                    .zip(query)
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
                    * inv_sqrt_d
            })
            .collect();
        let probs = softmax(&scores);
        let mut out = vec![0.0f32; self.dim()];
        for (r, &p) in probs.iter().enumerate() {
            self.importance[self.slot_ids[r]] += f64::from(p);
            for (o, &v) in out.iter_mut().zip(self.slots.row(r)) {
                *o += p * v;
            }
        }
        out
    }

    /// Prunes to the `k` most-important live slots (cascade: pruned slots
    /// never return). Returns the original ids of the survivors.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn prune_to(&mut self, k: usize) -> Vec<usize> {
        assert!(k >= 1, "must keep at least one slot");
        if k >= self.len() {
            return self.slot_ids.clone();
        }
        let scores: Vec<f32> = self
            .slot_ids
            .iter()
            .map(|&id| self.importance[id] as f32)
            .collect();
        let result = self.engine.select(&scores, k);
        let keep_rows: Vec<usize> = result.indices;
        self.slots = self.slots.select_rows(&keep_rows);
        self.slot_ids = keep_rows.iter().map(|&r| self.slot_ids[r]).collect();
        self.slot_ids.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> MemoryBank {
        MemoryBank::new_seeded(32, 16, 7)
    }

    #[test]
    fn read_is_a_convex_combination() {
        let mut b = bank();
        let q = vec![0.5f32; 16];
        let out = b.read(&q);
        assert_eq!(out.len(), 16);
        // Output magnitude bounded by the largest slot magnitude.
        let max_norm = (0..32)
            .map(|r| b.slots.row(r).iter().map(|v| v * v).sum::<f32>().sqrt())
            .fold(0.0f32, f32::max);
        let out_norm = out.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(out_norm <= max_norm + 1e-4);
    }

    #[test]
    fn importance_accumulates_over_reads() {
        let mut b = bank();
        let q = vec![0.3f32; 16];
        b.read(&q);
        let sum1: f64 = b.importance().iter().sum();
        b.read(&q);
        let sum2: f64 = b.importance().iter().sum();
        // Each read deposits total probability mass 1.
        assert!((sum1 - 1.0).abs() < 1e-4);
        assert!((sum2 - 2.0).abs() < 1e-4);
    }

    #[test]
    fn pruning_keeps_the_most_read_slots() {
        let mut b = bank();
        // Query aligned with slot 3's direction → slot 3 dominates reads.
        let target: Vec<f32> = b.slots.row(3).to_vec();
        for _ in 0..8 {
            b.read(&target);
        }
        let survivors = b.prune_to(4);
        assert_eq!(survivors.len(), 4);
        assert!(
            survivors.contains(&3),
            "hot slot must survive: {survivors:?}"
        );
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn pruned_bank_approximates_full_bank_for_hot_queries() {
        let mut full = bank();
        let mut pruned = bank();
        let target: Vec<f32> = full.slots.row(5).to_vec();
        for _ in 0..6 {
            full.read(&target);
            pruned.read(&target);
        }
        pruned.prune_to(8);
        let a = full.read(&target);
        let b2 = pruned.read(&target);
        let dot: f32 = a.iter().zip(&b2).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = b2.iter().map(|v| v * v).sum::<f32>().sqrt();
        let cosine = dot / (na * nb);
        assert!(cosine > 0.9, "cosine {cosine}");
    }

    #[test]
    fn cascade_pruning_is_monotone() {
        let mut b = bank();
        let q = vec![0.1f32; 16];
        b.read(&q);
        let first = b.prune_to(16);
        b.read(&q);
        let second = b.prune_to(8);
        // Survivors of the second pruning are a subset of the first.
        assert!(second.iter().all(|id| first.contains(id)));
    }

    #[test]
    #[should_panic(expected = "empty memory bank")]
    fn reading_after_total_pruning_panics() {
        let mut b = MemoryBank::new_seeded(2, 4, 1);
        b.read(&[1.0; 4]);
        b.prune_to(1);
        b.prune_to(1);
        // Force-empty is impossible through the API; emulate by reading a
        // zero-slot bank built directly.
        let mut empty = MemoryBank::from_slots(Matrix::zeros(0, 4));
        empty.read(&[1.0; 4]);
    }
}
