//! The cycle-level performance model.
//!
//! Walks a workload layer by layer (and, for generative tasks, generation
//! step by step) through the SpAtten datapath of Fig. 8:
//!
//! * Per-layer survivor counts come from the pruning schedule (§V-A) — the
//!   *identities* of pruned tokens don't change timing, only their count
//!   and memory scatter, both of which are modelled.
//! * Compute is beat-accurate: each module's initiation interval per query
//!   is derived from its `spatten-arch` model (multiplier-array packing,
//!   softmax parallelism, top-k engine steady-state intervals measured on
//!   sampled score vectors), and the fully-pipelined layer time is the
//!   maximum of the module busy totals (§IV-A).
//! * DRAM traffic goes through the `spatten-hbm` channel model with the
//!   real scatter pattern cascade pruning produces (pruned survivors are
//!   spread over the original address range → fewer row hits).
//! * Progressive quantization fetches MSB planes eagerly; a calibrated
//!   fraction of queries (paper: ≈ 5.9 %) trips the max-probability
//!   comparator and pays the LSB refetch + recompute.

use crate::accelerator::SpAttenConfig;
use crate::progressive::ProgressiveController;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use spatten_arch::{MultArray, Sram, TopkEngine};
use spatten_energy::{EnergyBreakdown, EnergyModel, EventCounts, PowerReport};
use spatten_hbm::{Hbm, Request, RequestKind};
use spatten_workloads::{synth, Workload};

/// Fraction of generation queries whose attention-probability distribution
/// is flat enough to need LSBs (paper §III-D: "on average, only 5.9 % of
/// input samples require LSB"). Used as the calibrated flat-row probability
/// of the synthetic score streams.
const FLAT_QUERY_FRACTION: f64 = 0.059;

/// Compute/DRAM cost split of one serving-granularity unit of work — a
/// whole summarization (prefill) pass or a single generated token.
///
/// This is the incremental cost query the serving layer (`spatten-serve`)
/// builds on: a fleet scheduler needs per-token costs, not just whole-run
/// totals, and it needs the compute/memory split separately so it can model
/// HBM-bandwidth-aware co-scheduling (one job's multiplier-array work
/// overlapping another job's KV streaming).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepCost {
    /// Busy cycles of the bottleneck compute module, summed over layers.
    pub compute_cycles: u64,
    /// Slowest-channel DRAM busy cycles, summed over layers.
    pub dram_cycles: u64,
    /// The portion of `dram_cycles` that streams *model weights* (FC/FFN
    /// planes) rather than per-request KV state. Weights are identical for
    /// every request of the same model, so a batching scheduler fetches
    /// them once per iteration and shares them across the whole batch —
    /// the fundamental throughput lever of batched decode. Always
    /// `<= dram_cycles`; zero for attention-only costs.
    pub weight_dram_cycles: u64,
    /// End-to-end cycles exactly as [`simulate`] would charge: per layer,
    /// `max(compute, dram)` plus the pipeline-fill constant.
    pub serial_cycles: u64,
}

impl StepCost {
    /// Accumulates another step into this one (layer-by-layer addition).
    pub fn add(&mut self, other: StepCost) {
        self.compute_cycles += other.compute_cycles;
        self.dram_cycles += other.dram_cycles;
        self.weight_dram_cycles += other.weight_dram_cycles;
        self.serial_cycles += other.serial_cycles;
    }
}

/// Busy-cycle totals per module (for bottleneck and breakdown reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleCycles {
    /// Q·K multiplier array.
    pub qk: u64,
    /// Softmax pipeline.
    pub softmax: u64,
    /// Top-k engines (token/head + local-V).
    pub topk: u64,
    /// prob·V multiplier array.
    pub pv: u64,
    /// DRAM (slowest-channel busy time).
    pub dram: u64,
}

/// Everything one run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// End-to-end cycles.
    pub total_cycles: u64,
    /// Core clock used, GHz.
    pub clock_ghz: f64,
    /// Per-module busy totals.
    pub modules: ModuleCycles,
    /// Event counts for energy accounting.
    pub counts: EventCounts,
    /// DRAM bytes actually moved.
    pub dram_bytes: u64,
    /// DRAM bytes an unpruned full-precision (fp32) run would move — the
    /// traffic a GPU-style baseline pays, which is the reference the
    /// paper's 10× DRAM-reduction headline uses (3.8× token × 1.1× head ×
    /// 5.1× quantization only multiplies out from a 32-bit baseline).
    pub dense_dram_bytes: u64,
    /// FLOPs actually performed.
    pub flops: u64,
    /// FLOPs an unpruned run would perform (attention core only).
    pub dense_flops: u64,
    /// Fraction of queries that refetched LSBs.
    pub lsb_fraction: f64,
    /// `(layer, tokens kept, heads kept)` at the end of summarization.
    pub survivors: Vec<(usize, usize, usize)>,
}

impl RunReport {
    /// Wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.total_cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Achieved TFLOP/s.
    pub fn tflops(&self) -> f64 {
        self.flops as f64 / self.seconds() / 1e12
    }

    /// DRAM-access reduction vs. the dense 12-bit run.
    pub fn dram_reduction(&self) -> f64 {
        self.dense_dram_bytes as f64 / self.dram_bytes.max(1) as f64
    }

    /// Computation reduction vs. the dense run.
    pub fn computation_reduction(&self) -> f64 {
        self.dense_flops as f64 / self.flops.max(1) as f64
    }

    /// Operational intensity in FLOPs per DRAM byte (roofline x-axis).
    pub fn operational_intensity(&self) -> f64 {
        self.flops as f64 / self.dram_bytes.max(1) as f64
    }

    /// Energy under an [`EnergyModel`].
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.energy(&self.counts)
    }

    /// Power under an [`EnergyModel`].
    pub fn power(&self, model: &EnergyModel) -> PowerReport {
        model.power(&self.counts, self.total_cycles, self.clock_ghz)
    }
}

/// One layer's worth of per-module work, accumulated into the report.
struct LayerTally {
    qk: u64,
    softmax: u64,
    topk: u64,
    pv: u64,
}

struct Sim<'a> {
    cfg: &'a SpAttenConfig,
    w: &'a Workload,
    hbm: Hbm,
    engine: TopkEngine,
    controller: ProgressiveController,
    rng: StdRng,
    counts: EventCounts,
    modules: ModuleCycles,
    total_cycles: u64,
    dram_bytes: u64,
    flops: u64,
    survivors: Vec<(usize, usize, usize)>,
    k_sram: Sram,
    addr_cursor: u64,
    /// `(way, ways)` of a tensor-parallel head split, if this instance
    /// models one shard. Splits the once-per-layer token-pruning top-k
    /// into a hierarchical selection over the shard's slice of candidate
    /// tokens (each shard ranks its share, the merge rides the all-reduce).
    shard: Option<(usize, usize)>,
}

/// Pipeline-fill constant per layer (module latencies paid once).
const LAYER_FILL_CYCLES: u64 = 64;

impl<'a> Sim<'a> {
    fn new(cfg: &'a SpAttenConfig, w: &'a Workload) -> Self {
        Self {
            cfg,
            w,
            hbm: Hbm::new(cfg.hbm),
            engine: TopkEngine::new(cfg.topk_parallelism, w.seed),
            controller: ProgressiveController::new(w.quant),
            rng: StdRng::seed_from_u64(w.seed ^ 0x9E3779B97F4A7C15),
            counts: EventCounts::new(),
            modules: ModuleCycles::default(),
            total_cycles: 0,
            dram_bytes: 0,
            flops: 0,
            survivors: Vec::new(),
            k_sram: Sram::new("key", cfg.kv_sram_bytes, 768, true),
            addr_cursor: 0,
            shard: None,
        }
    }

    fn trees(&self) -> u64 {
        (self.cfg.multipliers_per_array / self.w.model.head_dim()).max(1) as u64
    }

    fn tokens_kept(&self, layer: usize, current_len: usize) -> usize {
        if !self.cfg.token_pruning {
            return current_len;
        }
        let keep = self.w.pruning.token_keep_at(layer, self.w.model.layers);
        ((current_len as f64) * keep).round().max(2.0) as usize
    }

    fn heads_kept(&self, layer: usize) -> usize {
        if !self.cfg.head_pruning {
            return self.w.model.heads;
        }
        let keep = self.w.pruning.head_keep_at(layer, self.w.model.layers);
        ((self.w.model.heads as f64) * keep).round().max(1.0) as usize
    }

    /// Enqueues `tokens` scattered token-rows of `bytes_per_token` each,
    /// spread over an original range of `span` tokens (pruning scatter).
    fn enqueue_scattered(&mut self, tokens: usize, span: usize, bytes_per_token: u64) {
        let base = self.addr_cursor;
        let span = span.max(tokens).max(1);
        for i in 0..tokens {
            let original_slot = (i * span) / tokens.max(1);
            self.hbm.enqueue(Request {
                addr: base + original_slot as u64 * bytes_per_token,
                bytes: bytes_per_token,
                kind: RequestKind::Read,
            });
        }
        self.counts.xbar_requests += tokens as u64;
        self.addr_cursor = base + span as u64 * bytes_per_token;
    }

    fn drain_dram(&mut self) -> u64 {
        let stats = self.hbm.drain();
        self.counts.dram_read_bits += stats.read_bytes * 8;
        self.counts.dram_write_bits += stats.write_bytes * 8;
        self.counts.dram_activations += stats.activations;
        self.counts.fifo_bits += (stats.read_bytes + stats.write_bytes) * 8;
        self.dram_bytes += stats.read_bytes + stats.write_bytes;
        stats.cycles
    }

    /// Steady-state interval of the local-V top-k on rows of length `l1`,
    /// measured on a sampled synthetic score vector (two samples averaged).
    fn local_topk_interval(&mut self, l1: usize, keep: usize) -> (u64, u64) {
        let mut total = 0u64;
        let mut comparisons = 0u64;
        for s in 0..2u64 {
            let scores = synth::synthetic_scores(l1, &[], 0.0, self.w.seed ^ (l1 as u64) ^ s);
            let r = self.engine.select(&scores, keep);
            total += self.engine.steady_interval(&r, l1);
            comparisons += r.visits + l1 as u64;
        }
        (total / 2, comparisons / 2)
    }

    /// Simulates one attention layer: `l0` queries against `l1` keys with
    /// `heads` active heads. `kv_in_sram` distinguishes summarization
    /// (K/V prefetched and reused) from generation (K/V streamed from DRAM
    /// every iteration). `out_cols` is the width (in elements) of the
    /// activation slice this datapath instance owns — the full model
    /// hidden size on a single chip, or `head_dim × shard heads` for a
    /// tensor-parallel shard, which scales the new-token Q/K/V fetch and
    /// the attention-out writeback so that shard costs sum to the
    /// unsharded cost. Returns the layer's compute-bottleneck and DRAM
    /// busy cycles; pipelined modules overlap, so the layer's serial time
    /// is `max(compute, dram) + LAYER_FILL_CYCLES`.
    fn attention_layer(
        &mut self,
        l0: usize,
        l1: usize,
        heads: usize,
        kv_in_sram: bool,
        out_cols: usize,
    ) -> (u64, u64) {
        let d = self.w.model.head_dim();
        let trees = self.trees();
        let sm_par = self.cfg.softmax_parallelism as u64;
        let msb_bits = u64::from(self.controller.eager_bits());
        let lsb_bits = u64::from(self.w.quant.scheme.lsb_bits());
        let hidden_active = (d * heads) as u64;

        // --- Local value pruning target. ---
        let local_keep = if self.cfg.local_value_pruning {
            ((l1 as f64) * self.w.pruning.local_value_keep).ceil() as usize
        } else {
            l1
        };

        // --- DRAM traffic. ---
        let bytes_per_token_plane = |bits: u64| (hidden_active * bits).div_ceil(8);
        if kv_in_sram {
            // Summarization: Q, K, V fetched once per layer; K/V reused
            // across queries from SRAM. If the K buffer can't hold all of
            // one head's keys, K/V are re-streamed per overflow factor.
            let tokens_fit = self.k_sram.token_capacity((d as u64) * 12) as usize;
            let refetch = l1.div_ceil(tokens_fit.max(1)) as u64;
            for _ in 0..refetch {
                self.enqueue_scattered(l1, self.original_span(l1), bytes_per_token_plane(msb_bits));
                self.enqueue_scattered(l1, self.original_span(l1), bytes_per_token_plane(msb_bits));
            }
            // Q plane + attention-out writeback at on-chip precision.
            self.enqueue_scattered(l0, self.original_span(l0), bytes_per_token_plane(msb_bits));
            self.hbm.enqueue(Request {
                addr: self.addr_cursor,
                bytes: l0 as u64 * (out_cols as u64 * 12).div_ceil(8),
                kind: RequestKind::Write,
            });
            self.addr_cursor += (l0 * out_cols * 2) as u64;
            // SRAM fills.
            self.counts.sram_bits += 2 * l1 as u64 * hidden_active * 12;
        } else {
            // Generation: K streamed for every query; V only for the
            // locally-unpruned rows; plus the new token's own Q/K/V.
            self.enqueue_scattered(l1, self.original_span(l1), bytes_per_token_plane(msb_bits));
            self.enqueue_scattered(
                local_keep,
                self.original_span(l1),
                bytes_per_token_plane(msb_bits),
            );
            self.hbm.enqueue(Request {
                addr: self.addr_cursor,
                bytes: 3 * (out_cols as u64 * msb_bits).div_ceil(8),
                kind: RequestKind::Read,
            });
            self.addr_cursor += (3 * out_cols * 2) as u64;
            self.hbm.enqueue(Request {
                addr: self.addr_cursor,
                bytes: (out_cols as u64 * 12).div_ceil(8),
                kind: RequestKind::Write,
            });
            self.addr_cursor += (out_cols * 2) as u64;
        }

        // --- Compute: per-query module intervals, summed over queries and
        //     heads (heads processed sequentially, queries pipelined). ---
        let qk_ii = (l1 as u64).div_ceil(trees);
        let sm_ii = (l1 as u64).div_ceil(sm_par) + 1;
        let pv_ii = (local_keep as u64).div_ceil(trees);
        let (tk_ii, tk_cmps) = if self.cfg.local_value_pruning {
            self.local_topk_interval(l1, local_keep)
        } else {
            (0, 0)
        };

        // Progressive quantization: some queries refetch LSBs + recompute.
        let mut lsb_queries = 0u64;
        if self.controller.policy().progressive {
            for _ in 0..l0 {
                let max_prob = if self.rng.gen::<f64>() < FLAT_QUERY_FRACTION {
                    0.02 // flat row
                } else {
                    0.6 // dominated row
                };
                if self.controller.decide(max_prob) {
                    lsb_queries += 1;
                }
            }
            if lsb_queries > 0 {
                // K LSB planes for the flagged queries.
                self.enqueue_scattered(
                    l1,
                    self.original_span(l1),
                    (hidden_active * lsb_bits).div_ceil(8),
                );
            }
        } else {
            // Static quantization: decisions still counted for stats.
            for _ in 0..l0 {
                self.controller.decide(1.0);
            }
        }

        let queries = l0 as u64;
        let recompute = lsb_queries; // extra QK+softmax evaluations
        let mut tally = LayerTally {
            qk: queries * qk_ii * heads as u64 + recompute * qk_ii * heads as u64,
            softmax: queries * sm_ii * heads as u64 + recompute * sm_ii * heads as u64,
            topk: queries * tk_ii * heads as u64,
            pv: queries * pv_ii * heads as u64,
        };

        // Token-pruning + head-pruning top-k: once per layer on the
        // cumulative scores (reusing the same engine, §IV-B). A
        // tensor-parallel shard ranks only its slice of the candidate set.
        let tp_l1 = match self.shard {
            Some((way, ways)) => shard_heads(l1, way, ways),
            None => l1,
        };
        if self.cfg.token_pruning && tp_l1 > 2 {
            let scores =
                synth::synthetic_scores(tp_l1, &[], 0.0, self.w.seed ^ 0xABCD ^ tp_l1 as u64);
            let r = self.engine.select(&scores, (tp_l1 * 3) / 4);
            tally.topk += r.cycles;
            self.counts.topk_comparisons += r.visits + tp_l1 as u64;
        }
        if self.cfg.head_pruning {
            tally.topk += 4; // h ≤ 16: single-beat selection
        }

        // --- Event counts. ---
        let hq = heads as u64 * queries;
        self.counts.qk_macs += hq * (l1 * d) as u64 + recompute * heads as u64 * (l1 * d) as u64;
        self.counts.pv_macs += hq * (local_keep * d) as u64;
        self.counts.softmax_fmas += hq * l1 as u64 * 6;
        self.counts.softmax_divs += hq * l1 as u64;
        self.counts.topk_comparisons += hq * tk_cmps;
        // K rows re-read from SRAM for every query during summarization.
        if kv_in_sram {
            self.counts.sram_bits += hq * ((l1 + local_keep) * d) as u64 * 12;
        }
        self.flops += 2 * (hq * (l1 * d) as u64 + hq * (local_keep * d) as u64)
            + recompute * heads as u64 * 2 * (l1 * d) as u64;

        // --- Layer time: pipelined modules overlap; DRAM overlaps too. ---
        let dram_cycles = self.drain_dram();
        self.modules.qk += tally.qk;
        self.modules.softmax += tally.softmax;
        self.modules.topk += tally.topk;
        self.modules.pv += tally.pv;
        self.modules.dram += dram_cycles;

        let compute = tally.qk.max(tally.softmax).max(tally.topk).max(tally.pv);
        (compute, dram_cycles)
    }

    /// Serial cycles of one layer given its compute/DRAM split.
    fn layer_serial(compute: u64, dram: u64) -> u64 {
        compute.max(dram) + LAYER_FILL_CYCLES
    }

    /// The original-token span that `kept` survivors are scattered over.
    fn original_span(&self, kept: usize) -> usize {
        let orig = self.w.seq_len + self.w.gen_steps;
        orig.max(kept)
    }

    fn run(mut self) -> RunReport {
        let layers = self.w.model.layers;
        let full_heads = self.w.model.heads;

        // --- Summarization stage. ---
        //
        // Measurement protocol follows the paper (§V-A): discriminative
        // tasks measure the summarization pass; generative tasks measure
        // *the latency of generating `gen_steps` tokens* from the initial
        // context — the prompt pass is not part of the reported latency.
        if self.w.gen_steps == 0 {
            let mut len = self.w.seq_len;
            for layer in 0..layers {
                let heads = self.heads_kept(layer);
                let kept = self.tokens_kept(layer, self.w.seq_len).min(len);
                // Cascade: the layer computes on the *incoming* token set,
                // the pruning decision takes effect for the next layer.
                let hidden = self.w.model.hidden;
                let (compute, dram) = self.attention_layer(len, len, heads, true, hidden);
                self.total_cycles += Self::layer_serial(compute, dram);
                self.survivors.push((layer, kept, heads));
                len = kept;
            }
        } else {
            // Record the survivor schedule the generation stage inherits.
            for layer in 0..layers {
                self.survivors.push((
                    layer,
                    self.tokens_kept(layer, self.w.seq_len),
                    self.heads_kept(layer),
                ));
            }
        }

        // --- Generation stage. ---
        for step in 0..self.w.gen_steps {
            let ctx = self.w.seq_len + step + 1;
            for layer in 0..layers {
                let heads = self.heads_kept(layer);
                let kept = self.tokens_kept(layer, ctx);
                let hidden = self.w.model.hidden;
                let (compute, dram) = self.attention_layer(1, kept, heads, false, hidden);
                self.total_cycles += Self::layer_serial(compute, dram);
            }
        }

        // --- Dense baselines for the reduction factors. ---
        let model = self.w.model;
        let mut dense_flops = 0u64;
        let mut dense_bytes = 0u64;
        let hidden = model.hidden as u64;
        const DENSE_BITS: u64 = 32; // fp32 GPU-style baseline traffic
        if self.w.gen_steps == 0 {
            for _ in 0..layers {
                dense_flops +=
                    model.attention_core_flops(self.w.seq_len, self.w.seq_len, full_heads);
                dense_bytes += (3 * self.w.seq_len as u64 * hidden * DENSE_BITS).div_ceil(8)
                    + (self.w.seq_len as u64 * hidden * DENSE_BITS).div_ceil(8);
            }
        }
        for step in 0..self.w.gen_steps {
            let ctx = self.w.seq_len + step + 1;
            dense_flops += (layers as u64) * model.attention_core_flops(1, ctx, full_heads);
            dense_bytes += (layers as u64)
                * ((2 * ctx as u64 * hidden * DENSE_BITS).div_ceil(8)
                    + (4 * hidden * DENSE_BITS).div_ceil(8));
        }

        RunReport {
            workload: self.w.name.clone(),
            total_cycles: self.total_cycles,
            clock_ghz: self.cfg.clock_ghz,
            modules: self.modules,
            counts: self.counts,
            dram_bytes: self.dram_bytes,
            dense_dram_bytes: dense_bytes,
            flops: self.flops,
            dense_flops,
            lsb_fraction: self.controller.stats().lsb_fraction(),
            survivors: self.survivors,
        }
    }
}

/// Runs the cycle-level model for one workload.
pub fn simulate(cfg: &SpAttenConfig, workload: &Workload) -> RunReport {
    let _ = MultArray::new(cfg.multipliers_per_array); // validate config
    Sim::new(cfg, workload).run()
}

/// The number of heads out of `total` owned by shard `way` of a `ways`-way
/// tensor-parallel split: heads are dealt out one at a time, so the shard
/// counts partition `total` exactly (`Σ_way shard_heads = total`) for any
/// `ways`, including when `total` doesn't divide evenly.
///
/// # Panics
///
/// Panics if `ways` is zero or `way >= ways`.
pub fn shard_heads(total: usize, way: usize, ways: usize) -> usize {
    assert!(ways > 0, "tensor-parallel split needs at least one way");
    assert!(way < ways, "shard {way} out of {ways} ways");
    total / ways + usize::from(way < total % ways)
}

/// The attention slice one shard executes: a contiguous layer range (the
/// whole model for tensor parallelism, one pipeline stage otherwise) and an
/// optional `(way, ways)` head split within those layers.
fn slice_cost(
    cfg: &SpAttenConfig,
    w: &Workload,
    layers: std::ops::Range<usize>,
    context: Option<usize>,
    split: Option<(usize, usize)>,
) -> StepCost {
    let _ = MultArray::new(cfg.multipliers_per_array); // validate config
    assert!(
        layers.end <= w.model.layers,
        "layer range {layers:?} out of {} layers",
        w.model.layers
    );
    let d = w.model.head_dim();
    let mut sim = Sim::new(cfg, w);
    sim.shard = split;
    let mut total = StepCost::default();
    let mut len = w.seq_len;
    for layer in 0..layers.end {
        let heads = sim.heads_kept(layer);
        let kept = sim.tokens_kept(layer, context.unwrap_or(w.seq_len).max(1));
        let in_range = layer >= layers.start;
        if in_range {
            let (shard, out_cols) = match split {
                Some((way, ways)) => {
                    let s = shard_heads(heads, way, ways);
                    (s, s * d)
                }
                None => (heads, w.model.hidden),
            };
            // A shard that drew zero heads at this layer (more ways than
            // surviving heads) contributes nothing and waits at the
            // all-reduce — its peers' costs carry the layer.
            if shard > 0 {
                let (compute, dram) = match context {
                    Some(_) => sim.attention_layer(1, kept, shard, false, out_cols),
                    None => sim.attention_layer(len, len, shard, true, out_cols),
                };
                total.add(StepCost {
                    compute_cycles: compute,
                    dram_cycles: dram,
                    weight_dram_cycles: 0,
                    serial_cycles: Sim::layer_serial(compute, dram),
                });
            }
        }
        // Prefill length cascade: chain survivor counts even through the
        // layers before the range so a pipeline stage sees the token set
        // its upstream stages hand it.
        len = sim.tokens_kept(layer, w.seq_len).min(len);
    }
    total
}

/// Cost of the summarization (prefill) pass over `w.seq_len` tokens,
/// independent of `w.gen_steps`.
///
/// For discriminative workloads this is the whole job; for generative ones
/// it is the context pass a serving system must execute before the first
/// token can be emitted (the paper's own latency protocol excludes it, but
/// a fleet simulator cannot). Deterministic for a fixed `(cfg, w)`.
pub fn prefill_cost(cfg: &SpAttenConfig, w: &Workload) -> StepCost {
    // Normalize away the generation stage so the advertised independence
    // from `gen_steps` actually holds (`Sim::original_span` would
    // otherwise scatter prefill reads over the final context).
    let w = Workload {
        gen_steps: 0,
        ..w.clone()
    };
    slice_cost(cfg, &w, 0..w.model.layers, None, None)
}

/// Cost of generating *one* token with a KV context of `context` tokens
/// (pre-pruning), walking all layers with the workload's pruning schedule —
/// the incremental query a continuous-batching scheduler issues per
/// iteration. Deterministic for a fixed `(cfg, w, context)`.
pub fn decode_step_cost(cfg: &SpAttenConfig, w: &Workload, context: usize) -> StepCost {
    slice_cost(cfg, w, 0..w.model.layers, Some(context), None)
}

/// Prefill cost of shard `way` of a `ways`-way tensor-parallel split:
/// every layer, but only this shard's share of the surviving heads (and
/// the matching slice of Q/K/V traffic and attention-out writeback).
/// Shard costs partition the unsharded [`prefill_cost`] up to HBM scatter
/// effects; the per-layer all-reduce that stitches the shards back
/// together is the interconnect's to charge, not this function's.
pub fn prefill_cost_heads(cfg: &SpAttenConfig, w: &Workload, way: usize, ways: usize) -> StepCost {
    let w = Workload {
        gen_steps: 0,
        ..w.clone()
    };
    slice_cost(cfg, &w, 0..w.model.layers, None, Some((way, ways)))
}

/// Decode-step cost of shard `way` of a `ways`-way tensor-parallel split
/// at a (pre-pruning) KV context of `context` tokens. See
/// [`prefill_cost_heads`] for the sharding semantics.
pub fn decode_step_cost_heads(
    cfg: &SpAttenConfig,
    w: &Workload,
    context: usize,
    way: usize,
    ways: usize,
) -> StepCost {
    slice_cost(cfg, w, 0..w.model.layers, Some(context), Some((way, ways)))
}

/// Prefill cost of the pipeline stage owning `layers`: all heads, that
/// layer range only. The incoming token set is the survivor cascade of the
/// layers upstream of the range, so stage costs over a partition of
/// `0..w.model.layers` sum to the unsharded [`prefill_cost`] (up to HBM
/// scatter effects).
pub fn prefill_cost_layers(
    cfg: &SpAttenConfig,
    w: &Workload,
    layers: std::ops::Range<usize>,
) -> StepCost {
    let w = Workload {
        gen_steps: 0,
        ..w.clone()
    };
    slice_cost(cfg, &w, layers, None, None)
}

/// Decode-step cost of the pipeline stage owning `layers` at a
/// (pre-pruning) KV context of `context` tokens.
pub fn decode_step_cost_layers(
    cfg: &SpAttenConfig,
    w: &Workload,
    context: usize,
    layers: std::ops::Range<usize>,
) -> StepCost {
    slice_cost(cfg, w, layers, Some(context), None)
}

/// Tokens surviving cascade pruning at `layer` out of an incoming set of
/// `len`, under `cfg`'s pruning switches and `w`'s keep schedule. Layer
/// `w.model.layers - 1` is the deepest (smallest) survivor set — the KV
/// working set a serving scheduler packs into SRAM.
pub fn surviving_tokens(cfg: &SpAttenConfig, w: &Workload, layer: usize, len: usize) -> usize {
    Sim::new(cfg, w).tokens_kept(layer, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_workloads::Benchmark;

    fn run(id: &str) -> RunReport {
        let b = Benchmark::by_id(id).expect("benchmark exists");
        Accel().run(&b.workload())
    }

    #[allow(non_snake_case)]
    fn Accel() -> crate::accelerator::Accelerator {
        crate::accelerator::Accelerator::new(SpAttenConfig::default())
    }

    #[test]
    fn bert_is_compute_bound() {
        let r = run("bert-base-sst-2");
        assert!(
            r.modules.qk.max(r.modules.softmax).max(r.modules.topk) > r.modules.dram,
            "BERT should be compute-bound: {:?}",
            r.modules
        );
        // Paper: 1.61 TFLOPS on BERT (computation roof 2.048). Accept a
        // generous band around that.
        let t = r.tflops();
        assert!((0.4..2.1).contains(&t), "BERT TFLOPS {t}");
    }

    #[test]
    fn gpt2_is_memory_bound() {
        let r = run("gpt2-small-wikitext2");
        assert!(
            r.modules.dram > r.modules.qk,
            "GPT-2 generation should be memory-bound: {:?}",
            r.modules
        );
        // Paper: 0.43 TFLOPS on GPT-2.
        let t = r.tflops();
        assert!((0.05..1.0).contains(&t), "GPT-2 TFLOPS {t}");
    }

    #[test]
    fn pruning_reduces_dram_traffic_substantially() {
        let b = Benchmark::gpt2_small_wikitext2();
        let r = Accel().run(&b.workload());
        // Paper: ~21× on GPT-2 from a GPU-precision baseline (3.8× token ×
        // 1.1× head × 5.1× quantization).
        let red = r.dram_reduction();
        assert!((8.0..35.0).contains(&red), "DRAM reduction {red}");
    }

    #[test]
    fn dense_config_moves_more_data() {
        let b = Benchmark::gpt2_small_wikitext2();
        let mut w = b.workload();
        w.quant = spatten_workloads::QuantPolicy::full_precision();
        w.pruning = spatten_workloads::PruningSpec::dense();
        let dense = Accel().run(&w);
        let pruned = Accel().run(&b.workload());
        assert!(dense.dram_bytes > 3 * pruned.dram_bytes);
        assert!(dense.total_cycles > pruned.total_cycles);
    }

    #[test]
    fn lsb_fraction_matches_calibration() {
        let r = run("gpt2-small-wikitext2");
        assert!(
            (0.01..0.15).contains(&r.lsb_fraction),
            "LSB fraction {} should sit near the paper's 5.9 %",
            r.lsb_fraction
        );
    }

    #[test]
    fn bert_uses_no_lsb() {
        let r = run("bert-base-cola");
        assert_eq!(r.lsb_fraction, 0.0);
    }

    #[test]
    fn survivors_shrink_monotonically() {
        let r = run("bert-base-squad-v1");
        let mut prev = usize::MAX;
        for &(_, tokens, _) in &r.survivors {
            assert!(tokens <= prev);
            prev = tokens;
        }
        let first = r.survivors.first().unwrap().1;
        let last = r.survivors.last().unwrap().1;
        assert!(last < first, "deep layers must hold fewer tokens");
    }

    #[test]
    fn disabling_token_pruning_increases_cycles() {
        let b = Benchmark::gpt2_small_wikitext2();
        let w = b.workload();
        let cfg = SpAttenConfig::default();
        let on = Accelerator_run(&cfg, &w);
        let cfg = SpAttenConfig {
            token_pruning: false,
            ..cfg
        };
        let off = Accelerator_run(&cfg, &w);
        assert!(
            off.total_cycles as f64 > on.total_cycles as f64 * 1.5,
            "token pruning should matter: on {} off {}",
            on.total_cycles,
            off.total_cycles
        );
    }

    #[allow(non_snake_case)]
    fn Accelerator_run(cfg: &SpAttenConfig, w: &spatten_workloads::Workload) -> RunReport {
        crate::accelerator::Accelerator::new(*cfg).run(w)
    }

    #[test]
    fn serial_topk_slows_the_pipeline() {
        // Fig. 20: the high-parallelism engine is worth ~3× on GPT-2 —
        // without it top-k becomes the bottleneck. Compare P=1 vs P=16 on a
        // compute-bound BERT task where top-k is on the critical path.
        let b = Benchmark::by_id("bert-base-squad-v1").unwrap();
        let w = b.workload();
        let slow_cfg = SpAttenConfig {
            topk_parallelism: 1,
            ..SpAttenConfig::default()
        };
        let slow = Accelerator_run(&slow_cfg, &w);
        let fast_cfg = SpAttenConfig {
            topk_parallelism: 16,
            ..slow_cfg
        };
        let fast = Accelerator_run(&fast_cfg, &w);
        assert!(
            slow.total_cycles as f64 > 2.0 * fast.total_cycles as f64,
            "P=1 {} vs P=16 {}",
            slow.total_cycles,
            fast.total_cycles
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let b = Benchmark::bert_base_sst2();
        let a = Accel().run(&b.workload());
        let c = Accel().run(&b.workload());
        assert_eq!(a.total_cycles, c.total_cycles);
        assert_eq!(a.dram_bytes, c.dram_bytes);
    }

    #[test]
    fn shard_heads_partition_total() {
        for total in [1usize, 3, 12, 16] {
            for ways in 1..=8usize {
                let sum: usize = (0..ways).map(|way| shard_heads(total, way, ways)).sum();
                assert_eq!(sum, total, "total {total} ways {ways}");
            }
        }
    }

    #[test]
    fn tensor_parallel_decode_shards_sum_near_unsharded() {
        let cfg = SpAttenConfig::default();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let whole = decode_step_cost(&cfg, &w, 512);
        for ways in [2usize, 4] {
            let mut sum = StepCost::default();
            for way in 0..ways {
                sum.add(decode_step_cost_heads(&cfg, &w, 512, way, ways));
            }
            let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / b.max(1) as f64;
            assert!(
                rel(sum.compute_cycles, whole.compute_cycles) < 0.25,
                "{ways}-way compute {} vs {}",
                sum.compute_cycles,
                whole.compute_cycles
            );
            assert!(
                rel(sum.dram_cycles, whole.dram_cycles) < 0.25,
                "{ways}-way dram {} vs {}",
                sum.dram_cycles,
                whole.dram_cycles
            );
        }
    }

    #[test]
    fn tensor_parallel_shard_is_cheaper_than_whole() {
        let cfg = SpAttenConfig::default();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let whole = decode_step_cost(&cfg, &w, 256);
        let shard = decode_step_cost_heads(&cfg, &w, 256, 0, 4);
        assert!(shard.serial_cycles < whole.serial_cycles);
        assert!(shard.dram_cycles < whole.dram_cycles);
    }

    #[test]
    fn pipeline_stages_sum_to_whole_prefill() {
        let cfg = SpAttenConfig::default();
        let mut w = Benchmark::bert_base_sst2().workload();
        w.seq_len = 128;
        let whole = prefill_cost(&cfg, &w);
        let layers = w.model.layers;
        let mut sum = StepCost::default();
        for range in [0..layers / 2, layers / 2..layers] {
            sum.add(prefill_cost_layers(&cfg, &w, range));
        }
        let rel = (sum.serial_cycles as f64 - whole.serial_cycles as f64).abs()
            / whole.serial_cycles as f64;
        assert!(
            rel < 0.05,
            "stage sum {} vs whole {}",
            sum.serial_cycles,
            whole.serial_cycles
        );
    }

    #[test]
    fn decode_layer_ranges_partition_the_step() {
        let cfg = SpAttenConfig::default();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let whole = decode_step_cost(&cfg, &w, 300);
        let layers = w.model.layers;
        let mut sum = StepCost::default();
        for range in [0..3, 3..7, 7..layers] {
            sum.add(decode_step_cost_layers(&cfg, &w, 300, range));
        }
        let rel = (sum.compute_cycles as f64 - whole.compute_cycles as f64).abs()
            / whole.compute_cycles as f64;
        assert!(
            rel < 0.10,
            "stage sum {} vs whole {}",
            sum.compute_cycles,
            whole.compute_cycles
        );
    }

    #[test]
    fn operational_intensity_separates_bert_from_gpt2() {
        let bert = run("bert-base-sst-2");
        let gpt2 = run("gpt2-small-wikitext2");
        assert!(
            bert.operational_intensity() > gpt2.operational_intensity(),
            "BERT {} vs GPT-2 {}",
            bert.operational_intensity(),
            gpt2.operational_intensity()
        );
    }
}
