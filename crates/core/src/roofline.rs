//! Roofline analysis (paper Fig. 18).
//!
//! SpAtten's computation roof is 2 TFLOPS (1024 multipliers at 1 GHz) and
//! its bandwidth roof 512 GB/s. BERT sits in the compute-bound region
//! (achieving 1.61 TFLOPS in the paper), GPT-2 generation in the
//! memory-bound region (0.43 TFLOPS).

use crate::accelerator::SpAttenConfig;
use crate::perf::RunReport;
use serde::{Deserialize, Serialize};

/// One point on the roofline plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Workload name.
    pub name: String,
    /// Operational intensity (FLOPs / DRAM byte).
    pub intensity: f64,
    /// Achieved TFLOP/s.
    pub achieved_tflops: f64,
    /// The roof at this intensity, TFLOP/s.
    pub roof_tflops: f64,
}

impl RooflinePoint {
    /// Builds the point for a run under a configuration.
    pub fn from_report(cfg: &SpAttenConfig, report: &RunReport) -> Self {
        let intensity = report.operational_intensity();
        Self {
            name: report.workload.clone(),
            intensity,
            achieved_tflops: report.tflops(),
            roof_tflops: roof_tflops(cfg, intensity),
        }
    }

    /// Whether the workload sits in the memory-bound region (the bandwidth
    /// roof is below the computation roof at its intensity).
    pub fn is_memory_bound(&self, cfg: &SpAttenConfig) -> bool {
        self.intensity * cfg.peak_bandwidth() < cfg.peak_flops()
    }

    /// Fraction of the roof actually achieved.
    pub fn roof_utilization(&self) -> f64 {
        self.achieved_tflops / self.roof_tflops
    }
}

/// The roofline: `min(compute roof, bandwidth × intensity)` in TFLOP/s.
pub fn roof_tflops(cfg: &SpAttenConfig, intensity: f64) -> f64 {
    (cfg.peak_flops().min(cfg.peak_bandwidth() * intensity)) / 1e12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use spatten_workloads::Benchmark;

    #[test]
    fn roof_is_min_of_two_bounds() {
        let cfg = SpAttenConfig::default();
        // Very low intensity: bandwidth-limited.
        assert!((roof_tflops(&cfg, 0.5) - 0.256).abs() < 1e-6);
        // Very high intensity: compute-limited at 2.048 TFLOPS.
        assert!((roof_tflops(&cfg, 100.0) - 2.048).abs() < 1e-6);
    }

    #[test]
    fn bert_point_is_compute_bound_gpt2_memory_bound() {
        let cfg = SpAttenConfig::default();
        let accel = Accelerator::new(cfg);
        let bert =
            RooflinePoint::from_report(&cfg, &accel.run(&Benchmark::bert_base_sst2().workload()));
        let gpt2 = RooflinePoint::from_report(
            &cfg,
            &accel.run(&Benchmark::gpt2_small_wikitext2().workload()),
        );
        assert!(
            !bert.is_memory_bound(&cfg),
            "BERT intensity {}",
            bert.intensity
        );
        assert!(
            gpt2.is_memory_bound(&cfg),
            "GPT-2 intensity {}",
            gpt2.intensity
        );
    }

    #[test]
    fn achieved_never_exceeds_roof_by_much() {
        let cfg = SpAttenConfig::default();
        let accel = Accelerator::new(cfg);
        for b in [
            Benchmark::bert_base_sst2(),
            Benchmark::gpt2_small_wikitext2(),
        ] {
            let p = RooflinePoint::from_report(&cfg, &accel.run(&b.workload()));
            assert!(
                p.roof_utilization() < 1.1,
                "{} exceeds its roof: {}",
                p.name,
                p.roof_utilization()
            );
        }
    }
}
