//! The SpAtten accelerator model — the paper's primary contribution.
//!
//! SpAtten (HPCA 2021) is an algorithm-architecture co-design for sparse,
//! quantized attention. This crate ties the substrates together into the
//! complete system:
//!
//! * [`importance`] — cumulative token/head importance scores (Algorithm 2).
//! * [`pruner`] — [`CascadePruner`], an
//!   [`AttentionObserver`](spatten_nn::AttentionObserver) implementing
//!   cascade token pruning, cascade head pruning and the per-layer keep
//!   schedule; drives real model forward passes for the accuracy and
//!   interpretability experiments.
//! * [`progressive`] — the progressive-quantization controller (MSB-first
//!   fetch, max-probability comparator, LSB refetch).
//! * [`perf`] — the cycle-level performance model: walks a workload layer
//!   by layer, head by head through the `spatten-arch` modules and the
//!   `spatten-hbm` memory system and produces a [`RunReport`].
//! * [`accelerator`] — [`Accelerator`] (configuration + entry points) and
//!   [`SpAttenConfig`] (Table I defaults, ablation switches, the 1/8-scale
//!   variant of Table III).
//! * [`e2e`] — SpAtten-e2e: the FFN/FC extension used for end-to-end
//!   GPT-2 comparisons (Fig. 15, Table IV).
//! * [`interpret`] — token-level pruning traces for the Fig. 22/23
//!   visualizations.
//! * [`ablation`] — the Fig. 20 technique-by-technique ladder as an API.
//! * [`memaug`] — the paper's future-work extension: token pruning
//!   generalized to memory-augmented networks (§VI-C).
//! * [`roofline`] — operational-intensity analysis (Fig. 18).

pub mod ablation;
pub mod accelerator;
pub mod e2e;
pub mod importance;
pub mod interpret;
pub mod memaug;
pub mod perf;
pub mod progressive;
pub mod pruner;
pub mod roofline;

pub use ablation::{ladder, run_rung, Rung};
pub use accelerator::{Accelerator, SpAttenConfig};
pub use e2e::{E2eReport, SpAttenE2e};
pub use importance::ImportanceAccumulator;
pub use interpret::{PruningTrace, TokenFate};
pub use memaug::MemoryBank;
pub use perf::{
    decode_step_cost, decode_step_cost_heads, decode_step_cost_layers, prefill_cost,
    prefill_cost_heads, prefill_cost_layers, shard_heads, surviving_tokens, ModuleCycles,
    RunReport, StepCost,
};
pub use progressive::ProgressiveController;
pub use pruner::CascadePruner;
pub use roofline::RooflinePoint;
