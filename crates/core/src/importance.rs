//! Cumulative token and head importance scores (paper Algorithm 2, Fig. 5).
//!
//! Token importance: attention probabilities are summed **vertically** (over
//! query rows) and accumulated across heads, layers, and — for generative
//! models — across generation iterations. Head importance: the absolute
//! magnitude of each head's output chunk, accumulated across layers.

use serde::{Deserialize, Serialize};
use spatten_nn::LayerRecord;

/// The accumulators for one inference (summarization + generation).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImportanceAccumulator {
    token_scores: Vec<f64>,
    head_scores: Vec<f64>,
}

impl ImportanceAccumulator {
    /// Fresh accumulators for `tokens` tokens and `heads` heads.
    pub fn new(tokens: usize, heads: usize) -> Self {
        Self {
            token_scores: vec![0.0; tokens],
            head_scores: vec![0.0; heads],
        }
    }

    /// Current cumulative token scores (indexed by original token id).
    pub fn token_scores(&self) -> &[f64] {
        &self.token_scores
    }

    /// Current cumulative head scores.
    pub fn head_scores(&self) -> &[f64] {
        &self.head_scores
    }

    /// Grows the token table when generation appends tokens.
    pub fn ensure_tokens(&mut self, tokens: usize) {
        if tokens > self.token_scores.len() {
            self.token_scores.resize(tokens, 0.0);
        }
    }

    /// Accumulates one layer's record: per head, column-sums of the
    /// attention probabilities land on the key tokens; the head's output
    /// magnitude lands on the head.
    ///
    /// # Panics
    ///
    /// Panics if the record references tokens/heads beyond the accumulator
    /// capacity (call [`Self::ensure_tokens`] first during generation).
    pub fn accumulate(&mut self, record: &LayerRecord) {
        for (slot, probs) in record.probs.iter().enumerate() {
            let head = record.head_ids[slot];
            self.head_scores[head] += f64::from(record.head_abs_sums[slot]);
            for row in 0..probs.rows() {
                for (col, &p) in probs.row(row).iter().enumerate() {
                    let token = record.key_token_ids[col];
                    self.token_scores[token] += f64::from(p);
                }
            }
        }
    }

    /// Scores of the given token ids, as f32 for the top-k engine.
    pub fn token_scores_for(&self, ids: &[usize]) -> Vec<f32> {
        ids.iter().map(|&i| self.token_scores[i] as f32).collect()
    }

    /// Scores of the given head ids, as f32 for the top-k engine.
    pub fn head_scores_for(&self, ids: &[usize]) -> Vec<f32> {
        ids.iter().map(|&i| self.head_scores[i] as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_nn::Matrix;

    fn record(
        layer: usize,
        probs: Vec<Matrix>,
        key_ids: Vec<usize>,
        sums: Vec<f32>,
    ) -> LayerRecord {
        let head_ids = (0..probs.len()).collect();
        LayerRecord {
            layer,
            probs,
            head_ids,
            query_token_ids: key_ids.clone(),
            key_token_ids: key_ids,
            head_abs_sums: sums,
        }
    }

    #[test]
    fn column_sums_accumulate_on_key_tokens() {
        let mut acc = ImportanceAccumulator::new(3, 1);
        // 2 queries × 3 keys; column sums = [0.3, 0.8, 0.9].
        let p = Matrix::from_vec(2, 3, vec![0.1, 0.4, 0.5, 0.2, 0.4, 0.4]);
        acc.accumulate(&record(0, vec![p], vec![0, 1, 2], vec![1.0]));
        let s = acc.token_scores();
        assert!((s[0] - 0.3).abs() < 1e-6);
        assert!((s[1] - 0.8).abs() < 1e-6);
        assert!((s[2] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn accumulation_respects_token_ids_after_pruning() {
        let mut acc = ImportanceAccumulator::new(4, 1);
        // Tokens 1 and 3 survive; their columns must land on ids 1 and 3.
        let p = Matrix::from_vec(1, 2, vec![0.25, 0.75]);
        acc.accumulate(&record(1, vec![p], vec![1, 3], vec![2.0]));
        let s = acc.token_scores();
        assert_eq!(s[0], 0.0);
        assert!((s[1] - 0.25).abs() < 1e-6);
        assert_eq!(s[2], 0.0);
        assert!((s[3] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn head_scores_accumulate_magnitudes() {
        let mut acc = ImportanceAccumulator::new(2, 3);
        let p0 = Matrix::from_vec(1, 2, vec![0.5, 0.5]);
        let p1 = Matrix::from_vec(1, 2, vec![0.5, 0.5]);
        let mut rec = record(0, vec![p0, p1], vec![0, 1], vec![3.0, 1.5]);
        rec.head_ids = vec![0, 2];
        acc.accumulate(&rec);
        assert_eq!(acc.head_scores(), &[3.0, 0.0, 1.5]);
    }

    #[test]
    fn scores_accumulate_across_layers() {
        let mut acc = ImportanceAccumulator::new(2, 1);
        let p = Matrix::from_vec(1, 2, vec![0.4, 0.6]);
        acc.accumulate(&record(0, vec![p.clone()], vec![0, 1], vec![1.0]));
        acc.accumulate(&record(1, vec![p], vec![0, 1], vec![1.0]));
        assert!((acc.token_scores()[1] - 1.2).abs() < 1e-6);
        assert!((acc.head_scores()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ensure_tokens_grows_without_losing_history() {
        let mut acc = ImportanceAccumulator::new(2, 1);
        let p = Matrix::from_vec(1, 2, vec![0.4, 0.6]);
        acc.accumulate(&record(0, vec![p], vec![0, 1], vec![1.0]));
        acc.ensure_tokens(4);
        assert_eq!(acc.token_scores().len(), 4);
        assert!((acc.token_scores()[1] - 0.6).abs() < 1e-6);
    }
}
