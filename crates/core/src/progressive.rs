//! The progressive-quantization controller (paper §III-D, Fig. 6).
//!
//! The Q-K-V fetcher eagerly brings in only the MSB planes. After the
//! softmax, the max attention probability is compared with a threshold;
//! below it (flat distribution → large quantization error), the LSB planes
//! are fetched and the attention probabilities recomputed — once. The
//! controller tracks how often that happens (paper: ≈ 5.9 % of inputs).

use serde::{Deserialize, Serialize};
use spatten_workloads::QuantPolicy;

/// Per-query decision statistics for progressive quantization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressiveStats {
    /// Queries evaluated.
    pub queries: u64,
    /// Queries that required the LSB refetch + recompute.
    pub lsb_fetches: u64,
}

impl ProgressiveStats {
    /// Fraction of queries that needed LSBs.
    pub fn lsb_fraction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.lsb_fetches as f64 / self.queries as f64
        }
    }
}

/// The controller: policy + statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressiveController {
    policy: QuantPolicy,
    stats: ProgressiveStats,
}

impl ProgressiveController {
    /// A controller for one task's policy.
    pub fn new(policy: QuantPolicy) -> Self {
        Self {
            policy,
            stats: ProgressiveStats::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> QuantPolicy {
        self.policy
    }

    /// Decision statistics so far.
    pub fn stats(&self) -> ProgressiveStats {
        self.stats
    }

    /// Bits fetched per element on the *eager* pass (MSB plane only).
    pub fn eager_bits(&self) -> u32 {
        self.policy.scheme.msb_bits()
    }

    /// Decides one query: given the max attention probability computed from
    /// MSBs, returns `true` if LSBs must be fetched and the query
    /// recomputed.
    pub fn decide(&mut self, max_prob: f32) -> bool {
        self.stats.queries += 1;
        let refetch = self.policy.progressive && max_prob < self.policy.lsb_threshold;
        if refetch {
            self.stats.lsb_fetches += 1;
        }
        refetch
    }

    /// Average bits per fetched element given the decisions so far:
    /// `msb + lsb·fraction` under progressive, plain MSB width under static.
    pub fn effective_bits(&self) -> f64 {
        let msb = f64::from(self.policy.scheme.msb_bits());
        if !self.policy.progressive {
            return msb;
        }
        msb + f64::from(self.policy.scheme.lsb_bits()) * self.stats.lsb_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_quant::BitwidthScheme;
    use spatten_workloads::QuantPolicy;

    #[test]
    fn static_policy_never_fetches_lsb() {
        let mut c = ProgressiveController::new(QuantPolicy::static_msb(BitwidthScheme::Msb8Lsb4));
        assert!(!c.decide(0.01));
        assert!(!c.decide(0.99));
        assert_eq!(c.stats().lsb_fetches, 0);
        assert_eq!(c.effective_bits(), 8.0);
    }

    #[test]
    fn progressive_fetches_on_flat_rows_only() {
        let mut c = ProgressiveController::new(QuantPolicy::progressive(BitwidthScheme::Msb6Lsb4));
        assert!(c.decide(0.05)); // flat
        assert!(!c.decide(0.5)); // dominated
        assert!(!c.decide(0.11));
        assert_eq!(c.stats().queries, 3);
        assert_eq!(c.stats().lsb_fetches, 1);
    }

    #[test]
    fn effective_bits_interpolate_with_fraction() {
        let mut c = ProgressiveController::new(QuantPolicy::progressive(BitwidthScheme::Msb6Lsb4));
        for i in 0..100 {
            // 6% of rows flat.
            c.decide(if i % 100 < 6 { 0.01 } else { 0.9 });
        }
        let bits = c.effective_bits();
        assert!((bits - (6.0 + 4.0 * 0.06)).abs() < 1e-9, "bits {bits}");
    }

    #[test]
    fn empty_stats_are_sane() {
        let c = ProgressiveController::new(QuantPolicy::progressive(BitwidthScheme::Msb8Lsb4));
        assert_eq!(c.stats().lsb_fraction(), 0.0);
        assert_eq!(c.effective_bits(), 8.0);
    }
}
