//! The cascade pruner: SpAtten's on-the-fly token/head selection attached
//! to a real forward pass.
//!
//! After every layer the pruner accumulates importance (Algorithm 2),
//! consults the per-layer keep schedule (§V-A) and uses the top-k engine to
//! decide which tokens/heads survive into the next layer. Pruning is
//! cascade: survivors only shrink. Protected tokens (e.g. the final token
//! feeding the LM head, or a `[CLS]`-style anchor) are exempted by boosting
//! them past any threshold.

use crate::importance::ImportanceAccumulator;
use spatten_arch::TopkEngine;
use spatten_nn::{ActiveSet, AttentionObserver, LayerRecord};
use spatten_workloads::PruningSpec;

/// Cascade token + head pruning as an [`AttentionObserver`].
#[derive(Debug)]
pub struct CascadePruner {
    spec: PruningSpec,
    layers: usize,
    importance: ImportanceAccumulator,
    engine: TopkEngine,
    protected: Vec<usize>,
    original_len: usize,
}

impl CascadePruner {
    /// A pruner for a model with `layers` layers over `tokens` initial
    /// tokens and `heads` heads.
    pub fn new(spec: PruningSpec, layers: usize, tokens: usize, heads: usize) -> Self {
        Self {
            spec,
            layers,
            importance: ImportanceAccumulator::new(tokens, heads),
            engine: TopkEngine::new(16, 0x5EED),
            protected: Vec::new(),
            original_len: tokens,
        }
    }

    /// Marks a token as never prunable (LM-head query, `[CLS]` anchor, …).
    pub fn protect_token(&mut self, id: usize) {
        if !self.protected.contains(&id) {
            self.protected.push(id);
        }
    }

    /// The accumulated importance scores (for visualization).
    pub fn importance(&self) -> &ImportanceAccumulator {
        &self.importance
    }

    /// Cycles the top-k engine spent on pruning decisions.
    pub fn topk_cycles(&self) -> u64 {
        self.engine.total_cycles()
    }

    fn prune_tokens(&mut self, active: &mut ActiveSet, layer: usize) {
        let keep_frac = self.spec.token_keep_at(layer, self.layers);
        if keep_frac >= 1.0 {
            return;
        }
        let ids = active.active_tokens();
        // Keep counts are relative to the *original* sequence length, as in
        // the paper (ratios compound across layers only through the
        // schedule, not multiplicatively).
        let target =
            ((self.original_len.max(active.token_capacity()) as f64) * keep_frac).round() as usize;
        let target = target.clamp(self.protected.len().max(1), ids.len());
        if target >= ids.len() {
            return;
        }
        let mut scores = self.importance.token_scores_for(&ids);
        for (i, id) in ids.iter().enumerate() {
            if self.protected.contains(id) {
                scores[i] = f32::MAX; // survives any threshold
            }
        }
        let result = self.engine.select(&scores, target);
        let mut keep = vec![false; ids.len()];
        for &slot in &result.indices {
            keep[slot] = true;
        }
        for (slot, id) in ids.iter().enumerate() {
            if !keep[slot] {
                active.prune_token(*id);
            }
        }
    }

    fn prune_heads(&mut self, active: &mut ActiveSet, layer: usize) {
        let keep_frac = self.spec.head_keep_at(layer, self.layers);
        if keep_frac >= 1.0 {
            return;
        }
        let ids = active.active_heads();
        let total_heads = active.head_capacity();
        let target = ((total_heads as f64) * keep_frac).round().max(1.0) as usize;
        if target >= ids.len() {
            return;
        }
        let scores = self.importance.head_scores_for(&ids);
        let result = self.engine.select(&scores, target);
        let mut keep = vec![false; ids.len()];
        for &slot in &result.indices {
            keep[slot] = true;
        }
        for (slot, id) in ids.iter().enumerate() {
            if !keep[slot] {
                active.prune_head(*id);
            }
        }
    }
}

impl AttentionObserver for CascadePruner {
    fn after_layer(&mut self, record: &LayerRecord, active: &mut ActiveSet) {
        self.importance.ensure_tokens(active.token_capacity());
        self.importance.accumulate(record);
        self.prune_tokens(active, record.layer);
        self.prune_heads(active, record.layer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_nn::{Model, ModelConfig, ModelKind, NoPruning};
    use spatten_workloads::PruningSpec;

    fn model() -> Model {
        // 4 layers so the front-15% protection covers exactly layer 0.
        let cfg = ModelConfig {
            kind: ModelKind::Bert,
            layers: 4,
            heads: 4,
            hidden: 32,
            ffn: 64,
            vocab: 64,
        };
        Model::new_classifier(cfg, 64, 2, 5)
    }

    #[test]
    fn prunes_towards_schedule() {
        let m = model();
        let tokens: Vec<usize> = (0..20).map(|i| (i * 7) % 64).collect();
        let spec = PruningSpec::with_keeps(0.5, 0.75);
        let mut pruner = CascadePruner::new(spec, 4, tokens.len(), 4);
        let out = m.forward(&tokens, &mut pruner);
        // Final layer keep ≈ 0.5 − spread → well below the original 20.
        assert!(
            out.survivors.len() <= 12,
            "survivors: {}",
            out.survivors.len()
        );
        assert!(out.survivors.len() >= 5);
        // Heads pruned to ~3 of 4.
        assert!(out.active.active_head_count() <= 4);
        assert!(out.active.active_head_count() >= 2);
    }

    #[test]
    fn survivor_count_is_monotone_nonincreasing() {
        let m = model();
        let tokens: Vec<usize> = (0..24).map(|i| (i * 5) % 64).collect();
        let spec = PruningSpec::with_keeps(0.4, 1.0);
        let mut pruner = CascadePruner::new(spec, 4, tokens.len(), 4);
        let out = m.forward(&tokens, &mut pruner);
        let mut prev = usize::MAX;
        for rec in &out.records {
            assert!(rec.key_token_ids.len() <= prev, "cascade violated");
            prev = rec.key_token_ids.len();
        }
    }

    #[test]
    fn protected_tokens_always_survive() {
        let m = model();
        let tokens: Vec<usize> = (0..20).map(|i| (i * 3) % 64).collect();
        let spec = PruningSpec::with_keeps(0.3, 1.0);
        let mut pruner = CascadePruner::new(spec, 4, tokens.len(), 4);
        pruner.protect_token(0);
        pruner.protect_token(19);
        let out = m.forward(&tokens, &mut pruner);
        assert!(out.survivors.contains(&0));
        assert!(out.survivors.contains(&19));
    }

    #[test]
    fn dense_spec_prunes_nothing() {
        let m = model();
        let tokens: Vec<usize> = (0..16).collect();
        let mut pruner = CascadePruner::new(PruningSpec::dense(), 4, tokens.len(), 4);
        let out = m.forward(&tokens, &mut pruner);
        assert_eq!(out.survivors.len(), 16);
        assert_eq!(out.active.active_head_count(), 4);
        // And matches the NoPruning logits exactly.
        let dense = m.forward(&tokens, &mut NoPruning);
        assert_eq!(out.logits, dense.logits);
    }

    #[test]
    fn pruner_keeps_high_importance_tokens() {
        // Build importance by hand: feed a record where token 2 dominates,
        // then check the pruner's selection keeps it.
        let m = model();
        let tokens: Vec<usize> = (0..12).collect();
        let spec = PruningSpec::with_keeps(0.34, 1.0);
        let mut pruner = CascadePruner::new(spec, 4, tokens.len(), 4);
        let out = m.forward(&tokens, &mut pruner);
        // Survivors must be exactly the top-importance tokens.
        let scores = pruner.importance().token_scores();
        let mut surv_scores: Vec<f64> = out.survivors.iter().map(|&i| scores[i]).collect();
        surv_scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut pruned_scores: Vec<f64> = (0..12)
            .filter(|i| !out.survivors.contains(i))
            .map(|i| scores[i])
            .collect();
        pruned_scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Importance keeps accumulating after the last pruning decision, so
        // compare loosely: the median survivor should outscore the median
        // pruned token.
        assert!(
            surv_scores[surv_scores.len() / 2] >= pruned_scores[pruned_scores.len() / 2] * 0.8,
            "survivors {surv_scores:?} vs pruned {pruned_scores:?}"
        );
    }
}
