//! SpAtten-e2e: the end-to-end extension with FC/FFN support (paper §V-B,
//! Fig. 15 and Table IV).
//!
//! SpAtten proper is an attention co-processor; for end-to-end comparisons
//! the paper extends it to run the FC parts of each block by *reusing the
//! multiplier arrays*, with weights linear-symmetrically quantized to 8 or
//! 12 bits in DRAM. In the generation stage every FC is a matrix-vector
//! product, so e2e performance is bounded by weight traffic — exactly the
//! regime Table IV reports (FC ≈ 92 % of SpAtten-e2e latency).

use crate::accelerator::{Accelerator, SpAttenConfig};
use crate::perf::{RunReport, StepCost};
use serde::{Deserialize, Serialize};
use spatten_workloads::Workload;

/// End-to-end run results: attention + FC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E2eReport {
    /// The attention-only report.
    pub attention: RunReport,
    /// Cycles spent on FC work (QKV/out projections, FFN, LM head).
    pub fc_cycles: u64,
    /// DRAM bytes moved for FC weights.
    pub fc_bytes: u64,
    /// FLOPs performed by the FC parts.
    pub fc_flops: u64,
    /// FC weight bitwidth used (8 or 12).
    pub fc_weight_bits: u32,
}

impl E2eReport {
    /// Total end-to-end cycles (attention and FC time-multiplex the same
    /// arrays, so they serialize).
    pub fn total_cycles(&self) -> u64 {
        self.attention.total_cycles + self.fc_cycles
    }

    /// Wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.total_cycles() as f64 / (self.attention.clock_ghz * 1e9)
    }

    /// Fraction of latency spent on FC (Table IV: ≈ 92 % on GPT-2-Medium).
    pub fn fc_latency_fraction(&self) -> f64 {
        self.fc_cycles as f64 / self.total_cycles() as f64
    }

    /// Fraction of FLOPs that are FC (Table IV: ≈ 95 %).
    pub fn fc_flop_fraction(&self) -> f64 {
        self.fc_flops as f64 / (self.fc_flops + self.attention.flops) as f64
    }
}

/// The end-to-end accelerator.
#[derive(Debug, Clone)]
pub struct SpAttenE2e {
    accel: Accelerator,
    fc_weight_bits: u32,
}

impl SpAttenE2e {
    /// An e2e accelerator with FC weights quantized to `fc_weight_bits`
    /// (the paper evaluates 8 and 12).
    ///
    /// # Panics
    ///
    /// Panics if the bitwidth is outside `4..=16`.
    pub fn new(config: SpAttenConfig, fc_weight_bits: u32) -> Self {
        assert!(
            (4..=16).contains(&fc_weight_bits),
            "FC weight bits must be in 4..=16"
        );
        Self {
            accel: Accelerator::new(config),
            fc_weight_bits,
        }
    }

    /// The underlying configuration.
    pub fn config(&self) -> SpAttenConfig {
        self.accel.config()
    }

    /// FC (QKV/out projection + FFN) cost of the summarization pass over
    /// `w.seq_len` tokens: weights fetched once per layer, reused across
    /// tokens. The serving layer adds this to the attention prefill cost
    /// for end-to-end per-job accounting.
    pub fn fc_prefill_cost(&self, w: &Workload) -> StepCost {
        self.fc_prefill(w).step
    }

    /// FC cost of generating one token: a matrix-vector product per layer
    /// (weights refetched every step — the memory-bound regime of Table IV)
    /// plus the LM head.
    pub fn fc_decode_cost(&self, w: &Workload) -> StepCost {
        self.fc_decode(w).step
    }

    /// FC cost of shard `way` of a `ways`-way tensor-parallel split of the
    /// summarization pass: FC/FFN weight matrices are column-split, so each
    /// shard streams and multiplies its share of the parameters. Shard
    /// parameter counts partition the unsharded totals exactly; the
    /// all-reduce that combines partial sums is charged by the interconnect
    /// model, not here.
    pub fn fc_prefill_cost_tp(&self, w: &Workload, way: usize, ways: usize) -> StepCost {
        let model = w.model;
        let mut total = FcCost::default();
        for _ in 0..model.layers {
            let params = split_share(model.block_fc_params(), way, ways);
            total.add(self.fc_unit(w.seq_len as u64 * params, params));
        }
        total.step
    }

    /// FC cost of shard `way` of a `ways`-way tensor-parallel split of one
    /// generated token (block FCs plus the vocabulary-split LM head).
    pub fn fc_decode_cost_tp(&self, w: &Workload, way: usize, ways: usize) -> StepCost {
        let model = w.model;
        let mut total = FcCost::default();
        for _ in 0..model.layers {
            let params = split_share(model.block_fc_params(), way, ways);
            total.add(self.fc_unit(params, params));
        }
        let lm = split_share((model.hidden as u64) * (model.vocab as u64), way, ways);
        total.add(self.fc_unit(lm, lm));
        total.step
    }

    /// FC cost of the pipeline stage owning `layers` during the
    /// summarization pass: each stage streams only its own layers' FC
    /// weights. Stage costs over a partition of `0..w.model.layers` sum to
    /// [`SpAttenE2e::fc_prefill_cost`] exactly.
    pub fn fc_prefill_cost_layers(&self, w: &Workload, layers: std::ops::Range<usize>) -> StepCost {
        let model = w.model;
        assert!(layers.end <= model.layers, "stage {layers:?} out of range");
        let mut total = FcCost::default();
        for _ in layers {
            total.add(self.fc_unit(
                w.seq_len as u64 * model.block_fc_params(),
                model.block_fc_params(),
            ));
        }
        total.step
    }

    /// FC cost of the pipeline stage owning `layers` for one generated
    /// token. The LM head belongs to the last stage (the one whose range
    /// ends at `w.model.layers`).
    pub fn fc_decode_cost_layers(&self, w: &Workload, layers: std::ops::Range<usize>) -> StepCost {
        let model = w.model;
        assert!(layers.end <= model.layers, "stage {layers:?} out of range");
        let last_stage = layers.end == model.layers;
        let mut total = FcCost::default();
        for _ in layers {
            total.add(self.fc_unit(model.block_fc_params(), model.block_fc_params()));
        }
        if last_stage {
            let lm_params = (model.hidden as u64) * (model.vocab as u64);
            total.add(self.fc_unit(lm_params, lm_params));
        }
        total.step
    }

    /// One FC unit: `macs` multiply-accumulates against `params` weight
    /// parameters streamed from DRAM at this accelerator's bandwidth.
    fn fc_unit(&self, macs: u64, params: u64) -> FcCost {
        let cfg = self.accel.config();
        let bits = u64::from(self.fc_weight_bits);
        let total_mults = 2 * cfg.multipliers_per_array as u64; // both arrays reused
        let bw_per_cycle = cfg.hbm.channels as u64 * cfg.hbm.bytes_per_cycle;
        let weight_bytes = (params * bits).div_ceil(8);
        let compute = macs.div_ceil(total_mults);
        let dram = weight_bytes.div_ceil(bw_per_cycle);
        FcCost {
            step: StepCost {
                compute_cycles: compute,
                dram_cycles: dram,
                weight_dram_cycles: dram,
                serial_cycles: compute.max(dram),
            },
            bytes: weight_bytes,
            flops: 2 * macs,
        }
    }

    /// All FC work of one summarization pass (every layer's block FCs).
    fn fc_prefill(&self, w: &Workload) -> FcCost {
        let model = w.model;
        let mut total = FcCost::default();
        for _ in 0..model.layers {
            total.add(self.fc_unit(
                w.seq_len as u64 * model.block_fc_params(),
                model.block_fc_params(),
            ));
        }
        total
    }

    /// All FC work of one generated token (matrix-vector block FCs in every
    /// layer, plus the LM head).
    fn fc_decode(&self, w: &Workload) -> FcCost {
        let model = w.model;
        let mut total = FcCost::default();
        for _ in 0..model.layers {
            total.add(self.fc_unit(model.block_fc_params(), model.block_fc_params()));
        }
        let lm_params = (model.hidden as u64) * (model.vocab as u64);
        total.add(self.fc_unit(lm_params, lm_params));
        total
    }

    /// Runs a workload end to end.
    pub fn run(&self, w: &Workload) -> E2eReport {
        let attention = self.accel.run(w);
        let mut fc = FcCost::default();

        // Summarization FCs: weights fetched once per layer, reused across
        // all tokens. Only measured for discriminative tasks — generative
        // benchmarks report the generation stage, as in the paper (§V-A).
        if w.gen_steps == 0 {
            fc.add(self.fc_prefill(w));
        }

        // Generation: matrix-vector FCs; weights refetched every step.
        for _ in 0..w.gen_steps {
            fc.add(self.fc_decode(w));
        }

        E2eReport {
            attention,
            fc_cycles: fc.step.serial_cycles,
            fc_bytes: fc.bytes,
            fc_flops: fc.flops,
            fc_weight_bits: self.fc_weight_bits,
        }
    }
}

/// Shard `way`'s share of `total` columns under a `ways`-way split —
/// [`crate::perf::shard_heads`]'s exact deal-out partition, at parameter
/// counts instead of head counts.
fn split_share(total: u64, way: usize, ways: usize) -> u64 {
    crate::perf::shard_heads(
        usize::try_from(total).expect("parameter count fits usize"),
        way,
        ways,
    ) as u64
}

/// FC cost with the byte/FLOP accounting `E2eReport` needs on top of the
/// serving layer's [`StepCost`].
#[derive(Debug, Clone, Copy, Default)]
struct FcCost {
    step: StepCost,
    bytes: u64,
    flops: u64,
}

impl FcCost {
    fn add(&mut self, other: FcCost) {
        self.step.add(other.step);
        self.bytes += other.bytes;
        self.flops += other.flops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_workloads::Benchmark;

    fn e2e(bits: u32) -> SpAttenE2e {
        SpAttenE2e::new(SpAttenConfig::default(), bits)
    }

    #[test]
    fn fc_dominates_gpt2_generation_latency() {
        // Table IV: FC ≈ 92.4 % of SpAtten-e2e latency on GPT-2-Medium.
        let b = Benchmark::by_id("gpt2-medium-wikitext2").unwrap();
        let r = e2e(8).run(&b.workload());
        let frac = r.fc_latency_fraction();
        assert!((0.7..0.99).contains(&frac), "FC latency fraction {frac}");
    }

    #[test]
    fn fc_flop_share_matches_table4() {
        // Table IV: FC ≈ 95.5 % of FLOPs for SpAtten-e2e (pruned attention).
        let b = Benchmark::by_id("gpt2-medium-wikitext2").unwrap();
        let r = e2e(8).run(&b.workload());
        let frac = r.fc_flop_fraction();
        assert!((0.85..0.99).contains(&frac), "FC FLOP fraction {frac}");
    }

    #[test]
    fn eight_bit_weights_beat_twelve_bit() {
        // Fig. 15: 8-bit FC SpAtten-e2e is ~1.45× faster than 12-bit on
        // memory-bound generation.
        let b = Benchmark::by_id("gpt2-medium-ptb").unwrap();
        let w = b.workload();
        let r8 = e2e(8).run(&w);
        let r12 = e2e(12).run(&w);
        let ratio = r12.total_cycles() as f64 / r8.total_cycles() as f64;
        assert!(
            (1.15..1.6).contains(&ratio),
            "8-bit vs 12-bit ratio {ratio}"
        );
    }

    #[test]
    fn fc_gflops_match_table4_shape() {
        // Table IV: ~19.3 GFLOPs FC for GPT-2-Medium @ 992+32.
        let b = Benchmark::by_id("gpt2-medium-wikitext2").unwrap();
        let r = e2e(8).run(&b.workload());
        let g = r.fc_flops as f64 / 1e9;
        assert!((14.0..27.0).contains(&g), "FC GFLOPs {g}");
    }

    #[test]
    #[should_panic(expected = "FC weight bits")]
    fn silly_bitwidth_rejected() {
        let _ = SpAttenE2e::new(SpAttenConfig::default(), 2);
    }
}
