//! The accelerator façade: configuration (Table I) and entry points.

use crate::perf::{simulate, RunReport};
use serde::{Deserialize, Serialize};
use spatten_hbm::HbmConfig;
use spatten_workloads::Workload;

/// SpAtten hardware configuration.
///
/// Defaults reproduce Table I: two 512-multiplier arrays (Q·K and prob·V),
/// a 16-comparator top-k engine, softmax parallelism 8, 196 KB K/V SRAMs,
/// 16-channel HBM2 at 512 GB/s, 1 GHz core clock. The pruning switches
/// exist for the Fig. 20 ablation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpAttenConfig {
    /// Multipliers in *each* of the Q·K and prob·V arrays.
    pub multipliers_per_array: usize,
    /// Comparators per array in the top-k engine.
    pub topk_parallelism: usize,
    /// Exponentials per cycle in the softmax unit.
    pub softmax_parallelism: usize,
    /// K (and V) SRAM size in bytes (double-buffered).
    pub kv_sram_bytes: u64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// HBM configuration, expressed in *core-clock* cycles (32 B/cycle per
    /// channel at 1 GHz core ⇔ 32 GB/s per channel).
    pub hbm: HbmConfig,
    /// Cascade token pruning enabled.
    pub token_pruning: bool,
    /// Cascade head pruning enabled.
    pub head_pruning: bool,
    /// Local value pruning enabled.
    pub local_value_pruning: bool,
}

impl Default for SpAttenConfig {
    fn default() -> Self {
        Self {
            multipliers_per_array: 512,
            topk_parallelism: 16,
            softmax_parallelism: 8,
            kv_sram_bytes: 196 * 1024,
            clock_ghz: 1.0,
            hbm: HbmConfig {
                channels: 16,
                bytes_per_cycle: 32, // 32 GB/s per channel at 1 GHz core
                interleave_bytes: 32,
                row_bytes: 1024,
                activation_cycles: 14,
                clock_ghz: 1.0,
            },
            token_pruning: true,
            head_pruning: true,
            local_value_pruning: true,
        }
    }
}

impl SpAttenConfig {
    /// The 1/8-scale variant of Table III: 128 multipliers in total
    /// (64 per array) and 64 GB/s of DRAM bandwidth (two channels), for
    /// apples-to-apples comparison with A3 and MNNFast.
    pub fn eighth() -> Self {
        let base = Self::default();
        Self {
            multipliers_per_array: 64,
            hbm: spatten_hbm::HbmConfig {
                channels: 2,
                ..base.hbm
            },
            ..base
        }
    }

    /// Disables every SpAtten technique: the plain pipelined datapath used
    /// as the first rung of the Fig. 20 ablation ladder.
    pub fn datapath_only(mut self) -> Self {
        self.token_pruning = false;
        self.head_pruning = false;
        self.local_value_pruning = false;
        self
    }

    /// Peak compute throughput in FLOP/s (two arrays, 2 FLOPs per MAC).
    pub fn peak_flops(&self) -> f64 {
        2.0 * 2.0 * self.multipliers_per_array as f64 * self.clock_ghz * 1e9
    }

    /// Peak DRAM bandwidth in bytes/s.
    pub fn peak_bandwidth(&self) -> f64 {
        self.hbm.channels as f64 * self.hbm.bytes_per_cycle as f64 * self.clock_ghz * 1e9
    }
}

/// The SpAtten accelerator.
#[derive(Debug, Clone, Default)]
pub struct Accelerator {
    config: SpAttenConfig,
}

impl Accelerator {
    /// An accelerator with the given configuration.
    pub fn new(config: SpAttenConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> SpAttenConfig {
        self.config
    }

    /// Runs one workload through the cycle-level model.
    pub fn run(&self, workload: &Workload) -> RunReport {
        simulate(&self.config, workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SpAttenConfig::default();
        assert_eq!(c.multipliers_per_array, 512);
        assert_eq!(c.topk_parallelism, 16);
        assert_eq!(c.softmax_parallelism, 8);
        assert_eq!(c.kv_sram_bytes, 196 * 1024);
        assert!((c.peak_flops() - 2.048e12).abs() < 1e9); // 2 TFLOPS roof
        assert!((c.peak_bandwidth() - 512e9).abs() < 1e6); // 512 GB/s roof
    }

    #[test]
    fn eighth_scale_matches_table3_resources() {
        let c = SpAttenConfig::eighth();
        assert_eq!(2 * c.multipliers_per_array, 128); // 128 total
        assert!((c.peak_bandwidth() - 64e9).abs() < 1e6);
        assert!((c.peak_flops() - 256e9).abs() < 1e6);
    }

    #[test]
    fn datapath_only_disables_pruning() {
        let c = SpAttenConfig::default().datapath_only();
        assert!(!c.token_pruning && !c.head_pruning && !c.local_value_pruning);
    }
}
