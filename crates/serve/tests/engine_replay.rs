//! Property harness for the resumable engine: any seeded trace replayed
//! through the [`FleetEngine`] step API — inject-everything-then-drain
//! *and* interleaved inject/`step_until` — must reproduce the offline
//! `simulate_fleet` report bit-for-bit, swept across the routing ×
//! stealing × preemption × pooling × elasticity scheduling surface.
//! A tallying [`TokenSink`] rides along on every run: attaching a sink
//! must not perturb the simulation, and the per-token events it sees
//! must conserve exactly the report's completed tokens and rejections.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use spatten_serve::{
    fleet_engine, simulate_fleet, ElasticSpec, FleetConfig, FleetEvents, PolicyFleetEngine,
    PoolSpec, PreemptSpec, Rejection, RouteSpec, StealSpec, TokenEvent, TokenSink,
};
use spatten_workloads::{ArrivalSpec, Trace, TraceSpec};

/// The public constructor under test: [`fleet_engine`] performs the same
/// [`FleetConfig`] lowering as `simulate_fleet` (scheduled joins and the
/// reserve extend the roster past the base fleet), so a replayed trace
/// must be bit-identical to the offline entry point.
fn engine_for(cfg: &FleetConfig) -> PolicyFleetEngine {
    fleet_engine(cfg)
}

/// What a [`TokenSink`] saw over one run.
#[derive(Default)]
struct Tally {
    tokens: usize,
    done: usize,
    rejections: usize,
}

/// A sink that counts tokens, stream terminations and rejections into a
/// shared tally — the live front-end's consumption pattern, minus HTTP.
struct TallySink(Arc<Mutex<Tally>>);

impl TokenSink for TallySink {
    fn on_tokens(&mut self, ev: &TokenEvent) {
        let mut t = self.0.lock().unwrap();
        t.tokens += ev.count;
        t.done += usize::from(ev.done);
    }

    fn on_rejection(&mut self, _r: &Rejection) {
        self.0.lock().unwrap().rejections += 1;
    }
}

/// The two-tier mixed trace the elastic property harness uses.
fn tiered_trace(requests: usize, rate_rps: f64, seed: u64) -> Trace {
    let mut spec = TraceSpec::mixed(ArrivalSpec::OpenPoisson { rate_rps, requests }, seed);
    spec.classes[0] = spec.classes[0].clone().with_priority(3);
    spec.generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Replaying a seeded open trace through the step API — all requests
    /// injected up front, or each injected and stepped past in turn — is
    /// bit-identical to the offline wrapper across every router,
    /// stealing mode, preemption setting, pooling layout and seeded
    /// fault schedule; and the token seam conserves the report exactly.
    #[test]
    fn step_api_replay_is_bit_identical_to_the_offline_wrapper(
        requests in 40usize..120,
        rate in 500.0f64..4000.0,
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        route_pick in 0usize..6,
        steal_pick in 0usize..2,
        preempt_pick in 0usize..2,
        pools_pick in 0usize..2,
        elastic_pick in 0usize..2,
    ) {
        let route = [
            RouteSpec::FastestChip,
            RouteSpec::FastestStealAware,
            RouteSpec::ChurnAware,
            RouteSpec::LeastKvLoaded,
            RouteSpec::HashAffinity,
            RouteSpec::PoolAware,
        ][route_pick];
        let trace = tiered_trace(requests, rate, seed);
        let chips = 4;
        let mut cfg = FleetConfig::new(chips, spatten_serve::Policy::Priority);
        cfg.sched.route = route;
        cfg.sched.steal = [StealSpec::Off, StealSpec::CostliestFit][steal_pick];
        cfg.sched.preempt = [PreemptSpec::None, PreemptSpec::Priority][preempt_pick];
        if pools_pick == 1 {
            cfg.pools = Some(PoolSpec::split(1, 3));
        }
        if elastic_pick == 1 {
            let horizon_ns = (requests as f64 / rate * 1e9) as u64;
            cfg.elastic = Some(ElasticSpec {
                events: FleetEvents::seeded(fault_seed, chips, horizon_ns),
                ..ElasticSpec::default()
            });
        }
        let offline = simulate_fleet(&cfg, &trace);
        let Trace::Open { requests: reqs } = &trace else {
            unreachable!("tiered_trace is open-loop")
        };

        // Inject everything, then drain — with a tallying sink attached,
        // which must not perturb the simulation.
        let tally = Arc::new(Mutex::new(Tally::default()));
        let mut engine = engine_for(&cfg);
        engine.set_sink(Box::new(TallySink(tally.clone())));
        for r in reqs {
            engine.inject(r);
        }
        let all_at_once = engine.drain();
        prop_assert_eq!(&all_at_once, &offline);

        // Token-seam conservation: the sink saw every generated token
        // exactly once, one terminal event per completion, and every
        // rejection.
        let generated: usize = offline.completions.iter().map(|c| c.generated_tokens).sum();
        {
            let t = tally.lock().unwrap();
            prop_assert_eq!(t.tokens, generated);
            prop_assert_eq!(t.done, offline.completions.len());
            prop_assert_eq!(t.rejections, offline.rejections.len());
        }

        // Interleaved: inject each arrival, then step the engine up to
        // (but not past) it before offering the next — the live
        // front-end's pattern, where traffic and simulation advance in
        // lockstep.
        let mut engine = engine_for(&cfg);
        for r in reqs {
            let at = engine.inject(r);
            engine.step_until(at.saturating_sub(1));
        }
        let interleaved = engine.drain();
        prop_assert_eq!(&interleaved, &offline);
    }
}

/// Closed-loop traces flow through [`FleetEngine::load_closed`]: loading
/// the client population and draining must reproduce the offline report
/// bit-for-bit, and the engine must report itself idle afterwards only
/// via a fresh instance (drain consumes it).
#[test]
fn closed_loop_load_then_drain_matches_the_offline_wrapper() {
    let trace = TraceSpec::mixed(
        ArrivalSpec::ClosedLoop {
            clients: 6,
            think_s: 0.005,
            requests: 90,
        },
        29,
    )
    .generate();
    let mut cfg = FleetConfig::new(3, spatten_serve::Policy::ContinuousBatching);
    cfg.sched.route = RouteSpec::FastestChip;
    cfg.sched.steal = StealSpec::CostliestFit;
    let offline = simulate_fleet(&cfg, &trace);
    let Trace::Closed { clients, think_ns } = &trace else {
        unreachable!("closed-loop spec generates a closed trace")
    };
    let mut engine = engine_for(&cfg);
    engine.load_closed(clients, *think_ns);
    assert!(!engine.idle(), "a loaded engine has work pending");
    let report = engine.drain();
    assert_eq!(report, offline);
    assert_eq!(report.completed, 90);
}

/// Partial stepping is resumable: stepping an engine halfway through the
/// virtual timeline, observing its backlog, then draining the rest must
/// land on the identical report — pausing costs nothing.
#[test]
fn pausing_mid_run_does_not_perturb_the_timeline() {
    let trace = tiered_trace(80, 2000.0, 31);
    let mut cfg = FleetConfig::new(2, spatten_serve::Policy::Priority);
    cfg.sched.preempt = PreemptSpec::Priority;
    let offline = simulate_fleet(&cfg, &trace);
    let Trace::Open { requests: reqs } = &trace else {
        unreachable!()
    };
    let mut engine = engine_for(&cfg);
    let mut last = 0;
    for r in reqs {
        last = engine.inject(r);
    }
    // Step in uneven chunks across the arrival span, peeking at the
    // backlog between pauses (observation must be free).
    let mut upto = 0;
    while upto < last {
        upto += 1 + (last - upto) / 3;
        engine.step_until(upto);
        let _ = engine.backlog();
    }
    assert_eq!(engine.drain(), offline);
}
