//! Property harness for the elasticity layer: seeded random fault
//! schedules swept across the routing × stealing × preemption × pooling
//! scheduling surface. Every request still completes (or is SLO-shed),
//! jobs the faults never touched move exactly the tokens their
//! fault-free twin moves, and the event loop's own drain-time asserts —
//! zero in-service estimator drift, zero pager refcounts, discharged
//! pending ledgers — gate every run: a conservation bug anywhere panics
//! the simulation rather than skewing a number.

use proptest::prelude::*;
use spatten_serve::{
    simulate_fleet, ElasticSpec, FleetConfig, FleetEvents, FleetReport, KvSpec, Policy, PoolSpec,
    PreemptSpec, RouteSpec, SimMode, StealSpec,
};
use spatten_workloads::{ArrivalSpec, Trace, TraceSpec};

/// A two-tier trace: the BERT class rides a high priority over the
/// low-priority GPT-2 batch tier.
fn tiered_trace(requests: usize, rate_rps: f64, seed: u64) -> Trace {
    let mut spec = TraceSpec::mixed(ArrivalSpec::OpenPoisson { rate_rps, requests }, seed);
    spec.classes[0] = spec.classes[0].clone().with_priority(3);
    spec.generate()
}

/// The nominal trace span in nanoseconds — the fault horizon, so seeded
/// leaves land while the fleet is actually serving.
fn horizon_ns(requests: usize, rate_rps: f64) -> u64 {
    (requests as f64 / rate_rps * 1e9) as u64
}

/// Per-job token vector for conservation checks, keyed by request id.
fn tokens(r: &FleetReport) -> Vec<(u64, usize, usize)> {
    let mut t: Vec<(u64, usize, usize)> = r
        .completions
        .iter()
        .map(|c| (c.id, c.prefill_tokens, c.generated_tokens))
        .collect();
    t.sort_unstable();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under a seeded random leave schedule (drains and revocations with
    /// random grace windows), across every router, stealing mode,
    /// preemption setting and pooling layout: no request is lost or
    /// duplicated, every completion untouched by a revocation moves
    /// exactly the tokens of its fault-free twin, and the run is
    /// deterministic. An empty drawn schedule must reproduce the twin
    /// bit-for-bit.
    #[test]
    fn faulted_runs_conserve_requests_and_untouched_tokens(
        requests in 40usize..120,
        rate in 500.0f64..4000.0,
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        route_pick in 0usize..5,
        steal_pick in 0usize..2,
        preempt_pick in 0usize..2,
        pools_pick in 0usize..2,
    ) {
        let route = [
            RouteSpec::FastestChip,
            RouteSpec::ChurnAware,
            RouteSpec::LeastKvLoaded,
            RouteSpec::HashAffinity,
            RouteSpec::PoolAware,
        ][route_pick];
        let steal = [StealSpec::Off, StealSpec::CostliestFit][steal_pick];
        let preempt = [PreemptSpec::None, PreemptSpec::Priority][preempt_pick];
        let trace = tiered_trace(requests, rate, seed);
        let chips = 4;
        let mut cfg = FleetConfig::new(chips, Policy::Priority);
        cfg.sched.route = route;
        cfg.sched.steal = steal;
        cfg.sched.preempt = preempt;
        if pools_pick == 1 {
            // Chip 0 — the seeded schedule's guaranteed survivor — is
            // the prefill specialist, so the prefill pool never empties;
            // the decode pool may lose every member and fall back.
            cfg.pools = Some(PoolSpec::split(1, 3));
        }
        let twin = simulate_fleet(&cfg, &trace);

        let events = FleetEvents::seeded(fault_seed, chips, horizon_ns(requests, rate));
        let empty = events.is_empty();
        let mut faulted_cfg = cfg.clone();
        faulted_cfg.elastic = Some(ElasticSpec {
            events,
            ..ElasticSpec::default()
        });
        let faulted = simulate_fleet(&faulted_cfg, &trace);

        // Conservation: every request completes exactly once (no SLO
        // classes in this mix, so nothing is shed).
        prop_assert_eq!(faulted.completed, requests);
        let mut ids: Vec<u64> = faulted.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), requests);

        // Jobs the revocations never displaced move exactly the twin's
        // tokens. (A leave-only schedule keeps the roster identical, so
        // the twin prices every job the same way.)
        let twin_tokens = tokens(&twin);
        let untouched: Vec<(u64, usize, usize)> = tokens(&faulted)
            .into_iter()
            .filter(|&(id, _, _)| {
                !faulted
                    .completions
                    .iter()
                    .any(|c| c.id == id && c.revoked)
            })
            .collect();
        for entry in &untouched {
            prop_assert!(
                twin_tokens.binary_search(entry).is_ok(),
                "untouched job {:?} diverged from its fault-free twin",
                entry
            );
        }

        // An empty drawn schedule is the fixed fleet, bit-for-bit.
        if empty {
            prop_assert_eq!(&faulted, &twin);
        }

        // Deterministic replay.
        let again = simulate_fleet(&faulted_cfg, &trace);
        prop_assert_eq!(faulted.completions, again.completions);
        prop_assert_eq!(faulted.makespan_cycles, again.makespan_cycles);
    }

    /// Paged KV page accounting balances under faults: drains and
    /// revocations unmap every block they displace, so at drain each
    /// chip's pager has returned every page it handed out — the pager
    /// asserts zero refcounts inside the event loop, and the ledger
    /// totals must agree here.
    #[test]
    fn paged_pagers_balance_under_faults(
        requests in 40usize..100,
        rate in 500.0f64..3000.0,
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        steal_pick in 0usize..2,
    ) {
        let steal = [StealSpec::Off, StealSpec::CostliestFit][steal_pick];
        let mut spec = TraceSpec::chat(
            ArrivalSpec::OpenPoisson { rate_rps: rate, requests },
            seed,
        );
        spec.classes[0] = spec.classes[0].clone().with_priority(2);
        let trace = spec.generate();
        let chips = 3;
        let mut cfg = FleetConfig::new(chips, Policy::Priority);
        cfg.sched.steal = steal;
        cfg.sched.preempt = PreemptSpec::Priority;
        cfg.sched.kv = KvSpec::paged();
        cfg.elastic = Some(ElasticSpec {
            events: FleetEvents::seeded(fault_seed, chips, horizon_ns(requests, rate)),
            ..ElasticSpec::default()
        });
        let report = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(report.completed, requests);
        for stats in &report.chip_stats {
            prop_assert!(
                stats.kv.blocks_allocated == stats.kv.blocks_freed,
                "chip {} leaked pages across a fault: {} allocated vs {} freed",
                stats.id, stats.kv.blocks_allocated, stats.kv.blocks_freed
            );
        }
    }

    /// [`SimMode::ParallelRounds`] reproduces faulted runs exactly: the
    /// parallel cost-plane pre-warm prices the same pure functions, so
    /// the full report — completions, revocation flags, elastic chip
    /// counters, fired-event totals — is bit-identical to serial at
    /// every thread count.
    #[test]
    fn parallel_rounds_reproduces_faulted_runs(
        requests in 40usize..100,
        rate in 500.0f64..3000.0,
        seed in 0u64..5,
        fault_seed in 0u64..1000,
        threads in 2usize..9,
    ) {
        let trace = tiered_trace(requests, rate, seed);
        let chips = 4;
        let mut cfg = FleetConfig::new(chips, Policy::Priority);
        cfg.sched.steal = StealSpec::CostliestFit;
        cfg.sched.preempt = PreemptSpec::Priority;
        cfg.elastic = Some(ElasticSpec {
            events: FleetEvents::seeded(fault_seed, chips, horizon_ns(requests, rate)),
            ..ElasticSpec::default()
        });
        let serial = simulate_fleet(&cfg, &trace);
        let mut par = cfg.clone();
        par.sched.mode = SimMode::ParallelRounds { threads };
        let parallel = simulate_fleet(&par, &trace);
        prop_assert_eq!(&parallel, &serial);
    }
}
