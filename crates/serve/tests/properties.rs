//! Property-based tests for the serving simulator: conservation of
//! requests, FIFO ordering, KV-budget safety, and a deterministic
//! end-to-end smoke test.

use proptest::prelude::*;
use spatten_core::SpAttenConfig;
use spatten_serve::{
    simulate_fleet, FleetConfig, KvSpec, Policy, PoolSpec, PreemptSpec, RouteSpec, SimMode,
    StealSpec,
};
use spatten_workloads::{ArrivalSpec, Trace, TraceSpec};

fn open_trace(requests: usize, rate_rps: f64, seed: u64) -> Trace {
    TraceSpec::mixed(ArrivalSpec::OpenPoisson { rate_rps, requests }, seed).generate()
}

/// A two-tier trace: the BERT class rides a high priority over the
/// low-priority GPT-2 batch tier.
fn tiered_trace(requests: usize, rate_rps: f64, seed: u64) -> Trace {
    let mut spec = TraceSpec::mixed(ArrivalSpec::OpenPoisson { rate_rps, requests }, seed);
    spec.classes[0] = spec.classes[0].clone().with_priority(3);
    spec.generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// No request is ever lost or duplicated, under any policy, fleet
    /// size or offered load.
    #[test]
    fn no_request_lost_or_duplicated(
        requests in 20usize..100,
        chips in 1usize..6,
        rate in 50.0f64..2000.0,
        seed in 0u64..1000,
    ) {
        let trace = open_trace(requests, rate, seed);
        for policy in Policy::ALL {
            let report = simulate_fleet(&FleetConfig::new(chips, policy), &trace);
            prop_assert_eq!(report.completed, requests);
            let mut ids: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
            ids.sort_unstable();
            let mut expect: Vec<u64> = (0..requests as u64).collect();
            expect.sort_unstable();
            prop_assert_eq!(ids, expect);
        }
    }

    /// FIFO starts jobs in arrival order: an earlier arrival never begins
    /// execution after a later one.
    #[test]
    fn fifo_preserves_arrival_order(
        requests in 20usize..80,
        chips in 1usize..5,
        rate in 100.0f64..1500.0,
        seed in 0u64..1000,
    ) {
        let trace = open_trace(requests, rate, seed);
        let report = simulate_fleet(&FleetConfig::new(chips, Policy::Fifo), &trace);
        let mut by_arrival: Vec<_> = report.completions.iter().collect();
        by_arrival.sort_by_key(|c| (c.arrival_cycles, c.id));
        for pair in by_arrival.windows(2) {
            prop_assert!(
                pair[0].start_cycles <= pair[1].start_cycles,
                "id {} (arrived {}) started at {} after id {} (arrived {}) at {}",
                pair[0].id, pair[0].arrival_cycles, pair[0].start_cycles,
                pair[1].id, pair[1].arrival_cycles, pair[1].start_cycles
            );
        }
    }

    /// The continuous batcher never packs more resident KV state than the
    /// chip's K/V SRAMs hold: the per-chip high-water mark respects the
    /// budget derived from `SpAttenConfig::kv_sram_bytes`.
    #[test]
    fn batcher_never_exceeds_kv_sram_budget(
        requests in 30usize..120,
        chips in 1usize..5,
        rate in 100.0f64..4000.0,
        seed in 0u64..1000,
    ) {
        let trace = open_trace(requests, rate, seed);
        let cfg = FleetConfig::new(chips, Policy::ContinuousBatching);
        let report = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(report.kv_budget_bytes, 2 * cfg.accel.kv_sram_bytes);
        for chip in &report.chip_stats {
            prop_assert!(
                chip.max_kv_in_use <= report.kv_budget_bytes,
                "chip {} peaked at {} bytes against a {} byte budget",
                chip.id, chip.max_kv_in_use, report.kv_budget_bytes
            );
        }
    }

    /// The KV-aware reorderer's starvation bound holds end to end: no
    /// request is ever overtaken by more than `max_skip` later arrivals.
    /// An overtake is a job that arrived strictly later but started
    /// executing strictly earlier — exactly the events the policy's
    /// per-job skip counter charges, so the global bound must survive
    /// multi-chip admission races too.
    #[test]
    fn kv_aware_starvation_bound_is_never_exceeded(
        requests in 30usize..120,
        chips in 1usize..5,
        rate in 500.0f64..6000.0,
        seed in 0u64..1000,
        max_skip in 0u32..6,
    ) {
        let trace = open_trace(requests, rate, seed);
        let mut cfg = FleetConfig::new(chips, Policy::KvAware);
        cfg.sched.max_skip = max_skip;
        let report = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(report.completed, requests);
        for c in &report.completions {
            let overtakes = report
                .completions
                .iter()
                .filter(|o| {
                    o.arrival_cycles > c.arrival_cycles && o.start_cycles < c.start_cycles
                })
                .count();
            prop_assert!(
                overtakes as u32 <= max_skip,
                "job {} was overtaken {} times against a bound of {}",
                c.id, overtakes, max_skip
            );
        }
    }

    /// SLO-rejected requests never consume chip cycles: every trace
    /// request either completes or is rejected (never both), and with an
    /// unmeetable SLO on every class the chips stay entirely idle.
    #[test]
    fn slo_rejections_never_consume_chip_cycles(
        requests in 20usize..80,
        chips in 1usize..4,
        rate in 200.0f64..3000.0,
        seed in 0u64..1000,
    ) {
        let spec = TraceSpec::mixed(
            ArrivalSpec::OpenPoisson { rate_rps: rate, requests },
            seed,
        );

        // Feasible-but-tight SLOs: completions and rejections partition
        // the trace, and no rejected id ever reaches a chip.
        let mut tight = spec.clone();
        for class in &mut tight.classes {
            *class = class.clone().with_slo(0.005);
        }
        let report = simulate_fleet(
            &FleetConfig::new(chips, Policy::SloAware),
            &tight.generate(),
        );
        prop_assert_eq!(report.completed + report.rejected, requests);
        let mut ids: Vec<u64> = report
            .completions
            .iter()
            .map(|c| c.id)
            .chain(report.rejections.iter().map(|r| r.id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        // Equal lengths after dedup ⇒ no request both completed and was
        // rejected.
        prop_assert_eq!(ids.len(), requests);

        // Unmeetable SLOs: everything is shed at arrival and the fleet
        // never executes a single cycle.
        let mut hopeless = spec;
        for class in &mut hopeless.classes {
            *class = class.clone().with_slo(1e-9);
        }
        let report = simulate_fleet(
            &FleetConfig::new(chips, Policy::SloAware),
            &hopeless.generate(),
        );
        prop_assert_eq!(report.rejected, requests);
        prop_assert_eq!(report.completed, 0);
        for chip in &report.chip_stats {
            prop_assert_eq!(chip.busy_cycles, 0);
            prop_assert_eq!(chip.rounds, 0);
        }
    }

    /// Preemption never starves anyone: under an adversarial
    /// high-priority flood every evicted job still completes, and no job
    /// is ever evicted more often than the fairness bound allows.
    #[test]
    fn preempted_jobs_always_complete_within_the_fairness_bound(
        requests in 40usize..160,
        chips in 1usize..4,
        rate in 2000.0f64..8000.0,
        seed in 0u64..1000,
        fairness in 1u32..5,
    ) {
        let trace = tiered_trace(requests, rate, seed);
        let mut cfg = FleetConfig::new(chips, Policy::Priority);
        cfg.sched.preempt = PreemptSpec::Priority;
        cfg.sched.max_preemptions = fairness;
        let report = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(report.completed, requests);
        for c in &report.completions {
            prop_assert!(
                c.preemptions <= fairness,
                "job {} evicted {} times against a bound of {}",
                c.id, c.preemptions, fairness
            );
        }
    }

    /// Preserved-prefix conservation: a preemptive run moves exactly the
    /// tokens a non-preemptive run moves — same completion set, same
    /// per-job generated counts — and whenever evictions occurred, the
    /// swap traffic was charged to chip busy time.
    #[test]
    fn preemption_conserves_tokens_and_charges_swaps(
        requests in 40usize..120,
        chips in 1usize..4,
        rate in 100.0f64..6000.0,
        seed in 0u64..1000,
    ) {
        let trace = tiered_trace(requests, rate, seed);
        let base = simulate_fleet(&FleetConfig::new(chips, Policy::Priority), &trace);
        let mut cfg = FleetConfig::new(chips, Policy::Priority);
        cfg.sched.preempt = PreemptSpec::Priority;
        let pre = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(pre.completed, base.completed);
        let tokens = |r: &spatten_serve::FleetReport| -> Vec<(u64, usize)> {
            let mut t: Vec<(u64, usize)> = r
                .completions
                .iter()
                .map(|c| (c.id, c.prefill_tokens + c.generated_tokens))
                .collect();
            t.sort_unstable();
            t
        };
        prop_assert_eq!(tokens(&pre), tokens(&base));
        // Swap cycles are real work: every chip that evicted charged
        // nonzero swap time into its busy cycles, and chips that never
        // evicted charged none.
        prop_assert_eq!(
            pre.preemptions,
            pre.chip_stats.iter().map(|c| c.evictions).sum::<u64>()
        );
        for chip in &pre.chip_stats {
            prop_assert_eq!(chip.evictions > 0, chip.swap_cycles > 0);
            prop_assert!(chip.swap_cycles <= chip.busy_cycles);
        }
        for chip in &base.chip_stats {
            prop_assert_eq!(chip.evictions, 0);
            prop_assert_eq!(chip.swap_cycles, 0);
        }
    }

    /// The in-service backlog estimator is conservative-consistent: the
    /// simulator asserts at drain time that every cycle charged into the
    /// scheduler's pending ledgers and the chips' in-service estimates
    /// was discharged by the matching transition — admit, complete,
    /// preempt, or steal — so this property holds exactly when the run
    /// completes at all. Sweeping random traces through the full
    /// composition (in-service-aware routing × priority preemption ×
    /// work-stealing on a mixed 2-full + 2-eighth fleet) exercises every
    /// transition the estimate must survive; drift anywhere panics the
    /// event loop. Completion conservation and determinism ride along.
    #[test]
    fn in_service_estimator_never_drifts_across_transitions(
        requests in 40usize..140,
        rate in 100.0f64..4000.0,
        seed in 0u64..1000,
        route_pick in 0usize..4,
        steal_pick in 0usize..2,
    ) {
        let route = [
            RouteSpec::FastestChip,
            RouteSpec::ChurnAware,
            RouteSpec::LeastKvLoaded,
            RouteSpec::HashAffinity,
        ][route_pick];
        let steal = [StealSpec::Off, StealSpec::CostliestFit][steal_pick];
        let trace = tiered_trace(requests, rate, seed);
        let chips = vec![
            SpAttenConfig::default(),
            SpAttenConfig::default(),
            SpAttenConfig::eighth(),
            SpAttenConfig::eighth(),
        ];
        let mut cfg = FleetConfig::with_chips(chips, Policy::Priority);
        cfg.sched.route = route;
        cfg.sched.steal = steal;
        cfg.sched.preempt = PreemptSpec::Priority;
        let report = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(report.completed, requests);
        let mut ids: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), requests); // no request lost or duplicated
        let again = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(report.completions, again.completions);
    }

    /// Work-stealing never migrates a preempted-resumed job: every
    /// completion that was preempted finishes on a chip that evicted at
    /// least once (its pin holds — the chip-level assert would panic on
    /// violation), and stealing with preemption still conserves tokens
    /// against the non-stealing run's totals.
    #[test]
    fn stealing_respects_preemption_pins(
        requests in 40usize..120,
        rate in 1000.0f64..6000.0,
        seed in 0u64..1000,
    ) {
        let trace = tiered_trace(requests, rate, seed);
        let chips = vec![
            SpAttenConfig::default(),
            SpAttenConfig::eighth(),
            SpAttenConfig::eighth(),
        ];
        let mut cfg = FleetConfig::with_chips(chips, Policy::Priority);
        cfg.sched.route = RouteSpec::HashAffinity;
        cfg.sched.steal = StealSpec::CostliestFit;
        cfg.sched.preempt = PreemptSpec::Priority;
        let report = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(report.completed, requests);
        // Tokens moved are identical with stealing off: stealing
        // relocates work, never loses or duplicates it.
        let mut off = cfg.clone();
        off.sched.steal = StealSpec::Off;
        let base = simulate_fleet(&off, &trace);
        let tokens = |r: &spatten_serve::FleetReport| -> Vec<(u64, usize)> {
            let mut t: Vec<(u64, usize)> = r
                .completions
                .iter()
                .map(|c| (c.id, c.prefill_tokens + c.generated_tokens))
                .collect();
            t.sort_unstable();
            t
        };
        prop_assert_eq!(tokens(&report), tokens(&base));
    }

    /// Paged KV page accounting balances under the full scheduling
    /// composition: routing × work-stealing × priority preemption on a
    /// mixed 2-full + 2-eighth fleet, over the high-prefix-reuse chat
    /// mix. At drain every chip's pager returns every block it handed
    /// out (`blocks_allocated == blocks_freed`) — the pager itself
    /// asserts zero refcounts and an empty page-table map inside the
    /// event loop, so admission, eviction, resumption, stealing,
    /// mid-decode reclaim and cache eviction all have to conserve pages
    /// for the run to finish at all. The paged high-water mark never
    /// exceeds the chip budget, requests are conserved, and the run is
    /// deterministic.
    #[test]
    fn paged_pages_balance_across_route_steal_preempt(
        requests in 40usize..140,
        rate in 100.0f64..4000.0,
        seed in 0u64..1000,
        route_pick in 0usize..4,
        steal_pick in 0usize..2,
    ) {
        let route = [
            RouteSpec::FastestChip,
            RouteSpec::ChurnAware,
            RouteSpec::LeastKvLoaded,
            RouteSpec::HashAffinity,
        ][route_pick];
        let steal = [StealSpec::Off, StealSpec::CostliestFit][steal_pick];
        let mut spec = TraceSpec::chat(
            ArrivalSpec::OpenPoisson { rate_rps: rate, requests },
            seed,
        );
        spec.classes[0] = spec.classes[0].clone().with_priority(2);
        let trace = spec.generate();
        let chips = vec![
            SpAttenConfig::default(),
            SpAttenConfig::default(),
            SpAttenConfig::eighth(),
            SpAttenConfig::eighth(),
        ];
        let mut cfg = FleetConfig::with_chips(chips.clone(), Policy::Priority);
        cfg.sched.route = route;
        cfg.sched.steal = steal;
        cfg.sched.preempt = PreemptSpec::Priority;
        cfg.sched.kv = KvSpec::paged();
        let report = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(report.completed, requests);
        for (chip, stats) in chips.iter().zip(&report.chip_stats) {
            prop_assert!(
                stats.kv.blocks_allocated == stats.kv.blocks_freed,
                "chip {} leaked pages: {} allocated vs {} freed",
                stats.id, stats.kv.blocks_allocated, stats.kv.blocks_freed
            );
            prop_assert!(
                stats.max_kv_in_use <= 2 * chip.kv_sram_bytes,
                "chip {} overflowed its KV budget: {} > {}",
                stats.id, stats.max_kv_in_use, 2 * chip.kv_sram_bytes
            );
        }
        let mut ids: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), requests);
        let again = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(report.completions, again.completions);
    }

    /// With sharing disabled (`shared_prefix_tokens = 0` everywhere, the
    /// default for every non-chat trace), the paged allocator is pure
    /// mechanism: same completions as the contiguous model would admit
    /// block-rounding aside, zero shared hits, zero cache evictions, and
    /// the page ledger still balances.
    #[test]
    fn paged_without_prefixes_shares_nothing_and_balances(
        requests in 30usize..100,
        rate in 100.0f64..3000.0,
        seed in 0u64..1000,
    ) {
        let trace = tiered_trace(requests, rate, seed);
        let mut cfg = FleetConfig::new(2, Policy::Priority);
        cfg.sched.preempt = PreemptSpec::Priority;
        cfg.sched.kv = KvSpec::paged();
        let report = simulate_fleet(&cfg, &trace);
        prop_assert_eq!(report.completed, requests);
        for stats in &report.chip_stats {
            prop_assert_eq!(stats.kv.blocks_allocated, stats.kv.blocks_freed);
            prop_assert_eq!(stats.kv.shared_hits, 0);
            prop_assert_eq!(stats.kv.cache_evicted_blocks, 0);
        }
    }

    /// Handoff conservation: a disaggregated run moves exactly the
    /// tokens the co-located run moves — same completion set, same
    /// per-job prefill + generated counts — under every router, stealing
    /// mode and preemption setting. Migration relocates work, never
    /// loses or duplicates it, and no decode-phase job ever finishes on
    /// the prefill specialist. Determinism rides along.
    #[test]
    fn handoffs_conserve_tokens_across_route_steal_preempt(
        requests in 40usize..120,
        rate in 200.0f64..4000.0,
        seed in 0u64..1000,
        route_pick in 0usize..5,
        steal_pick in 0usize..2,
        preempt_pick in 0usize..2,
    ) {
        let route = [
            RouteSpec::FastestChip,
            RouteSpec::ChurnAware,
            RouteSpec::LeastKvLoaded,
            RouteSpec::HashAffinity,
            RouteSpec::PoolAware,
        ][route_pick];
        let steal = [StealSpec::Off, StealSpec::CostliestFit][steal_pick];
        let preempt = [PreemptSpec::None, PreemptSpec::Priority][preempt_pick];
        let trace = tiered_trace(requests, rate, seed);
        let mut cfg = FleetConfig::new(3, Policy::Priority);
        cfg.sched.route = route;
        cfg.sched.steal = steal;
        cfg.sched.preempt = preempt;
        let base = simulate_fleet(&cfg, &trace);
        let mut pooled = cfg.clone();
        pooled.pools = Some(PoolSpec::split(1, 2));
        let report = simulate_fleet(&pooled, &trace);
        prop_assert_eq!(report.completed, requests);
        let tokens = |r: &spatten_serve::FleetReport| -> Vec<(u64, usize)> {
            let mut t: Vec<(u64, usize)> = r
                .completions
                .iter()
                .map(|c| (c.id, c.prefill_tokens + c.generated_tokens))
                .collect();
            t.sort_unstable();
            t
        };
        prop_assert_eq!(tokens(&report), tokens(&base));
        for c in &report.completions {
            prop_assert!(
                c.generated_tokens == 0 || c.chip != 0,
                "decode-phase job {} finished on the prefill specialist",
                c.id
            );
        }
        let again = simulate_fleet(&pooled, &trace);
        prop_assert_eq!(report.completions, again.completions);
    }

    /// Both endpoints' pagers balance across a disaggregated run, and
    /// the transfer payload is pruning- and sharing-aware: with prefix
    /// sharing stripped every transferred byte is a whole unique block
    /// (`handoff_bytes` divides by the block size), prefix blocks
    /// already warm on the decode chip ride free (the shared-prefix run
    /// never moves more bytes than its stripped twin on the identical
    /// request stream), and the unpruned twin — same arrivals, same
    /// drawn lengths, dense KV — always moves strictly more.
    #[test]
    fn pooled_pagers_balance_and_warm_prefixes_ride_free(
        requests in 40usize..100,
        rate in 200.0f64..3000.0,
        seed in 0u64..1000,
        steal_pick in 0usize..2,
    ) {
        let steal = [StealSpec::Off, StealSpec::CostliestFit][steal_pick];
        let spec = TraceSpec::chat(
            ArrivalSpec::OpenPoisson { rate_rps: rate, requests },
            seed,
        );
        let mut stripped = spec.clone();
        for class in &mut stripped.classes {
            *class = class.clone().with_shared_prefix(0);
        }
        let mut cfg = FleetConfig::new(2, Policy::Priority);
        cfg.sched.route = RouteSpec::PoolAware;
        cfg.sched.steal = steal;
        cfg.sched.preempt = PreemptSpec::Priority;
        cfg.sched.kv = KvSpec::paged();
        cfg.pools = Some(PoolSpec::split(1, 1));
        let shared = simulate_fleet(&cfg, &spec.generate());
        let plain = simulate_fleet(&cfg, &stripped.generate());
        let dense = simulate_fleet(&cfg, &stripped.clone().unpruned().generate());
        let bytes = |r: &spatten_serve::FleetReport| -> u64 {
            r.chip_stats.iter().map(|c| c.handoff_bytes).sum()
        };
        for r in [&shared, &plain, &dense] {
            prop_assert_eq!(r.completed, requests);
            // Every chat job is generative, prefills on the specialist
            // and migrates exactly once.
            prop_assert_eq!(
                r.chip_stats.iter().map(|c| c.handoffs).sum::<u64>(),
                requests as u64
            );
            for stats in &r.chip_stats {
                prop_assert!(
                    stats.kv.blocks_allocated == stats.kv.blocks_freed,
                    "chip {} leaked pages across the handoff: {} allocated vs {} freed",
                    stats.id, stats.kv.blocks_allocated, stats.kv.blocks_freed
                );
            }
        }
        let bb = cfg.sched.kv.block_bytes().expect("paged spec has a block size");
        prop_assert_eq!(bytes(&plain) % bb, 0);
        prop_assert!(
            bytes(&shared) <= bytes(&plain),
            "warm shared prefixes must transfer free: {} > {}",
            bytes(&shared), bytes(&plain)
        );
        prop_assert!(
            bytes(&plain) < bytes(&dense),
            "pruned survivor sets must be cheaper to move: {} >= {}",
            bytes(&plain), bytes(&dense)
        );
    }

    /// [`SimMode::ParallelRounds`] is bit-identical to serial: the
    /// parallel cost-plane pre-warm prices the same pure functions the
    /// serial run would price lazily, so the full [`FleetReport`] — every
    /// completion timestamp, per-job token count, chip counter and the
    /// fired-event total — must match exactly, independent of thread
    /// count, across the whole routing × stealing × preemption × pooling
    /// scheduling surface.
    ///
    /// [`FleetReport`]: spatten_serve::FleetReport
    #[test]
    fn parallel_rounds_is_bit_identical_to_serial(
        requests in 40usize..120,
        rate in 200.0f64..4000.0,
        seed in 0u64..3,
        route_pick in 0usize..5,
        steal_pick in 0usize..2,
        preempt_pick in 0usize..2,
        pools_pick in 0usize..2,
        threads in 2usize..9,
    ) {
        let route = [
            RouteSpec::FastestChip,
            RouteSpec::ChurnAware,
            RouteSpec::LeastKvLoaded,
            RouteSpec::HashAffinity,
            RouteSpec::PoolAware,
        ][route_pick];
        let steal = [StealSpec::Off, StealSpec::CostliestFit][steal_pick];
        let preempt = [PreemptSpec::None, PreemptSpec::Priority][preempt_pick];
        let trace = tiered_trace(requests, rate, seed);
        let mut cfg = FleetConfig::new(3, Policy::Priority);
        cfg.sched.route = route;
        cfg.sched.steal = steal;
        cfg.sched.preempt = preempt;
        if pools_pick == 1 {
            cfg.pools = Some(PoolSpec::split(1, 2));
        }
        let serial = simulate_fleet(&cfg, &trace);
        let mut par = cfg.clone();
        par.sched.mode = SimMode::ParallelRounds { threads };
        let parallel = simulate_fleet(&par, &trace);
        // Per-job token vectors and the fired-event count first, for a
        // readable failure; then the whole report bit-for-bit.
        let tokens = |r: &spatten_serve::FleetReport| -> Vec<(u64, usize, usize)> {
            let mut t: Vec<(u64, usize, usize)> = r
                .completions
                .iter()
                .map(|c| (c.id, c.prefill_tokens, c.generated_tokens))
                .collect();
            t.sort_unstable();
            t
        };
        prop_assert_eq!(tokens(&parallel), tokens(&serial));
        prop_assert_eq!(parallel.sim_events, serial.sim_events);
        prop_assert_eq!(&parallel, &serial);
    }

    /// Timestamps are causally ordered for every completion, under every
    /// policy: arrival <= start <= first token <= finish.
    #[test]
    fn completion_timestamps_are_causal(
        requests in 20usize..80,
        chips in 1usize..5,
        seed in 0u64..1000,
    ) {
        let trace = open_trace(requests, 400.0, seed);
        for policy in Policy::ALL {
            let report = simulate_fleet(&FleetConfig::new(chips, policy), &trace);
            for c in &report.completions {
                prop_assert!(c.arrival_cycles <= c.start_cycles);
                prop_assert!(c.start_cycles < c.first_token_cycles);
                prop_assert!(c.first_token_cycles <= c.finish_cycles);
            }
        }
    }
}

/// Deterministic-seed end-to-end smoke test: a 4-chip fleet under every
/// policy completes the whole trace with nonzero throughput and a sane
/// latency distribution (p99 >= p50).
#[test]
fn end_to_end_smoke() {
    let trace = open_trace(300, 250.0, 20260726);
    for policy in Policy::ALL {
        let report = simulate_fleet(&FleetConfig::new(4, policy), &trace);
        assert_eq!(report.completed, 300, "{}", policy.name());
        assert!(report.throughput_rps > 0.0, "{}", policy.name());
        assert!(report.tokens_per_sec > 0.0, "{}", policy.name());
        assert!(report.utilization > 0.0, "{}", policy.name());
        assert!(
            report.latency.p99 >= report.latency.p50,
            "{}: p99 {} < p50 {}",
            policy.name(),
            report.latency.p99,
            report.latency.p50
        );
        assert!(
            report.latency.p95 >= report.latency.p50,
            "{}",
            policy.name()
        );
        assert!(
            report.latency.max >= report.latency.p99,
            "{}",
            policy.name()
        );
        // Rerunning the same seed reproduces the report bit-for-bit.
        let again = simulate_fleet(&FleetConfig::new(4, policy), &trace);
        assert_eq!(report.makespan_cycles, again.makespan_cycles);
        assert_eq!(report.completions, again.completions);
    }
}

/// Transferred bytes are exactly the unique dirty blocks at the
/// migration instant: with a single request, no prefix sharing and paged
/// KV, every block the prefill specialist ever allocated is dirty and
/// unique when the job graduates — so the handoff payload equals the
/// chip's entire allocation, and the unmap at departure returns every
/// one of those blocks.
#[test]
fn single_job_handoff_moves_exactly_its_dirty_blocks() {
    let trace = TraceSpec::gpt2_decode(
        ArrivalSpec::OpenPoisson {
            rate_rps: 100.0,
            requests: 1,
        },
        7,
    )
    .generate();
    let mut cfg = FleetConfig::new(2, Policy::ContinuousBatching);
    cfg.sched.route = RouteSpec::PoolAware;
    cfg.sched.kv = KvSpec::paged();
    cfg.pools = Some(PoolSpec::split(1, 1));
    let report = simulate_fleet(&cfg, &trace);
    assert_eq!(report.completed, 1);
    let bb = cfg
        .sched
        .kv
        .block_bytes()
        .expect("paged spec has a block size");
    let src = &report.chip_stats[0];
    assert_eq!(src.handoffs, 1);
    assert_eq!(src.handoff_bytes, src.kv.blocks_allocated * bb);
    assert_eq!(src.kv.blocks_allocated, src.kv.blocks_freed);
    assert_eq!(report.completions[0].chip, 1, "decode runs on the target");
}

/// The closed-loop arrival process also conserves requests end to end.
#[test]
fn closed_loop_smoke() {
    let trace = TraceSpec::mixed(
        ArrivalSpec::ClosedLoop {
            clients: 12,
            think_s: 0.001,
            requests: 120,
        },
        9,
    )
    .generate();
    let report = simulate_fleet(&FleetConfig::new(2, Policy::ContinuousBatching), &trace);
    assert_eq!(report.completed, 120);
    assert!(report.latency.p99 >= report.latency.p50);
}
