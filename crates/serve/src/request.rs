//! Request lifecycle types: a job waiting for or occupying a chip, the
//! resume state a preempted job carries back to the queue, the completion
//! record the metrics layer aggregates, and the rejection record
//! SLO-aware admission produces.

use serde::{Deserialize, Serialize};
use spatten_workloads::Workload;

/// A request inside the simulator: trace identity plus arrival timestamp in
/// fleet (core-clock) cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Stable trace id.
    pub id: u64,
    /// Index into the trace spec's class list.
    pub class: usize,
    /// Scheduling priority tier: higher outranks lower (see
    /// `spatten_workloads::RequestClass::with_priority`).
    pub priority: u8,
    /// Issuing client, for closed-loop traces.
    pub client: Option<usize>,
    /// Arrival time in cycles.
    pub arrival_cycles: u64,
    /// Absolute completion deadline in cycles (`None` = best-effort).
    pub deadline_cycles: Option<u64>,
    /// Times this job has been preempted off a chip so far.
    pub preemptions: u32,
    /// Progress preserved across preemption (`None` for a job that has
    /// never run). A re-admitted job resumes from here instead of
    /// recomputing its prefix — preemption never loses generated work.
    pub resume: Option<ResumeState>,
    /// Tokens at the head of the prompt shared with the request class's
    /// system prefix (clamped to `workload.seq_len` at trace
    /// generation). Under paged KV allocation
    /// ([`KvSpec::Paged`](crate::kv::KvSpec)) these tokens map to a
    /// refcounted per-class prefix charged once per chip; `0` (the
    /// default) shares nothing and reproduces contiguous accounting.
    pub shared_prefix_tokens: usize,
    /// Whether an elastic revocation ([`LeaveMode::Revoke`]) ever
    /// displaced this job off a departing chip. Revocation-touched jobs
    /// keep their generated work (the `resume` state migrates with
    /// them), but their timing is perturbed — the conservation harness
    /// uses this marker to separate them from jobs whose trajectory a
    /// fault-free twin must reproduce exactly.
    ///
    /// [`LeaveMode::Revoke`]: crate::elastic::LeaveMode::Revoke
    pub revoked: bool,
    /// The per-request workload.
    pub workload: Workload,
}

/// The execution progress a preempted job carries back to the queue: its
/// KV prefix lives in HBM (drained at eviction, restored at re-admission
/// — both charged through `FleetCost::swap_cycles_on`), and the chip
/// event loop resumes the job exactly where it stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResumeState {
    /// The chip holding this job's KV state. A resumed job is **pinned**
    /// to this chip: routing and work-stealing must never migrate it,
    /// and [`Chip::admit`](crate::chip::Chip::admit) asserts the pin.
    /// For a preemption victim that is the *evicting* chip (its HBM
    /// holds the drained prefix and the swap accounting lives there);
    /// for a disaggregation handoff
    /// ([`crate::disagg::PoolSpec`]) it is the *target decode* chip the
    /// KV pages were transferred to — the pin always answers "which
    /// chip holds my KV", not "which chip ran me last".
    pub chip: usize,
    /// Serial prefill cycles already executed.
    pub prefill_progress: u64,
    /// Whether the prefill pass had fully executed.
    pub prefilled: bool,
    /// Decode steps already completed.
    pub steps_done: usize,
    /// The job's *first* execution start, in cycles (queue-wait metrics
    /// measure to the first start, not the post-preemption restart).
    pub start_cycles: u64,
    /// Absolute time the first visible token was emitted, if it was.
    pub first_token_cycles: Option<u64>,
}

impl ResumeState {
    /// Context tokens whose KV state exists and must be swapped: the full
    /// prompt once prefill finished (plus one per decoded token), a
    /// proportional slice of it mid-prefill.
    pub fn kv_tokens(&self, w: &Workload, full_prefill_cycles: u64) -> usize {
        if self.prefilled {
            w.seq_len + self.steps_done
        } else {
            let frac = self.prefill_progress as f64 / full_prefill_cycles.max(1) as f64;
            (w.seq_len as f64 * frac) as usize
        }
    }
}

/// The record of one finished request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Stable trace id.
    pub id: u64,
    /// Index into the trace spec's class list.
    pub class: usize,
    /// Scheduling priority tier the job carried.
    pub priority: u8,
    /// Issuing client, for closed-loop traces.
    pub client: Option<usize>,
    /// Chip the job finished on.
    pub chip: usize,
    /// Arrival time in cycles.
    pub arrival_cycles: u64,
    /// Execution start (first admission to a chip) in cycles.
    pub start_cycles: u64,
    /// Completion time in cycles.
    pub finish_cycles: u64,
    /// Time the first visible token was ready, in cycles (prefill output
    /// for discriminative jobs, first generated token otherwise).
    pub first_token_cycles: u64,
    /// Absolute completion deadline in cycles (`None` = best-effort).
    pub deadline_cycles: Option<u64>,
    /// Times the job was preempted (evicted and later resumed) on its way
    /// to completion.
    pub preemptions: u32,
    /// Input tokens processed by the prefill pass.
    pub prefill_tokens: usize,
    /// Tokens generated by the decode stage (0 for BERT jobs).
    pub generated_tokens: usize,
    /// Whether an elastic revocation displaced this job mid-flight (see
    /// [`Job::revoked`]). Untouched jobs must match their fault-free
    /// twin token-for-token; revoked jobs keep their work but not their
    /// timing.
    pub revoked: bool,
}

impl Completion {
    /// End-to-end latency in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.finish_cycles - self.arrival_cycles
    }

    /// Queueing delay before execution started, in cycles.
    pub fn wait_cycles(&self) -> u64 {
        self.start_cycles - self.arrival_cycles
    }

    /// Time to first token, in cycles.
    pub fn ttft_cycles(&self) -> u64 {
        self.first_token_cycles - self.arrival_cycles
    }

    /// Cycles spent in the decode phase (first token to finish); zero for
    /// discriminative jobs.
    pub fn decode_cycles(&self) -> u64 {
        self.finish_cycles - self.first_token_cycles
    }

    /// Mean time between generated tokens, in cycles — the decode-latency
    /// statistic iteration-level scheduling optimizes. The span from
    /// first token to finish contains `generated_tokens - 1` inter-token
    /// gaps, so `None` for jobs generating fewer than two tokens (no gap
    /// exists to measure).
    pub fn tbt_cycles(&self) -> Option<u64> {
        (self.generated_tokens > 1)
            .then(|| self.decode_cycles() / (self.generated_tokens as u64 - 1))
    }

    /// Whether the completion met its deadline (best-effort always does).
    pub fn met_deadline(&self) -> bool {
        self.deadline_cycles.is_none_or(|d| self.finish_cycles <= d)
    }

    /// Tokens this request moved through the fleet (prefill + generated).
    pub fn tokens(&self) -> u64 {
        (self.prefill_tokens + self.generated_tokens) as u64
    }
}

/// The record of a request dropped by SLO-aware admission before it ever
/// touched a chip: the scheduler predicted the deadline was unmeetable and
/// shed the job instead of burning cycles on a guaranteed violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rejection {
    /// Stable trace id.
    pub id: u64,
    /// Index into the trace spec's class list.
    pub class: usize,
    /// Scheduling priority tier the job carried.
    pub priority: u8,
    /// Issuing client, for closed-loop traces.
    pub client: Option<usize>,
    /// Arrival time in cycles.
    pub arrival_cycles: u64,
    /// Time the scheduler shed the job, in cycles.
    pub reject_cycles: u64,
    /// The deadline that was judged unmeetable.
    pub deadline_cycles: Option<u64>,
}
