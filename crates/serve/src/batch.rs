//! Pluggable batching policies: how a chip's resident jobs share one
//! round.
//!
//! Admission ([`crate::scheduler::AdmissionPolicy`]) decides *who* is
//! resident; a [`BatchPolicy`] decides *what each resident executes* when
//! the chip starts a round. The chip presents a [`ResidentView`] per
//! resident job and receives one [`RoundStep`] directive each:
//!
//! * [`RunToCompletion`] — the single resident job runs start to finish
//!   (FIFO / SJF rounds).
//! * [`IterationBatch`] — classic continuous batching: every resident
//!   advances one quantum per iteration, a bounded chunk of its prefill
//!   pass or one decode token. Fair, but iteration length grows with
//!   every resident prefill: five fresh arrivals each injecting a full
//!   prefill chunk stretch the iteration five chunks, and every resident
//!   decode job's next token waits behind all of them.
//! * [`DecodePrioritizedBatch`] — Sarathi-style decode-prioritized token
//!   budgets: resident decode steps are reserved *first* (one token each,
//!   unconditionally), and prefill work is admitted into the leftover
//!   iteration budget — a single shared allowance handed out oldest
//!   first, instead of one full chunk per prefilling job. Iterations stay
//!   near decode-step length no matter how many prefills are in flight,
//!   which is exactly where the decode tail-latency win comes from;
//!   the price is slower prefill (worse TTFT) under prefill-heavy mixes.
//!   When no decode job is resident there is nothing to protect and the
//!   policy degenerates to [`IterationBatch`].

use std::fmt;

/// What one resident job executes in the upcoming round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundStep {
    /// The whole job, serially (run-to-completion chips hold one job).
    WholeJob,
    /// At most `chunk_cycles` of serial prefill work.
    Prefill {
        /// Serial-cycle allowance for this job's prefill this round.
        chunk_cycles: u64,
    },
    /// `steps` decode tokens back-to-back (clamped by the chip to the
    /// tokens the job still wants). Every bundled policy emits
    /// `steps: 1` except the priority-weighted decode budget of
    /// [`DecodePrioritizedBatch`].
    Decode {
        /// Decode tokens to run this round (≥ 1).
        steps: usize,
    },
    /// Nothing this round (budget exhausted); the job stays resident.
    Idle,
}

/// The chip's view of one resident job, in residence order.
#[derive(Debug, Clone, Copy)]
pub struct ResidentView {
    /// Arrival time in cycles (for oldest-first budget hand-out).
    pub arrival_cycles: u64,
    /// Scheduling priority tier (higher outranks lower).
    pub priority: u8,
    /// Whether the prefill pass has fully executed.
    pub prefilled: bool,
    /// Serial prefill cycles still outstanding (0 once prefilled).
    pub prefill_remaining_cycles: u64,
    /// Decode steps completed so far.
    pub steps_done: usize,
    /// Decode steps the job wants in total (0 for discriminative jobs).
    pub gen_steps: usize,
    /// Serial cycles of the job's next decode step (0 while prefilling).
    pub next_decode_cycles: u64,
}

/// The batching seam: plans one round for a chip's resident set.
///
/// ```
/// use spatten_serve::{BatchPolicy, ResidentView, RoundStep};
///
/// /// Decode-only rounds: prefills wait until no decode job is resident.
/// #[derive(Debug)]
/// struct DecodeOnly;
/// impl BatchPolicy for DecodeOnly {
///     fn name(&self) -> &'static str {
///         "decode-only"
///     }
///     fn plan(&mut self, residents: &[ResidentView]) -> Vec<RoundStep> {
///         let any_decode = residents.iter().any(|r| r.prefilled);
///         residents
///             .iter()
///             .map(|r| match (r.prefilled, any_decode) {
///                 (true, _) => RoundStep::Decode { steps: 1 },
///                 (false, true) => RoundStep::Idle,
///                 (false, false) => RoundStep::Prefill { chunk_cycles: 250_000 },
///             })
///             .collect()
///     }
/// }
/// ```
pub trait BatchPolicy: fmt::Debug {
    /// Stable lowercase name for reports.
    fn name(&self) -> &'static str;

    /// One directive per resident, in the same order as `residents`. At
    /// least one directive must advance a job (the chip panics on an
    /// all-[`RoundStep::Idle`] plan — it would be a zero-length round).
    fn plan(&mut self, residents: &[ResidentView]) -> Vec<RoundStep>;

    /// Whether this policy runs whole jobs to completion (a solitary
    /// resident per chip). Run-to-completion chips always leave free
    /// batch slots, so round-boundary preemption never sees a blocked
    /// job and silently does nothing — the report surfaces that
    /// combination as [`FleetReport::preemption_inert`]. Override only
    /// for [`RoundStep::WholeJob`] planners.
    ///
    /// [`FleetReport::preemption_inert`]:
    ///     crate::metrics::FleetReport::preemption_inert
    fn run_to_completion(&self) -> bool {
        false
    }
}

impl BatchPolicy for Box<dyn BatchPolicy> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn plan(&mut self, residents: &[ResidentView]) -> Vec<RoundStep> {
        self.as_mut().plan(residents)
    }

    fn run_to_completion(&self) -> bool {
        self.as_ref().run_to_completion()
    }
}

/// Run the solitary resident job start to finish.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunToCompletion;

impl BatchPolicy for RunToCompletion {
    fn name(&self) -> &'static str {
        "run-to-completion"
    }

    fn plan(&mut self, residents: &[ResidentView]) -> Vec<RoundStep> {
        assert_eq!(
            residents.len(),
            1,
            "run-to-completion chips hold exactly one job"
        );
        vec![RoundStep::WholeJob]
    }

    fn run_to_completion(&self) -> bool {
        true
    }
}

/// Classic continuous-batching iteration: every resident advances one
/// quantum — a chunk of its prefill pass or one decode token.
#[derive(Debug, Clone, Copy)]
pub struct IterationBatch {
    /// The most serial prefill work one job may contribute per iteration.
    pub prefill_chunk_cycles: u64,
}

impl BatchPolicy for IterationBatch {
    fn name(&self) -> &'static str {
        "iteration"
    }

    fn plan(&mut self, residents: &[ResidentView]) -> Vec<RoundStep> {
        residents
            .iter()
            .map(|r| {
                if r.prefilled {
                    RoundStep::Decode { steps: 1 }
                } else {
                    RoundStep::Prefill {
                        chunk_cycles: self.prefill_chunk_cycles.max(1),
                    }
                }
            })
            .collect()
    }
}

/// Sarathi-style decode-prioritized iteration budgets: decode steps
/// first, leftover budget filled with chunked prefill (oldest first).
///
/// Decode reservations are **priority-weighted**: a prefilled resident
/// at priority tier `p` is reserved `(p + 1) / (p_min + 1)` decode
/// tokens this round (integer division), where `p_min` is the lowest
/// priority among the resident decode jobs — a tier-3 job decoding next
/// to tier-0 background work runs four tokens per round to the
/// background job's one. When every resident decode job sits on the
/// same tier the weight collapses to exactly one token each, which
/// reproduces the unweighted policy bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct DecodePrioritizedBatch {
    /// Per-job prefill chunk cap (as in [`IterationBatch`]).
    pub prefill_chunk_cycles: u64,
    /// Total prefill allowance per iteration, shared across all resident
    /// prefills, once decode steps are reserved.
    pub prefill_budget_cycles: u64,
}

impl BatchPolicy for DecodePrioritizedBatch {
    fn name(&self) -> &'static str {
        "decode-prioritized"
    }

    fn plan(&mut self, residents: &[ResidentView]) -> Vec<RoundStep> {
        let any_decode = residents.iter().any(|r| r.prefilled);
        if !any_decode {
            // Nothing to protect: behave like the uniform iteration.
            return IterationBatch {
                prefill_chunk_cycles: self.prefill_chunk_cycles,
            }
            .plan(residents);
        }
        let min_priority = residents
            .iter()
            .filter(|r| r.prefilled)
            .map(|r| r.priority)
            .min()
            .unwrap_or(0);
        let mut steps: Vec<RoundStep> = residents
            .iter()
            .map(|r| {
                if r.prefilled {
                    let weight = ((r.priority as usize + 1) / (min_priority as usize + 1)).max(1);
                    RoundStep::Decode { steps: weight }
                } else {
                    RoundStep::Idle
                }
            })
            .collect();
        // Hand the shared prefill budget out oldest-arrival first, so
        // TTFT ordering within the batch stays FIFO.
        let mut prefills: Vec<usize> = (0..residents.len())
            .filter(|&i| !residents[i].prefilled)
            .collect();
        prefills.sort_by_key(|&i| (residents[i].arrival_cycles, i));
        let mut budget = self.prefill_budget_cycles.max(1);
        for i in prefills {
            if budget == 0 {
                break;
            }
            let give = budget.min(self.prefill_chunk_cycles.max(1));
            steps[i] = RoundStep::Prefill { chunk_cycles: give };
            budget -= give.min(residents[i].prefill_remaining_cycles);
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefilling(arrival: u64, remaining: u64) -> ResidentView {
        ResidentView {
            arrival_cycles: arrival,
            priority: 0,
            prefilled: false,
            prefill_remaining_cycles: remaining,
            steps_done: 0,
            gen_steps: 16,
            next_decode_cycles: 0,
        }
    }

    fn decoding(arrival: u64) -> ResidentView {
        ResidentView {
            arrival_cycles: arrival,
            priority: 0,
            prefilled: true,
            prefill_remaining_cycles: 0,
            steps_done: 3,
            gen_steps: 16,
            next_decode_cycles: 200_000,
        }
    }

    #[test]
    fn iteration_advances_everyone() {
        let mut b = IterationBatch {
            prefill_chunk_cycles: 1000,
        };
        let plan = b.plan(&[prefilling(0, 5000), decoding(1), prefilling(2, 100)]);
        assert_eq!(
            plan,
            vec![
                RoundStep::Prefill { chunk_cycles: 1000 },
                RoundStep::Decode { steps: 1 },
                RoundStep::Prefill { chunk_cycles: 1000 },
            ]
        );
    }

    #[test]
    fn decode_prioritized_caps_total_prefill_work() {
        let mut b = DecodePrioritizedBatch {
            prefill_chunk_cycles: 1000,
            prefill_budget_cycles: 1500,
        };
        // Three prefills behind one decode job: only 1500 cycles of
        // prefill run this round (1000 to the oldest, 500 to the next),
        // where the uniform iteration would run 3000.
        let plan = b.plan(&[
            prefilling(10, 5000),
            decoding(0),
            prefilling(5, 5000),
            prefilling(20, 5000),
        ]);
        assert_eq!(plan[1], RoundStep::Decode { steps: 1 });
        assert_eq!(plan[2], RoundStep::Prefill { chunk_cycles: 1000 }); // oldest
        assert_eq!(plan[0], RoundStep::Prefill { chunk_cycles: 500 });
        assert_eq!(plan[3], RoundStep::Idle);
    }

    #[test]
    fn decode_prioritized_without_decode_jobs_is_uniform() {
        let mut b = DecodePrioritizedBatch {
            prefill_chunk_cycles: 1000,
            prefill_budget_cycles: 1,
        };
        let plan = b.plan(&[prefilling(0, 5000), prefilling(1, 5000)]);
        assert!(plan
            .iter()
            .all(|s| *s == RoundStep::Prefill { chunk_cycles: 1000 }));
    }

    #[test]
    fn short_prefills_do_not_burn_the_budget() {
        let mut b = DecodePrioritizedBatch {
            prefill_chunk_cycles: 1000,
            prefill_budget_cycles: 1000,
        };
        // The oldest prefill only needs 100 cycles; the next still gets
        // the remaining 900.
        let plan = b.plan(&[decoding(0), prefilling(1, 100), prefilling(2, 5000)]);
        assert_eq!(plan[1], RoundStep::Prefill { chunk_cycles: 1000 });
        assert_eq!(plan[2], RoundStep::Prefill { chunk_cycles: 900 });
    }

    #[test]
    fn uniform_priority_decode_weights_are_exactly_one() {
        // The degenerate case: every resident decode job on one tier must
        // reproduce the unweighted plan bit-for-bit, at every tier.
        for tier in [0u8, 1, 3, 7] {
            let mut b = DecodePrioritizedBatch {
                prefill_chunk_cycles: 1000,
                prefill_budget_cycles: 1500,
            };
            let residents: Vec<ResidentView> = [decoding(0), decoding(4), prefilling(2, 5000)]
                .into_iter()
                .map(|r| ResidentView {
                    priority: tier,
                    ..r
                })
                .collect();
            let plan = b.plan(&residents);
            assert_eq!(plan[0], RoundStep::Decode { steps: 1 }, "tier {tier}");
            assert_eq!(plan[1], RoundStep::Decode { steps: 1 }, "tier {tier}");
            assert_eq!(plan[2], RoundStep::Prefill { chunk_cycles: 1000 });
        }
    }

    #[test]
    fn higher_priority_decodes_get_proportionally_more_steps() {
        let mut b = DecodePrioritizedBatch {
            prefill_chunk_cycles: 1000,
            prefill_budget_cycles: 1500,
        };
        let lo = ResidentView {
            priority: 0,
            ..decoding(0)
        };
        let mid = ResidentView {
            priority: 1,
            ..decoding(1)
        };
        let hi = ResidentView {
            priority: 3,
            ..decoding(2)
        };
        let plan = b.plan(&[lo, hi, mid]);
        assert_eq!(plan[0], RoundStep::Decode { steps: 1 });
        assert_eq!(plan[1], RoundStep::Decode { steps: 4 });
        assert_eq!(plan[2], RoundStep::Decode { steps: 2 });
        // Weights are relative to the resident floor, not absolute: with
        // the tier-0 job gone the tier-1 job becomes the floor.
        let plan = b.plan(&[hi, mid]);
        assert_eq!(plan[0], RoundStep::Decode { steps: 2 });
        assert_eq!(plan[1], RoundStep::Decode { steps: 1 });
    }
}
