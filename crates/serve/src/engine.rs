//! The resumable fleet engine: the discrete-event loop of [`crate::sim`]
//! exposed as an explicit state machine.
//!
//! [`simulate_fleet_with`](crate::sim::simulate_fleet_with) owns its
//! trace: it consumes every arrival up front and runs to completion.
//! That shape cannot serve live traffic — a front-end learns about
//! requests one wall-clock instant at a time, and has to answer each one
//! while the clock is still running. [`FleetEngine`] splits the loop
//! into its primitive transitions:
//!
//! * [`FleetEngine::inject`] — hand the engine one arrival (a
//!   [`TraceRequest`]), mapped to virtual cycles;
//! * [`FleetEngine::step_until`] — advance the event clock up to a
//!   virtual-time horizon, firing arrivals, round ends, KV handoffs and
//!   elastic membership events in exactly the order the batch simulator
//!   would;
//! * [`FleetEngine::drain`] — run the clock dry and fold the run into a
//!   [`FleetReport`].
//!
//! Replaying a trace through the step API ([`FleetEngine::replay`]) is
//! **bit-for-bit identical** to the monolithic loop — the engine is not
//! an approximation of the simulator, it *is* the simulator, paused
//! between events. `simulate_fleet_with` itself is a thin wrapper over
//! this type.
//!
//! # The token seam
//!
//! The [`TokenSink`] trait surfaces per-token completions as they
//! happen: when a sink is installed ([`FleetEngine::with_sink`]) every
//! chip records a [`TokenEvent`] for each resident that emits decode
//! tokens (or retires) in a round, and the engine drains them to the
//! sink at that round's end — the hook `spatten-frontd` streams chunked
//! HTTP responses from. SLO-aware admission rejections reach the sink
//! too ([`TokenSink::on_rejection`]), so live admission control can
//! answer the client that was shed. With no sink installed the
//! recording branch never runs and the engine is exactly the offline
//! simulator, allocation for allocation.
//!
//! # Virtual time
//!
//! The engine has no clock of its own — `step_until(vtime)` processes
//! every event with `time <= vtime` and stops. A live front-end owns
//! the mapping from wall instants to virtual cycles (`spatten-frontd`
//! uses `cycles = elapsed_ns × clock_ghz × time_scale`) and calls
//! `inject` / `step_until` from its bridge loop; an offline caller just
//! passes trace timestamps. Arrival times must be non-decreasing — the
//! engine clamps an early-looking arrival to the time already reached,
//! which is the identity on any sorted trace.
//!
//! ```
//! use spatten_serve::{simulate_fleet, FleetConfig, Policy};
//! use spatten_serve::{fleet_engine_policy, CostModel, SchedKnobs};
//! use spatten_core::SpAttenConfig;
//! use spatten_workloads::{ArrivalSpec, Trace, TraceSpec};
//!
//! let trace = TraceSpec::mixed(
//!     ArrivalSpec::OpenPoisson { rate_rps: 4000.0, requests: 40 },
//!     11,
//! )
//! .generate();
//! let cfg = FleetConfig::new(2, Policy::ContinuousBatching);
//! let offline = simulate_fleet(&cfg, &trace);
//!
//! // The same trace pushed through the step API, one arrival at a time.
//! let mut engine = fleet_engine_policy(
//!     CostModel::end_to_end(SpAttenConfig::default(), 8),
//!     2,
//!     Policy::ContinuousBatching,
//!     &SchedKnobs::default(),
//!     None,
//!     None,
//!     8,
//!     cfg.accel.clock_ghz,
//! );
//! let Trace::Open { requests } = &trace else { unreachable!() };
//! for req in requests {
//!     let at = engine.inject(req);
//!     engine.step_until(at);
//! }
//! assert_eq!(engine.drain(), offline);
//! ```

use std::collections::VecDeque;

use crate::batch::BatchPolicy;
use crate::chip::Chip;
use crate::cost::FleetCost;
use crate::disagg::PoolSpec;
use crate::elastic::{AutoscalePolicy, Availability, ElasticSchedule};
use crate::kv::{KvPager, KvSpec};
use crate::metrics::FleetReport;
use crate::preempt::PreemptionPolicy;
use crate::request::{Job, Rejection};
use crate::route::RoutingPolicy;
use crate::scheduler::{AdmissionPolicy, Policy, SchedKnobs, Scheduler};
use crate::sim::{job_from, ns_to_cycles, ElasticState, EventKind, Fleet};
use crate::StealSpec;
use spatten_workloads::{Trace, TraceRequest, Workload};

/// One chip's token emission for one request in one round: `count`
/// decode tokens starting at zero-based token index `first`, visible at
/// `emit_cycles` (the round's end). A request's stream is the ordered
/// sequence of its events; `done` marks the last one. Discriminative
/// (zero-generation) requests emit a single `count == 0, done` event —
/// the stream's way of saying "finished, nothing to stream".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEvent {
    /// Stable trace id of the emitting request.
    pub id: u64,
    /// Index into the trace spec's class list.
    pub class: usize,
    /// Chip that executed the round.
    pub chip: usize,
    /// Zero-based index of the first token this event carries.
    pub first: usize,
    /// Tokens emitted in this round (a decode burst may carry several).
    pub count: usize,
    /// Virtual time the tokens became visible (the round's end).
    pub emit_cycles: u64,
    /// Whether the request finished with this event.
    pub done: bool,
}

/// Receiver of live token emissions and admission rejections — the seam
/// a serving front-end hangs its response streams on. Installed via
/// [`FleetEngine::with_sink`]; called synchronously from event
/// dispatch, so implementations should buffer, not block.
pub trait TokenSink {
    /// A round retired `ev.count` tokens (or finished a request).
    fn on_tokens(&mut self, ev: &TokenEvent);

    /// Admission shed a request (SLO-aware early rejection, or any
    /// other policy that rejects). Default: ignore.
    fn on_rejection(&mut self, _r: &Rejection) {}
}

/// A sink that drops everything — useful to exercise the recording path
/// without consuming it.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TokenSink for NullSink {
    fn on_tokens(&mut self, _ev: &TokenEvent) {}
}

/// The discrete-event fleet simulator as a resumable state machine. See
/// the [module docs](self) for the lifecycle; construction mirrors
/// [`simulate_fleet_with`](crate::sim::simulate_fleet_with) minus the
/// trace (use [`fleet_engine_policy`] for the canonical-[`Policy`]
/// variant with boxed seams).
pub struct FleetEngine<
    C: FleetCost,
    A: AdmissionPolicy,
    B: BatchPolicy,
    R: RoutingPolicy,
    P: PreemptionPolicy,
> {
    fleet: Fleet<C, A, B, R, P>,
    /// The elastic schedule, held back until [`FleetEngine::prime`]:
    /// the batch loop pushes closed-loop initial arrivals *before*
    /// elastic events, so the engine must too — a same-cycle leave must
    /// not outrun an initial arrival's sequence number.
    schedule: ElasticSchedule,
    /// Injected arrivals not yet fired, in arrival order. Kept outside
    /// the event heap exactly like the batch loop's streamed open-loop
    /// cursor, so the merge order (arrivals beat same-time heap events)
    /// is reproduced by construction.
    pending: VecDeque<(u64, Job)>,
    sim_events: u64,
    last_now: u64,
    primed: bool,
}

impl<C: FleetCost, A: AdmissionPolicy, B: BatchPolicy, R: RoutingPolicy, P: PreemptionPolicy>
    FleetEngine<C, A, B, R, P>
{
    /// Builds an idle engine over `chips` executors priced by `cost`,
    /// under an arbitrary (admission, batching, routing, preemption)
    /// policy quadruple plus the [`StealSpec`] work-stealing knob —
    /// the same parameter set as
    /// [`simulate_fleet_with`](crate::sim::simulate_fleet_with), minus
    /// the trace.
    ///
    /// # Panics
    ///
    /// Panics if the fleet has zero chips, `max_batch` is zero, the
    /// elastic schedule references chips beyond the roster, or the pool
    /// spec's roles don't cover every chip.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cost: C,
        chips: usize,
        label: &str,
        admission: A,
        batch: B,
        routing: R,
        steal: StealSpec,
        preempt: P,
        kv: KvSpec,
        pools: Option<PoolSpec>,
        elastic: Option<ElasticSchedule>,
        max_batch: usize,
        clock_ghz: f64,
    ) -> Self {
        assert!(chips > 0, "fleet needs at least one chip");
        assert!(max_batch > 0, "max_batch must be positive");
        let elastic = elastic.unwrap_or_default();
        for leave in &elastic.leaves {
            assert!(
                leave.chip < chips,
                "leave targets chip {} of a {chips}-chip roster",
                leave.chip
            );
        }
        for &(chip, _) in &elastic.joins {
            assert!(
                chip < chips,
                "join targets chip {chip} of a {chips}-chip roster"
            );
        }
        for &chip in &elastic.reserve {
            assert!(
                chip < chips,
                "reserve chip {chip} beyond the {chips}-chip roster"
            );
        }
        if let Some(p) = &pools {
            assert_eq!(
                p.len(),
                chips,
                "pool spec declares {} roles for {} chips",
                p.len(),
                chips
            );
        }
        // One pager per chip under paging, each sized to that chip's KV
        // budget (heterogeneous fleets get heterogeneous block counts).
        let pagers = kv.block_bytes().map(|block| {
            (0..chips)
                .map(|c| KvPager::new(block, cost.budget_on(c)))
                .collect()
        });
        let mut scheduler = Scheduler::new(admission, routing, chips).with_steal(steal);
        if let Some(p) = &pools {
            scheduler = scheduler.with_roles(p.roles.clone());
        }
        // The weight reference (pricing joins and model swaps) is set
        // lazily from the first injected request — the engine has no
        // trace to take it from. `set_weight_ref` overrides.
        let mut elastic_state = ElasticState::new(&elastic, chips, None);
        elastic_state.autoscale = elastic.autoscale.as_ref().map(|spec| {
            (
                ns_to_cycles(clock_ghz, spec.window_ns).max(1),
                Box::new(spec.build()) as Box<dyn AutoscalePolicy>,
            )
        });
        // Cold chips (scheduled joins and the reserve) start out of the
        // fleet: their admission path is armed to panic until their
        // join's weight load completes.
        let mut chip_vec: Vec<Chip> = (0..chips).map(Chip::new).collect();
        for (chip, avail) in chip_vec.iter_mut().zip(&elastic_state.avail) {
            if *avail == Availability::Offline {
                chip.leave();
            }
        }
        let fleet = Fleet {
            label: label.to_string(),
            max_batch,
            clock_ghz,
            cost,
            scheduler,
            batch,
            preempt,
            chips: chip_vec,
            pagers,
            pools,
            handoffs: vec![0; chips],
            handoff_bytes: vec![0; chips],
            handoff_cycles: vec![0; chips],
            elastic: elastic_state,
            events: Default::default(),
            jobs: Default::default(),
            seq: 0,
            completions: Vec::new(),
            rejections: Vec::new(),
            client_queues: Vec::new(),
            think_cycles: 0,
            loads_scratch: Vec::with_capacity(chips),
            finished_scratch: Vec::new(),
            sink: None,
            token_scratch: Vec::new(),
            autoscale_armed: false,
        };
        Self {
            fleet,
            schedule: elastic,
            pending: VecDeque::new(),
            sim_events: 0,
            last_now: 0,
            primed: false,
        }
    }

    /// Installs a live [`TokenSink`] and arms per-token recording on
    /// every chip. Builder-style; use before stepping.
    pub fn with_sink(mut self, sink: Box<dyn TokenSink>) -> Self {
        self.set_sink(sink);
        self
    }

    /// Installs a live [`TokenSink`] and arms per-token recording on
    /// every chip.
    pub fn set_sink(&mut self, sink: Box<dyn TokenSink>) {
        self.fleet.sink = Some(sink);
        for chip in &mut self.fleet.chips {
            chip.set_record_tokens(true);
        }
    }

    /// Sets the reference workload that prices elastic joins and model
    /// swaps. Normally taken from the first injected request; a live
    /// front-end that knows its model up front calls this so a join
    /// firing before the first request is priced correctly.
    pub fn set_weight_ref(&mut self, workload: Workload) {
        self.fleet.elastic.weight_ref = Some(workload);
    }

    /// Pushes the deferred elastic schedule into the event heap. Runs
    /// once, on the first inject / load / step — *after* any closed-loop
    /// initial arrivals, so sequence-number order matches the batch
    /// loop exactly.
    fn prime(&mut self) {
        if self.primed {
            return;
        }
        self.primed = true;
        let clock = self.fleet.clock_ghz;
        for leave in &self.schedule.leaves {
            let at = ns_to_cycles(clock, leave.at_ns);
            self.fleet
                .push(at, EventKind::Leave(leave.chip as u32, leave.mode));
        }
        for &(chip, at_ns) in &self.schedule.joins {
            let at = ns_to_cycles(clock, at_ns);
            self.fleet.push(at, EventKind::Join(chip as u32));
        }
        if let Some((window, _)) = &self.fleet.elastic.autoscale {
            let first = *window;
            self.fleet.push(first, EventKind::AutoscaleTick);
        }
    }

    /// Injects one arrival at `req.arrival_ns` mapped to virtual cycles.
    /// Returns the arrival's virtual time. Arrivals must be injected in
    /// non-decreasing time order; an arrival earlier than virtual time
    /// already stepped past is clamped up to it (the live bridge's
    /// "arrived while I was stepping" case — a no-op on sorted traces).
    pub fn inject(&mut self, req: &TraceRequest) -> u64 {
        let at = ns_to_cycles(self.fleet.clock_ghz, req.arrival_ns);
        self.inject_at(req, at)
    }

    /// Injects one arrival at an explicit virtual time (see
    /// [`FleetEngine::inject`]). Returns the (possibly clamped) time.
    pub fn inject_at(&mut self, req: &TraceRequest, at: u64) -> u64 {
        if self.fleet.elastic.weight_ref.is_none() {
            self.fleet.elastic.weight_ref = Some(req.workload.clone());
        }
        self.prime();
        let at = at.max(self.last_now);
        if let Some(&(back, _)) = self.pending.back() {
            assert!(
                at >= back,
                "arrival injected out of order: {at} after {back}"
            );
        }
        let job = job_from(req, None, at, self.fleet.clock_ghz);
        self.pending.push_back((at, job));
        // A live fleet can go fully idle between requests, which lets
        // the autoscaler's tick chain die (the batch loop only keeps it
        // alive while work remains). Re-arm it so the new request's load
        // is observed. Unreachable during trace replay — work always
        // remains while arrivals are pending — so replay stays
        // bit-identical.
        if !self.fleet.autoscale_armed {
            if let Some((window, _)) = &self.fleet.elastic.autoscale {
                let tick = at + *window;
                self.fleet.push(tick, EventKind::AutoscaleTick);
            }
        }
        at
    }

    /// Loads a closed-loop client population: each client's first
    /// request enters the heap at t=0 and every later one is issued by
    /// the completion of its predecessor plus think time — exactly the
    /// batch loop's closed-loop setup. Call once, before stepping.
    pub fn load_closed(&mut self, clients: &[Vec<TraceRequest>], think_ns: u64) {
        assert!(
            !self.primed && self.pending.is_empty() && self.sim_events == 0,
            "closed-loop clients must load into a fresh engine"
        );
        let clock = self.fleet.clock_ghz;
        self.fleet.think_cycles = ns_to_cycles(clock, think_ns);
        if self.fleet.elastic.weight_ref.is_none() {
            self.fleet.elastic.weight_ref =
                clients.iter().flatten().next().map(|r| r.workload.clone());
        }
        // Store queues reversed so pop() yields the next request.
        self.fleet.client_queues = clients
            .iter()
            .map(|q| q.iter().rev().cloned().collect())
            .collect();
        for client in 0..self.fleet.client_queues.len() {
            if let Some(first) = self.fleet.client_queues[client].pop() {
                let job = self
                    .fleet
                    .jobs
                    .insert(job_from(&first, Some(client), 0, clock));
                self.fleet.push(0, EventKind::Arrival(job));
            }
        }
        self.prime();
    }

    /// Fires the single next event (injected arrival or heap event),
    /// but only if its time is within `limit`. Returns whether an event
    /// fired. The merge rule is the batch loop's: an arrival beats any
    /// heap event at the same time (streamed arrivals own the lowest
    /// sequence numbers there; here the tie-break is structural).
    fn step_one(&mut self, limit: Option<u64>) -> bool {
        let arrival = self.pending.front().map(|&(t, _)| t);
        let event = self.fleet.next_event_time();
        let (fire_arrival, t) = match (arrival, event) {
            (Some(a), Some(e)) => {
                if a <= e {
                    (true, a)
                } else {
                    (false, e)
                }
            }
            (Some(a), None) => (true, a),
            (None, Some(e)) => (false, e),
            (None, None) => return false,
        };
        if limit.is_some_and(|l| t > l) {
            return false;
        }
        self.sim_events += 1;
        self.last_now = t;
        if fire_arrival {
            let (now, job) = self.pending.pop_front().expect("arrival present");
            self.fleet.handle_arrival(job, now);
        } else {
            let more_arrivals = !self.pending.is_empty();
            self.fleet.dispatch_next(more_arrivals);
        }
        true
    }

    /// Fires the next event regardless of its time. Returns `false`
    /// when the engine is fully drained (no pending arrivals, empty
    /// heap).
    pub fn step(&mut self) -> bool {
        self.prime();
        self.step_one(None)
    }

    /// Advances the engine through every event with `time <= vtime`.
    /// Returns the number of events processed.
    pub fn step_until(&mut self, vtime: u64) -> u64 {
        self.prime();
        let mut n = 0;
        while self.step_one(Some(vtime)) {
            n += 1;
        }
        n
    }

    /// Runs the clock dry and folds the run into a [`FleetReport`] —
    /// the batch loop's tail, including its conservation asserts.
    pub fn drain(mut self) -> FleetReport {
        self.prime();
        while self.step_one(None) {}
        let Self {
            fleet,
            sim_events,
            last_now,
            ..
        } = self;
        fleet.into_report(sim_events, last_now)
    }

    /// Replays a whole trace through the step API and drains. Open-loop
    /// arrivals stream through a one-request lookahead window (the heap
    /// and the pending queue stay a handful of entries deep on
    /// million-request traces, like the batch loop's cursor);
    /// closed-loop traces load their client population and run dry.
    /// Bit-for-bit identical to the monolithic loop on every trace.
    pub fn replay(mut self, trace: &Trace) -> FleetReport {
        match trace {
            Trace::Open { requests } => {
                assert!(
                    requests
                        .windows(2)
                        .all(|w| w[0].arrival_ns <= w[1].arrival_ns),
                    "open trace must be sorted by arrival time"
                );
                for req in requests {
                    self.inject(req);
                    // Keep exactly one arrival pending: enough lookahead
                    // that the autoscaler's "more arrivals?" probe stays
                    // truthful, little enough that memory stays flat.
                    while self.pending.len() > 1 && self.step_one(None) {}
                }
                self.drain()
            }
            Trace::Closed { clients, think_ns } => {
                self.load_closed(clients, *think_ns);
                self.drain()
            }
        }
    }

    /// The virtual time of the last processed event.
    pub fn now(&self) -> u64 {
        self.last_now
    }

    /// The fleet clock in GHz (the virtual-time unit).
    pub fn clock_ghz(&self) -> f64 {
        self.fleet.clock_ghz
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim_events
    }

    /// Requests completed so far.
    pub fn completed(&self) -> usize {
        self.fleet.completions.len()
    }

    /// Requests shed by admission so far.
    pub fn rejected(&self) -> usize {
        self.fleet.rejections.len()
    }

    /// Roster size (including offline reserve/joining chips).
    pub fn chips(&self) -> usize {
        self.fleet.chips.len()
    }

    /// Chips currently in service.
    pub fn online_chips(&self) -> usize {
        self.fleet
            .elastic
            .avail
            .iter()
            .filter(|&&a| a == Availability::Online)
            .count()
    }

    /// Jobs queued (shared + private) but not yet resident, plus
    /// injected arrivals that have not fired yet — the live backlog a
    /// front-end reports.
    pub fn backlog(&self) -> usize {
        self.fleet.scheduler.pending() + self.pending.len()
    }

    /// Whether every injected request has fully drained: nothing
    /// pending, nothing queued, nothing resident, nothing in flight.
    pub fn idle(&self) -> bool {
        self.pending.is_empty()
            && self.fleet.next_event_time().is_none()
            && self.fleet.scheduler.pending() == 0
            && self
                .fleet
                .chips
                .iter()
                .all(|c| c.active_jobs() == 0 && !c.is_in_flight())
    }
}

/// Builds a [`FleetEngine`] under one of the canonical [`Policy`]s with
/// boxed policy seams — the live-serving counterpart of
/// [`simulate_fleet_policy`](crate::sim::simulate_fleet_policy). No
/// trace is taken (so no [`SimMode::ParallelRounds`] pre-warm happens;
/// a live engine prices its cost plane lazily, on first use).
///
/// [`SimMode::ParallelRounds`]: crate::scheduler::SimMode::ParallelRounds
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn fleet_engine_policy<C: FleetCost>(
    cost: C,
    chips: usize,
    policy: Policy,
    knobs: &SchedKnobs,
    pools: Option<PoolSpec>,
    elastic: Option<ElasticSchedule>,
    max_batch: usize,
    clock_ghz: f64,
) -> FleetEngine<
    C,
    Box<dyn AdmissionPolicy>,
    Box<dyn BatchPolicy>,
    Box<dyn RoutingPolicy>,
    Box<dyn PreemptionPolicy>,
> {
    FleetEngine::new(
        cost,
        chips,
        policy.name(),
        policy.admission(knobs),
        policy.batch(knobs),
        knobs.route.build(),
        knobs.steal,
        knobs.preempt.build(knobs),
        knobs.kv,
        pools,
        elastic,
        max_batch,
        clock_ghz,
    )
}
