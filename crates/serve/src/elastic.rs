//! Elastic fleets: scheduled chip joins/leaves, priced model swaps, and
//! the autoscaler seam.
//!
//! A serving fleet is not fixed hardware: chips drain for maintenance,
//! spot capacity is revoked on short notice, and cold chips join after
//! streaming their model weights into HBM. This module describes those
//! events ([`FleetEvents`]) and the policy seam that emits them at run
//! time ([`AutoscalePolicy`]); the simulator (`crate::sim`) injects them
//! into its event heap as first-class events, after the arrival stream's
//! sequence numbers so an empty schedule is bit-for-bit identical to a
//! fixed-fleet run.
//!
//! Lifecycle of a chip, as the simulator tracks it ([`Availability`]):
//!
//! ```text
//!              ChipLeave{Drain}            residents finished
//!   Online ───────────────────▶ Draining ─────────────────────▶ Offline
//!     ▲                            │                               │
//!     │                            │ grace expires                 │
//!     │                            ▼ (Revoke: evict + re-route)    │
//!     │                         Offline ◀──────────────────────────┘
//!     │                                                            │
//!     └──────────── weight-load delay after ChipJoin ──────────────┘
//! ```
//!
//! Draining chips accept no new placements — routing, stealing, and
//! handoff targeting all skip them — but still serve the jobs whose KV
//! lives in their HBM (including previously preempted jobs pinned to
//! them). Revocation drains the queue immediately and, at the grace
//! cutoff, evicts every resident through the ordinary preemption
//! machinery: KV swapped out at [`FleetCost::swap_cycles_on`] cost,
//! `ResumeState` re-pinned to the least-loaded online chip, job requeued
//! there. No generated token is ever recomputed. A join prices its
//! model-load delay through [`FleetCost::weight_load_cycles_on`].
//!
//! [`FleetCost::swap_cycles_on`]: crate::cost::FleetCost::swap_cycles_on
//! [`FleetCost::weight_load_cycles_on`]: crate::cost::FleetCost::weight_load_cycles_on

use serde::{Deserialize, Serialize};
use spatten_core::SpAttenConfig;
use spatten_nn::ModelConfig;
use spatten_workloads::fleet::{ChipClass, ElasticitySpec, LeaveKind};

use crate::route::ChipLoad;

/// How a [`ChipLeave`] takes its chip out of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaveMode {
    /// Maintenance drain: stop admission, routing, and stealing to the
    /// chip; residents (and queued jobs pinned to its HBM) finish in
    /// place before the chip goes offline.
    Drain,
    /// Spot-style revocation: like a drain, but after `grace_ns` of
    /// notice every remaining resident is preempted — KV swapped out,
    /// `ResumeState` migrated to an online chip — and the chip goes
    /// offline immediately.
    Revoke {
        /// Nanoseconds between the leave notice and the hard cutoff. A
        /// round already executing at the cutoff finishes (its tokens
        /// are kept, never recomputed); no new round starts.
        grace_ns: u64,
    },
}

/// A scheduled departure of one roster chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipLeave {
    /// Roster index of the departing chip.
    pub chip: usize,
    /// Departure time, nanoseconds from simulation start.
    pub at_ns: u64,
    /// Drain or revoke.
    pub mode: LeaveMode,
}

/// A scheduled cold join: a chip of `chip_config` is appended to the
/// roster, starts offline, and comes up at `at_ns` plus its weight-load
/// delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipJoin {
    /// Configuration of the joining chip.
    pub chip_config: SpAttenConfig,
    /// Join time, nanoseconds from simulation start.
    pub at_ns: u64,
}

/// A seeded schedule of fleet-membership events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetEvents {
    /// Scheduled departures.
    pub leaves: Vec<ChipLeave>,
    /// Scheduled cold joins.
    pub joins: Vec<ChipJoin>,
}

/// `splitmix64` output step — the same stateless generator the routing
/// layer hashes with, chained here into a tiny schedule RNG so the serve
/// crate stays free of a `rand` dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FleetEvents {
    /// Whether the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty() && self.joins.is_empty()
    }

    /// A seeded random fault schedule over a `chips`-chip fleet within
    /// `horizon_ns`: each chip except chip 0 (the fleet always keeps a
    /// survivor) leaves with probability one half, drains or revokes
    /// with equal odds, and revocations carry a grace of up to an
    /// eighth of the horizon. Deterministic in `seed` — the property
    /// harness replays the same schedule against its fault-free twin.
    pub fn seeded(seed: u64, chips: usize, horizon_ns: u64) -> Self {
        let mut state = splitmix64(seed ^ 0x000E_1A57_1C0F_1EE7_u64);
        let mut draw = |bound: u64| {
            state = splitmix64(state);
            state % bound.max(1)
        };
        let mut leaves = Vec::new();
        for chip in 1..chips {
            if draw(2) == 0 {
                continue;
            }
            let at_ns = horizon_ns / 8 + draw(horizon_ns.saturating_sub(horizon_ns / 8));
            let mode = if draw(2) == 0 {
                LeaveMode::Drain
            } else {
                LeaveMode::Revoke {
                    grace_ns: draw(horizon_ns / 8 + 1),
                }
            };
            leaves.push(ChipLeave { chip, at_ns, mode });
        }
        Self {
            leaves,
            joins: Vec::new(),
        }
    }
}

/// A chip's membership state in the fleet, as the simulator tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// In service: admits, routes, steals, and hosts handoffs.
    Online,
    /// Departing: serves only jobs already pinned to its HBM; no new
    /// placements of any kind.
    Draining,
    /// Out of service (never joined, drained out, or revoked).
    Offline,
}

/// The full elasticity scenario a [`FleetConfig`] carries: scheduled
/// events, an autoscaler-managed reserve, and optional resident-model
/// tags for the multi-model dimension.
///
/// [`FleetConfig`]: crate::sim::FleetConfig
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ElasticSpec {
    /// Scheduled joins and leaves.
    pub events: FleetEvents,
    /// Reserve chips the autoscaler may bring up and drain. Appended to
    /// the roster after the base chips and scheduled joins; they start
    /// offline and cost nothing until brought up.
    pub reserve: Vec<SpAttenConfig>,
    /// Autoscaler configuration (`None` = no autoscaler; the reserve,
    /// if any, stays cold).
    pub autoscale: Option<AutoscaleSpec>,
    /// Resident model per *base* chip, enabling the multi-model
    /// dimension: admitting a job whose `workload.model` differs from
    /// the chip's resident model first streams the new weight plane in
    /// at [`FleetCost::weight_load_cycles_on`] cost and retags the
    /// chip. `None` (the default) disables model tracking entirely —
    /// admission is priced exactly as in a fixed single-model fleet.
    ///
    /// [`FleetCost::weight_load_cycles_on`]: crate::cost::FleetCost::weight_load_cycles_on
    pub models: Option<Vec<ModelConfig>>,
}

fn resolve_class(class: ChipClass) -> SpAttenConfig {
    match class {
        ChipClass::Full => SpAttenConfig::default(),
        ChipClass::Eighth => SpAttenConfig::eighth(),
    }
}

impl ElasticSpec {
    /// Resolves a descriptive trace-side scenario
    /// ([`spatten_workloads::ElasticitySpec`]) into concrete chip
    /// configurations and event modes.
    pub fn from_fleet(spec: &ElasticitySpec) -> Self {
        let leaves = spec
            .leaves
            .iter()
            .map(|l| ChipLeave {
                chip: l.chip,
                at_ns: l.at_ns,
                mode: match l.kind {
                    LeaveKind::Drain => LeaveMode::Drain,
                    LeaveKind::Revoke { grace_ns } => LeaveMode::Revoke { grace_ns },
                },
            })
            .collect();
        let joins = spec
            .joins
            .iter()
            .map(|j| ChipJoin {
                chip_config: resolve_class(j.chip_class),
                at_ns: j.at_ns,
            })
            .collect();
        Self {
            events: FleetEvents { leaves, joins },
            reserve: spec.reserve.iter().map(|&c| resolve_class(c)).collect(),
            autoscale: spec.autoscale_window_ns.map(|window_ns| AutoscaleSpec {
                window_ns,
                ..AutoscaleSpec::default()
            }),
            models: None,
        }
    }

    /// Extra roster configurations this scenario appends after the
    /// `base` chips: scheduled joins first, then the reserve.
    pub fn extra_configs(&self) -> Vec<SpAttenConfig> {
        let mut extra: Vec<SpAttenConfig> =
            self.events.joins.iter().map(|j| j.chip_config).collect();
        extra.extend(self.reserve.iter().copied());
        extra
    }

    /// Lowers the scenario onto a roster of `base` pre-existing chips:
    /// joins become roster indices `base..`, the reserve follows them,
    /// and model tags are extended with cold (`None`) entries for every
    /// appended chip.
    pub fn lower(&self, base: usize) -> ElasticSchedule {
        for leave in &self.events.leaves {
            assert!(
                leave.chip < base + self.events.joins.len() + self.reserve.len(),
                "leave targets chip {} beyond the {}-chip roster",
                leave.chip,
                base + self.events.joins.len() + self.reserve.len()
            );
        }
        if let Some(models) = &self.models {
            assert_eq!(
                models.len(),
                base,
                "model tags cover the base roster: {} tags for {base} chips",
                models.len()
            );
        }
        let joins = self
            .events
            .joins
            .iter()
            .enumerate()
            .map(|(i, j)| (base + i, j.at_ns))
            .collect();
        let reserve = (0..self.reserve.len())
            .map(|i| base + self.events.joins.len() + i)
            .collect();
        let models = self.models.as_ref().map(|tags| {
            let mut per_chip: Vec<Option<ModelConfig>> = tags.iter().copied().map(Some).collect();
            per_chip.resize(base + self.events.joins.len() + self.reserve.len(), None);
            per_chip
        });
        ElasticSchedule {
            leaves: self.events.leaves.clone(),
            joins,
            reserve,
            autoscale: self.autoscale,
            models,
        }
    }
}

/// An [`ElasticSpec`] resolved against a concrete roster: every event
/// and reserve entry is a chip index, so the simulator (and the cluster
/// layer, whose "chips" are whole groups) consumes it without knowing
/// chip configurations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ElasticSchedule {
    /// Scheduled departures, by roster index.
    pub leaves: Vec<ChipLeave>,
    /// Scheduled cold joins: `(roster index, at_ns)`. The chip starts
    /// offline and comes up at `at_ns` plus its weight-load delay.
    pub joins: Vec<(usize, u64)>,
    /// Roster indices of autoscaler-managed reserve chips (start
    /// offline; only the autoscaler brings them up or drains them).
    pub reserve: Vec<usize>,
    /// Autoscaler configuration.
    pub autoscale: Option<AutoscaleSpec>,
    /// Initial resident model per roster chip (`None` entries = cold
    /// chip, first admission loads weights if tracking is on). `None`
    /// disables model tracking entirely.
    pub models: Option<Vec<Option<ModelConfig>>>,
}

impl ElasticSchedule {
    /// Whether the schedule changes nothing: no events, no reserve, no
    /// autoscaler, no model tracking. A static schedule reproduces the
    /// fixed-fleet simulation bit for bit.
    pub fn is_static(&self) -> bool {
        self.leaves.is_empty()
            && self.joins.is_empty()
            && self.reserve.is_empty()
            && self.autoscale.is_none()
            && self.models.is_none()
    }
}

/// Threshold-hysteresis autoscaler configuration (serializable; feeds
/// [`ThresholdHysteresis`], the default [`AutoscalePolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleSpec {
    /// Observation window, nanoseconds: the policy sees fleet load and
    /// may emit one action per window.
    pub window_ns: u64,
    /// Mean queued cycles per online chip above which the policy brings
    /// one reserve chip up.
    pub high_backlog_cycles: u64,
    /// Mean queued cycles per online chip below which a window counts
    /// toward scale-down.
    pub low_backlog_cycles: u64,
    /// Consecutive low windows required before draining a reserve chip
    /// — the hysteresis that keeps a square-wave load from flapping.
    pub scale_down_windows: u32,
    /// Windows the policy holds still after any action, letting the
    /// fleet absorb the change before re-evaluating.
    pub cooldown_windows: u32,
}

impl Default for AutoscaleSpec {
    /// A 1 ms window with scale-up at 20 ms and scale-down below 2 ms
    /// of queued work per chip (core cycles at ~1 GHz), three
    /// consecutive low windows to scale down, and a two-window
    /// cooldown.
    fn default() -> Self {
        Self {
            window_ns: 1_000_000,
            high_backlog_cycles: 20_000_000,
            low_backlog_cycles: 2_000_000,
            scale_down_windows: 3,
            cooldown_windows: 2,
        }
    }
}

impl AutoscaleSpec {
    /// The default threshold-hysteresis policy over this configuration.
    pub fn build(&self) -> ThresholdHysteresis {
        ThresholdHysteresis {
            spec: *self,
            cooldown: 0,
            low_streak: 0,
        }
    }
}

/// What an [`AutoscalePolicy`] observes each window: per-chip loads (the
/// same [`ChipLoad`] view routing sees), the shared-queue depth, and the
/// actionable bounds.
#[derive(Debug, Clone, Copy)]
pub struct FleetLoadView<'a> {
    /// Per-chip load snapshot for the whole roster; entries with
    /// [`ChipLoad::leaving`] set are draining or offline.
    pub loads: &'a [ChipLoad],
    /// Jobs waiting in the shared (unrouted) queue.
    pub shared_jobs: usize,
    /// Chips currently online, counting joins already in their
    /// weight-load delay (the policy must not re-order capacity that is
    /// already warming up).
    pub online: usize,
    /// Smallest online count the policy may target (the non-reserve
    /// roster — the autoscaler never drains scheduled capacity).
    pub min_online: usize,
    /// Largest online count the policy may target (non-reserve roster
    /// plus the full reserve).
    pub max_online: usize,
}

/// The autoscaler seam: observes fleet load once per window and returns
/// the online chip count it wants. The simulator applies the delta
/// against the reserve — bringing up the lowest-index offline reserve
/// chips (each paying its weight-load delay) or draining the
/// highest-index online ones. Policies are deterministic functions of
/// their observations, so autoscaled runs replay bit-for-bit.
pub trait AutoscalePolicy: std::fmt::Debug {
    /// Report label.
    fn name(&self) -> &'static str;

    /// Desired online chip count for the next window, clamped by the
    /// caller to `[view.min_online, view.max_online]`.
    fn target_online(&mut self, now: u64, view: FleetLoadView<'_>) -> usize;
}

/// The default [`AutoscalePolicy`]: scale up one chip when mean backlog
/// per online chip crosses the high threshold (or the shared queue runs
/// deeper than four jobs per chip), scale down one chip only after
/// [`AutoscaleSpec::scale_down_windows`] consecutive low windows, and
/// hold still for [`AutoscaleSpec::cooldown_windows`] after any action.
/// The asymmetry — eager up, reluctant down — is the hysteresis that
/// keeps an oscillating load from flapping the reserve.
#[derive(Debug, Clone)]
pub struct ThresholdHysteresis {
    spec: AutoscaleSpec,
    cooldown: u32,
    low_streak: u32,
}

impl AutoscalePolicy for ThresholdHysteresis {
    fn name(&self) -> &'static str {
        "threshold-hysteresis"
    }

    fn target_online(&mut self, _now: u64, view: FleetLoadView<'_>) -> usize {
        let online = view.online.max(view.min_online).max(1);
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return online;
        }
        let backlog: u64 = view
            .loads
            .iter()
            .filter(|l| !l.leaving)
            .map(|l| l.backlog_cycles())
            .sum();
        let pressure = backlog / online as u64;
        let high = pressure > self.spec.high_backlog_cycles || view.shared_jobs > 4 * online;
        let low = pressure < self.spec.low_backlog_cycles && view.shared_jobs <= online;
        if high {
            self.low_streak = 0;
            if online < view.max_online {
                self.cooldown = self.spec.cooldown_windows;
                return online + 1;
            }
            return online;
        }
        if low {
            self.low_streak += 1;
            if self.low_streak >= self.spec.scale_down_windows && online > view.min_online {
                self.low_streak = 0;
                self.cooldown = self.spec.cooldown_windows;
                return online - 1;
            }
            return online;
        }
        self.low_streak = 0;
        online
    }
}

/// Per-chip elasticity counters, folded into
/// [`ChipStats`](crate::metrics::ChipStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ElasticChipStats {
    /// Cycles the chip spent online (in service or draining). A fixed
    /// fleet accrues the whole makespan on every chip; summed over the
    /// roster this is the chip-cycle cost an autoscaler economizes.
    pub online_cycles: u64,
    /// Cycles spent streaming model weights into HBM: join model-load
    /// delays plus cross-model placement swaps.
    pub weight_load_cycles: u64,
    /// Cross-model placements that had to swap the resident weight
    /// plane.
    pub model_swaps: u64,
    /// Completed departures (drains finished plus revocations executed).
    pub leaves: u64,
    /// Jobs an executed revocation displaced off this chip (residents
    /// evicted plus pinned queue entries migrated).
    pub revoked_jobs: u64,
    /// Times the chip came online from cold (scheduled joins plus
    /// autoscaler scale-ups).
    pub joins: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(backlog_cycles: u64) -> ChipLoad {
        ChipLoad {
            role: spatten_workloads::PoolRole::Flex,
            active: 0,
            kv_in_use: 0,
            kv_budget: 1 << 30,
            pending_jobs: if backlog_cycles > 0 { 1 } else { 0 },
            pending_cycles: backlog_cycles,
            pending_kv: 0,
            in_service_cycles: 0,
            recent_evictions: 0.0,
            leaving: false,
        }
    }

    fn view(loads: &[ChipLoad], online: usize, max: usize) -> FleetLoadView<'_> {
        FleetLoadView {
            loads,
            shared_jobs: 0,
            online,
            min_online: 1,
            max_online: max,
        }
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_spare_chip_zero() {
        let a = FleetEvents::seeded(7, 8, 10_000_000);
        let b = FleetEvents::seeded(7, 8, 10_000_000);
        assert_eq!(a, b);
        assert!(a.leaves.iter().all(|l| l.chip != 0));
        assert!(a.leaves.iter().all(|l| l.at_ns < 10_000_000));
        // Different seeds give different schedules (with 7 coin flips
        // plus times, a collision would be astronomically unlucky).
        let c = FleetEvents::seeded(8, 8, 10_000_000);
        assert_ne!(a, c);
    }

    #[test]
    fn lowering_resolves_joins_and_reserve_after_the_base_roster() {
        let spec = ElasticSpec {
            events: FleetEvents {
                leaves: vec![ChipLeave {
                    chip: 1,
                    at_ns: 5,
                    mode: LeaveMode::Drain,
                }],
                joins: vec![ChipJoin {
                    chip_config: SpAttenConfig::default(),
                    at_ns: 9,
                }],
            },
            reserve: vec![SpAttenConfig::eighth(); 2],
            autoscale: Some(AutoscaleSpec::default()),
            models: None,
        };
        let sched = spec.lower(4);
        assert_eq!(sched.joins, vec![(4, 9)]);
        assert_eq!(sched.reserve, vec![5, 6]);
        assert_eq!(spec.extra_configs().len(), 3);
        assert!(!sched.is_static());
        assert!(ElasticSchedule::default().is_static());
    }

    #[test]
    fn hysteresis_scales_up_eagerly_and_down_reluctantly() {
        let spec = AutoscaleSpec::default();
        let mut policy = spec.build();
        // One hot window scales up immediately...
        let hot = vec![load(spec.high_backlog_cycles * 2); 2];
        assert_eq!(policy.target_online(0, view(&hot, 2, 4)), 3);
        // ...then cooldown holds even under continued heat.
        assert_eq!(policy.target_online(1, view(&hot, 3, 4)), 3);
        assert_eq!(policy.target_online(2, view(&hot, 3, 4)), 3);
        // Quiet windows must persist for scale_down_windows before one
        // chip drains.
        let quiet = vec![load(0); 3];
        for _ in 0..spec.scale_down_windows - 1 {
            assert_eq!(policy.target_online(3, view(&quiet, 3, 4)), 3);
        }
        assert_eq!(policy.target_online(4, view(&quiet, 3, 4)), 2);
    }

    #[test]
    fn hysteresis_does_not_flap_on_a_square_wave() {
        let spec = AutoscaleSpec::default();
        let mut policy = spec.build();
        let hot = vec![load(spec.high_backlog_cycles * 2); 4];
        let quiet = vec![load(0); 4];
        let mut online = 1;
        let mut targets = Vec::new();
        // A square wave alternating hot/quiet each window: scale-down
        // needs consecutive quiet windows, so the target never drops —
        // it ratchets up to the ceiling and stays.
        for tick in 0..20 {
            let loads = if tick % 2 == 0 { &hot } else { &quiet };
            online = policy.target_online(tick, view(loads, online, 4));
            targets.push(online);
        }
        assert!(targets.windows(2).all(|w| w[1] >= w[0]), "{targets:?}");
        assert_eq!(*targets.last().unwrap(), 4);
    }
}
