//! Metrics aggregation: throughput, utilization, latency percentiles,
//! and per-class SLO accounting (goodput, violations, rejections).

use crate::elastic::ElasticChipStats;
use crate::json::{array, JsonObject};
use crate::kv::KvStats;
use crate::request::{Completion, Rejection};
use serde::{Deserialize, Serialize};

/// Latency distribution summary in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of `samples` (cycles), scaled to seconds at
    /// `clock_ghz`. Returns zeros for an empty sample set.
    pub fn from_cycles(samples: &[u64], clock_ghz: f64) -> Self {
        if samples.is_empty() {
            return Self {
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                mean: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let scale = 1.0 / (clock_ghz * 1e9);
        let rank = |p: f64| -> f64 {
            let idx = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1] as f64 * scale
        };
        let mean = sorted.iter().map(|&c| c as f64).sum::<f64>() / sorted.len() as f64 * scale;
        Self {
            p50: rank(50.0),
            p95: rank(95.0),
            p99: rank(99.0),
            mean,
            max: *sorted.last().expect("non-empty") as f64 * scale,
        }
    }

    fn to_json(self) -> String {
        JsonObject::new()
            .f64("p50_s", self.p50)
            .f64("p95_s", self.p95)
            .f64("p99_s", self.p99)
            .f64("mean_s", self.mean)
            .f64("max_s", self.max)
            .build()
    }
}

/// Per-chip accounting carried into the report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipStats {
    /// Chip index.
    pub id: usize,
    /// Cycles spent executing rounds.
    pub busy_cycles: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Mean resident jobs over busy time.
    pub mean_occupancy: f64,
    /// High-water mark of KV SRAM bytes in use.
    pub max_kv_in_use: u64,
    /// Preemption evictions this chip performed.
    pub evictions: u64,
    /// Cycles spent swapping preempted KV state to and from HBM (a
    /// subset of `busy_cycles`).
    pub swap_cycles: u64,
    /// Jobs this chip stole from backlogged peers' private queues.
    pub steals: u64,
    /// Victim-side serial-cycle backlog those steals relieved.
    pub stolen_cycles: u64,
    /// Prefill→decode handoffs this chip *originated* (disaggregation;
    /// zero on co-located fleets).
    pub handoffs: u64,
    /// Payload bytes those handoffs shipped: unique dirty blocks plus
    /// cold prefix blocks, after pruning and warm-prefix discounts.
    pub handoff_bytes: u64,
    /// Transfer cycles charged to this chip's rounds for handoffs it
    /// participated in, as source or target (a subset of `busy_cycles`
    /// once the charged round runs).
    pub handoff_cycles: u64,
    /// Page-accounting counters from the chip's [`crate::kv::KvPager`];
    /// all-zero under the contiguous KV model.
    pub kv: KvStats,
    /// Elasticity counters (online time, weight loads, joins/leaves);
    /// on a fixed fleet every chip is online for the whole makespan and
    /// the event counters are zero.
    pub elastic: ElasticChipStats,
}

/// Per-request-class accounting: latency, decode cadence, and the SLO
/// ledger (goodput = deadline-meeting completions per second; rejections
/// are requests SLO-aware admission shed before they touched a chip).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Index into the trace spec's class list.
    pub class: usize,
    /// The scheduling priority tier the class's requests carried.
    pub priority: u8,
    /// Requests of this class that completed.
    pub completed: usize,
    /// Requests shed by SLO-aware early rejection.
    pub rejected: usize,
    /// Completions that finished past their deadline.
    pub violations: usize,
    /// Completions that were preempted at least once on the way.
    pub preempted: usize,
    /// Total preemption events the class's requests absorbed.
    pub preemptions: u64,
    /// Deadline-meeting completions per second of simulated time (equals
    /// the class's throughput when it carries no SLO).
    pub goodput_rps: f64,
    /// End-to-end latency distribution.
    pub latency: Percentiles,
    /// Time-between-tokens distribution (decode cadence; zeros for
    /// discriminative classes).
    pub tbt: Percentiles,
}

impl ClassStats {
    fn to_json(&self) -> String {
        JsonObject::new()
            .u64("class", self.class as u64)
            .u64("priority", u64::from(self.priority))
            .u64("completed", self.completed as u64)
            .u64("rejected", self.rejected as u64)
            .u64("violations", self.violations as u64)
            .u64("preempted", self.preempted as u64)
            .u64("preemptions", self.preemptions)
            .f64("goodput_rps", self.goodput_rps)
            .raw("latency", &self.latency.to_json())
            .raw("tbt", &self.tbt.to_json())
            .build()
    }
}

/// Everything one fleet simulation produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Scheduling policy name.
    pub policy: String,
    /// Number of chips.
    pub chips: usize,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Requests completed (every trace request not shed by admission).
    pub completed: usize,
    /// Requests shed by SLO-aware early rejection (never ran).
    pub rejected: usize,
    /// Completions that finished past their deadline.
    pub slo_violations: usize,
    /// Preemption eviction events across the fleet.
    pub preemptions: u64,
    /// Whether preemption was requested but structurally could not fire:
    /// a run-to-completion batch policy holds one resident per chip, so
    /// free slots always remain and the preemption policy never sees a
    /// blocked job. When this is `true` the run's "preemptive" numbers
    /// are identical to the non-preemptive ones by construction — a
    /// sweep comparing them is comparing a policy to itself.
    pub preemption_inert: bool,
    /// Discrete events the simulator processed (arrivals, round ends,
    /// handoff deliveries) — the denominator behind events-per-second
    /// wall-clock throughput in bench reports. Set by the event loop
    /// after construction; 0 for hand-built reports.
    pub sim_events: u64,
    /// Simulated makespan in cycles (last completion).
    pub makespan_cycles: u64,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
    /// Deadline-meeting completions per second of simulated time.
    pub goodput_rps: f64,
    /// Tokens (prefill + generated) per second of simulated time.
    pub tokens_per_sec: f64,
    /// Mean fraction of makespan chips spent busy.
    pub utilization: f64,
    /// End-to-end latency distribution.
    pub latency: Percentiles,
    /// Queueing-delay distribution.
    pub queue_wait: Percentiles,
    /// Time-to-first-token distribution.
    pub ttft: Percentiles,
    /// Time-between-tokens distribution over generative completions (the
    /// decode-latency statistic decode-prioritized batching optimizes).
    pub tbt: Percentiles,
    /// KV packing budget (bytes) the batcher filled against.
    pub kv_budget_bytes: u64,
    /// Per-class accounting.
    pub class_stats: Vec<ClassStats>,
    /// Per-chip stats.
    pub chip_stats: Vec<ChipStats>,
    /// The raw completion records.
    pub completions: Vec<Completion>,
    /// The raw rejection records.
    pub rejections: Vec<Rejection>,
}

impl FleetReport {
    /// Builds the report from raw completions, rejections and chip
    /// accounting.
    pub fn new(
        policy: &str,
        chips: usize,
        clock_ghz: f64,
        kv_budget_bytes: u64,
        completions: Vec<Completion>,
        rejections: Vec<Rejection>,
        chip_stats: Vec<ChipStats>,
    ) -> Self {
        let makespan_cycles = completions
            .iter()
            .map(|c| c.finish_cycles)
            .max()
            .unwrap_or(0);
        let seconds = makespan_cycles as f64 / (clock_ghz * 1e9);
        let total_tokens: u64 = completions.iter().map(Completion::tokens).sum();
        let latencies: Vec<u64> = completions.iter().map(Completion::latency_cycles).collect();
        let waits: Vec<u64> = completions.iter().map(Completion::wait_cycles).collect();
        let ttfts: Vec<u64> = completions.iter().map(Completion::ttft_cycles).collect();
        let tbts: Vec<u64> = completions
            .iter()
            .filter_map(Completion::tbt_cycles)
            .collect();
        let in_slo = completions.iter().filter(|c| c.met_deadline()).count();
        let preemptions: u64 = completions.iter().map(|c| u64::from(c.preemptions)).sum();
        let busy: u64 = chip_stats.iter().map(|c| c.busy_cycles).sum();
        let utilization = if makespan_cycles == 0 {
            0.0
        } else {
            busy as f64 / (makespan_cycles as f64 * chips as f64)
        };
        let per_sec = |n: usize| {
            if seconds > 0.0 {
                n as f64 / seconds
            } else {
                0.0
            }
        };
        let class_stats = Self::class_stats(&completions, &rejections, clock_ghz, seconds);
        Self {
            policy: policy.to_string(),
            chips,
            clock_ghz,
            completed: completions.len(),
            rejected: rejections.len(),
            slo_violations: completions.len() - in_slo,
            preemptions,
            preemption_inert: false,
            sim_events: 0,
            makespan_cycles,
            throughput_rps: per_sec(completions.len()),
            goodput_rps: per_sec(in_slo),
            tokens_per_sec: if seconds > 0.0 {
                total_tokens as f64 / seconds
            } else {
                0.0
            },
            utilization,
            latency: Percentiles::from_cycles(&latencies, clock_ghz),
            queue_wait: Percentiles::from_cycles(&waits, clock_ghz),
            ttft: Percentiles::from_cycles(&ttfts, clock_ghz),
            tbt: Percentiles::from_cycles(&tbts, clock_ghz),
            kv_budget_bytes,
            class_stats,
            chip_stats,
            completions,
            rejections,
        }
    }

    fn class_stats(
        completions: &[Completion],
        rejections: &[Rejection],
        clock_ghz: f64,
        seconds: f64,
    ) -> Vec<ClassStats> {
        let classes = completions
            .iter()
            .map(|c| c.class + 1)
            .chain(rejections.iter().map(|r| r.class + 1))
            .max()
            .unwrap_or(0);
        (0..classes)
            .map(|class| {
                let mine: Vec<&Completion> =
                    completions.iter().filter(|c| c.class == class).collect();
                let rejected = rejections.iter().filter(|r| r.class == class).count();
                let in_slo = mine.iter().filter(|c| c.met_deadline()).count();
                let latencies: Vec<u64> = mine.iter().map(|c| c.latency_cycles()).collect();
                let tbts: Vec<u64> = mine.iter().filter_map(|c| c.tbt_cycles()).collect();
                let priority = mine
                    .first()
                    .map(|c| c.priority)
                    .or_else(|| {
                        rejections
                            .iter()
                            .find(|r| r.class == class)
                            .map(|r| r.priority)
                    })
                    .unwrap_or(0);
                ClassStats {
                    class,
                    priority,
                    completed: mine.len(),
                    rejected,
                    violations: mine.len() - in_slo,
                    preempted: mine.iter().filter(|c| c.preemptions > 0).count(),
                    preemptions: mine.iter().map(|c| u64::from(c.preemptions)).sum(),
                    goodput_rps: if seconds > 0.0 {
                        in_slo as f64 / seconds
                    } else {
                        0.0
                    },
                    latency: Percentiles::from_cycles(&latencies, clock_ghz),
                    tbt: Percentiles::from_cycles(&tbts, clock_ghz),
                }
            })
            .collect()
    }

    /// Mean batch occupancy across chips, weighted by busy time.
    pub fn mean_occupancy(&self) -> f64 {
        let busy: u64 = self.chip_stats.iter().map(|c| c.busy_cycles).sum();
        if busy == 0 {
            return 0.0;
        }
        self.chip_stats
            .iter()
            .map(|c| c.mean_occupancy * c.busy_cycles as f64)
            .sum::<f64>()
            / busy as f64
    }

    /// Serializes the report (without raw completions) as a JSON object.
    pub fn to_json(&self) -> String {
        let chips = array(self.chip_stats.iter().map(|c| {
            JsonObject::new()
                .u64("id", c.id as u64)
                .u64("busy_cycles", c.busy_cycles)
                .u64("rounds", c.rounds)
                .f64("mean_occupancy", c.mean_occupancy)
                .u64("max_kv_in_use_bytes", c.max_kv_in_use)
                .u64("evictions", c.evictions)
                .u64("swap_cycles", c.swap_cycles)
                .u64("steals", c.steals)
                .u64("stolen_cycles", c.stolen_cycles)
                .u64("handoffs", c.handoffs)
                .u64("handoff_bytes", c.handoff_bytes)
                .u64("handoff_cycles", c.handoff_cycles)
                .u64("kv_blocks_allocated", c.kv.blocks_allocated)
                .u64("kv_blocks_freed", c.kv.blocks_freed)
                .u64("kv_blocks_reclaimed", c.kv.blocks_reclaimed)
                .u64("kv_shared_hits", c.kv.shared_hits)
                .u64("kv_cache_evicted_blocks", c.kv.cache_evicted_blocks)
                .u64("online_cycles", c.elastic.online_cycles)
                .u64("weight_load_cycles", c.elastic.weight_load_cycles)
                .u64("model_swaps", c.elastic.model_swaps)
                .u64("leaves", c.elastic.leaves)
                .u64("revoked_jobs", c.elastic.revoked_jobs)
                .u64("joins", c.elastic.joins)
                .build()
        }));
        let classes = array(self.class_stats.iter().map(ClassStats::to_json));
        JsonObject::new()
            .str("policy", &self.policy)
            .u64("chips", self.chips as u64)
            .f64("clock_ghz", self.clock_ghz)
            .u64("completed", self.completed as u64)
            .u64("rejected", self.rejected as u64)
            .u64("slo_violations", self.slo_violations as u64)
            .u64("preemptions", self.preemptions)
            .bool("preemption_inert", self.preemption_inert)
            .u64("sim_events", self.sim_events)
            .u64("handoffs", self.chip_stats.iter().map(|c| c.handoffs).sum())
            .u64(
                "handoff_bytes",
                self.chip_stats.iter().map(|c| c.handoff_bytes).sum(),
            )
            .u64(
                "online_chip_cycles",
                self.chip_stats
                    .iter()
                    .map(|c| c.elastic.online_cycles)
                    .sum(),
            )
            .u64(
                "weight_load_cycles",
                self.chip_stats
                    .iter()
                    .map(|c| c.elastic.weight_load_cycles)
                    .sum(),
            )
            .u64(
                "revoked_jobs",
                self.chip_stats.iter().map(|c| c.elastic.revoked_jobs).sum(),
            )
            .u64("makespan_cycles", self.makespan_cycles)
            .f64(
                "makespan_s",
                self.makespan_cycles as f64 / (self.clock_ghz * 1e9),
            )
            .f64("throughput_rps", self.throughput_rps)
            .f64("goodput_rps", self.goodput_rps)
            .f64("tokens_per_sec", self.tokens_per_sec)
            .f64("utilization", self.utilization)
            .f64("mean_batch_occupancy", self.mean_occupancy())
            .u64("kv_budget_bytes", self.kv_budget_bytes)
            .raw("latency", &self.latency.to_json())
            .raw("queue_wait", &self.queue_wait.to_json())
            .raw("ttft", &self.ttft.to_json())
            .raw("tbt", &self.tbt.to_json())
            .raw("per_class", &classes)
            .raw("per_chip", &chips)
            .build()
    }
}

/// A point-in-time view of a **live** serving engine — the payload the
/// `spatten-frontd` front-end serves at `GET /metrics`. Where
/// [`FleetReport`] is a post-mortem over a drained timeline, this is a
/// monotonic counter set sampled mid-flight, plus the virtual-time
/// bridge position so operators can see how far simulated time has run
/// ahead of (or behind) the wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveSnapshot {
    /// Requests admitted into the engine (accepted by live admission).
    pub accepted: u64,
    /// Requests rejected by live SLO admission control.
    pub rejected: u64,
    /// Requests whose token stream ran to completion.
    pub completed: u64,
    /// Individual tokens streamed to clients so far.
    pub tokens_streamed: u64,
    /// Accepted requests still in flight (admitted, not yet terminal).
    pub in_flight: u64,
    /// Jobs queued inside the engine (scheduler backlog + undispatched
    /// injections).
    pub backlog: u64,
    /// The engine's virtual clock, in core cycles.
    pub vtime_cycles: u64,
    /// Wall-clock nanoseconds since the bridge epoch (first request).
    pub wall_elapsed_ns: u64,
    /// Chips currently online (joins landed, leaves departed).
    pub online_chips: u64,
    /// Roster size including scheduled joiners and the reserve.
    pub total_chips: u64,
}

impl LiveSnapshot {
    /// Serializes the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("accepted", self.accepted)
            .u64("rejected", self.rejected)
            .u64("completed", self.completed)
            .u64("tokens_streamed", self.tokens_streamed)
            .u64("in_flight", self.in_flight)
            .u64("backlog", self.backlog)
            .u64("vtime_cycles", self.vtime_cycles)
            .u64("wall_elapsed_ns", self.wall_elapsed_ns)
            .u64("online_chips", self.online_chips)
            .u64("total_chips", self.total_chips)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_snapshot_serializes_every_counter() {
        let snap = LiveSnapshot {
            accepted: 10,
            rejected: 2,
            completed: 7,
            tokens_streamed: 123,
            in_flight: 3,
            backlog: 1,
            vtime_cycles: 42_000,
            wall_elapsed_ns: 5_000_000,
            online_chips: 3,
            total_chips: 4,
        };
        let json = snap.to_json();
        let v = crate::json::parse(&json).expect("snapshot json parses");
        assert_eq!(v.get("accepted").and_then(|x| x.as_u64()), Some(10));
        assert_eq!(v.get("rejected").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("tokens_streamed").and_then(|x| x.as_u64()), Some(123));
        assert_eq!(v.get("vtime_cycles").and_then(|x| x.as_u64()), Some(42_000));
        assert_eq!(v.get("total_chips").and_then(|x| x.as_u64()), Some(4));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let p = Percentiles::from_cycles(&samples, 1.0);
        assert!((p.p50 - 50e-9).abs() < 1e-15);
        assert!((p.p95 - 95e-9).abs() < 1e-15);
        assert!((p.p99 - 99e-9).abs() < 1e-15);
        assert!((p.max - 100e-9).abs() < 1e-15);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.max);
    }

    #[test]
    fn empty_samples_are_zero() {
        let p = Percentiles::from_cycles(&[], 1.0);
        assert_eq!(p.p99, 0.0);
        assert_eq!(p.mean, 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let p = Percentiles::from_cycles(&[1_000_000_000], 1.0);
        assert!((p.p50 - 1.0).abs() < 1e-12);
        assert!((p.p99 - 1.0).abs() < 1e-12);
    }

    fn completion(
        class: usize,
        finish: u64,
        deadline: Option<u64>,
        generated: usize,
    ) -> Completion {
        Completion {
            id: finish,
            class,
            priority: class as u8,
            client: None,
            chip: 0,
            arrival_cycles: 0,
            start_cycles: 10,
            finish_cycles: finish,
            first_token_cycles: finish.min(1000),
            deadline_cycles: deadline,
            preemptions: if class == 1 { 2 } else { 0 },
            prefill_tokens: 64,
            generated_tokens: generated,
            revoked: false,
        }
    }

    #[test]
    fn slo_ledger_counts_violations_goodput_and_rejections() {
        let completions = vec![
            completion(0, 1_000_000, Some(2_000_000), 0), // met
            completion(0, 3_000_000, Some(2_000_000), 0), // violated
            completion(1, 2_000_000, None, 10),           // best-effort
        ];
        let rejections = vec![Rejection {
            id: 99,
            class: 0,
            priority: 0,
            client: None,
            arrival_cycles: 0,
            reject_cycles: 500,
            deadline_cycles: Some(100),
        }];
        let r = FleetReport::new("test", 1, 1.0, 0, completions, rejections, vec![]);
        assert_eq!(r.completed, 3);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.slo_violations, 1);
        assert!(r.goodput_rps < r.throughput_rps);
        assert_eq!(r.class_stats.len(), 2);
        assert_eq!(r.class_stats[0].completed, 2);
        assert_eq!(r.class_stats[0].rejected, 1);
        assert_eq!(r.class_stats[0].violations, 1);
        assert_eq!(r.class_stats[1].violations, 0);
        // Only the generative class has a decode cadence.
        assert_eq!(r.class_stats[0].tbt.p99, 0.0);
        assert!(r.class_stats[1].tbt.p99 > 0.0);
        assert!(r.tbt.p99 > 0.0);
        // Priority and the preemption ledger ride per class.
        assert_eq!(r.class_stats[0].priority, 0);
        assert_eq!(r.class_stats[1].priority, 1);
        assert_eq!(r.class_stats[1].preempted, 1);
        assert_eq!(r.class_stats[1].preemptions, 2);
        assert_eq!(r.preemptions, 2);
    }
}
