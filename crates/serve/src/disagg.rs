//! Disaggregated prefill/decode serving: pool roles, pool-aware routing,
//! and the priced KV handoff that moves a job between pools.
//!
//! Co-located serving runs every job end-to-end on one chip, so long
//! prefill passes and latency-critical decode steps fight for the same
//! iteration budget — a chat mix with long prompts and short generations
//! pays its time-between-tokens tail to other jobs' prompt processing.
//! Disaggregation splits the fleet: *prefill specialists* absorb
//! arrivals and run prompt passes back-to-back, *decode specialists*
//! run nothing but generation steps, and the job's KV state is handed
//! off between them the moment its last prefill chunk retires.
//!
//! The handoff is the price of admission, and this simulator prices it
//! honestly through three existing seams:
//!
//! * **bytes** — under paged KV ([`KvPager`](crate::kv::KvPager)) the
//!   payload is the job's *unique dirty blocks* at the migration
//!   instant: the pruned survivor set, minus whatever slice of its
//!   class's shared prefix is already warm on the target chip (those
//!   blocks transfer for free). Cascade pruning therefore directly
//!   shrinks migration cost — the paper's novel claim for making
//!   disaggregation cheap.
//! * **cycles** — [`FleetCost::handoff_cycles_on`] prices the transfer
//!   as a three-stage pipeline (source HBM drain → wire → target HBM
//!   fill) bottlenecked by its slowest stage plus per-hop propagation,
//!   and the event loop charges the result into **both** chips' busy
//!   cycles, so neither pool's utilization lies.
//! * **placement** — the migrated job's [`ResumeState`] pin is
//!   re-pointed at the target chip ("the chip holding my KV"), which
//!   makes it unstealable in flight for free: work stealing already
//!   refuses pinned jobs.
//!
//! A [`PoolSpec`] is pure description (roles + wiring); the event loop
//! in [`sim`](crate::sim) owns the migration mechanics. Chips with role
//! [`PoolRole::Flex`] opt out of migration entirely — an all-`Flex`
//! spec (or no spec at all) is the co-located baseline, bit-for-bit.
//!
//! [`FleetCost::handoff_cycles_on`]: crate::cost::FleetCost::handoff_cycles_on
//! [`ResumeState`]: crate::request::ResumeState

use crate::cost::FleetCost;
use crate::request::Job;
use crate::route::{ChipLoad, RoutingPolicy};
use spatten_workloads::fleet::{FleetSpec, LinkSpec, PoolRole, TopologySpec};
use spatten_workloads::{Trace, Workload};

/// Which chips belong to which pool, and how the pools are wired.
///
/// The wiring ([`TopologySpec`] + [`LinkSpec`]) mirrors
/// `cluster::topology::Interconnect`: handoff distance is the hop count
/// on the same shapes, so a serve-level pool spec and a cluster-level
/// interconnect price the same fabric identically.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSpec {
    /// Per-chip roles, indexed by chip id.
    pub roles: Vec<PoolRole>,
    /// Inter-pool wiring shape.
    pub topology: TopologySpec,
    /// Link timing for the handoff path.
    pub link: LinkSpec,
}

impl PoolSpec {
    /// A pool layout over `roles` chips wired as `topology` with `link`
    /// timing.
    ///
    /// # Panics
    ///
    /// Panics if `roles` is empty, or if it declares a prefill pool with
    /// nowhere to send finished prefills (no `Decode` or `Flex` chip).
    pub fn new(roles: Vec<PoolRole>, topology: TopologySpec, link: LinkSpec) -> Self {
        assert!(!roles.is_empty(), "a pool spec needs at least one chip");
        let has_prefill = roles.contains(&PoolRole::Prefill);
        let has_decode_capable = roles
            .iter()
            .any(|r| matches!(r, PoolRole::Decode | PoolRole::Flex));
        assert!(
            !has_prefill || has_decode_capable,
            "prefill pool has no decode-capable chip to hand off to"
        );
        Self {
            roles,
            topology,
            link,
        }
    }

    /// `prefill` prefill-specialists feeding `decode` decode-specialists
    /// over a fully connected fabric with default links.
    pub fn split(prefill: usize, decode: usize) -> Self {
        let mut roles = vec![PoolRole::Prefill; prefill];
        roles.extend(std::iter::repeat_n(PoolRole::Decode, decode));
        Self::new(roles, TopologySpec::FullyConnected, LinkSpec::default())
    }

    /// Picks the prefill/decode split for a `chips`-chip fleet from the
    /// observed prefill:decode cycle ratio of `trace`, priced through
    /// `cost` (chip 0 is the probe — pool sizing assumes the pools run
    /// on comparable hardware). A long-prompt/short-generation chat mix
    /// is prefill-heavy and gets most of the fleet as prefill
    /// specialists; a generation-heavy mix tilts the other way. Both
    /// pools always keep at least one chip, so the spec is valid for
    /// any non-degenerate trace; an empty trace splits evenly.
    ///
    /// # Panics
    ///
    /// Panics if `chips < 2` — a split needs a chip for each pool.
    pub fn auto_split<C: FleetCost>(cost: &mut C, trace: &Trace, chips: usize) -> Self {
        assert!(chips >= 2, "auto_split needs at least two chips");
        let mut prefill_cycles: u128 = 0;
        let mut decode_cycles: u128 = 0;
        let mut tally = |cost: &mut C, w: &Workload| {
            let prefill = cost.prefill_on(0, w).serial_cycles;
            let total = cost.job_serial_on(0, w);
            prefill_cycles += u128::from(prefill);
            decode_cycles += u128::from(total.saturating_sub(prefill));
        };
        match trace {
            Trace::Open { requests } => {
                for r in requests {
                    tally(cost, &r.workload);
                }
            }
            Trace::Closed { clients, .. } => {
                for r in clients.iter().flatten() {
                    tally(cost, &r.workload);
                }
            }
        }
        let total = prefill_cycles + decode_cycles;
        let frac = if total == 0 {
            0.5
        } else {
            prefill_cycles as f64 / total as f64
        };
        let prefill = ((chips as f64 * frac).round() as usize).clamp(1, chips - 1);
        Self::split(prefill, chips - prefill)
    }

    /// The pool layout a [`FleetSpec`] declares, `None` when it declares
    /// no roles (co-located).
    pub fn from_fleet(fleet: &FleetSpec) -> Option<Self> {
        let roles = fleet.roles.clone()?;
        assert_eq!(
            roles.len(),
            fleet.chips.len(),
            "fleet declares {} roles for {} chips",
            roles.len(),
            fleet.chips.len()
        );
        Some(Self::new(roles, fleet.topology, fleet.link))
    }

    /// Chips in the spec.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// Whether the spec is empty (never true for a constructed spec).
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Chip `c`'s role.
    pub fn role(&self, c: usize) -> PoolRole {
        self.roles[c]
    }

    /// Whether this spec actually splits the fleet: at least one
    /// prefill-specialist to migrate *from* (all-`Flex` and all-`Decode`
    /// layouts never fire a handoff).
    pub fn migrates(&self) -> bool {
        self.roles.contains(&PoolRole::Prefill)
    }

    /// The decode pool: chips a finished prefill may migrate to
    /// (`Decode` and `Flex`), excluding `src` — staying put is not a
    /// migration.
    pub fn decode_targets(&self, src: usize) -> impl Iterator<Item = usize> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(move |(c, r)| *c != src && matches!(r, PoolRole::Decode | PoolRole::Flex))
            .map(|(c, _)| c)
    }

    /// Hop count from `src` to `dst` on this wiring — the same distance
    /// convention as `cluster::topology::Topology::hops`: a ring routes
    /// the shorter arc, a fully connected fabric is always one hop.
    pub fn hops(&self, src: usize, dst: usize) -> u64 {
        if src == dst {
            return 0;
        }
        match self.topology {
            TopologySpec::FullyConnected => 1,
            TopologySpec::Ring => {
                let n = self.roles.len();
                let d = src.abs_diff(dst);
                d.min(n - d) as u64
            }
        }
    }
}

/// Pool-targeted routing: arrivals go to the least-loaded chip of the
/// pool that matches their phase.
///
/// A fresh arrival needs a prompt pass, so it targets the prefill pool
/// (`Prefill` ∪ `Flex`), minimizing the same estimated-completion score
/// as [`FastestChipRouting`](crate::route::FastestChipRouting) but only
/// over prefill-capable chips. A decode-phase job (an already-prefilled
/// resume — only possible if an upstream queue re-routes migrated work)
/// symmetrically targets the decode pool. If the matching pool is empty
/// the policy degrades to fastest-chip over the whole fleet, so it is
/// always work-conserving; on a role-free fleet (all `Flex`) it *is*
/// fastest-chip.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolAwareRouting;

impl RoutingPolicy for PoolAwareRouting {
    fn name(&self) -> &'static str {
        "pool-aware"
    }

    fn route(
        &mut self,
        job: &Job,
        cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        _now: u64,
    ) -> Option<usize> {
        let prefilled = job.resume.is_some_and(|r| r.prefilled);
        let estimate = |cost: &mut dyn FleetCost, c: usize| {
            loads[c]
                .backlog_cycles()
                .saturating_add(cost.job_serial_on(c, &job.workload))
        };
        // Leaving (draining/offline) chips are never placement targets,
        // in the pooled pass or the work-conserving fallback — a job
        // routed there would strand when the chip departs.
        let open = |c: &usize| !loads[*c].leaving;
        let pooled = (0..loads.len())
            .filter(open)
            .filter(|&c| loads[c].suits_phase(prefilled))
            .min_by_key(|&c| (estimate(cost, c), c));
        pooled
            .or_else(|| {
                (0..loads.len())
                    .filter(open)
                    .min_by_key(|&c| (estimate(cost, c), c))
            })
            .or_else(|| (0..loads.len()).min_by_key(|&c| (estimate(cost, c), c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_follow_the_interconnect_convention() {
        let ring = PoolSpec::new(
            vec![PoolRole::Flex; 6],
            TopologySpec::Ring,
            LinkSpec::default(),
        );
        assert_eq!(ring.hops(0, 0), 0);
        assert_eq!(ring.hops(0, 1), 1);
        assert_eq!(ring.hops(0, 5), 1); // shorter arc wraps
        assert_eq!(ring.hops(0, 3), 3);
        assert_eq!(ring.hops(1, 4), 3);
        let full = PoolSpec::split(2, 4);
        assert_eq!(full.hops(0, 5), 1);
        assert_eq!(full.hops(3, 3), 0);
    }

    #[test]
    fn decode_targets_exclude_the_source_and_prefill_pool() {
        let spec = PoolSpec::new(
            vec![
                PoolRole::Prefill,
                PoolRole::Decode,
                PoolRole::Flex,
                PoolRole::Prefill,
            ],
            TopologySpec::FullyConnected,
            LinkSpec::default(),
        );
        let targets: Vec<usize> = spec.decode_targets(0).collect();
        assert_eq!(targets, vec![1, 2]);
        let from_flex: Vec<usize> = spec.decode_targets(2).collect();
        assert_eq!(from_flex, vec![1]);
        assert!(spec.migrates());
        assert!(!PoolSpec::new(
            vec![PoolRole::Flex; 3],
            TopologySpec::Ring,
            LinkSpec::default()
        )
        .migrates());
    }

    #[test]
    #[should_panic(expected = "no decode-capable chip")]
    fn all_prefill_pool_is_rejected() {
        PoolSpec::new(
            vec![PoolRole::Prefill; 4],
            TopologySpec::Ring,
            LinkSpec::default(),
        );
    }

    #[test]
    fn auto_split_follows_the_observed_phase_ratio() {
        use crate::cost::CostModel;
        use spatten_core::SpAttenConfig;
        use spatten_workloads::{ArrivalSpec, Benchmark, RequestClass, Trace, TraceSpec};
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        // The disagg chat mix (long prompts, short generations) is
        // prefill-heavy: most of the fleet goes to the prefill pool.
        let arrival = ArrivalSpec::OpenPoisson {
            rate_rps: 2000.0,
            requests: 64,
        };
        let chat = TraceSpec::disagg_chat(arrival, 17).generate();
        let spec = PoolSpec::auto_split(&mut cost, &chat, 6);
        assert_eq!(spec.len(), 6);
        let prefill = spec
            .roles
            .iter()
            .filter(|r| **r == PoolRole::Prefill)
            .count();
        let decode = spec
            .roles
            .iter()
            .filter(|r| **r == PoolRole::Decode)
            .count();
        assert_eq!(prefill + decode, 6, "auto_split emits specialists only");
        assert!(
            prefill > decode,
            "long-prompt/short-generation mix must be prefill-heavy, got {prefill}p/{decode}d"
        );
        // A generation-heavy mix tilts the other way — and however
        // extreme the ratio, both pools keep at least one chip.
        let gen_heavy = TraceSpec {
            classes: vec![RequestClass::gpt2(
                &Benchmark::gpt2_small_wikitext2(),
                (16, 32),
                (384, 512),
                1.0,
            )],
            arrival,
            seed: 17,
            fleet: None,
        }
        .generate();
        let spec = PoolSpec::auto_split(&mut cost, &gen_heavy, 6);
        let prefill = spec
            .roles
            .iter()
            .filter(|r| **r == PoolRole::Prefill)
            .count();
        assert_eq!(
            prefill, 1,
            "generation-heavy mix keeps exactly the floor prefill chip"
        );
        // An empty trace has no observed ratio: split evenly.
        let spec = PoolSpec::auto_split(&mut cost, &Trace::Open { requests: vec![] }, 6);
        let prefill = spec
            .roles
            .iter()
            .filter(|r| **r == PoolRole::Prefill)
            .count();
        assert_eq!(prefill, 3);
    }

    #[test]
    fn from_fleet_mirrors_declared_roles() {
        let mut fleet = spatten_workloads::FleetSpec::ring_of(4);
        assert!(PoolSpec::from_fleet(&fleet).is_none());
        fleet.roles = Some(vec![
            PoolRole::Prefill,
            PoolRole::Prefill,
            PoolRole::Decode,
            PoolRole::Decode,
        ]);
        let spec = PoolSpec::from_fleet(&fleet).expect("roles declared");
        assert_eq!(spec.len(), 4);
        assert_eq!(spec.role(2), PoolRole::Decode);
        assert_eq!(spec.topology, TopologySpec::Ring);
    }
}
