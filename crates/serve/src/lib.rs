//! # spatten-serve — a trace-driven multi-accelerator serving simulator
//!
//! The crates below this one model *one* SpAtten chip running *one*
//! workload. Production inference doesn't look like that: traffic is a
//! stream of mixed requests (BERT summarization jobs next to GPT-2
//! generation jobs), served by a fleet of accelerators behind a scheduler,
//! and the numbers that matter are throughput, utilization and **tail
//! latency** — not single-run cycle counts. This crate wraps the
//! cycle-accurate perf model in exactly that harness:
//!
//! * [`cost`] — [`CostModel`]: memoized incremental cost queries
//!   (`prefill`, per-token `decode`, KV-cache SRAM footprints) against
//!   `spatten_core::perf`, optionally end-to-end with SpAtten-e2e FC
//!   weight streaming. Memo entries are keyed by chip configuration, so a
//!   heterogeneous fleet (Table-I chips next to 1/8-scale ones) never
//!   shares cached costs across hardware. The [`FleetCost`] trait is the
//!   chip-indexed interface the rest of the crate programs against —
//!   `spatten-cluster` implements it for sharded multi-chip groups.
//! * [`route`] — the **routing seam**: [`RoutingPolicy`] assigns each
//!   arriving job to a chip *at arrival time* — cost-model-probed
//!   fastest-chip (queued **and in-service** backlog), churn-aware,
//!   speed-weighted least-KV-loaded, hash-affinity — replacing the
//!   chip-agnostic shared queue on heterogeneous fleets. When routing
//!   still guesses wrong, the scheduler's work-stealing knob
//!   ([`StealSpec`]) lets idle chips pull work back out of backlogged
//!   private queues.
//! * [`scheduler`] — the **admission seam**: [`AdmissionPolicy`] decides
//!   who enters a chip's running batch under the KV budget. Bundled:
//!   FIFO, shortest-job-first, arrival-order continuous batching,
//!   priority-ordered admission, KV-footprint-aware reordering with an
//!   explicit starvation bound, and SLO-aware early rejection.
//! * [`batch`] — the **batching seam**: [`BatchPolicy`] decides how one
//!   iteration's budget splits between chunked prefill and decode steps.
//!   Bundled: run-to-completion, uniform iterations, and Sarathi-style
//!   decode-prioritized token budgets.
//! * [`preempt`] — the **preemption seam**: [`PreemptionPolicy`] may
//!   evict resident jobs at round boundaries for higher-priority queued
//!   work. Victims' KV state swaps through HBM (priced by
//!   [`FleetCost::swap_cycles_on`]) and their progress is preserved —
//!   preemption trades the victim's latency, never its work.
//! * [`chip`] — the per-chip event loop: queue wait, execution
//!   serialization, and HBM-bandwidth-aware co-scheduling (one job's
//!   compute overlaps another's KV/weight streaming; each resource
//!   serializes within itself).
//! * [`kv`] — the **paged KV allocator** ([`KvPager`], opt-in via
//!   `SchedKnobs::kv`): fixed-size blocks per chip, per-job page tables,
//!   refcounted copy-on-write sharing of per-class system-prompt
//!   prefixes with a scored persistent prefix cache, and pruning-aware
//!   mid-stream page reclaim as the cascade retires tokens. Fit checks
//!   price through [`PagedCost`]; preemption swaps unique pages only.
//! * [`disagg`] — the **disaggregation layer** ([`PoolSpec`], opt-in
//!   via fleet roles): prefill-specialist and decode-specialist pools,
//!   pool-aware arrival routing, and a priced prefill→decode KV handoff
//!   — bytes are the job's unique dirty pruned blocks (shared prefix
//!   blocks already warm on the target move for free), cycles are
//!   charged into both chips through
//!   [`FleetCost::handoff_cycles_on`].
//! * [`elastic`] — the **elasticity layer** ([`FleetEvents`], opt-in via
//!   `FleetConfig::elastic`): scheduled chip drains and spot-style
//!   revocations (residents migrate through the preemption machinery,
//!   losing no work), cold joins priced by weight streaming through
//!   [`FleetCost::weight_load_cycles_on`], resident-model tags that
//!   charge cross-model placements the weight-swap price, and the
//!   [`AutoscalePolicy`] seam with a threshold-hysteresis default
//!   against a reserve fleet.
//! * [`sim`] — the discrete-event fleet simulator, generic over
//!   ([`FleetCost`], [`AdmissionPolicy`], [`BatchPolicy`]): every policy
//!   runs through the one event loop. Drives open-loop (Poisson, MMPP,
//!   diurnal) and closed-loop traces from `spatten_workloads::trace`.
//! * [`engine`] — the **resumable engine** ([`FleetEngine`]): the event
//!   loop paused between events, with an explicit `inject` /
//!   `step_until` / `drain` step API and a [`TokenSink`] seam that
//!   surfaces per-token completions ([`TokenEvent`]) as rounds retire.
//!   `simulate_fleet_with` is a thin replay wrapper over it, bit-for-bit
//!   identical to the old monolithic loop; the `spatten-frontd` binary
//!   drives the same engine from live HTTP traffic over a virtual-time
//!   bridge.
//! * [`metrics`] — throughput (req/s, tokens/s), goodput, utilization,
//!   p50/p95/p99 latency / queue-wait / TTFT / time-between-tokens, and
//!   per-class SLO, priority and preemption accounting, with a JSON
//!   report writer.
//!
//! # Quick start
//!
//! ```
//! use spatten_serve::{simulate_fleet, FleetConfig, Policy};
//! use spatten_workloads::{ArrivalSpec, TraceSpec};
//!
//! let trace = TraceSpec::mixed(
//!     ArrivalSpec::OpenPoisson { rate_rps: 2000.0, requests: 100 },
//!     7,
//! )
//! .generate();
//! let report = simulate_fleet(&FleetConfig::new(4, Policy::ContinuousBatching), &trace);
//! assert_eq!(report.completed, 100);
//! assert!(report.latency.p99 >= report.latency.p50);
//! println!("{}", report.to_json());
//! ```

pub mod batch;
pub mod chip;
pub mod cost;
pub mod disagg;
pub mod elastic;
pub mod engine;
pub mod json;
pub mod kv;
pub mod metrics;
pub mod preempt;
pub mod request;
pub mod route;
pub mod scheduler;
pub mod sim;

pub use batch::{
    BatchPolicy, DecodePrioritizedBatch, IterationBatch, ResidentView, RoundStep, RunToCompletion,
};
pub use cost::{
    model_weight_bytes, representative, CfgKey, ClassKey, CostModel, FleetCost, CTX_BUCKET,
};
pub use disagg::{PoolAwareRouting, PoolSpec};
pub use elastic::{
    AutoscalePolicy, AutoscaleSpec, Availability, ChipJoin, ChipLeave, ElasticChipStats,
    ElasticSchedule, ElasticSpec, FleetEvents, FleetLoadView, LeaveMode, ThresholdHysteresis,
};
pub use engine::{fleet_engine_policy, FleetEngine, NullSink, TokenEvent, TokenSink};
pub use kv::{JobKvNeed, KvPager, KvSpec, KvStats, PagedCost};
pub use metrics::{ChipStats, ClassStats, FleetReport, LiveSnapshot, Percentiles};
pub use preempt::{NoPreemption, PreemptionPolicy, PriorityPreemption, VictimView};
pub use request::{Completion, Job, Rejection, ResumeState};
pub use route::{
    ChipLoad, ChurnAwareRouting, FastestChipRouting, HashAffinityRouting, LeastKvLoadedRouting,
    RoutingPolicy, SharedQueueRouting,
};
pub use scheduler::{
    remaining_cycles_on, Admission, AdmissionPolicy, ArrivalOrderAdmission, ChipCapacity,
    FifoAdmission, KvAwareAdmission, PendingQueue, Policy, PreemptSpec, PriorityAdmission,
    QueuedJob, RouteSpec, SchedKnobs, Scheduler, SimMode, SjfAdmission, SloAwareAdmission,
    StealSpec,
};
pub use sim::{
    fleet_engine, simulate_fleet, simulate_fleet_policy, simulate_fleet_with, FleetConfig,
    PolicyFleetEngine,
};
