//! The per-job cost oracle: memoized incremental queries against the
//! cycle-accurate `spatten-core` perf model.
//!
//! A fleet simulation issues on the order of 10⁵ per-token cost queries;
//! running the cycle-level model for each would dominate wall time. Costs
//! depend only on (workload class, sequence length) — the per-request seed
//! jitters synthetic score streams, not timing-relevant shape — so the
//! oracle memoizes by class and (bucketed) context length, computing each
//! bucket once on a seed-normalized representative workload.
//!
//! Optionally the oracle folds in the FC costs of SpAtten-e2e
//! (`fc_weight_bits`), so serving numbers reflect end-to-end jobs rather
//! than attention-only kernels. FC and attention time-multiplex the same
//! multiplier arrays, so their costs serialize within a job.

use spatten_core::{
    decode_step_cost, prefill_cost, surviving_tokens, SpAttenConfig, SpAttenE2e, StepCost,
};
use spatten_nn::ModelConfig;
use spatten_workloads::spec::BitwidthScheme;
use spatten_workloads::Workload;
use std::collections::HashMap;

/// Decode context lengths are bucketed to this granularity for memoization
/// (a 16-token context difference moves a decode step's cost by well under
/// the scheduling noise floor).
const CTX_BUCKET: usize = 16;

/// Memo key: every timing-relevant field of a workload *except* lengths
/// and seed. Two classes may share a benchmark name while differing in
/// pruning or quantization, so the name alone would collide and silently
/// price one class as the other. Float policy fields are keyed by bit
/// pattern (exact equality is the right notion for "same class").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ClassKey {
    name: String,
    model: ModelConfig,
    token_avg_keep: u64,
    head_avg_keep: u64,
    token_front_frac: u64,
    head_front_frac: u64,
    local_value_keep: u64,
    scheme: BitwidthScheme,
    progressive: bool,
    lsb_threshold: u32,
}

/// Memoized cost oracle for one accelerator configuration.
#[derive(Debug)]
pub struct CostModel {
    cfg: SpAttenConfig,
    e2e: Option<SpAttenE2e>,
    prefill_memo: HashMap<(ClassKey, usize), StepCost>,
    decode_memo: HashMap<(ClassKey, usize), StepCost>,
    footprint_memo: HashMap<(ClassKey, usize), u64>,
}

impl CostModel {
    /// An attention-only oracle for `cfg`.
    pub fn attention_only(cfg: SpAttenConfig) -> Self {
        Self {
            cfg,
            e2e: None,
            prefill_memo: HashMap::new(),
            decode_memo: HashMap::new(),
            footprint_memo: HashMap::new(),
        }
    }

    /// An end-to-end oracle: attention from the cycle-level model plus FC
    /// weight streaming at `fc_weight_bits` (SpAtten-e2e, Table IV).
    pub fn end_to_end(cfg: SpAttenConfig, fc_weight_bits: u32) -> Self {
        Self {
            cfg,
            e2e: Some(SpAttenE2e::new(cfg, fc_weight_bits)),
            prefill_memo: HashMap::new(),
            decode_memo: HashMap::new(),
            footprint_memo: HashMap::new(),
        }
    }

    /// The accelerator configuration the oracle prices against.
    pub fn config(&self) -> SpAttenConfig {
        self.cfg
    }

    /// A seed-normalized representative for memoized cost computation.
    fn representative(w: &Workload, len: usize) -> Workload {
        Workload {
            seq_len: len,
            gen_steps: 0,
            seed: 0x5EED ^ (len as u64) << 1,
            ..w.clone()
        }
    }

    /// See [`ClassKey`].
    fn class_key(w: &Workload) -> ClassKey {
        ClassKey {
            name: w.name.clone(),
            model: w.model,
            token_avg_keep: w.pruning.token_avg_keep.to_bits(),
            head_avg_keep: w.pruning.head_avg_keep.to_bits(),
            token_front_frac: w.pruning.token_front_frac.to_bits(),
            head_front_frac: w.pruning.head_front_frac.to_bits(),
            local_value_keep: w.pruning.local_value_keep.to_bits(),
            scheme: w.quant.scheme,
            progressive: w.quant.progressive,
            lsb_threshold: w.quant.lsb_threshold.to_bits(),
        }
    }

    /// Cost of `w`'s summarization/prefill pass over `w.seq_len` tokens.
    pub fn prefill(&mut self, w: &Workload) -> StepCost {
        let key = (Self::class_key(w), w.seq_len);
        if let Some(&c) = self.prefill_memo.get(&key) {
            return c;
        }
        let rep = Self::representative(w, w.seq_len);
        let mut cost = prefill_cost(&self.cfg, &rep);
        if let Some(e2e) = &self.e2e {
            cost.add(e2e.fc_prefill_cost(&rep));
        }
        self.prefill_memo.insert(key, cost);
        cost
    }

    /// Cost of generating one token of `w` at a (pre-pruning) KV context of
    /// `context` tokens.
    pub fn decode(&mut self, w: &Workload, context: usize) -> StepCost {
        let bucket = context.max(1).div_ceil(CTX_BUCKET) * CTX_BUCKET;
        let key = (Self::class_key(w), bucket);
        if let Some(&c) = self.decode_memo.get(&key) {
            return c;
        }
        let rep = Self::representative(w, bucket);
        let mut cost = decode_step_cost(&self.cfg, &rep, bucket);
        if let Some(e2e) = &self.e2e {
            cost.add(e2e.fc_decode_cost(&rep));
        }
        self.decode_memo.insert(key, cost);
        cost
    }

    /// Serialized cycles of the whole job: prefill plus every decode step.
    /// This is what a run-to-completion scheduler charges, and what
    /// shortest-job-first sorts by.
    pub fn job_serial_cycles(&mut self, w: &Workload) -> u64 {
        let mut total = self.prefill(w).serial_cycles;
        for step in 0..w.gen_steps {
            total += self.decode(w, w.seq_len + step + 1).serial_cycles;
        }
        total
    }

    /// Cycles from job start until its first visible token: the prefill
    /// pass, plus one decode step for generative jobs.
    pub fn first_token_cycles(&mut self, w: &Workload) -> u64 {
        let mut total = self.prefill(w).serial_cycles;
        if w.gen_steps > 0 {
            total += self.decode(w, w.seq_len + 1).serial_cycles;
        }
        total
    }

    /// The KV-cache SRAM footprint the job pins while resident on a chip:
    /// the *deepest-layer* survivor set of its maximum context (cascade
    /// pruning's end state — the working set SpAtten keeps hot across
    /// generation steps), K and V planes at the workload's MSB storage
    /// precision (the plane SpAtten streams during generation; LSB refetch
    /// is rare enough — ≈ 5.9 % of queries — not to be provisioned for).
    ///
    /// Clamped to [`Self::kv_budget`]: an oversized job (one whose working
    /// set alone exceeds the SRAMs) is still servable — the perf model
    /// charges it SRAM-overflow re-streaming — but it can never share a
    /// chip, so its effective reservation is the whole budget.
    pub fn kv_footprint_bytes(&mut self, w: &Workload) -> u64 {
        let max_ctx = w.seq_len + w.gen_steps;
        let key = (Self::class_key(w), max_ctx);
        if let Some(&b) = self.footprint_memo.get(&key) {
            return b;
        }
        let deepest = surviving_tokens(&self.cfg, w, w.model.layers - 1, max_ctx);
        let bits = u64::from(w.quant.scheme.msb_bits());
        let per_token = 2 * (w.model.hidden as u64 * bits).div_ceil(8);
        let bytes = (deepest as u64 * per_token).min(self.kv_budget());
        self.footprint_memo.insert(key, bytes);
        bytes
    }

    /// The packing budget continuous batching fills: the K and the V SRAM
    /// (`SpAttenConfig::kv_sram_bytes` each).
    pub fn kv_budget(&self) -> u64 {
        2 * self.cfg.kv_sram_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_workloads::Benchmark;

    fn model() -> CostModel {
        CostModel::end_to_end(SpAttenConfig::default(), 8)
    }

    #[test]
    fn decode_cost_grows_with_context() {
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let near = m.decode(&w, 64).serial_cycles;
        let far = m.decode(&w, 1024).serial_cycles;
        assert!(far > near, "decode at ctx 1024 ({far}) vs 64 ({near})");
    }

    #[test]
    fn prefill_cost_grows_with_length() {
        let mut m = model();
        let mut w = Benchmark::bert_base_sst2().workload();
        w.seq_len = 32;
        let short = m.prefill(&w).serial_cycles;
        w.seq_len = 256;
        let long = m.prefill(&w).serial_cycles;
        assert!(long > 4 * short, "prefill 256 ({long}) vs 32 ({short})");
    }

    #[test]
    fn memoization_is_stable() {
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let a = m.decode(&w, 100);
        let b = m.decode(&w, 100);
        assert_eq!(a, b);
        // Same bucket → same memo entry.
        let c = m.decode(&w, 97);
        assert_eq!(a, c);
    }

    #[test]
    fn job_serial_matches_piecewise_sum() {
        let mut m = model();
        let mut w = Benchmark::gpt2_small_wikitext2().workload();
        w.seq_len = 128;
        w.gen_steps = 4;
        let total = m.job_serial_cycles(&w);
        let mut expect = m.prefill(&w).serial_cycles;
        for s in 0..4 {
            expect += m.decode(&w, 128 + s + 1).serial_cycles;
        }
        assert_eq!(total, expect);
        assert!(m.first_token_cycles(&w) < total);
    }

    #[test]
    fn footprint_respects_budget_and_scales_with_context() {
        let mut m = model();
        let mut w = Benchmark::gpt2_small_wikitext2().workload();
        w.seq_len = 64;
        w.gen_steps = 8;
        let small = m.kv_footprint_bytes(&w);
        w.seq_len = 512;
        let big = m.kv_footprint_bytes(&w);
        assert!(small > 0);
        assert!(big > small);
        assert!(big <= m.kv_budget());
    }

    #[test]
    fn decode_is_memory_bound_with_fc() {
        // Table IV regime: generation is dominated by weight/KV streaming.
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let c = m.decode(&w, 512);
        assert!(c.dram_cycles > c.compute_cycles, "{c:?}");
    }

    #[test]
    fn prefill_is_compute_bound() {
        let mut m = model();
        let mut w = Benchmark::bert_base_sst2().workload();
        w.seq_len = 128;
        let c = m.prefill(&w);
        assert!(c.compute_cycles > c.dram_cycles, "{c:?}");
    }
}
