//! The per-job cost oracle: memoized incremental queries against the
//! cycle-accurate `spatten-core` perf model.
//!
//! A fleet simulation issues on the order of 10⁵ per-token cost queries;
//! running the cycle-level model for each would dominate wall time. Costs
//! depend only on (chip configuration, workload class, sequence length) —
//! the per-request seed jitters synthetic score streams, not
//! timing-relevant shape — so the oracle memoizes by chip config, class
//! and (bucketed) context length, computing each bucket once on a
//! seed-normalized representative workload.
//!
//! Fleets may be *heterogeneous* (Table-I chips next to
//! [`SpAttenConfig::eighth`]-scale ones), so every memo key carries a
//! [`CfgKey`] fingerprint of the chip configuration — two chips only share
//! cached costs when their hardware is identical. The [`FleetCost`] trait
//! is the chip-indexed interface the event loop and schedulers program
//! against; `spatten-cluster` implements it for sharded chip *groups*.
//!
//! Optionally the oracle folds in the FC costs of SpAtten-e2e
//! (`fc_weight_bits`), so serving numbers reflect end-to-end jobs rather
//! than attention-only kernels. FC and attention time-multiplex the same
//! multiplier arrays, so their costs serialize within a job.

use crate::request::Job;
use spatten_core::{
    decode_step_cost, prefill_cost, surviving_tokens, SpAttenConfig, SpAttenE2e, StepCost,
};
use spatten_nn::ModelConfig;
use spatten_workloads::fleet::LinkSpec;
use spatten_workloads::spec::BitwidthScheme;
use spatten_workloads::Workload;

/// Decode context lengths are bucketed to this granularity for memoization
/// (a 16-token context difference moves a decode step's cost by well under
/// the scheduling noise floor). Public so other cost oracles
/// (`spatten-cluster`) bucket identically and stay comparable.
pub const CTX_BUCKET: usize = 16;

/// A seed-normalized representative of `w` at length `len` for memoized
/// cost computation: fixed seed (costs must not depend on per-request
/// score jitter), no generation stage. Shared by every cost oracle so
/// sharded and single-chip prices stay apples-to-apples.
pub fn representative(w: &Workload, len: usize) -> Workload {
    Workload {
        seq_len: len,
        gen_steps: 0,
        seed: 0x5EED ^ (len as u64) << 1,
        ..w.clone()
    }
}

/// Memo key: every timing-relevant field of a workload *except* lengths
/// and seed. Two classes may share a benchmark name while differing in
/// pruning or quantization, so the name alone would collide and silently
/// price one class as the other. Float policy fields are keyed by bit
/// pattern (exact equality is the right notion for "same class").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClassKey {
    name: String,
    model: ModelConfig,
    token_avg_keep: u64,
    head_avg_keep: u64,
    token_front_frac: u64,
    head_front_frac: u64,
    local_value_keep: u64,
    scheme: BitwidthScheme,
    progressive: bool,
    lsb_threshold: u32,
}

impl ClassKey {
    /// The class fingerprint of `w`.
    pub fn of(w: &Workload) -> Self {
        Self {
            name: w.name.clone(),
            model: w.model,
            token_avg_keep: w.pruning.token_avg_keep.to_bits(),
            head_avg_keep: w.pruning.head_avg_keep.to_bits(),
            token_front_frac: w.pruning.token_front_frac.to_bits(),
            head_front_frac: w.pruning.head_front_frac.to_bits(),
            local_value_keep: w.pruning.local_value_keep.to_bits(),
            scheme: w.quant.scheme,
            progressive: w.quant.progressive,
            lsb_threshold: w.quant.lsb_threshold.to_bits(),
        }
    }

    /// Whether `w` belongs to this class — the allocation-free twin of
    /// `ClassKey::of(w) == *self`, ordered cheapest-and-most-discriminating
    /// first (pruning policy separates a trace's classes from their
    /// unpruned twins long before the name string is ever compared).
    fn matches(&self, w: &Workload) -> bool {
        self.token_avg_keep == w.pruning.token_avg_keep.to_bits()
            && self.head_avg_keep == w.pruning.head_avg_keep.to_bits()
            && self.token_front_frac == w.pruning.token_front_frac.to_bits()
            && self.head_front_frac == w.pruning.head_front_frac.to_bits()
            && self.local_value_keep == w.pruning.local_value_keep.to_bits()
            && self.scheme == w.quant.scheme
            && self.progressive == w.quant.progressive
            && self.lsb_threshold == w.quant.lsb_threshold.to_bits()
            && self.model == w.model
            && self.name == w.name
    }
}

/// Interns workload classes to dense small ids. A serving trace holds a
/// handful of classes but issues millions of cost queries, so the id
/// lookup must not allocate: a sticky last-hit slot answers runs of
/// queries for the same class, and a linear scan over the interned keys
/// (allocation-free field compares) answers the rest. Only a genuinely
/// new class pays `ClassKey::of`.
#[derive(Debug, Default, Clone)]
struct ClassIntern {
    keys: Vec<ClassKey>,
    last: usize,
}

impl ClassIntern {
    fn id(&mut self, w: &Workload) -> usize {
        if let Some(k) = self.keys.get(self.last) {
            if k.matches(w) {
                return self.last;
            }
        }
        if let Some(i) = self.keys.iter().position(|k| k.matches(w)) {
            self.last = i;
            return i;
        }
        self.keys.push(ClassKey::of(w));
        self.last = self.keys.len() - 1;
        self.last
    }
}

/// Memo key: every timing-relevant field of a chip configuration. A
/// heterogeneous fleet prices the same request class differently on a
/// Table-I chip and a 1/8-scale chip, so cached costs must never cross
/// config boundaries (float fields keyed by bit pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CfgKey {
    multipliers_per_array: usize,
    topk_parallelism: usize,
    softmax_parallelism: usize,
    kv_sram_bytes: u64,
    clock_ghz: u64,
    hbm_channels: usize,
    hbm_bytes_per_cycle: u64,
    hbm_interleave_bytes: u64,
    hbm_row_bytes: u64,
    hbm_activation_cycles: u64,
    hbm_clock_ghz: u64,
    token_pruning: bool,
    head_pruning: bool,
    local_value_pruning: bool,
}

impl CfgKey {
    /// The hardware fingerprint of `cfg`. Destructures without a rest
    /// pattern on purpose: adding a field to `SpAttenConfig` (or its HBM
    /// config) must fail to compile here, not silently alias distinct
    /// chips in the memo.
    pub fn of(cfg: &SpAttenConfig) -> Self {
        let SpAttenConfig {
            multipliers_per_array,
            topk_parallelism,
            softmax_parallelism,
            kv_sram_bytes,
            clock_ghz,
            hbm,
            token_pruning,
            head_pruning,
            local_value_pruning,
        } = *cfg;
        let spatten_hbm::HbmConfig {
            channels,
            bytes_per_cycle,
            interleave_bytes,
            row_bytes,
            activation_cycles,
            clock_ghz: hbm_clock,
        } = hbm;
        Self {
            multipliers_per_array,
            topk_parallelism,
            softmax_parallelism,
            kv_sram_bytes,
            clock_ghz: clock_ghz.to_bits(),
            hbm_channels: channels,
            hbm_bytes_per_cycle: bytes_per_cycle,
            hbm_interleave_bytes: interleave_bytes,
            hbm_row_bytes: row_bytes,
            hbm_activation_cycles: activation_cycles,
            hbm_clock_ghz: hbm_clock.to_bits(),
            token_pruning,
            head_pruning,
            local_value_pruning,
        }
    }
}

/// The chip-indexed cost interface the fleet event loop and schedulers
/// program against. `chip` is the index of the *logical* executor — a
/// physical chip for [`CostModel`], a sharded chip group for
/// `spatten-cluster` — so heterogeneous fleets can price the same job
/// differently per executor.
///
/// ```
/// use spatten_core::SpAttenConfig;
/// use spatten_serve::{CostModel, FleetCost};
/// use spatten_workloads::Benchmark;
///
/// // A full-size chip next to an eighth-scale one: same job, two prices.
/// let mut cost = CostModel::heterogeneous(
///     vec![SpAttenConfig::default(), SpAttenConfig::eighth()],
///     Some(8),
/// );
/// let w = Benchmark::gpt2_small_wikitext2().workload();
/// assert!(cost.job_serial_on(1, &w) > cost.job_serial_on(0, &w));
/// assert!(cost.footprint_on(0, &w) <= cost.budget_on(0));
/// // Preemption swap: moving less KV costs fewer cycles.
/// assert!(cost.swap_cycles_on(0, &w, 64) <= cost.swap_cycles_on(0, &w, 512));
/// ```
pub trait FleetCost {
    /// Cost of `w`'s summarization/prefill pass on `chip`.
    fn prefill_on(&mut self, chip: usize, w: &Workload) -> StepCost;

    /// Cost of generating one token of `w` on `chip` at a (pre-pruning) KV
    /// context of `context` tokens.
    fn decode_on(&mut self, chip: usize, w: &Workload, context: usize) -> StepCost;

    /// KV-cache SRAM bytes the job pins while resident on `chip`.
    fn footprint_on(&mut self, chip: usize, w: &Workload) -> u64;

    /// The KV packing budget of `chip`.
    fn budget_on(&self, chip: usize) -> u64;

    /// Cycles to move the KV state of a `tokens`-token context of `w`
    /// through `chip`'s HBM **one way** — the price preemption pays per
    /// direction: a swap-out at eviction (KV drained from the SRAMs to
    /// HBM) and a swap-in at re-admission (restored). Charged at the
    /// chip's aggregate DRAM bandwidth; the bytes follow the same
    /// deepest-layer-survivors-at-MSB-precision convention as
    /// [`FleetCost::footprint_on`], so a job swaps exactly the working
    /// set it pins.
    fn swap_cycles_on(&mut self, chip: usize, w: &Workload, tokens: usize) -> u64;

    /// KV bytes `job` must reserve to be admitted on `chip`. The default
    /// is the plain per-workload working set ([`FleetCost::footprint_on`])
    /// — every contiguous-budget caller prices through here unchanged. The
    /// paged adapter ([`PagedCost`](crate::kv::PagedCost)) overrides this
    /// with a page-table-backed charge: shared prefix pages priced once
    /// per chip, resumed jobs priced at their current position on the
    /// pruning curve. Fit checks (admission, stealing, preemption) go
    /// through this; the scheduler's pending-work ledgers stay on
    /// `footprint_on` so charge and discharge remain symmetric.
    fn job_footprint_on(&mut self, chip: usize, job: &Job) -> u64 {
        self.footprint_on(chip, &job.workload)
    }

    /// Raw (pre-pruning) KV bytes of a `tokens`-token context of `w` on
    /// `chip` — what prefill materializes before cascade pruning retires
    /// non-survivors down to the [`FleetCost::footprint_on`] working set.
    /// The paged allocator sizes a job's peak page count from this. The
    /// default approximates it as a proportional slice of the pruned
    /// working set; exact models override with the unpruned byte count.
    fn raw_kv_bytes_on(&mut self, chip: usize, w: &Workload, tokens: usize) -> u64 {
        if tokens == 0 {
            return 0;
        }
        let max_ctx = (w.seq_len + w.gen_steps).max(1);
        self.footprint_on(chip, w)
            .saturating_mul(tokens as u64)
            .div_ceil(max_ctx as u64)
    }

    /// Cycles to move `bytes` of KV state through `chip`'s HBM **one
    /// way**, for callers that already know the byte count: the paged
    /// allocator charges a preemption victim's *unique* (non-shared)
    /// pages through this instead of repricing the whole working set.
    /// The default rescales [`FleetCost::swap_cycles_on`] at the job's
    /// maximum context proportionally; exact models override with their
    /// bandwidth formula.
    fn swap_bytes_cycles_on(&mut self, chip: usize, w: &Workload, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let max_ctx = (w.seq_len + w.gen_steps).max(1);
        let full_cycles = self.swap_cycles_on(chip, w, max_ctx).max(1);
        let full_bytes = self.raw_kv_bytes_on(chip, w, max_ctx).max(1);
        full_cycles.saturating_mul(bytes).div_ceil(full_bytes)
    }

    /// Cycles to stream `w`'s model weights into `chip`'s HBM before it
    /// can serve: the price of bringing a cold chip online
    /// ([`ChipJoin`](crate::elastic::ChipJoin) model-load delay) or of a
    /// cross-model placement evicting the resident weight plane. The
    /// default prices [`model_weight_bytes`] at 8-bit storage through
    /// [`FleetCost::swap_bytes_cycles_on`], so any oracle with a real
    /// HBM drain model inherits a consistent weight-stream rate;
    /// `CostModel` overrides with its quantized FC width and a memo,
    /// and `ClusterCostModel` composes shards via its slowest-shard
    /// swap pricing for free.
    fn weight_load_cycles_on(&mut self, chip: usize, w: &Workload) -> u64 {
        let bytes = model_weight_bytes(&w.model, 8);
        self.swap_bytes_cycles_on(chip, w, bytes)
    }

    /// Cycles a prefill→decode KV handoff of `bytes` occupies **each** of
    /// `src` and `dst`: the source drains the job's unique dirty blocks
    /// from its SRAMs through HBM, the wire carries them `hops` hops over
    /// `link`, and the destination fills its own KV store — three
    /// pipelined stages, so the transfer runs at the slowest stage's rate
    /// plus the per-hop propagation latency. The caller (the disaggregation
    /// layer) supplies `hops` and `link` from its [`PoolSpec`]; oracles
    /// with a real interconnect model (`spatten-cluster`) override this
    /// with their fabric's occupancy-tracked price.
    ///
    /// [`PoolSpec`]: crate::disagg::PoolSpec
    fn handoff_cycles_on(
        &mut self,
        src: usize,
        dst: usize,
        w: &Workload,
        bytes: u64,
        hops: u64,
        link: &LinkSpec,
    ) -> u64 {
        let wire = bytes.div_ceil(link.bytes_per_cycle.max(1));
        let drain = self.swap_bytes_cycles_on(src, w, bytes);
        let fill = self.swap_bytes_cycles_on(dst, w, bytes);
        hops.saturating_mul(link.latency_cycles) + wire.max(drain).max(fill)
    }

    /// Hints the oracle at the live resident-batch size on `chip` before a
    /// round is priced. The chip event loop calls this at every round
    /// start; batch-aware oracles (pipeline bubble amortization in
    /// `spatten-cluster`) fold the depth into subsequent step costs, while
    /// single-chip models ignore it. The hint is sticky until the next
    /// call for the same chip.
    fn note_batch(&mut self, _chip: usize, _resident: usize) {}

    /// Serialized cycles of the whole job on `chip`: prefill plus every
    /// decode step. This is what a run-to-completion scheduler charges, and
    /// what shortest-job-first sorts by.
    fn job_serial_on(&mut self, chip: usize, w: &Workload) -> u64 {
        let mut total = self.prefill_on(chip, w).serial_cycles;
        for step in 0..w.gen_steps {
            total += self.decode_on(chip, w, w.seq_len + step + 1).serial_cycles;
        }
        total
    }

    /// Cycles from job start until its first visible token on `chip`: the
    /// prefill pass, plus one decode step for generative jobs.
    fn first_token_on(&mut self, chip: usize, w: &Workload) -> u64 {
        let mut total = self.prefill_on(chip, w).serial_cycles;
        if w.gen_steps > 0 {
            total += self.decode_on(chip, w, w.seq_len + 1).serial_cycles;
        }
        total
    }

    /// Pre-prices the cost plane for `jobs` on `threads` worker threads
    /// before a simulation starts ([`SimMode::ParallelRounds`]). Memo
    /// entries are pure functions of `(chip config, class, length)`, so
    /// any schedule of workers produces the same oracle state — the
    /// simulation that follows is bit-for-bit identical to a cold
    /// serial run, just faster through its miss phase. The default is a
    /// no-op: oracles without a memo have nothing to warm.
    ///
    /// [`SimMode::ParallelRounds`]: crate::scheduler::SimMode
    fn prewarm(&mut self, jobs: &mut dyn Iterator<Item = &Workload>, threads: usize) {
        let _ = (jobs, threads);
    }
}

/// Weight-plane bytes of model `m` at `bits`-bit storage: the attention
/// projections (Q/K/V/O, `4·hidden²` per layer) plus the FFN up/down
/// pair at the canonical 4× expansion (`8·hidden²` per layer). This is
/// the byte count a cold chip must stream through HBM before it can
/// serve its first request — the price [`FleetCost::weight_load_cycles_on`]
/// charges a [`ChipJoin`](crate::elastic::ChipJoin) or a cross-model
/// placement.
pub fn model_weight_bytes(m: &ModelConfig, bits: u32) -> u64 {
    (m.layers as u64)
        .saturating_mul(12)
        .saturating_mul((m.hidden as u64).saturating_mul(m.hidden as u64))
        .saturating_mul(u64::from(bits))
        .div_ceil(8)
}

/// KV-cache bytes of a `tokens`-token context of `w` on `cfg`: the
/// deepest-layer survivor set, K and V planes at the workload's MSB
/// storage precision. The single working-set convention
/// [`FleetCost::footprint_on`] (clamped to the budget) and
/// [`FleetCost::swap_cycles_on`] (unclamped) share — change it here and
/// both stay consistent.
fn kv_working_set_bytes(cfg: &SpAttenConfig, w: &Workload, tokens: usize) -> u64 {
    let deepest = surviving_tokens(cfg, w, w.model.layers - 1, tokens.max(1));
    let bits = u64::from(w.quant.scheme.msb_bits());
    deepest as u64 * 2 * (w.model.hidden as u64 * bits).div_ceil(8)
}

/// One distinct chip configuration's memo tables, densely indexed by
/// (interned class id, length index). Lengths are bucketed by the caller
/// (decode/swap) or small enough to index directly (prefill by `seq_len`,
/// footprint by max context), so a hit is two bounds-checked loads — no
/// hashing, no key construction, no allocation.
#[derive(Debug, Default, Clone)]
struct MemoShard {
    prefill: Vec<Vec<Option<StepCost>>>,
    decode: Vec<Vec<Option<StepCost>>>,
    footprint: Vec<Vec<Option<u64>>>,
    swap: Vec<Vec<Option<u64>>>,
    raw: Vec<Vec<Option<u64>>>,
    weight_load: Vec<Vec<Option<u64>>>,
}

/// The dense-table hit path: `None` both when the class row or the length
/// slot has never been filled.
fn memo_get<T: Copy>(table: &[Vec<Option<T>>], class: usize, idx: usize) -> Option<T> {
    *table.get(class)?.get(idx)?
}

/// The miss path: grows the class row and length slot on demand.
fn memo_put<T: Copy>(table: &mut Vec<Vec<Option<T>>>, class: usize, idx: usize, value: T) {
    if table.len() <= class {
        table.resize_with(class + 1, Vec::new);
    }
    let row = &mut table[class];
    if row.len() <= idx {
        row.resize(idx + 1, None);
    }
    row[idx] = Some(value);
}

/// Memoized cost oracle for a fleet of (possibly heterogeneous) chips.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Per-chip configurations; a single entry prices every chip
    /// (homogeneous fleet).
    chip_cfgs: Vec<SpAttenConfig>,
    /// Configuration slot → memo shard: chips with identical
    /// configurations share one shard, so a heterogeneous constructor
    /// listing the same chip twice still computes each cost once.
    slot_shards: Vec<usize>,
    fc_weight_bits: Option<u32>,
    /// One lazily built e2e FC model per shard.
    e2e: Vec<Option<SpAttenE2e>>,
    classes: ClassIntern,
    shards: Vec<MemoShard>,
}

impl CostModel {
    fn build(chip_cfgs: Vec<SpAttenConfig>, fc_weight_bits: Option<u32>) -> Self {
        assert!(!chip_cfgs.is_empty(), "cost model needs at least one chip");
        let chip_keys: Vec<CfgKey> = chip_cfgs.iter().map(CfgKey::of).collect();
        let mut slot_shards = Vec::with_capacity(chip_keys.len());
        let mut shard_keys: Vec<CfgKey> = Vec::new();
        for key in &chip_keys {
            let shard = shard_keys.iter().position(|k| k == key).unwrap_or_else(|| {
                shard_keys.push(*key);
                shard_keys.len() - 1
            });
            slot_shards.push(shard);
        }
        Self {
            chip_cfgs,
            slot_shards,
            fc_weight_bits,
            e2e: vec![None; shard_keys.len()],
            classes: ClassIntern::default(),
            shards: vec![MemoShard::default(); shard_keys.len()],
        }
    }

    /// An attention-only oracle for a homogeneous fleet of `cfg` chips.
    pub fn attention_only(cfg: SpAttenConfig) -> Self {
        Self::build(vec![cfg], None)
    }

    /// An end-to-end oracle for a homogeneous fleet: attention from the
    /// cycle-level model plus FC weight streaming at `fc_weight_bits`
    /// (SpAtten-e2e, Table IV).
    pub fn end_to_end(cfg: SpAttenConfig, fc_weight_bits: u32) -> Self {
        Self::build(vec![cfg], Some(fc_weight_bits))
    }

    /// An oracle for a heterogeneous fleet: chip `i` is priced against
    /// `chip_cfgs[i]`, and memoized costs are shared only between chips
    /// with identical configurations.
    pub fn heterogeneous(chip_cfgs: Vec<SpAttenConfig>, fc_weight_bits: Option<u32>) -> Self {
        Self::build(chip_cfgs, fc_weight_bits)
    }

    /// The accelerator configuration chip 0 is priced against.
    pub fn config(&self) -> SpAttenConfig {
        self.chip_cfgs[0]
    }

    /// Maps a chip index onto its configuration slot: a single-config
    /// oracle prices every chip, so any index resolves to slot 0.
    fn slot(&self, chip: usize) -> usize {
        if self.chip_cfgs.len() == 1 {
            0
        } else {
            assert!(
                chip < self.chip_cfgs.len(),
                "chip {chip} out of {} configured",
                self.chip_cfgs.len()
            );
            chip
        }
    }

    fn e2e_for(&mut self, slot: usize) -> Option<&SpAttenE2e> {
        let bits = self.fc_weight_bits?;
        let shard = self.slot_shards[slot];
        let entry = &mut self.e2e[shard];
        if entry.is_none() {
            *entry = Some(SpAttenE2e::new(self.chip_cfgs[slot], bits));
        }
        entry.as_ref()
    }

    /// Cost of `w`'s summarization/prefill pass over `w.seq_len` tokens
    /// (chip 0's configuration).
    pub fn prefill(&mut self, w: &Workload) -> StepCost {
        self.prefill_on(0, w)
    }

    /// Cost of generating one token of `w` at a (pre-pruning) KV context of
    /// `context` tokens (chip 0's configuration).
    pub fn decode(&mut self, w: &Workload, context: usize) -> StepCost {
        self.decode_on(0, w, context)
    }

    /// Serialized cycles of the whole job on chip 0's configuration.
    pub fn job_serial_cycles(&mut self, w: &Workload) -> u64 {
        self.job_serial_on(0, w)
    }

    /// Cycles from job start until its first visible token (chip 0's
    /// configuration).
    pub fn first_token_cycles(&mut self, w: &Workload) -> u64 {
        self.first_token_on(0, w)
    }

    /// The KV-cache SRAM footprint the job pins while resident on a chip:
    /// the *deepest-layer* survivor set of its maximum context (cascade
    /// pruning's end state — the working set SpAtten keeps hot across
    /// generation steps), K and V planes at the workload's MSB storage
    /// precision (the plane SpAtten streams during generation; LSB refetch
    /// is rare enough — ≈ 5.9 % of queries — not to be provisioned for).
    ///
    /// Clamped to [`Self::kv_budget`]: an oversized job (one whose working
    /// set alone exceeds the SRAMs) is still servable — the perf model
    /// charges it SRAM-overflow re-streaming — but it can never share a
    /// chip, so its effective reservation is the whole budget.
    pub fn kv_footprint_bytes(&mut self, w: &Workload) -> u64 {
        self.footprint_on(0, w)
    }

    /// The packing budget continuous batching fills on chip 0: the K and
    /// the V SRAM (`SpAttenConfig::kv_sram_bytes` each).
    pub fn kv_budget(&self) -> u64 {
        self.budget_on(0)
    }
}

/// One pre-pricing work item: which cost to compute for which exemplar
/// on which chip slot.
#[derive(Clone, Copy)]
enum WarmKind {
    /// `prefill_on` at the exemplar's own `seq_len`.
    Prefill,
    /// `decode_on` at bucket index `idx` (context `idx * CTX_BUCKET`).
    Decode(usize),
}

/// Computes one warm item exactly the way the memoized miss path would:
/// same representative workload, same core-model call, same e2e FC
/// addition — so a pre-priced entry is indistinguishable from one the
/// simulation would have computed on demand.
fn warm_eval(
    cfg: &SpAttenConfig,
    e2e: Option<&SpAttenE2e>,
    w: &Workload,
    kind: WarmKind,
) -> StepCost {
    match kind {
        WarmKind::Prefill => {
            let rep = representative(w, w.seq_len);
            let mut cost = prefill_cost(cfg, &rep);
            if let Some(e) = e2e {
                cost.add(e.fc_prefill_cost(&rep));
            }
            cost
        }
        WarmKind::Decode(idx) => {
            let bucket = idx * CTX_BUCKET;
            let rep = representative(w, bucket);
            let mut cost = decode_step_cost(cfg, &rep, bucket);
            if let Some(e) = e2e {
                cost.add(e.fc_decode_cost(&rep));
            }
            cost
        }
    }
}

impl FleetCost for CostModel {
    fn prefill_on(&mut self, chip: usize, w: &Workload) -> StepCost {
        let slot = self.slot(chip);
        let shard = self.slot_shards[slot];
        let class = self.classes.id(w);
        if let Some(c) = memo_get(&self.shards[shard].prefill, class, w.seq_len) {
            return c;
        }
        let rep = representative(w, w.seq_len);
        let mut cost = prefill_cost(&self.chip_cfgs[slot], &rep);
        if let Some(e2e) = self.e2e_for(slot) {
            cost.add(e2e.fc_prefill_cost(&rep));
        }
        memo_put(&mut self.shards[shard].prefill, class, w.seq_len, cost);
        cost
    }

    fn decode_on(&mut self, chip: usize, w: &Workload, context: usize) -> StepCost {
        let slot = self.slot(chip);
        let shard = self.slot_shards[slot];
        let class = self.classes.id(w);
        let idx = context.max(1).div_ceil(CTX_BUCKET);
        if let Some(c) = memo_get(&self.shards[shard].decode, class, idx) {
            return c;
        }
        let bucket = idx * CTX_BUCKET;
        let rep = representative(w, bucket);
        let mut cost = decode_step_cost(&self.chip_cfgs[slot], &rep, bucket);
        if let Some(e2e) = self.e2e_for(slot) {
            cost.add(e2e.fc_decode_cost(&rep));
        }
        memo_put(&mut self.shards[shard].decode, class, idx, cost);
        cost
    }

    fn footprint_on(&mut self, chip: usize, w: &Workload) -> u64 {
        let slot = self.slot(chip);
        let shard = self.slot_shards[slot];
        let class = self.classes.id(w);
        let max_ctx = w.seq_len + w.gen_steps;
        if let Some(b) = memo_get(&self.shards[shard].footprint, class, max_ctx) {
            return b;
        }
        let cfg = &self.chip_cfgs[slot];
        let bytes = kv_working_set_bytes(cfg, w, max_ctx).min(self.budget_on(chip));
        memo_put(&mut self.shards[shard].footprint, class, max_ctx, bytes);
        bytes
    }

    fn budget_on(&self, chip: usize) -> u64 {
        2 * self.chip_cfgs[self.slot(chip)].kv_sram_bytes
    }

    fn swap_cycles_on(&mut self, chip: usize, w: &Workload, tokens: usize) -> u64 {
        if tokens == 0 {
            return 0;
        }
        let slot = self.slot(chip);
        let shard = self.slot_shards[slot];
        let class = self.classes.id(w);
        // Bucket like decode costs: swap prices move well under the
        // scheduling noise floor within a bucket, and preemption storms
        // would otherwise fill the memo with per-token entries.
        let idx = tokens.div_ceil(CTX_BUCKET);
        if let Some(c) = memo_get(&self.shards[shard].swap, class, idx) {
            return c;
        }
        let bucket = idx * CTX_BUCKET;
        let cfg = &self.chip_cfgs[slot];
        // Same working-set convention as `footprint_on`, at the *present*
        // context rather than the maximum one (a job evicted mid-run has
        // only built the KV it has seen), and unclamped: an oversized job
        // streams its whole working set through HBM even though it only
        // ever holds a budget's worth resident.
        let bytes = kv_working_set_bytes(cfg, w, bucket);
        // Aggregate HBM bandwidth in core cycles: `channels ×
        // bytes_per_cycle` per HBM cycle, rescaled across the clock
        // domains the way the fleet event queue ticks (core cycles).
        let per_hbm_cycle = (cfg.hbm.channels as u64 * cfg.hbm.bytes_per_cycle).max(1);
        let hbm_cycles = bytes.div_ceil(per_hbm_cycle);
        let cycles = (hbm_cycles as f64 * cfg.clock_ghz / cfg.hbm.clock_ghz).ceil() as u64;
        memo_put(&mut self.shards[shard].swap, class, idx, cycles);
        cycles
    }

    fn raw_kv_bytes_on(&mut self, chip: usize, w: &Workload, tokens: usize) -> u64 {
        if tokens == 0 {
            return 0;
        }
        // Planning peak of a `tokens`-token context: the largest survivor
        // set any *pruned* cascade stage holds. Entry layers that have
        // not pruned yet stream their full attention through scratch and
        // never land in the paged KV pool, so the pool's transient peak
        // is the cascade's entry stage — bigger than the deepest-layer
        // working set `footprint_on` prices, and retired down to it as
        // decode steps accumulate importance evidence. Falls back to the
        // full token count when no stage prunes (cascade off).
        let slot = self.slot(chip);
        let shard = self.slot_shards[slot];
        let class = self.classes.id(w);
        if let Some(b) = memo_get(&self.shards[shard].raw, class, tokens) {
            return b;
        }
        let cfg = &self.chip_cfgs[slot];
        let peak = (0..w.model.layers)
            .map(|l| surviving_tokens(cfg, w, l, tokens))
            .filter(|&s| s < tokens)
            .max()
            .unwrap_or(tokens);
        let bits = u64::from(w.quant.scheme.msb_bits());
        let bytes = peak as u64 * 2 * (w.model.hidden as u64 * bits).div_ceil(8);
        memo_put(&mut self.shards[shard].raw, class, tokens, bytes);
        bytes
    }

    fn swap_bytes_cycles_on(&mut self, chip: usize, _w: &Workload, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        // Same aggregate-HBM-bandwidth pricing as `swap_cycles_on`, for a
        // caller-supplied byte count (a victim's unique pages).
        let cfg = &self.chip_cfgs[self.slot(chip)];
        let per_hbm_cycle = (cfg.hbm.channels as u64 * cfg.hbm.bytes_per_cycle).max(1);
        let hbm_cycles = bytes.div_ceil(per_hbm_cycle);
        (hbm_cycles as f64 * cfg.clock_ghz / cfg.hbm.clock_ghz).ceil() as u64
    }

    fn weight_load_cycles_on(&mut self, chip: usize, w: &Workload) -> u64 {
        let slot = self.slot(chip);
        let shard = self.slot_shards[slot];
        let class = self.classes.id(w);
        if let Some(c) = memo_get(&self.shards[shard].weight_load, class, 0) {
            return c;
        }
        // Weights stream at the chip's quantized FC width when the oracle
        // is end-to-end (the same bits `SpAttenE2e` streams per decode
        // step), at 8-bit storage for attention-only oracles.
        let bits = self.fc_weight_bits.unwrap_or(8);
        let bytes = model_weight_bytes(&w.model, bits);
        let cycles = self.swap_bytes_cycles_on(chip, w, bytes);
        memo_put(&mut self.shards[shard].weight_load, class, 0, cycles);
        cycles
    }

    fn prewarm(&mut self, jobs: &mut dyn Iterator<Item = &Workload>, threads: usize) {
        use std::collections::HashSet;
        // Pass 1: collapse the (possibly million-entry) job stream to
        // its distinct (class, seq_len, gen_steps) exemplars with the
        // allocation-free intern matcher.
        let mut intern = ClassIntern::default();
        let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
        let mut exemplars: Vec<Workload> = Vec::new();
        let mut exemplar_class: Vec<usize> = Vec::new();
        for w in jobs {
            let class = intern.id(w);
            if seen.insert((class, w.seq_len, w.gen_steps)) {
                exemplars.push(w.clone());
                exemplar_class.push(class);
            }
        }
        // Pass 2: the work grid — for every distinct chip configuration,
        // every exemplar's prefill plus every decode bucket its
        // generation range can touch. Deduped the same way the memo
        // would collapse them (prefill by exact length, decode by
        // bucket), so no item is priced twice.
        let rep_slots: Vec<usize> = (0..self.shards.len())
            .map(|shard| {
                self.slot_shards
                    .iter()
                    .position(|&s| s == shard)
                    .expect("every shard has a slot")
            })
            .collect();
        let mut items: Vec<(usize, usize, WarmKind)> = Vec::new();
        let mut prefill_seen: HashSet<(usize, usize, usize)> = HashSet::new();
        let mut decode_seen: HashSet<(usize, usize, usize)> = HashSet::new();
        for (ex, w) in exemplars.iter().enumerate() {
            let class = exemplar_class[ex];
            for &slot in &rep_slots {
                if prefill_seen.insert((slot, class, w.seq_len)) {
                    items.push((slot, ex, WarmKind::Prefill));
                }
                for step in 0..=w.gen_steps {
                    let idx = (w.seq_len + step).max(1).div_ceil(CTX_BUCKET);
                    if decode_seen.insert((slot, class, idx)) {
                        items.push((slot, ex, WarmKind::Decode(idx)));
                    }
                }
            }
        }
        // Pass 3: price the grid. Workers take strided item slices; each
        // builds its own e2e FC model per shard on first use. Results
        // are keyed by item index, so the merge below is independent of
        // worker scheduling — and the values are pure functions of the
        // key, so even a different item partition yields the same memo.
        let threads = threads.max(1).min(items.len().max(1));
        let results: Vec<(usize, StepCost)> = if threads <= 1 {
            let mut e2e: Vec<Option<SpAttenE2e>> = (0..self.shards.len()).map(|_| None).collect();
            items
                .iter()
                .enumerate()
                .map(|(i, &(slot, ex, kind))| {
                    let shard = self.slot_shards[slot];
                    if let (Some(bits), None) = (self.fc_weight_bits, e2e[shard].as_ref()) {
                        e2e[shard] = Some(SpAttenE2e::new(self.chip_cfgs[slot], bits));
                    }
                    (
                        i,
                        warm_eval(
                            &self.chip_cfgs[slot],
                            e2e[shard].as_ref(),
                            &exemplars[ex],
                            kind,
                        ),
                    )
                })
                .collect()
        } else {
            let items = &items;
            let exemplars = &exemplars;
            let chip_cfgs = &self.chip_cfgs;
            let slot_shards = &self.slot_shards;
            let bits = self.fc_weight_bits;
            let shards = self.shards.len();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        scope.spawn(move || {
                            let mut e2e: Vec<Option<SpAttenE2e>> =
                                (0..shards).map(|_| None).collect();
                            let mut out = Vec::new();
                            for i in (t..items.len()).step_by(threads) {
                                let (slot, ex, kind) = items[i];
                                let shard = slot_shards[slot];
                                if let (Some(b), None) = (bits, e2e[shard].as_ref()) {
                                    e2e[shard] = Some(SpAttenE2e::new(chip_cfgs[slot], b));
                                }
                                out.push((
                                    i,
                                    warm_eval(
                                        &chip_cfgs[slot],
                                        e2e[shard].as_ref(),
                                        &exemplars[ex],
                                        kind,
                                    ),
                                ));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("prewarm worker panicked"))
                    .collect()
            })
        };
        // Deterministic merge: intern the exemplar classes in discovery
        // order (exactly what a serial run's first arrivals would do),
        // then land every priced entry in its memo slot.
        for (i, cost) in results {
            let (slot, ex, kind) = items[i];
            let shard = self.slot_shards[slot];
            let class = self.classes.id(&exemplars[ex]);
            match kind {
                WarmKind::Prefill => memo_put(
                    &mut self.shards[shard].prefill,
                    class,
                    exemplars[ex].seq_len,
                    cost,
                ),
                WarmKind::Decode(idx) => memo_put(&mut self.shards[shard].decode, class, idx, cost),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatten_workloads::Benchmark;

    fn model() -> CostModel {
        CostModel::end_to_end(SpAttenConfig::default(), 8)
    }

    #[test]
    fn decode_cost_grows_with_context() {
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let near = m.decode(&w, 64).serial_cycles;
        let far = m.decode(&w, 1024).serial_cycles;
        assert!(far > near, "decode at ctx 1024 ({far}) vs 64 ({near})");
    }

    #[test]
    fn prefill_cost_grows_with_length() {
        let mut m = model();
        let mut w = Benchmark::bert_base_sst2().workload();
        w.seq_len = 32;
        let short = m.prefill(&w).serial_cycles;
        w.seq_len = 256;
        let long = m.prefill(&w).serial_cycles;
        assert!(long > 4 * short, "prefill 256 ({long}) vs 32 ({short})");
    }

    #[test]
    fn memoization_is_stable() {
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let a = m.decode(&w, 100);
        let b = m.decode(&w, 100);
        assert_eq!(a, b);
        // Same bucket → same memo entry.
        let c = m.decode(&w, 97);
        assert_eq!(a, c);
    }

    #[test]
    fn heterogeneous_chips_do_not_share_cached_costs() {
        // A full Table-I chip and a 1/8-scale chip price the same decode
        // step differently; the memo must keep them apart.
        let mut m = CostModel::heterogeneous(
            vec![SpAttenConfig::default(), SpAttenConfig::eighth()],
            Some(8),
        );
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let full = m.decode_on(0, &w, 256);
        let eighth = m.decode_on(1, &w, 256);
        assert!(
            eighth.serial_cycles > full.serial_cycles,
            "eighth-scale chip must be slower: {} vs {}",
            eighth.serial_cycles,
            full.serial_cycles
        );
        // Re-querying returns the per-chip cached values unchanged.
        assert_eq!(m.decode_on(0, &w, 256), full);
        assert_eq!(m.decode_on(1, &w, 256), eighth);
    }

    #[test]
    fn identical_configs_share_one_memo_entry() {
        let mut m = CostModel::heterogeneous(
            vec![SpAttenConfig::default(), SpAttenConfig::default()],
            None,
        );
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let a = m.decode_on(0, &w, 128);
        let b = m.decode_on(1, &w, 128);
        assert_eq!(a, b);
        assert_eq!(m.shards.len(), 1, "same config must share one shard");
        let cached: usize = m.shards[0]
            .decode
            .iter()
            .map(|row| row.iter().filter(|c| c.is_some()).count())
            .sum();
        assert_eq!(cached, 1, "same config must share the cache entry");
    }

    #[test]
    fn distinct_configs_get_distinct_shards() {
        let m = CostModel::heterogeneous(
            vec![
                SpAttenConfig::default(),
                SpAttenConfig::eighth(),
                SpAttenConfig::default(),
            ],
            None,
        );
        assert_eq!(m.shards.len(), 2, "two distinct configs, two shards");
        assert_eq!(m.slot_shards, vec![0, 1, 0]);
    }

    #[test]
    fn class_intern_is_allocation_free_on_hits_and_distinguishes_twins() {
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let mut dense = w.clone();
        dense.pruning = spatten_workloads::spec::PruningSpec::dense();
        // Interleaved queries across a class and its unpruned twin must
        // resolve to distinct ids (distinct prices) without ever
        // colliding, regardless of last-hit state.
        let pruned_cost = m.decode_on(0, &w, 256);
        let dense_cost = m.decode_on(0, &dense, 256);
        assert_ne!(pruned_cost, dense_cost, "twins must not share a price");
        for _ in 0..4 {
            assert_eq!(m.decode_on(0, &w, 256), pruned_cost);
            assert_eq!(m.decode_on(0, &dense, 256), dense_cost);
        }
        assert_eq!(m.classes.keys.len(), 2, "exactly two interned classes");
    }

    #[test]
    fn job_serial_matches_piecewise_sum() {
        let mut m = model();
        let mut w = Benchmark::gpt2_small_wikitext2().workload();
        w.seq_len = 128;
        w.gen_steps = 4;
        let total = m.job_serial_cycles(&w);
        let mut expect = m.prefill(&w).serial_cycles;
        for s in 0..4 {
            expect += m.decode(&w, 128 + s + 1).serial_cycles;
        }
        assert_eq!(total, expect);
        assert!(m.first_token_cycles(&w) < total);
    }

    #[test]
    fn footprint_respects_budget_and_scales_with_context() {
        let mut m = model();
        let mut w = Benchmark::gpt2_small_wikitext2().workload();
        w.seq_len = 64;
        w.gen_steps = 8;
        let small = m.kv_footprint_bytes(&w);
        w.seq_len = 512;
        let big = m.kv_footprint_bytes(&w);
        assert!(small > 0);
        assert!(big > small);
        assert!(big <= m.kv_budget());
    }

    #[test]
    fn raw_bytes_dominate_the_pruned_working_set() {
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let max_ctx = w.seq_len + w.gen_steps;
        // The cascade's entry stage keeps strictly more tokens than the
        // deepest schedule, so the planning peak is never smaller than
        // the resident working set the footprint convention prices —
        // and never bigger than the fully unpruned context.
        let peak = m.raw_kv_bytes_on(0, &w, max_ctx);
        assert!(peak >= m.footprint_on(0, &w));
        let bits = u64::from(w.quant.scheme.msb_bits());
        let unpruned = max_ctx as u64 * 2 * (w.model.hidden as u64 * bits).div_ceil(8);
        assert!(peak <= unpruned, "{peak} vs unpruned {unpruned}");
        assert_eq!(m.raw_kv_bytes_on(0, &w, 0), 0);
        // Monotone in tokens: a longer context never plans fewer bytes.
        assert!(m.raw_kv_bytes_on(0, &w, 64) <= m.raw_kv_bytes_on(0, &w, 128));
    }

    #[test]
    fn swap_bytes_pricing_is_monotone_and_zero_at_zero() {
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        assert_eq!(m.swap_bytes_cycles_on(0, &w, 0), 0);
        let small = m.swap_bytes_cycles_on(0, &w, 4 << 10);
        let big = m.swap_bytes_cycles_on(0, &w, 4 << 20);
        assert!(small > 0, "nonzero bytes cost nonzero cycles");
        assert!(big > small, "{big} vs {small}");
    }

    #[test]
    fn handoff_is_bottlenecked_by_its_slowest_stage_plus_hop_latency() {
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let link = spatten_workloads::LinkSpec::default();
        let bytes = 4 << 20;
        let wire = bytes / link.bytes_per_cycle;
        let hbm = m.swap_bytes_cycles_on(0, &w, bytes);
        let c = m.handoff_cycles_on(0, 1, &w, bytes, 2, &link);
        assert_eq!(c, 2 * link.latency_cycles + wire.max(hbm));
        // The default board link is an order of magnitude below HBM, so
        // the wire stage dominates and pruning the payload pays off 1:1.
        assert!(wire > hbm, "wire {wire} vs hbm {hbm}");
        // Zero bytes still pay propagation latency; fewer hops cost less.
        assert_eq!(m.handoff_cycles_on(0, 1, &w, 0, 3, &link), 1500);
        assert!(
            m.handoff_cycles_on(0, 1, &w, bytes, 1, &link)
                < m.handoff_cycles_on(0, 1, &w, bytes, 4, &link)
        );
    }

    #[test]
    fn weight_load_scales_with_the_weight_plane_and_is_memoized() {
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let small = m.weight_load_cycles_on(0, &w);
        assert!(small > 0, "a cold chip pays for its weights");
        // Twice the layers is twice the bytes — and at least (HBM
        // pricing rounds) proportionally more cycles.
        let mut deep = w.clone();
        deep.model.layers *= 2;
        let big = m.weight_load_cycles_on(0, &deep);
        assert_eq!(
            model_weight_bytes(&deep.model, 8),
            2 * model_weight_bytes(&w.model, 8)
        );
        assert!(big > small, "{big} vs {small}");
        // The price is a pure function of (chip config, model): the memo
        // hit returns the identical value, and the table actually holds
        // it (no silent recompute).
        assert_eq!(m.weight_load_cycles_on(0, &w), small);
        assert!(
            m.shards[0].weight_load.iter().flatten().flatten().count() >= 2,
            "weight-load prices are memoized per class"
        );
        // Bit width scales bytes linearly.
        assert_eq!(
            model_weight_bytes(&w.model, 16),
            2 * model_weight_bytes(&w.model, 8)
        );
    }

    #[test]
    fn weight_load_is_cheaper_on_the_bigger_hbm_chip() {
        // A heterogeneous pair: the eighth-scale chip has an eighth the
        // HBM bandwidth, so streaming the same weight plane takes
        // longer there — the join delay the autoscaler pays depends on
        // which reserve chip it brings up.
        let mut m = CostModel::heterogeneous(
            vec![SpAttenConfig::default(), SpAttenConfig::eighth()],
            Some(8),
        );
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let full = m.weight_load_cycles_on(0, &w);
        let eighth = m.weight_load_cycles_on(1, &w);
        assert!(
            eighth > full,
            "eighth-scale chip must load slower: {eighth} vs {full}"
        );
    }

    #[test]
    fn decode_is_memory_bound_with_fc() {
        // Table IV regime: generation is dominated by weight/KV streaming.
        let mut m = model();
        let w = Benchmark::gpt2_small_wikitext2().workload();
        let c = m.decode(&w, 512);
        assert!(c.dram_cycles > c.compute_cycles, "{c:?}");
    }

    #[test]
    fn prefill_is_compute_bound() {
        let mut m = model();
        let mut w = Benchmark::bert_base_sst2().workload();
        w.seq_len = 128;
        let c = m.prefill(&w);
        assert!(c.compute_cycles > c.dram_cycles, "{c:?}");
    }
}
