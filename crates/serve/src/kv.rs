//! Paged KV allocation with copy-on-write prefix sharing and
//! pruning-aware page reclaim.
//!
//! The contiguous resource model every scheduler layer used until now —
//! one scalar footprint per job, charged against `2 × kv_sram_bytes` —
//! over-reserves twice. First, jobs of the same request class repeat the
//! same system-prompt prefix, and contiguous accounting charges that
//! prefix once *per job*. Second, cascade token pruning retires KV
//! entries as decode proceeds, but a contiguous reservation can never
//! shrink mid-stream. [`KvPager`] fixes both: each chip's KV SRAM budget
//! is carved into fixed-size blocks, each resident job holds a page
//! table, the per-class shared prefix is a single refcounted block run
//! mapped copy-on-write into every sharer's table, and pruning returns
//! whole blocks to the allocator while the job is still decoding.
//!
//! ## The per-job block curve
//!
//! Cascade pruning scores *all* prompt tokens before discarding any, so
//! prefill materializes the **raw** (unpruned) prompt KV; the per-layer
//! cascade then retires non-survivors progressively over early decode
//! steps. [`JobKvNeed::held_bytes`] models this as a curve that starts
//! at the raw prompt working set and ramps linearly down to the pruned
//! final working set (the same [`FleetCost::footprint_on`] value the
//! contiguous model charges) over `min(gen_steps, layers)` decode steps.
//! Admission charges the *peak* of the curve, so a resident job's page
//! count is monotonically non-increasing by construction — there is no
//! mid-stream growth path and therefore no mid-stream OOM path. The
//! capacity win comes from the two releases: shared prefix blocks are
//! charged once per class per chip, and retired blocks return to the
//! free pool while the job still runs.
//!
//! ## The prefix cache
//!
//! A prefix entry is keyed by `(class, shared_prefix_tokens)` and holds
//! the **raw** KV of the shared prompt head (the head is shared *before*
//! pruning individualizes the survivor set). While any sharer is
//! resident the entry is pinned by its refcount; when the last sharer
//! leaves, the entry *persists* as a scored cache line (hits ×
//! last-use), so a later arrival of the same class re-maps it for free.
//! Under memory pressure the allocator evicts cached entries
//! lowest-score-first at block granularity, trimming from the **tail**
//! — a prefix of a prefix is still a valid prefix, and a later hit
//! refills only the missing tail blocks.
//!
//! The five scheduling seams see the pager through two numbers: a job's
//! **admission charge** ([`KvPager::admission_bytes`] — the blocks that
//! would leave the available pool if the job mapped now) and its
//! **unique bytes** ([`KvPager::job_unique_bytes`] — what preemption
//! must actually swap, shared prefix blocks stay resident). Both are
//! exact block multiples, so admission against
//! [`KvPager::available_bytes`] can never over-commit.

use crate::cost::FleetCost;
use crate::request::Job;
use spatten_core::StepCost;
use spatten_workloads::Workload;
use std::collections::HashMap;

/// How a chip's KV SRAM budget is carved up — the `SchedKnobs` knob
/// selecting between the contiguous PR 3–5 resource model and the paged
/// allocator.
///
/// The default reproduces the contiguous model bit-for-bit: no pager is
/// instantiated and every footprint/fit/swap query takes the exact code
/// path it took before this module existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum KvSpec {
    /// One contiguous reservation per job (the historical model).
    #[default]
    Contiguous,
    /// Fixed-size paged allocation with prefix sharing and pruning-aware
    /// reclaim.
    Paged {
        /// Block size in KiB. Smaller blocks reclaim more of the pruning
        /// curve; larger blocks keep page tables short.
        block_kib: u32,
    },
}

impl KvSpec {
    /// The default paged configuration: 16 KiB blocks — fine enough that
    /// the pruning ramp frees blocks every few decode steps on the
    /// default GPT-2 class, coarse enough that a page table stays tens of
    /// entries long.
    pub fn paged() -> Self {
        KvSpec::Paged { block_kib: 16 }
    }

    /// Report label.
    pub fn name(&self) -> &'static str {
        match self {
            KvSpec::Contiguous => "contiguous",
            KvSpec::Paged { .. } => "paged",
        }
    }

    /// Block size in bytes, `None` for the contiguous model.
    pub fn block_bytes(&self) -> Option<u64> {
        match self {
            KvSpec::Contiguous => None,
            KvSpec::Paged { block_kib } => Some(u64::from(*block_kib).max(1) * 1024),
        }
    }
}

/// A prefix cache key: `(request class, effective shared-prefix tokens)`.
///
/// The effective length is `min(shared_prefix_tokens, seq_len)` — a
/// request shorter than its class prefix shares only what it has — so
/// equal keys always describe byte-identical prefixes.
pub type PrefixKey = (usize, usize);

/// The KV demand curve of one job, priced once at admission by the
/// [`FleetCost`] oracle and then evaluated purely per decode step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobKvNeed {
    /// Peak working set: the raw (unpruned) prompt KV, floored at
    /// `final_bytes` (a generation-heavy job's pruned survivor set can
    /// outgrow its raw prompt).
    pub raw_bytes: u64,
    /// Pruned working set at maximum context — the contiguous model's
    /// [`FleetCost::footprint_on`] charge, the curve's floor.
    pub final_bytes: u64,
    /// Raw KV bytes of the effective shared prefix (head of
    /// `raw_bytes`, shared before pruning individualizes survivors).
    pub shared_bytes: u64,
    /// Decode steps the job will run (0 = single-pass).
    pub gen_steps: u64,
    /// Decode steps over which the cascade retires the raw-to-final
    /// overhang: `min(gen_steps, layers)`, at least 1.
    pub horizon: u64,
    /// Prefix cache key, `None` when the job shares nothing.
    pub prefix: Option<PrefixKey>,
}

impl JobKvNeed {
    /// Prices `job`'s curve on `chip` through the cost oracle.
    pub fn of(cost: &mut dyn FleetCost, chip: usize, job: &Job) -> Self {
        let w = &job.workload;
        let final_bytes = cost.footprint_on(chip, w);
        let raw = cost.raw_kv_bytes_on(chip, w, w.seq_len);
        let eff = job.shared_prefix_tokens.min(w.seq_len);
        let shared_bytes = if eff == 0 {
            0
        } else {
            cost.raw_kv_bytes_on(chip, w, eff)
        };
        let prefix = (eff > 0).then_some((job.class, eff));
        if w.gen_steps == 0 {
            // Single-pass jobs stream the prompt once: no decode steps
            // means no retirement ramp, so the charge is flat at the
            // pruned working set (exactly the contiguous charge).
            return Self {
                raw_bytes: final_bytes,
                final_bytes,
                shared_bytes: shared_bytes.min(final_bytes),
                gen_steps: 0,
                horizon: 1,
                prefix,
            };
        }
        let raw_bytes = raw.max(final_bytes);
        Self {
            raw_bytes,
            final_bytes,
            shared_bytes: shared_bytes.min(raw_bytes),
            gen_steps: w.gen_steps as u64,
            horizon: (w.gen_steps.min(w.model.layers) as u64).max(1),
            prefix,
        }
    }

    /// Bytes held after `steps_done` decode steps: starts at
    /// `raw_bytes`, ramps linearly to `final_bytes` over `horizon`
    /// steps, then stays flat. Monotonically non-increasing in
    /// `steps_done` by construction.
    pub fn held_bytes(&self, steps_done: u64) -> u64 {
        let overhang = self.raw_bytes.saturating_sub(self.final_bytes);
        let t = steps_done.min(self.horizon);
        let retired = overhang.saturating_mul(t) / self.horizon;
        (self.raw_bytes - retired).max(self.final_bytes)
    }
}

/// One cached (or live) shared prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrefixEntry {
    /// Blocks currently resident (tail-trimming can shrink this below
    /// the full prefix; a later hit refills).
    blocks: u64,
    /// Resident sharers. 0 = cached, reclaimable.
    refcount: u64,
    /// Times a mapping job found this entry resident.
    hits: u64,
    /// Cycle timestamp of the last map/unmap touch (cache score
    /// tiebreak).
    last_use: u64,
}

/// One resident job's page table (unique blocks only; shared blocks
/// live in the [`PrefixEntry`]).
#[derive(Debug, Clone, Copy)]
struct JobPages {
    need: JobKvNeed,
    unique_blocks: u64,
}

/// Cumulative page-accounting counters, reported per chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct KvStats {
    /// Blocks handed out (job unique + prefix fills).
    pub blocks_allocated: u64,
    /// Blocks returned to the free pool (retire + evict + reclaim +
    /// cache eviction + drain flush).
    pub blocks_freed: u64,
    /// Blocks returned *mid-stream* by the pruning ramp — the subset of
    /// `blocks_freed` no contiguous model could ever release.
    pub blocks_reclaimed: u64,
    /// Prefix map requests served by a resident entry (live or cached).
    pub shared_hits: u64,
    /// Blocks trimmed off cached prefixes under memory pressure.
    pub cache_evicted_blocks: u64,
}

/// Fixed-block KV allocator for one chip: per-job page tables,
/// refcounted copy-on-write prefix sharing, a scored persistent prefix
/// cache, and pruning-curve reclaim. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct KvPager {
    block_bytes: u64,
    total_blocks: u64,
    free_blocks: u64,
    jobs: HashMap<u64, JobPages>,
    prefixes: HashMap<PrefixKey, PrefixEntry>,
    /// Cumulative counters.
    pub stats: KvStats,
}

impl KvPager {
    /// A pager over `capacity_bytes` of KV SRAM carved into
    /// `block_bytes` blocks (at least one block).
    pub fn new(block_bytes: u64, capacity_bytes: u64) -> Self {
        let block_bytes = block_bytes.max(1);
        let total_blocks = (capacity_bytes / block_bytes).max(1);
        Self {
            block_bytes,
            total_blocks,
            free_blocks: total_blocks,
            jobs: HashMap::new(),
            prefixes: HashMap::new(),
            stats: KvStats::default(),
        }
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Blocks neither mapped by a job nor held by a prefix.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Blocks held by refcount-0 (cached) prefixes — resident but
    /// reclaimable under pressure.
    pub fn cached_blocks(&self) -> u64 {
        self.prefixes
            .values()
            .filter(|e| e.refcount == 0)
            .map(|e| e.blocks)
            .sum()
    }

    /// Bytes an admission fit-check may assume: the free pool plus
    /// everything the cache would surrender under pressure.
    pub fn available_bytes(&self) -> u64 {
        (self.free_blocks + self.cached_blocks()) * self.block_bytes
    }

    /// Bytes resident (job pages + live and cached prefixes).
    pub fn used_bytes(&self) -> u64 {
        (self.total_blocks - self.free_blocks) * self.block_bytes
    }

    /// Bytes pinned by resident jobs and live prefixes — `used_bytes`
    /// minus the reclaimable refcount-0 cache. This is the chip's
    /// `kv_in_use` under paging: cached prefixes are *not* in use, they
    /// are opportunistically resident.
    pub fn pinned_bytes(&self) -> u64 {
        self.used_bytes() - self.cached_blocks() * self.block_bytes
    }

    /// Resident job count (page tables held).
    pub fn mapped_jobs(&self) -> usize {
        self.jobs.len()
    }

    fn blocks_of(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_bytes)
    }

    /// Full-size block count of `need`'s prefix, clamped to capacity.
    fn prefix_blocks(&self, need: &JobKvNeed) -> u64 {
        if need.prefix.is_none() {
            return 0;
        }
        self.blocks_of(need.shared_bytes).min(self.total_blocks)
    }

    /// How much of `need`'s class prefix is already materialized on this
    /// chip, as `(warm_blocks, total_prefix_blocks)`. Warm blocks hold
    /// KV an earlier sharer (or a persisted cache entry) computed — a
    /// job mapping onto them skips that slice of its prefill pass.
    /// Cache eviction trims entries from the tail, so a partially-warm
    /// prefix covers its *head*: exactly the tokens prefill would
    /// otherwise recompute first.
    pub fn warm_prefix_blocks(&self, need: &JobKvNeed) -> (u64, u64) {
        let total = self.prefix_blocks(need);
        let warm = need
            .prefix
            .and_then(|key| self.prefixes.get(&key))
            .map_or(0, |e| e.blocks.min(total));
        (warm, total)
    }

    /// Unique blocks `need` holds after `steps_done`, clamped so that
    /// prefix plus unique always fits an empty pager (the contiguous model
    /// clamps footprints to the budget for the same admittability
    /// guarantee).
    fn unique_blocks_at(&self, need: &JobKvNeed, steps_done: u64) -> u64 {
        let prefix = self.prefix_blocks(need);
        self.blocks_of(need.held_bytes(steps_done))
            .saturating_sub(prefix)
            .min(self.total_blocks - prefix)
    }

    /// The admission charge: blocks that would leave the available pool
    /// if this job mapped now, in bytes. Counts the full prefix when the
    /// entry is absent, only the trimmed tail when it is resident but
    /// shrunk, and nothing when it is resident in full; a cached
    /// (refcount-0) entry's resident blocks are charged too — mapping
    /// pins them, removing them from [`Self::available_bytes`].
    ///
    /// `steps_done` positions a resumed victim on its retirement curve
    /// so re-admission charges what eviction swapped out, not the peak.
    pub fn admission_bytes(&self, need: &JobKvNeed, steps_done: u64) -> u64 {
        let unique = self.unique_blocks_at(need, steps_done);
        let prefix = self.prefix_blocks(need);
        let new_prefix = match need.prefix.and_then(|k| self.prefixes.get(&k)) {
            // Live entry: sharers pin it already, pay only a missing tail.
            Some(e) if e.refcount > 0 => prefix.saturating_sub(e.blocks),
            // Cached entry: its resident blocks leave the reclaimable
            // pool on map, so the charge against `available_bytes` is
            // the full prefix (resident part re-pinned + tail refilled).
            Some(_) => prefix,
            None => prefix,
        };
        (unique + new_prefix) * self.block_bytes
    }

    /// Frees `n` blocks for allocation, evicting cached prefixes
    /// lowest-score-first (fewest hits, then oldest touch), trimming
    /// from each victim's tail at block granularity. `protect` is never
    /// evicted — a job must not reclaim its own prefix to admit itself.
    ///
    /// # Panics
    ///
    /// Panics if the pager cannot supply `n` blocks — the admission
    /// charge is exact, so this is an accounting bug, not load.
    fn alloc(&mut self, n: u64, protect: Option<PrefixKey>) {
        while self.free_blocks < n {
            let victim = self
                .prefixes
                .iter()
                .filter(|(k, e)| e.refcount == 0 && e.blocks > 0 && Some(**k) != protect)
                .min_by_key(|(k, e)| (e.hits, e.last_use, **k))
                .map(|(k, _)| *k);
            let Some(key) = victim else {
                panic!(
                    "KvPager over-committed: need {n} blocks, {} free, nothing cached",
                    self.free_blocks
                );
            };
            let entry = self.prefixes.get_mut(&key).expect("victim resident");
            let trim = entry.blocks.min(n - self.free_blocks);
            entry.blocks -= trim;
            if entry.blocks == 0 {
                self.prefixes.remove(&key);
            }
            self.free_blocks += trim;
            self.stats.blocks_freed += trim;
            self.stats.cache_evicted_blocks += trim;
        }
        self.free_blocks -= n;
        self.stats.blocks_allocated += n;
    }

    /// Maps `job`'s pages: pins (and tail-refills) or creates the shared
    /// prefix entry, allocates the unique blocks at curve position
    /// `steps_done`, and returns the job's unique bytes — the number the
    /// chip records as the resident footprint and the number preemption
    /// would swap.
    ///
    /// # Panics
    ///
    /// Panics if the job is already mapped or the charge was never
    /// fit-checked (see `Self::alloc`).
    pub fn map_job(&mut self, id: u64, need: JobKvNeed, steps_done: u64, now: u64) -> u64 {
        assert!(
            !self.jobs.contains_key(&id),
            "job {id} already holds a page table"
        );
        let prefix = self.prefix_blocks(&need);
        let unique = self.unique_blocks_at(&need, steps_done);
        if let Some(key) = need.prefix {
            let missing = match self.prefixes.get(&key) {
                Some(e) => prefix.saturating_sub(e.blocks),
                None => prefix,
            };
            if missing > 0 {
                self.alloc(missing, Some(key));
            }
            let entry = self.prefixes.entry(key).or_insert(PrefixEntry {
                blocks: 0,
                refcount: 0,
                hits: 0,
                // One extra hit below would miscount creation as a hit.
                last_use: now,
            });
            if entry.refcount > 0 || entry.blocks > 0 {
                entry.hits += 1;
                self.stats.shared_hits += 1;
            }
            entry.blocks += missing;
            entry.refcount += 1;
            entry.last_use = now;
        }
        self.alloc(unique, need.prefix);
        self.jobs.insert(
            id,
            JobPages {
                need,
                unique_blocks: unique,
            },
        );
        unique * self.block_bytes
    }

    /// Advances `job` to curve position `steps_done`, returning freed
    /// blocks to the pool (pruning-aware reclaim). Returns the job's
    /// unique bytes after reclaim. Page count is monotonically
    /// non-increasing: the curve never rises and growth is never
    /// allocated here.
    pub fn reclaim(&mut self, id: u64, steps_done: u64) -> u64 {
        let pages = *self.jobs.get(&id).expect("reclaim of unmapped job");
        let target = self.unique_blocks_at(&pages.need, steps_done);
        let pages = self.jobs.get_mut(&id).expect("reclaim of unmapped job");
        if target < pages.unique_blocks {
            let freed = pages.unique_blocks - target;
            pages.unique_blocks = target;
            self.free_blocks += freed;
            self.stats.blocks_freed += freed;
            self.stats.blocks_reclaimed += freed;
        }
        pages.unique_blocks * self.block_bytes
    }

    /// Releases `job`'s page table: unique blocks return to the pool,
    /// the prefix refcount drops — at zero the entry *stays resident* as
    /// a scored cache line for the next sharer.
    pub fn unmap_job(&mut self, id: u64, now: u64) {
        let pages = self.jobs.remove(&id).expect("unmap of unmapped job");
        self.free_blocks += pages.unique_blocks;
        self.stats.blocks_freed += pages.unique_blocks;
        if let Some(key) = pages.need.prefix {
            let entry = self.prefixes.get_mut(&key).expect("prefix entry resident");
            assert!(entry.refcount > 0, "prefix refcount underflow");
            entry.refcount -= 1;
            entry.last_use = now;
        }
    }

    /// Unique (non-shared) bytes `job` holds right now — what a swap
    /// must move.
    pub fn job_unique_bytes(&self, id: u64) -> u64 {
        self.jobs
            .get(&id)
            .map_or(0, |p| p.unique_blocks * self.block_bytes)
    }

    /// End-of-run accounting check: no job holds pages, every shared
    /// prefix's refcount reached zero, and after flushing the cache the
    /// block ledger closes exactly (`allocated == freed`, all blocks
    /// free).
    ///
    /// # Panics
    ///
    /// Panics on any leak.
    pub fn assert_drained(&mut self) {
        assert!(
            self.jobs.is_empty(),
            "pager drained with {} job page tables resident",
            self.jobs.len()
        );
        for (key, e) in &self.prefixes {
            assert_eq!(
                e.refcount, 0,
                "prefix {key:?} drained with refcount {}",
                e.refcount
            );
        }
        let cached: u64 = self.prefixes.values().map(|e| e.blocks).sum();
        self.stats.blocks_freed += cached;
        self.free_blocks += cached;
        self.prefixes.clear();
        assert_eq!(
            self.free_blocks, self.total_blocks,
            "pager drained with blocks still held"
        );
        assert_eq!(
            self.stats.blocks_allocated, self.stats.blocks_freed,
            "block ledger leak: {} allocated vs {} freed",
            self.stats.blocks_allocated, self.stats.blocks_freed
        );
    }
}

/// A [`FleetCost`] view in which job fit-checks are page-table-backed.
///
/// Every method delegates to `base` (preserving its memoization and
/// ledger semantics) except [`FleetCost::job_footprint_on`], which
/// prices a job at the pager's [`KvPager::admission_bytes`]: shared
/// prefix pages charged once per chip, resumed victims positioned on
/// their retirement curve. The fleet event loop hands this view to
/// admission, stealing and preemption policies while a paged run is
/// active; the scheduler's pending-work ledgers keep calling
/// `footprint_on` through it unchanged, so charge/discharge stay
/// symmetric.
pub struct PagedCost<'a, C: FleetCost> {
    base: &'a mut C,
    pagers: &'a [KvPager],
}

impl<'a, C: FleetCost> PagedCost<'a, C> {
    /// Wraps `base` so fit-checks on chip `i` consult `pagers[i]`.
    pub fn new(base: &'a mut C, pagers: &'a [KvPager]) -> Self {
        Self { base, pagers }
    }
}

impl<C: FleetCost> FleetCost for PagedCost<'_, C> {
    fn prefill_on(&mut self, chip: usize, w: &Workload) -> StepCost {
        self.base.prefill_on(chip, w)
    }

    fn decode_on(&mut self, chip: usize, w: &Workload, context: usize) -> StepCost {
        self.base.decode_on(chip, w, context)
    }

    fn footprint_on(&mut self, chip: usize, w: &Workload) -> u64 {
        self.base.footprint_on(chip, w)
    }

    fn budget_on(&self, chip: usize) -> u64 {
        self.base.budget_on(chip)
    }

    fn swap_cycles_on(&mut self, chip: usize, w: &Workload, tokens: usize) -> u64 {
        self.base.swap_cycles_on(chip, w, tokens)
    }

    fn raw_kv_bytes_on(&mut self, chip: usize, w: &Workload, tokens: usize) -> u64 {
        self.base.raw_kv_bytes_on(chip, w, tokens)
    }

    fn swap_bytes_cycles_on(&mut self, chip: usize, w: &Workload, bytes: u64) -> u64 {
        self.base.swap_bytes_cycles_on(chip, w, bytes)
    }

    fn handoff_cycles_on(
        &mut self,
        src: usize,
        dst: usize,
        w: &Workload,
        bytes: u64,
        hops: u64,
        link: &spatten_workloads::fleet::LinkSpec,
    ) -> u64 {
        self.base.handoff_cycles_on(src, dst, w, bytes, hops, link)
    }

    fn note_batch(&mut self, chip: usize, resident: usize) {
        self.base.note_batch(chip, resident);
    }

    fn job_serial_on(&mut self, chip: usize, w: &Workload) -> u64 {
        self.base.job_serial_on(chip, w)
    }

    fn first_token_on(&mut self, chip: usize, w: &Workload) -> u64 {
        self.base.first_token_on(chip, w)
    }

    fn job_footprint_on(&mut self, chip: usize, job: &Job) -> u64 {
        let need = JobKvNeed::of(self.base, chip, job);
        let steps = job.resume.map_or(0, |r| r.steps_done as u64);
        self.pagers[chip].admission_bytes(&need, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLOCK: u64 = 1024;

    fn need(raw: u64, fin: u64, shared: u64, gen: u64) -> JobKvNeed {
        JobKvNeed {
            raw_bytes: raw.max(fin),
            final_bytes: fin,
            shared_bytes: shared,
            gen_steps: gen,
            horizon: gen.clamp(1, 12),
            prefix: (shared > 0).then_some((0, shared as usize)),
        }
    }

    #[test]
    fn held_bytes_is_monotone_non_increasing_and_hits_the_floor() {
        let n = need(100 * BLOCK, 40 * BLOCK, 0, 64);
        let mut prev = u64::MAX;
        for t in 0..=80 {
            let h = n.held_bytes(t);
            assert!(h <= prev, "held grew at step {t}: {h} > {prev}");
            assert!(h >= n.final_bytes);
            prev = h;
        }
        assert_eq!(n.held_bytes(0), n.raw_bytes);
        assert_eq!(n.held_bytes(n.horizon), n.final_bytes);
        // Single-pass jobs are flat at the contiguous charge.
        let flat = need(0, 7 * BLOCK, 0, 0);
        assert_eq!(flat.held_bytes(0), flat.held_bytes(100));
    }

    #[test]
    fn prefix_is_charged_once_and_cached_after_the_last_sharer_leaves() {
        let mut p = KvPager::new(BLOCK, 64 * BLOCK);
        let n = need(20 * BLOCK, 20 * BLOCK, 8 * BLOCK, 4);
        // First sharer pays prefix + unique; the second pays unique only.
        assert_eq!(p.admission_bytes(&n, 0), 20 * BLOCK);
        p.map_job(1, n, 0, 10);
        assert_eq!(p.admission_bytes(&n, 0), 12 * BLOCK);
        let unique = p.map_job(2, n, 0, 11);
        assert_eq!(unique, 12 * BLOCK);
        assert_eq!(p.stats.shared_hits, 1);
        assert_eq!(p.used_bytes(), (8 + 12 + 12) * BLOCK);
        // Both leave: the prefix persists as cache, still charged when a
        // newcomer would pin it, still counted available for eviction.
        p.unmap_job(1, 20);
        p.unmap_job(2, 21);
        assert_eq!(p.cached_blocks(), 8);
        assert_eq!(p.mapped_jobs(), 0);
        assert_eq!(p.available_bytes(), 64 * BLOCK);
        assert_eq!(p.admission_bytes(&n, 0), 20 * BLOCK);
        // A third sharer hits the cache without allocating prefix blocks.
        let before = p.stats.blocks_allocated;
        p.map_job(3, n, 0, 30);
        assert_eq!(p.stats.blocks_allocated - before, 12);
        assert_eq!(p.stats.shared_hits, 2);
        p.unmap_job(3, 31);
    }

    #[test]
    fn pruning_reclaim_returns_blocks_mid_stream_monotonically() {
        let mut p = KvPager::new(BLOCK, 256 * BLOCK);
        let n = need(60 * BLOCK, 24 * BLOCK, 10 * BLOCK, 32);
        let mut unique = p.map_job(7, n, 0, 0);
        assert_eq!(unique, 50 * BLOCK);
        let mut reclaimed_total = 0;
        for t in 1..=40 {
            let next = p.reclaim(7, t);
            assert!(next <= unique, "page count grew at step {t}");
            reclaimed_total += (unique - next) / BLOCK;
            unique = next;
        }
        assert_eq!(unique, 14 * BLOCK);
        assert_eq!(p.stats.blocks_reclaimed, reclaimed_total);
        assert_eq!(p.stats.blocks_reclaimed, 36);
        p.unmap_job(7, 50);
    }

    #[test]
    fn cache_eviction_trims_lowest_scored_tails_and_refills_on_hit() {
        let mut p = KvPager::new(BLOCK, 32 * BLOCK);
        let cold = JobKvNeed {
            prefix: Some((0, 100)),
            ..need(10 * BLOCK, 10 * BLOCK, 6 * BLOCK, 2)
        };
        let hot = JobKvNeed {
            prefix: Some((1, 100)),
            ..need(10 * BLOCK, 10 * BLOCK, 6 * BLOCK, 2)
        };
        p.map_job(1, cold, 0, 0);
        p.unmap_job(1, 1);
        p.map_job(2, hot, 0, 2);
        p.map_job(3, hot, 0, 3); // hot entry scores a hit
        p.unmap_job(2, 4);
        p.unmap_job(3, 5);
        // 12 cached + 20 free. A 24-block demand must trim 4 cached
        // blocks — from the cold (0-hit) entry's tail, not the hot one.
        let big = need(24 * BLOCK, 24 * BLOCK, 0, 2);
        assert_eq!(p.admission_bytes(&big, 0), 24 * BLOCK);
        p.map_job(4, big, 0, 10);
        assert_eq!(p.stats.cache_evicted_blocks, 4);
        assert_eq!(p.cached_blocks(), 8); // cold trimmed 6 -> 2, hot intact
        p.unmap_job(4, 11);
        // A returning cold-class sharer pays only the trimmed tail.
        assert_eq!(p.admission_bytes(&cold, 0), (4 + 4 + 2) * BLOCK);
        p.map_job(5, cold, 0, 20);
        assert_eq!(p.job_unique_bytes(5), 4 * BLOCK);
        p.unmap_job(5, 21);
    }

    #[test]
    fn drain_closes_the_block_ledger() {
        let mut p = KvPager::new(BLOCK, 128 * BLOCK);
        let a = need(30 * BLOCK, 12 * BLOCK, 8 * BLOCK, 16);
        let b = need(20 * BLOCK, 20 * BLOCK, 8 * BLOCK, 0);
        p.map_job(1, a, 0, 0);
        p.map_job(2, b, 0, 1);
        p.reclaim(1, 9);
        p.unmap_job(1, 5);
        p.unmap_job(2, 6);
        p.assert_drained();
        assert_eq!(p.stats.blocks_allocated, p.stats.blocks_freed);
        assert_eq!(p.free_blocks(), 128);
    }

    #[test]
    fn paged_cost_adapter_prices_fit_checks_through_the_pager() {
        use crate::cost::CostModel;
        use spatten_core::SpAttenConfig;
        use spatten_workloads::Benchmark;

        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let budget = cost.budget_on(0);
        let mut pagers = vec![KvPager::new(16 * 1024, budget)];
        let mut w = Benchmark::gpt2_small_wikitext2().workload();
        w.seq_len = 256;
        w.gen_steps = 32;
        let job = |id: u64, shared: usize| Job {
            id,
            class: 0,
            priority: 0,
            client: None,
            arrival_cycles: 0,
            deadline_cycles: None,
            preemptions: 0,
            resume: None,
            shared_prefix_tokens: shared,
            revoked: false,
            workload: w.clone(),
        };
        // The default trait method is the contiguous charge.
        let contiguous = cost.job_footprint_on(0, &job(1, 0));
        assert_eq!(contiguous, cost.footprint_on(0, &w));
        // First sharer pays prefix + unique through the adapter...
        let first = {
            let mut pc = PagedCost::new(&mut cost, &pagers);
            pc.job_footprint_on(0, &job(1, 128))
        };
        let need = JobKvNeed::of(&mut cost, 0, &job(1, 128));
        pagers[0].map_job(1, need, 0, 0);
        // ...and once it is resident, the second sharer pays unique only.
        let second = {
            let mut pc = PagedCost::new(&mut cost, &pagers);
            pc.job_footprint_on(0, &job(2, 128))
        };
        assert!(
            second < first,
            "shared prefix not discounted: {second} vs {first}"
        );
        pagers[0].unmap_job(1, 1);
    }

    #[test]
    #[should_panic(expected = "over-committed")]
    fn over_commit_panics_rather_than_corrupting_the_ledger() {
        let mut p = KvPager::new(BLOCK, 8 * BLOCK);
        p.map_job(1, need(16 * BLOCK, 16 * BLOCK, 0, 2), 0, 0);
        // The clamp caps a single job at capacity; a second job of any
        // size must trip the allocator's over-commit assert.
        p.map_job(2, need(BLOCK, BLOCK, 0, 2), 0, 1);
    }
}
