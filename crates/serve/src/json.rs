//! A minimal hand-rolled JSON writer.
//!
//! The workspace's `serde` is an offline stub (no data-format machinery),
//! so the serving report serializes itself through this small builder. It
//! supports exactly what `FleetReport` needs: objects, arrays, strings with
//! escaping, integers, and finite floats.

use std::fmt::Write;

/// Builds one JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// An empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write!(self.buf, "{}:", quote(name)).expect("string write");
    }

    /// Adds a string field.
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push_str(&quote(value));
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, name: &str, value: u64) -> Self {
        self.key(name);
        write!(self.buf, "{value}").expect("string write");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, name: &str, value: bool) -> Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a float field (non-finite values serialize as `null`).
    pub fn f64(mut self, name: &str, value: f64) -> Self {
        self.key(name);
        if value.is_finite() {
            write!(self.buf, "{value}").expect("string write");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a pre-serialized JSON value (object, array, ...).
    pub fn raw(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push_str(value);
        self
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Serializes a sequence of pre-serialized values as a JSON array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// JSON string quoting with the mandatory escapes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_objects() {
        let inner = JsonObject::new().u64("a", 1).f64("b", 0.5).build();
        let outer = JsonObject::new()
            .str("name", "x\"y")
            .raw("inner", &inner)
            .raw("list", &array(["1".into(), "2".into()]))
            .build();
        assert_eq!(
            outer,
            r#"{"name":"x\"y","inner":{"a":1,"b":0.5},"list":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let o = JsonObject::new().f64("x", f64::NAN).build();
        assert_eq!(o, r#"{"x":null}"#);
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(quote("a\u{1}b"), "\"a\\u0001b\"");
    }
}
