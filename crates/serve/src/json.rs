//! A minimal hand-rolled JSON writer and parser.
//!
//! The workspace's `serde` is an offline stub (no data-format machinery),
//! so the serving report serializes itself through this small builder. It
//! supports exactly what `FleetReport` needs: objects, arrays, strings with
//! escaping, integers, and finite floats. The matching [`parse`] half
//! exists for the live front-end (`spatten-frontd`), whose request bodies
//! arrive as small JSON objects; it accepts the full JSON grammar minus
//! `\u` surrogate pairs, which nothing in the serving path emits.

use std::fmt::Write;

/// Builds one JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// An empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write!(self.buf, "{}:", quote(name)).expect("string write");
    }

    /// Adds a string field.
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push_str(&quote(value));
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, name: &str, value: u64) -> Self {
        self.key(name);
        write!(self.buf, "{value}").expect("string write");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, name: &str, value: bool) -> Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a float field (non-finite values serialize as `null`).
    pub fn f64(mut self, name: &str, value: f64) -> Self {
        self.key(name);
        if value.is_finite() {
            write!(self.buf, "{value}").expect("string write");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a pre-serialized JSON value (object, array, ...).
    pub fn raw(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push_str(value);
        self
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Serializes a sequence of pre-serialized values as a JSON array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// JSON string quoting with the mandatory escapes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as a double, like JavaScript).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (duplicate keys keep the last).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` on a non-object or a missing
    /// key. Duplicate keys resolve to the last occurrence, matching
    /// every mainstream parser.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number that fits (the writer only emits integers in this range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
/// Errors are position-stamped human-readable strings — the front-end
/// echoes them verbatim into 400 responses.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    JsonValue::Str(k) => k,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("surrogate \\u escape at byte {pos}"))?,
                        );
                    }
                    c => return Err(format!("bad escape '\\{}'", c as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&b[*pos..]).expect("input was a str");
                let c = rest.chars().next().expect("non-empty by match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii");
    match text.parse::<f64>() {
        Ok(x) if x.is_finite() => Ok(JsonValue::Num(x)),
        _ => Err(format!("bad number '{text}' at byte {start}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_objects() {
        let inner = JsonObject::new().u64("a", 1).f64("b", 0.5).build();
        let outer = JsonObject::new()
            .str("name", "x\"y")
            .raw("inner", &inner)
            .raw("list", &array(["1".into(), "2".into()]))
            .build();
        assert_eq!(
            outer,
            r#"{"name":"x\"y","inner":{"a":1,"b":0.5},"list":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let o = JsonObject::new().f64("x", f64::NAN).build();
        assert_eq!(o, r#"{"x":null}"#);
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(quote("a\u{1}b"), "\"a\\u0001b\"");
    }

    #[test]
    fn parses_what_the_writer_emits() {
        let doc = JsonObject::new()
            .str("name", "x\"y\n")
            .u64("count", 42)
            .bool("ok", true)
            .f64("ratio", 0.25)
            .raw("nan", &JsonObject::new().f64("x", f64::NAN).build())
            .raw("list", &array(["1".into(), "\"two\"".into()]))
            .build();
        let v = parse(&doc).expect("roundtrip");
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("x\"y\n"));
        assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("ratio").and_then(JsonValue::as_f64), Some(0.25));
        assert_eq!(
            v.get("nan").and_then(|o| o.get("x")),
            Some(&JsonValue::Null)
        );
        assert_eq!(
            v.get("list"),
            Some(&JsonValue::Array(vec![
                JsonValue::Num(1.0),
                JsonValue::Str("two".into())
            ]))
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{\"a\":1}x",
            "\"unterminated",
            "{1: 2}",
            "nul",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parser_handles_whitespace_escapes_and_unicode() {
        let v = parse(" { \"k\" : [ null , true , \"\\u0041\\t\u{e9}\" ] } ").unwrap();
        assert_eq!(
            v.get("k"),
            Some(&JsonValue::Array(vec![
                JsonValue::Null,
                JsonValue::Bool(true),
                JsonValue::Str("A\t\u{e9}".into())
            ]))
        );
        // Duplicate keys: last one wins.
        assert_eq!(
            parse("{\"a\":1,\"a\":2}").unwrap().get("a"),
            Some(&JsonValue::Num(2.0))
        );
        // Negative and exponent numbers parse as doubles.
        assert_eq!(parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
