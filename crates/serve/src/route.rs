//! Pluggable routing policies: which chip a job is assigned to at
//! *arrival* time.
//!
//! The default serving front-end is one shared queue: every chip pulls
//! from it at its round boundaries, so jobs land wherever a chip happens
//! to free up. That is work-conserving but **chip-agnostic** — on a
//! heterogeneous fleet an eighth-scale chip will happily grab a job the
//! full-size chip next to it would have finished 8× sooner, and the tail
//! pays for it. A [`RoutingPolicy`] runs *ahead of admission*: the moment
//! a job arrives it is assigned to one chip's private queue (or left in
//! the shared queue), using the cost oracle and a live load snapshot of
//! every chip. Admission then drains a chip's private queue first, the
//! shared queue second, under the same [`AdmissionPolicy`] either way.
//!
//! Bundled policies:
//!
//! * [`SharedQueueRouting`] — no routing; every job stays in the shared
//!   queue (the PR 1–3 behavior, and the right choice for homogeneous
//!   fleets where work conservation beats placement).
//! * [`FastestChipRouting`] — probes the cost model: the job goes to the
//!   chip minimizing `queued backlog + in-service backlog + this job's
//!   serial cycles on that chip`. On a mixed full/eighth fleet this sends
//!   work to full-size chips until their backlog exceeds the speed
//!   differential — exactly the placement-aware balance a blind shared
//!   queue cannot express. Counting **in-service** work (the remaining
//!   cycles of resident jobs, [`ChipLoad::in_service_cycles`]) is what
//!   keeps the estimate honest at saturation: with queued-only backlog a
//!   chip packed with long resident generations looks idle the moment its
//!   private queue drains, and the router piles new work onto the most
//!   loaded silicon in the fleet.
//! * [`ChurnAwareRouting`] — the fastest-chip estimate, additionally
//!   penalized by the chip's recent eviction churn
//!   ([`ChipLoad::recent_evictions`]): work routes *around* preemption
//!   hotspots, so low-priority jobs stop volunteering for chips where
//!   they are likely to be evicted and pay swap costs.
//! * [`LeastKvLoadedRouting`] — the job goes to the chip with the lowest
//!   fractional KV pressure (resident + queued footprints over budget),
//!   weighted by the chip's probed serial cost for this job so a slow
//!   chip's empty SRAM never outbids a fast chip's half-full one. On
//!   homogeneous fleets the weight cancels and pure KV-fraction ordering
//!   is preserved.
//! * [`HashAffinityRouting`] — deterministic hash of the client (or the
//!   request id for open-loop traffic) onto the fleet: a session's
//!   requests always land on the same chip, the stateless-front-end
//!   baseline real serving tiers use for cache affinity. Also the
//!   adversarial baseline for work-stealing: it routes with no load
//!   feedback at all, so only stealing can unwedge the backlog it piles
//!   onto slow chips.
//!
//! [`AdmissionPolicy`]: crate::scheduler::AdmissionPolicy

use crate::cost::FleetCost;
use crate::request::Job;
use spatten_workloads::PoolRole;
use std::fmt;

/// A live load snapshot of one chip, assembled by the event loop at every
/// arrival and handed to [`RoutingPolicy::route`].
#[derive(Debug, Clone, Copy)]
pub struct ChipLoad {
    /// The chip's disaggregation pool role ([`PoolRole::Flex`] on fleets
    /// without pools). Phase-aware policies use it to keep prefill work
    /// off decode specialists and vice versa.
    pub role: PoolRole,
    /// Jobs currently resident (executing) on the chip.
    pub active: usize,
    /// KV SRAM bytes resident jobs currently pin.
    pub kv_in_use: u64,
    /// The chip's KV packing budget.
    pub kv_budget: u64,
    /// Jobs queued in the chip's private (routed) queue.
    pub pending_jobs: usize,
    /// Serial-cycle estimate of the chip's private queue (each routed
    /// job's remaining whole-job cost on this chip, summed).
    pub pending_cycles: u64,
    /// KV footprint estimate of the chip's private queue.
    pub pending_kv: u64,
    /// Remaining estimated serial cycles of the jobs currently *resident*
    /// on the chip, maintained incrementally by the chip event loop (work
    /// already dispatched into the in-flight round counts as done).
    /// Queued-only backlog ignores exactly this term, which is why the
    /// pre-fix `FastestChipRouting` mis-placed at saturation.
    pub in_service_cycles: u64,
    /// Decaying count of recent preemption evictions on this chip (half
    /// life [`crate::chip::CHURN_HALF_LIFE_CYCLES`]): the preemption-
    /// hotspot signal [`ChurnAwareRouting`] penalizes.
    pub recent_evictions: f64,
    /// Whether the chip is leaving the fleet (draining or already
    /// offline, [`crate::elastic::Availability`]). No policy may place
    /// new work here — a job routed to a leaving chip would strand when
    /// the chip goes away. Always `false` on a fixed fleet.
    pub leaving: bool,
}

impl ChipLoad {
    /// The chip's full backlog estimate: queued plus in-service cycles —
    /// the quantity an arriving job waits behind.
    pub fn backlog_cycles(&self) -> u64 {
        self.pending_cycles.saturating_add(self.in_service_cycles)
    }

    /// Whether this chip's pool role accepts a job in the given phase
    /// (`prefilled` = the job's prompt pass already ran and it only
    /// needs decode steps). `Flex` accepts everything; a specialist
    /// accepts only its own phase.
    pub fn suits_phase(&self, prefilled: bool) -> bool {
        match self.role {
            PoolRole::Flex => true,
            PoolRole::Prefill => !prefilled,
            PoolRole::Decode => prefilled,
        }
    }
}

/// The routing seam: assigns an arriving job to a chip, or leaves it in
/// the shared queue.
///
/// Routing happens once, at arrival; admission (who *enters the batch*,
/// and when) still happens at round boundaries under the
/// [`AdmissionPolicy`](crate::scheduler::AdmissionPolicy). Returning
/// `Some(c)` places the job in chip `c`'s private queue; `None` leaves it
/// in the shared queue that any chip may drain.
///
/// ```
/// use spatten_serve::{ChipLoad, CostModel, FleetCost, Job, RoutingPolicy};
/// use spatten_core::SpAttenConfig;
///
/// /// Route everything to the last chip (a toy policy).
/// #[derive(Debug)]
/// struct LastChip;
/// impl RoutingPolicy for LastChip {
///     fn name(&self) -> &'static str {
///         "last-chip"
///     }
///     fn route(
///         &mut self,
///         _job: &Job,
///         _cost: &mut dyn FleetCost,
///         loads: &[ChipLoad],
///         _now: u64,
///     ) -> Option<usize> {
///         Some(loads.len() - 1)
///     }
/// }
/// ```
pub trait RoutingPolicy: fmt::Debug {
    /// Stable lowercase name for reports.
    fn name(&self) -> &'static str;

    /// Whether this policy ever routes. The event loop skips building
    /// the per-arrival [`ChipLoad`] snapshot when this is `false`, so
    /// the default shared-queue configuration pays nothing for the
    /// seam. Override only for always-`None` policies.
    fn routes(&self) -> bool {
        true
    }

    /// Picks the chip for `job` at time `now`, given one [`ChipLoad`] per
    /// chip. `None` = shared queue.
    fn route(
        &mut self,
        job: &Job,
        cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        now: u64,
    ) -> Option<usize>;
}

impl RoutingPolicy for Box<dyn RoutingPolicy> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn routes(&self) -> bool {
        self.as_ref().routes()
    }

    fn route(
        &mut self,
        job: &Job,
        cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        now: u64,
    ) -> Option<usize> {
        self.as_mut().route(job, cost, loads, now)
    }
}

/// No routing: every job waits in the shared queue and lands on whichever
/// chip's admission drains it first.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedQueueRouting;

impl RoutingPolicy for SharedQueueRouting {
    fn name(&self) -> &'static str {
        "shared-queue"
    }

    fn routes(&self) -> bool {
        false
    }

    fn route(
        &mut self,
        _job: &Job,
        _cost: &mut dyn FleetCost,
        _loads: &[ChipLoad],
        _now: u64,
    ) -> Option<usize> {
        None
    }
}

/// Cost-model-probed routing: the job goes to the chip that minimizes
/// `queued backlog + in-service backlog + the job's own serial cycles on
/// that chip` — an estimated-completion greedy that prices the *job on
/// the hardware*, not just the queue length. Fast chips absorb most of
/// the traffic; slow chips only receive work once the fast chips' total
/// backlog exceeds the hardware speed gap. Ties break toward the lower
/// chip index, so routing is deterministic.
///
/// The in-service term ([`ChipLoad::in_service_cycles`]) is the
/// saturation fix: chips drain their private queues into their resident
/// sets, so at high load `pending_cycles` alone says nothing about how
/// far behind a chip really is, and a queued-only estimate routes new
/// work onto exactly the chips whose residents will hold it hostage
/// longest.
///
/// The opt-in [`FastestChipRouting::steal_aware`] variant additionally
/// prices the scheduler's work stealing into the estimate: queued
/// backlog on a chip is not hostage to that chip alone — any
/// less-loaded peer that goes idle will pull from the most backlogged
/// private queue ([`crate::StealSpec::CostliestFit`]). A chip with `k`
/// such peers therefore drains its queue up to `k + 1` ways in the
/// steady state, so its *queued* cycles are discounted by that factor
/// (the in-service residents are not — stealing never touches a
/// resident). Without stealing enabled the discount routes slightly
/// optimistically; with it, it stops the router from dodging backlog
/// the thieves were about to erase.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastestChipRouting {
    /// Whether queued backlog is discounted by the chip's profitable
    /// thief count (see the type-level docs).
    pub steal_aware: bool,
}

impl FastestChipRouting {
    /// Plain estimated-completion routing (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimated-completion routing with queued backlog discounted on
    /// chips whose peers can profitably steal from them.
    pub fn steal_aware() -> Self {
        Self { steal_aware: true }
    }
}

/// The estimated completion of `job` on chip `c`: queued + in-service
/// backlog plus the job's own serial cycles there. Shared by
/// [`FastestChipRouting`] and [`ChurnAwareRouting`].
fn completion_estimate(job: &Job, cost: &mut dyn FleetCost, loads: &[ChipLoad], c: usize) -> u64 {
    loads[c]
        .backlog_cycles()
        .saturating_add(cost.job_serial_on(c, &job.workload))
}

/// Chips that may receive new placements at all: everything not leaving
/// the fleet, falling back to the whole fleet only in the degenerate
/// all-leaving case (the event loop never routes arrivals then, but the
/// fallback keeps every policy total). Shared by every routing policy —
/// the leaving-chip guard lives here so no policy can strand a job on a
/// departing chip.
fn placeable(loads: &[ChipLoad]) -> Vec<usize> {
    let open: Vec<usize> = (0..loads.len()).filter(|&c| !loads[c].leaving).collect();
    if open.is_empty() {
        (0..loads.len()).collect()
    } else {
        open
    }
}

/// Chips whose pool role matches `job`'s phase, falling back to every
/// placeable chip when no specialist matches (work conservation beats
/// purity). On a role-free fleet every chip is `Flex` and this is
/// [`placeable`]. Shared by the cost-probing policies so none of them
/// routes a prefill onto a decode specialist — the routing half of the
/// pool blind spot.
fn phase_eligible(job: &Job, loads: &[ChipLoad]) -> Vec<usize> {
    let prefilled = job.resume.is_some_and(|r| r.prefilled);
    let open = placeable(loads);
    let eligible: Vec<usize> = open
        .iter()
        .copied()
        .filter(|&c| loads[c].suits_phase(prefilled))
        .collect();
    if eligible.is_empty() {
        open
    } else {
        eligible
    }
}

impl RoutingPolicy for FastestChipRouting {
    fn name(&self) -> &'static str {
        if self.steal_aware {
            "fastest-chip-steal-aware"
        } else {
            "fastest-chip"
        }
    }

    fn route(
        &mut self,
        job: &Job,
        cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        _now: u64,
    ) -> Option<usize> {
        if !self.steal_aware {
            return phase_eligible(job, loads)
                .into_iter()
                .min_by_key(|&c| (completion_estimate(job, cost, loads, c), c));
        }
        phase_eligible(job, loads).into_iter().min_by_key(|&c| {
            // Peers strictly less loaded than `c` are its prospective
            // thieves: when one of them runs dry it pulls from the most
            // backlogged private queue, and `c`'s queue is ahead of
            // theirs in that ranking. Leaving chips never steal.
            let backlog = loads[c].backlog_cycles();
            let thieves = loads
                .iter()
                .enumerate()
                .filter(|&(d, l)| d != c && !l.leaving && l.backlog_cycles() < backlog)
                .count() as u64;
            let queued = loads[c].pending_cycles / (1 + thieves);
            let score = loads[c]
                .in_service_cycles
                .saturating_add(queued)
                .saturating_add(cost.job_serial_on(c, &job.workload));
            (score, c)
        })
    }
}

/// Churn-aware routing: the fastest-chip completion estimate, inflated
/// by the target chip's recent eviction churn — `estimate × (1 +
/// churn_weight × recent_evictions)`. A chip that keeps preempting
/// residents is a bad home for work that can be preempted: every
/// eviction costs two KV swaps and a requeue, none of which the plain
/// completion estimate prices. Routing low-priority traffic around those
/// hotspots leaves them to the high-priority work that causes the churn
/// (and is never its victim). With no churn anywhere it is exactly
/// [`FastestChipRouting`]. Ties break toward the lower chip index.
#[derive(Debug, Clone, Copy)]
pub struct ChurnAwareRouting {
    /// Backlog inflation per unit of decayed eviction churn (1.0 ≈ one
    /// recent eviction doubles the chip's apparent backlog).
    pub churn_weight: f64,
}

impl Default for ChurnAwareRouting {
    fn default() -> Self {
        Self { churn_weight: 1.0 }
    }
}

impl RoutingPolicy for ChurnAwareRouting {
    fn name(&self) -> &'static str {
        "churn-aware"
    }

    fn route(
        &mut self,
        job: &Job,
        cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        _now: u64,
    ) -> Option<usize> {
        // One score per eligible chip up front (the memoized probe is
        // cheap but not free, and min_by compares O(n log n) times).
        let eligible = phase_eligible(job, loads);
        let scores: Vec<f64> = eligible
            .iter()
            .map(|&c| {
                completion_estimate(job, cost, loads, c) as f64
                    * (1.0 + self.churn_weight * loads[c].recent_evictions.max(0.0))
            })
            .collect();
        (0..eligible.len())
            .min_by(|&a, &b| {
                scores[a]
                    .partial_cmp(&scores[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(eligible[a].cmp(&eligible[b]))
            })
            .map(|i| eligible[i])
    }
}

/// KV-pressure routing, weighted by chip speed: the job goes to the chip
/// minimizing `(1 + fractional KV load) × the job's serial cycles on
/// that chip`, where the fractional load is resident plus already-queued
/// footprints over that chip's own budget. The serial factor is what
/// keeps this policy honest on speed-heterogeneous fleets: pure
/// KV-fraction ordering routes every arrival to whichever chip has the
/// emptiest SRAM — on a mixed full/eighth fleet that is usually an
/// eighth-scale chip that will take 8× longer, which is how the
/// unweighted policy lost to the shared queue. On homogeneous fleets the
/// serial factor is a constant and pure fraction ordering is preserved.
/// Ties break toward the lower chip index.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastKvLoadedRouting;

impl RoutingPolicy for LeastKvLoadedRouting {
    fn name(&self) -> &'static str {
        "least-kv-loaded"
    }

    fn route(
        &mut self,
        job: &Job,
        cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        _now: u64,
    ) -> Option<usize> {
        // Compare `serial_c × (budget_c + used_c) / budget_c` exactly in
        // integers by cross-multiplying (budgets are nonzero for any chip
        // with SRAM): a/b < c/d  ⇔  a·d < c·b.
        let serial: Vec<u64> = (0..loads.len())
            .map(|c| cost.job_serial_on(c, &job.workload))
            .collect();
        placeable(loads).into_iter().min_by(|&a, &b| {
            let (la, lb) = (&loads[a], &loads[b]);
            let (ba, bb) = (la.kv_budget.max(1), lb.kv_budget.max(1));
            let fa = serial[a] as u128
                * (ba as u128 + la.kv_in_use as u128 + la.pending_kv as u128)
                * bb as u128;
            let fb = serial[b] as u128
                * (bb as u128 + lb.kv_in_use as u128 + lb.pending_kv as u128)
                * ba as u128;
            fa.cmp(&fb).then(a.cmp(&b))
        })
    }
}

/// Session-affinity routing: a deterministic hash of the issuing client
/// (or the request id, for open-loop traffic without client identity)
/// picks the chip. Requests from one session always land on the same
/// chip — no load feedback at all, the baseline that shows what routing
/// *without* a cost model costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashAffinityRouting;

/// SplitMix64 — a tiny, well-mixed integer hash (deterministic across
/// runs, unlike `std`'s `RandomState`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl RoutingPolicy for HashAffinityRouting {
    fn name(&self) -> &'static str {
        "hash-affinity"
    }

    fn route(
        &mut self,
        job: &Job,
        _cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        _now: u64,
    ) -> Option<usize> {
        if loads.is_empty() {
            return None;
        }
        let key = match job.client {
            Some(client) => client as u64 | 1 << 63,
            None => job.id,
        };
        // Hash over the placeable set, not the full roster: a session
        // whose home chip drains re-hashes onto the survivors (real
        // affinity tiers re-shard exactly the same way), and on a fixed
        // fleet the set is the identity so placement is unchanged.
        let open = placeable(loads);
        Some(open[(splitmix64(key) % open.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use spatten_core::SpAttenConfig;
    use spatten_workloads::{Benchmark, Workload};

    fn job(id: u64, client: Option<usize>) -> Job {
        let workload: Workload = Benchmark::gpt2_small_wikitext2().workload();
        Job {
            id,
            class: 0,
            priority: 0,
            client,
            arrival_cycles: 0,
            deadline_cycles: None,
            preemptions: 0,
            resume: None,
            shared_prefix_tokens: 0,
            revoked: false,
            workload,
        }
    }

    fn idle(kv_budget: u64) -> ChipLoad {
        ChipLoad {
            role: PoolRole::Flex,
            active: 0,
            kv_in_use: 0,
            kv_budget,
            pending_jobs: 0,
            pending_cycles: 0,
            pending_kv: 0,
            in_service_cycles: 0,
            recent_evictions: 0.0,
            leaving: false,
        }
    }

    #[test]
    fn fastest_chip_prefers_the_full_size_chip_until_backlog_balances() {
        let mut cost = CostModel::heterogeneous(
            vec![SpAttenConfig::default(), SpAttenConfig::eighth()],
            Some(8),
        );
        let mut r = FastestChipRouting::default();
        let mut loads = vec![idle(cost.budget_on(0)), idle(cost.budget_on(1))];
        // Idle fleet: the full chip wins outright.
        assert_eq!(r.route(&job(0, None), &mut cost, &loads, 0), Some(0));
        // Pile backlog onto the full chip until the eighth chip's raw
        // serial cost is the cheaper estimated completion.
        let eighth_serial = cost.job_serial_on(1, &job(0, None).workload);
        loads[0].pending_cycles = eighth_serial * 2;
        assert_eq!(r.route(&job(1, None), &mut cost, &loads, 0), Some(1));
    }

    #[test]
    fn fastest_chip_counts_in_service_work() {
        // The saturation bugfix: a chip whose private queue is empty but
        // whose residents hold a mountain of remaining work must not look
        // idle to the router.
        let mut cost = CostModel::heterogeneous(
            vec![SpAttenConfig::default(), SpAttenConfig::eighth()],
            Some(8),
        );
        let mut r = FastestChipRouting::default();
        let mut loads = vec![idle(cost.budget_on(0)), idle(cost.budget_on(1))];
        let eighth_serial = cost.job_serial_on(1, &job(0, None).workload);
        // Queued-only estimates would still pick the full chip; its
        // in-service backlog says otherwise.
        loads[0].in_service_cycles = eighth_serial * 2;
        assert_eq!(r.route(&job(0, None), &mut cost, &loads, 0), Some(1));
    }

    #[test]
    fn steal_aware_discount_keeps_work_on_the_stealable_fast_chip() {
        // Plain fastest-chip flips to the slow chip once the fast chip's
        // queued backlog exceeds the hardware speed gap. Steal-aware
        // routing knows an idle peer will pull from that queue, halves
        // the queued term, and keeps the job on the fast chip until the
        // *discounted* backlog crosses the gap.
        let mut cost = CostModel::heterogeneous(
            vec![SpAttenConfig::default(), SpAttenConfig::eighth()],
            Some(8),
        );
        let w = &job(0, None).workload;
        let gap = cost.job_serial_on(1, w) - cost.job_serial_on(0, w);
        let mut loads = vec![idle(cost.budget_on(0)), idle(cost.budget_on(1))];
        // Backlog between 1x and 2x the gap: plain routing dodges the
        // fast chip, the steal discount (one idle thief => /2) does not.
        loads[0].pending_cycles = gap + gap / 2;
        let mut plain = FastestChipRouting::new();
        let mut aware = FastestChipRouting::steal_aware();
        assert_eq!(plain.route(&job(0, None), &mut cost, &loads, 0), Some(1));
        assert_eq!(aware.route(&job(0, None), &mut cost, &loads, 0), Some(0));
        // Past 2x the gap even the discounted queue is too long.
        loads[0].pending_cycles = gap * 3;
        assert_eq!(aware.route(&job(1, None), &mut cost, &loads, 0), Some(1));
        // In-service cycles are never discounted: residents can't be
        // stolen, so the same load carried in-service flips both.
        loads[0].pending_cycles = 0;
        loads[0].in_service_cycles = gap + gap / 2;
        assert_eq!(aware.route(&job(2, None), &mut cost, &loads, 0), Some(1));
    }

    #[test]
    fn steal_aware_ignores_leaving_peers_as_thieves() {
        // A draining chip never steals, so it must not discount its
        // neighbours' backlog. Backlog between 2x and 3x the gap: one
        // real thief (/2) is not enough to keep the job on the fast
        // chip, but mistakenly counting the leaving chip (/3) would be.
        let mut cost = CostModel::heterogeneous(
            vec![
                SpAttenConfig::default(),
                SpAttenConfig::eighth(),
                SpAttenConfig::eighth(),
            ],
            Some(8),
        );
        let w = &job(0, None).workload;
        let gap = cost.job_serial_on(1, w) - cost.job_serial_on(0, w);
        let mut loads = vec![
            idle(cost.budget_on(0)),
            idle(cost.budget_on(1)),
            idle(cost.budget_on(2)),
        ];
        loads[0].pending_cycles = gap * 2 + gap / 2;
        loads[2].leaving = true;
        let mut aware = FastestChipRouting::steal_aware();
        assert_eq!(aware.route(&job(0, None), &mut cost, &loads, 0), Some(1));
    }

    #[test]
    fn cost_probing_routers_respect_pool_roles() {
        // The pool blind spot: an idle decode specialist must not win a
        // fresh (prefill-phase) arrival from a busy flex chip — but when
        // no chip suits the phase, work conservation takes over.
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut decode = idle(1000);
        decode.role = PoolRole::Decode;
        let mut flex = idle(1000);
        flex.pending_cycles = 1_000_000; // busy, but prefill-capable
        let loads = vec![decode, flex];
        assert_eq!(
            FastestChipRouting::default().route(&job(0, None), &mut cost, &loads, 0),
            Some(1)
        );
        assert_eq!(
            ChurnAwareRouting::default().route(&job(0, None), &mut cost, &loads, 0),
            Some(1)
        );
        // All-decode fleet: fall back to the plain fastest chip.
        let all_decode = vec![decode, decode];
        assert_eq!(
            FastestChipRouting::default().route(&job(0, None), &mut cost, &all_decode, 0),
            Some(0)
        );
    }

    #[test]
    fn churn_aware_routes_around_preemption_hotspots() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut r = ChurnAwareRouting::default();
        let mut loads = vec![idle(1000), idle(1000)];
        // Equal backlog: index tie-break picks chip 0...
        assert_eq!(r.route(&job(0, None), &mut cost, &loads, 0), Some(0));
        // ...until chip 0 shows eviction churn.
        loads[0].recent_evictions = 2.0;
        assert_eq!(r.route(&job(0, None), &mut cost, &loads, 0), Some(1));
        // With zero churn everywhere it agrees with fastest-chip.
        loads[0].recent_evictions = 0.0;
        loads[0].pending_cycles = 1;
        assert_eq!(
            r.route(&job(0, None), &mut cost, &loads, 0),
            FastestChipRouting::default().route(&job(0, None), &mut cost, &loads, 0)
        );
    }

    #[test]
    fn least_kv_loaded_balances_fractions_not_bytes() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut r = LeastKvLoadedRouting;
        // Homogeneous chips (equal serial cost): chip 0 half full of a
        // small budget, chip 1 a quarter full of a budget twice the size.
        // Chip 1 is the lower *fraction*.
        let mut a = idle(1000);
        a.kv_in_use = 500;
        let mut b = idle(2000);
        b.kv_in_use = 500;
        assert_eq!(r.route(&job(0, None), &mut cost, &[a, b], 0), Some(1));
    }

    #[test]
    fn least_kv_loaded_weighs_pressure_by_chip_speed() {
        // Speed-heterogeneity fix: an empty eighth-scale chip must not
        // outbid a moderately loaded full-size chip — the job would take
        // ~8× longer there, which no SRAM headroom buys back.
        let mut cost = CostModel::heterogeneous(
            vec![SpAttenConfig::default(), SpAttenConfig::eighth()],
            Some(8),
        );
        let mut r = LeastKvLoadedRouting;
        let mut full = idle(cost.budget_on(0));
        full.kv_in_use = cost.budget_on(0) / 2; // half full
        let eighth = idle(cost.budget_on(1)); // empty but slow
        assert_eq!(
            r.route(&job(0, None), &mut cost, &[full, eighth], 0),
            Some(0)
        );
        // Both empty: the fast chip wins the tie.
        let empty = [idle(cost.budget_on(0)), idle(cost.budget_on(1))];
        assert_eq!(r.route(&job(0, None), &mut cost, &empty, 0), Some(0));
    }

    #[test]
    fn hash_affinity_is_sticky_per_client_and_deterministic() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut r = HashAffinityRouting;
        let loads = vec![idle(1); 4];
        let first = r.route(&job(0, Some(7)), &mut cost, &loads, 0);
        for id in 1..20 {
            assert_eq!(r.route(&job(id, Some(7)), &mut cost, &loads, 0), first);
        }
        // Different clients spread across chips.
        let chips: std::collections::BTreeSet<_> = (0..64)
            .map(|c| r.route(&job(0, Some(c)), &mut cost, &loads, 0).unwrap())
            .collect();
        assert!(chips.len() > 1, "64 clients must not all hash to one chip");
    }

    #[test]
    fn every_policy_skips_leaving_chips() {
        // The stranding guard: a chip that is draining (or already
        // offline) must never win a placement, no matter how idle it
        // looks — work routed there would die with the chip.
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut loads = vec![idle(1000), idle(1000), idle(1000)];
        loads[0].leaving = true; // the index tie-break favorite
        loads[2].leaving = true;
        assert_eq!(
            FastestChipRouting::default().route(&job(0, None), &mut cost, &loads, 0),
            Some(1)
        );
        assert_eq!(
            ChurnAwareRouting::default().route(&job(0, None), &mut cost, &loads, 0),
            Some(1)
        );
        assert_eq!(
            LeastKvLoadedRouting.route(&job(0, None), &mut cost, &loads, 0),
            Some(1)
        );
        // Hash affinity re-hashes every key onto the lone survivor.
        let mut hash = HashAffinityRouting;
        for id in 0..32 {
            assert_eq!(
                hash.route(&job(id, Some(id as usize)), &mut cost, &loads, 0),
                Some(1)
            );
        }
        // A leaving decode specialist loses to an online one even when
        // phase filtering is in play.
        let mut decode_gone = idle(1000);
        decode_gone.role = PoolRole::Decode;
        decode_gone.leaving = true;
        let mut decode_up = idle(1000);
        decode_up.role = PoolRole::Decode;
        decode_up.pending_cycles = 1_000_000;
        let mut resumed = job(0, None);
        resumed.resume = Some(crate::request::ResumeState {
            chip: 1,
            prefill_progress: 0,
            prefilled: true,
            steps_done: 1,
            start_cycles: 0,
            first_token_cycles: Some(0),
        });
        assert_eq!(
            FastestChipRouting::default().route(&resumed, &mut cost, &[decode_gone, decode_up], 0),
            Some(1)
        );
    }

    #[test]
    fn shared_queue_routes_nothing() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let loads = vec![idle(1); 4];
        assert_eq!(
            SharedQueueRouting.route(&job(0, None), &mut cost, &loads, 0),
            None
        );
    }
}
