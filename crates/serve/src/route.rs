//! Pluggable routing policies: which chip a job is assigned to at
//! *arrival* time.
//!
//! The default serving front-end is one shared queue: every chip pulls
//! from it at its round boundaries, so jobs land wherever a chip happens
//! to free up. That is work-conserving but **chip-agnostic** — on a
//! heterogeneous fleet an eighth-scale chip will happily grab a job the
//! full-size chip next to it would have finished 8× sooner, and the tail
//! pays for it. A [`RoutingPolicy`] runs *ahead of admission*: the moment
//! a job arrives it is assigned to one chip's private queue (or left in
//! the shared queue), using the cost oracle and a live load snapshot of
//! every chip. Admission then drains a chip's private queue first, the
//! shared queue second, under the same [`AdmissionPolicy`] either way.
//!
//! Bundled policies:
//!
//! * [`SharedQueueRouting`] — no routing; every job stays in the shared
//!   queue (the PR 1–3 behavior, and the right choice for homogeneous
//!   fleets where work conservation beats placement).
//! * [`FastestChipRouting`] — probes the cost model: the job goes to the
//!   chip minimizing `queued backlog + this job's serial cycles on that
//!   chip`. On a mixed full/eighth fleet this sends work to full-size
//!   chips until their backlog exceeds the speed differential — exactly
//!   the placement-aware balance a blind shared queue cannot express.
//! * [`LeastKvLoadedRouting`] — the job goes to the chip with the lowest
//!   fractional KV pressure (resident + queued footprints over budget),
//!   maximizing batching headroom on big-SRAM chips.
//! * [`HashAffinityRouting`] — deterministic hash of the client (or the
//!   request id for open-loop traffic) onto the fleet: a session's
//!   requests always land on the same chip, the stateless-front-end
//!   baseline real serving tiers use for cache affinity.
//!
//! [`AdmissionPolicy`]: crate::scheduler::AdmissionPolicy

use crate::cost::FleetCost;
use crate::request::Job;
use std::fmt;

/// A live load snapshot of one chip, assembled by the event loop at every
/// arrival and handed to [`RoutingPolicy::route`].
#[derive(Debug, Clone, Copy)]
pub struct ChipLoad {
    /// Jobs currently resident (executing) on the chip.
    pub active: usize,
    /// KV SRAM bytes resident jobs currently pin.
    pub kv_in_use: u64,
    /// The chip's KV packing budget.
    pub kv_budget: u64,
    /// Jobs queued in the chip's private (routed) queue.
    pub pending_jobs: usize,
    /// Serial-cycle estimate of the chip's private queue (each routed
    /// job's whole-job cost on this chip, summed).
    pub pending_cycles: u64,
    /// KV footprint estimate of the chip's private queue.
    pub pending_kv: u64,
}

/// The routing seam: assigns an arriving job to a chip, or leaves it in
/// the shared queue.
///
/// Routing happens once, at arrival; admission (who *enters the batch*,
/// and when) still happens at round boundaries under the
/// [`AdmissionPolicy`](crate::scheduler::AdmissionPolicy). Returning
/// `Some(c)` places the job in chip `c`'s private queue; `None` leaves it
/// in the shared queue that any chip may drain.
///
/// ```
/// use spatten_serve::{ChipLoad, CostModel, FleetCost, Job, RoutingPolicy};
/// use spatten_core::SpAttenConfig;
///
/// /// Route everything to the last chip (a toy policy).
/// #[derive(Debug)]
/// struct LastChip;
/// impl RoutingPolicy for LastChip {
///     fn name(&self) -> &'static str {
///         "last-chip"
///     }
///     fn route(
///         &mut self,
///         _job: &Job,
///         _cost: &mut dyn FleetCost,
///         loads: &[ChipLoad],
///         _now: u64,
///     ) -> Option<usize> {
///         Some(loads.len() - 1)
///     }
/// }
/// ```
pub trait RoutingPolicy: fmt::Debug {
    /// Stable lowercase name for reports.
    fn name(&self) -> &'static str;

    /// Whether this policy ever routes. The event loop skips building
    /// the per-arrival [`ChipLoad`] snapshot when this is `false`, so
    /// the default shared-queue configuration pays nothing for the
    /// seam. Override only for always-`None` policies.
    fn routes(&self) -> bool {
        true
    }

    /// Picks the chip for `job` at time `now`, given one [`ChipLoad`] per
    /// chip. `None` = shared queue.
    fn route(
        &mut self,
        job: &Job,
        cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        now: u64,
    ) -> Option<usize>;
}

impl RoutingPolicy for Box<dyn RoutingPolicy> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn routes(&self) -> bool {
        self.as_ref().routes()
    }

    fn route(
        &mut self,
        job: &Job,
        cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        now: u64,
    ) -> Option<usize> {
        self.as_mut().route(job, cost, loads, now)
    }
}

/// No routing: every job waits in the shared queue and lands on whichever
/// chip's admission drains it first.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedQueueRouting;

impl RoutingPolicy for SharedQueueRouting {
    fn name(&self) -> &'static str {
        "shared-queue"
    }

    fn routes(&self) -> bool {
        false
    }

    fn route(
        &mut self,
        _job: &Job,
        _cost: &mut dyn FleetCost,
        _loads: &[ChipLoad],
        _now: u64,
    ) -> Option<usize> {
        None
    }
}

/// Cost-model-probed routing: the job goes to the chip that minimizes
/// `pending queue backlog + the job's own serial cycles on that chip` —
/// an estimated-completion greedy that prices the *job on the hardware*,
/// not just the queue length. Fast chips absorb most of the traffic;
/// slow chips only receive work once the fast chips' backlog exceeds the
/// hardware speed gap. Ties break toward the lower chip index, so
/// routing is deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastestChipRouting;

impl RoutingPolicy for FastestChipRouting {
    fn name(&self) -> &'static str {
        "fastest-chip"
    }

    fn route(
        &mut self,
        job: &Job,
        cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        _now: u64,
    ) -> Option<usize> {
        (0..loads.len()).min_by_key(|&c| {
            (
                loads[c]
                    .pending_cycles
                    .saturating_add(cost.job_serial_on(c, &job.workload)),
                c,
            )
        })
    }
}

/// KV-pressure routing: the job goes to the chip with the lowest
/// fractional KV load — resident plus already-queued footprints, over
/// that chip's own budget — keeping batching headroom even across
/// different SRAM sizes. Ties break toward the lower chip index.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastKvLoadedRouting;

impl RoutingPolicy for LeastKvLoadedRouting {
    fn name(&self) -> &'static str {
        "least-kv-loaded"
    }

    fn route(
        &mut self,
        _job: &Job,
        _cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        _now: u64,
    ) -> Option<usize> {
        // Compare load fractions exactly in integers: a/b < c/d  ⇔
        // a·d < c·b (budgets are nonzero for any chip with SRAM).
        (0..loads.len()).min_by(|&a, &b| {
            let (la, lb) = (&loads[a], &loads[b]);
            let fa = (la.kv_in_use + la.pending_kv) as u128 * lb.kv_budget.max(1) as u128;
            let fb = (lb.kv_in_use + lb.pending_kv) as u128 * la.kv_budget.max(1) as u128;
            fa.cmp(&fb).then(a.cmp(&b))
        })
    }
}

/// Session-affinity routing: a deterministic hash of the issuing client
/// (or the request id, for open-loop traffic without client identity)
/// picks the chip. Requests from one session always land on the same
/// chip — no load feedback at all, the baseline that shows what routing
/// *without* a cost model costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashAffinityRouting;

/// SplitMix64 — a tiny, well-mixed integer hash (deterministic across
/// runs, unlike `std`'s `RandomState`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl RoutingPolicy for HashAffinityRouting {
    fn name(&self) -> &'static str {
        "hash-affinity"
    }

    fn route(
        &mut self,
        job: &Job,
        _cost: &mut dyn FleetCost,
        loads: &[ChipLoad],
        _now: u64,
    ) -> Option<usize> {
        if loads.is_empty() {
            return None;
        }
        let key = match job.client {
            Some(client) => client as u64 | 1 << 63,
            None => job.id,
        };
        Some((splitmix64(key) % loads.len() as u64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use spatten_core::SpAttenConfig;
    use spatten_workloads::{Benchmark, Workload};

    fn job(id: u64, client: Option<usize>) -> Job {
        let workload: Workload = Benchmark::gpt2_small_wikitext2().workload();
        Job {
            id,
            class: 0,
            priority: 0,
            client,
            arrival_cycles: 0,
            deadline_cycles: None,
            preemptions: 0,
            resume: None,
            workload,
        }
    }

    fn idle(kv_budget: u64) -> ChipLoad {
        ChipLoad {
            active: 0,
            kv_in_use: 0,
            kv_budget,
            pending_jobs: 0,
            pending_cycles: 0,
            pending_kv: 0,
        }
    }

    #[test]
    fn fastest_chip_prefers_the_full_size_chip_until_backlog_balances() {
        let mut cost = CostModel::heterogeneous(
            vec![SpAttenConfig::default(), SpAttenConfig::eighth()],
            Some(8),
        );
        let mut r = FastestChipRouting;
        let mut loads = vec![idle(cost.budget_on(0)), idle(cost.budget_on(1))];
        // Idle fleet: the full chip wins outright.
        assert_eq!(r.route(&job(0, None), &mut cost, &loads, 0), Some(0));
        // Pile backlog onto the full chip until the eighth chip's raw
        // serial cost is the cheaper estimated completion.
        let eighth_serial = cost.job_serial_on(1, &job(0, None).workload);
        loads[0].pending_cycles = eighth_serial * 2;
        assert_eq!(r.route(&job(1, None), &mut cost, &loads, 0), Some(1));
    }

    #[test]
    fn least_kv_loaded_balances_fractions_not_bytes() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut r = LeastKvLoadedRouting;
        // Chip 0: half full of a small budget. Chip 1: a quarter full of a
        // budget twice the size. Chip 1 is the lower *fraction*.
        let mut a = idle(1000);
        a.kv_in_use = 500;
        let mut b = idle(2000);
        b.kv_in_use = 500;
        assert_eq!(r.route(&job(0, None), &mut cost, &[a, b], 0), Some(1));
    }

    #[test]
    fn hash_affinity_is_sticky_per_client_and_deterministic() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut r = HashAffinityRouting;
        let loads = vec![idle(1); 4];
        let first = r.route(&job(0, Some(7)), &mut cost, &loads, 0);
        for id in 1..20 {
            assert_eq!(r.route(&job(id, Some(7)), &mut cost, &loads, 0), first);
        }
        // Different clients spread across chips.
        let chips: std::collections::BTreeSet<_> = (0..64)
            .map(|c| r.route(&job(0, Some(c)), &mut cost, &loads, 0).unwrap())
            .collect();
        assert!(chips.len() > 1, "64 clients must not all hash to one chip");
    }

    #[test]
    fn shared_queue_routes_nothing() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let loads = vec![idle(1); 4];
        assert_eq!(
            SharedQueueRouting.route(&job(0, None), &mut cost, &loads, 0),
            None
        );
    }
}
