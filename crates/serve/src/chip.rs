//! One simulated SpAtten accelerator inside the fleet.
//!
//! A chip executes *rounds*. What a round contains is the
//! [`BatchPolicy`]'s decision: under run-to-completion policies a round
//! is an entire job; under iteration-level policies a round is one
//! iteration in which each resident job executes the [`RoundStep`] the
//! policy planned for it — a chunk of its prefill pass, one decode token,
//! or nothing (decode-prioritized budgets may idle a prefill for a
//! round). The iteration's length is set by HBM-bandwidth-aware
//! co-scheduling:
//!
//! ```text
//! iteration_cycles = max( Σ compute_i , Σ dram_i ) + round_overhead
//! ```
//!
//! Each resource serializes within itself (one multiplier-array complex,
//! one HBM stack per chip), but one job's compute overlaps another job's
//! KV/weight streaming. On top of that, *model weights are shared*: every
//! resident job of the same model reads the same FC/FFN planes, so the
//! iteration streams them once per model, not once per job
//! ([`spatten_core::StepCost::weight_dram_cycles`]) — the batched-matvec →
//! matmul effect that makes batched decode profitable at all. Per-request
//! KV traffic stays private and still serializes across the batch.
//!
//! Chips are also **preemptible** at round boundaries: the event loop may
//! [`Chip::evict`] resident jobs (chosen by a
//! [`crate::preempt::PreemptionPolicy`]), draining their KV state to HBM,
//! and a later [`Chip::admit`] of the same job restores it. Both
//! directions are priced by [`FleetCost::swap_cycles_on`] and charged to
//! the *next* round the chip starts — swaps occupy the SRAM ports and
//! HBM channels just like real work, so they extend the chip's busy time
//! rather than happening for free between rounds.

use crate::batch::{BatchPolicy, ResidentView, RoundStep};
use crate::cost::FleetCost;
use crate::engine::TokenEvent;
use crate::kv::{JobKvNeed, KvPager};
use crate::preempt::VictimView;
use crate::request::{Completion, Job, ResumeState};
use crate::scheduler::remaining_cycles_on;
use spatten_core::StepCost;
use spatten_nn::ModelConfig;

/// Half life, in core cycles, of the per-chip eviction-churn counter
/// behind [`crate::route::ChipLoad::recent_evictions`] (10 ms at the
/// Table-I 1 GHz clock): long enough that a preemption storm is visible
/// to routing for many arrivals, short enough that a chip that stopped
/// evicting stops being penalized.
pub const CHURN_HALF_LIFE_CYCLES: u64 = 10_000_000;

/// A job resident on a chip.
#[derive(Debug, Clone)]
struct Active {
    job: Job,
    footprint: u64,
    start_cycles: u64,
    first_token_cycles: Option<u64>,
    /// Serial prefill cycles completed so far (chunked prefill: the pass
    /// advances one quantum per iteration so resident decode jobs never
    /// stall behind a whole multi-millisecond prefill).
    prefill_progress: u64,
    /// Whether the prefill pass has fully executed.
    prefilled: bool,
    /// Decode steps completed so far.
    steps_done: usize,
    /// Remaining estimated serial cycles of this job, charged at
    /// admission ([`remaining_cycles_on`]) and drawn down as each round
    /// dispatches its work — the per-resident term behind
    /// [`Chip::in_service_cycles`]. Exact by construction: admission and
    /// execution price steps through the same memoized oracle queries,
    /// so the estimate reaches 0 at completion ([`Chip::est_drift`]
    /// records any violation).
    est_remaining: u64,
}

/// One accelerator's event-loop state.
#[derive(Debug)]
pub struct Chip {
    /// Chip index within the fleet.
    pub id: usize,
    active: Vec<Active>,
    kv_in_use: u64,
    /// Completions produced by the in-flight round (drained when it ends).
    finished: Vec<Completion>,
    /// Whether a round is currently executing.
    in_flight: bool,
    /// Cycles this chip spent executing rounds.
    pub busy_cycles: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Σ (batch size × round cycles), for mean-occupancy reporting.
    pub occupancy_area: u128,
    /// High-water mark of KV SRAM bytes in use.
    pub max_kv_in_use: u64,
    /// Preemption evictions performed.
    pub evictions: u64,
    /// Cycles spent swapping KV state to and from HBM (subset of
    /// [`Chip::busy_cycles`]).
    pub swap_cycles: u64,
    /// Swap cycles accrued since the last round started; charged to the
    /// next round.
    pending_swap_cycles: u64,
    /// Accumulated mismatch between the in-service estimate charged at
    /// admission and the work actually executed, observed when jobs
    /// retire. The estimator is exact by construction, so any nonzero
    /// value is a bookkeeping bug — the simulator asserts it stays 0.
    pub est_drift: u64,
    /// Whether the chip has left the fleet (drained out or revoked, or a
    /// cold reserve/join chip that has not come up yet). A left chip
    /// admits nothing — [`Chip::admit`] asserts it.
    left: bool,
    /// Decayed eviction-churn counter (see [`CHURN_HALF_LIFE_CYCLES`]).
    churn: f64,
    /// Time the churn counter was last folded down.
    churn_seen: u64,
    /// Reusable per-round scratch (resident views handed to the batch
    /// policy; retire / first-token / shared-weight worklists built
    /// while planning an iteration). Rounds fire millions of times per
    /// trace — these buffers keep the hot loop allocation-free.
    views_scratch: Vec<ResidentView>,
    done_scratch: Vec<usize>,
    emitters_scratch: Vec<usize>,
    weights_scratch: Vec<(ModelConfig, u64)>,
    /// Whether rounds record per-resident [`TokenEvent`]s. Armed only
    /// when a live [`crate::TokenSink`] is installed; off — every
    /// offline simulation — the recording branches never run.
    record_tokens: bool,
    /// Token emissions of the in-flight round, drained to the sink at
    /// the round's end.
    token_log: Vec<TokenEvent>,
}

impl Chip {
    /// An idle chip.
    pub fn new(id: usize) -> Self {
        Self {
            id,
            active: Vec::new(),
            kv_in_use: 0,
            finished: Vec::new(),
            in_flight: false,
            busy_cycles: 0,
            rounds: 0,
            occupancy_area: 0,
            max_kv_in_use: 0,
            evictions: 0,
            swap_cycles: 0,
            pending_swap_cycles: 0,
            est_drift: 0,
            left: false,
            churn: 0.0,
            churn_seen: 0,
            views_scratch: Vec::new(),
            done_scratch: Vec::new(),
            emitters_scratch: Vec::new(),
            weights_scratch: Vec::new(),
            record_tokens: false,
            token_log: Vec::new(),
        }
    }

    /// Arms (or disarms) per-round [`TokenEvent`] recording.
    pub fn set_record_tokens(&mut self, on: bool) {
        self.record_tokens = on;
    }

    /// Whether the last round recorded any token emissions.
    pub fn has_tokens(&self) -> bool {
        !self.token_log.is_empty()
    }

    /// Drains the recorded token emissions into `out` (capacity kept on
    /// both sides, like [`Chip::end_round_into`]).
    pub fn drain_tokens_into(&mut self, out: &mut Vec<TokenEvent>) {
        out.append(&mut self.token_log);
    }

    /// Jobs currently resident.
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// KV SRAM bytes currently reserved.
    pub fn kv_in_use(&self) -> u64 {
        self.kv_in_use
    }

    /// Remaining estimated serial cycles of the resident set — the
    /// in-service backlog [`crate::route::ChipLoad`] reports to routing.
    /// Summed on demand from the per-resident estimates, so it can never
    /// drift from them.
    pub fn in_service_cycles(&self) -> u64 {
        self.active.iter().map(|a| a.est_remaining).sum()
    }

    /// The eviction-churn counter decayed to time `now`: each eviction
    /// adds 1, and the total halves every [`CHURN_HALF_LIFE_CYCLES`].
    pub fn recent_evictions(&self, now: u64) -> f64 {
        let dt = now.saturating_sub(self.churn_seen);
        self.churn * 0.5f64.powf(dt as f64 / CHURN_HALF_LIFE_CYCLES as f64)
    }

    /// Whether a round is executing right now.
    pub fn is_in_flight(&self) -> bool {
        self.in_flight
    }

    /// Whether the chip has left the fleet (see [`Chip::leave`]).
    pub fn has_left(&self) -> bool {
        self.left
    }

    /// Takes the chip out of the fleet: a completed drain, an executed
    /// revocation, or a cold chip that has not joined yet. Any swap work
    /// still pending against a future round (a revocation's final KV
    /// drain) is booked directly — the drain physically happens on this
    /// chip before it disappears, and no future round exists to absorb
    /// it. After this, [`Chip::admit`] panics until [`Chip::rejoin`].
    ///
    /// # Panics
    ///
    /// Panics if residents remain or a round is in flight — departures
    /// happen only once the chip is empty and quiescent.
    pub fn leave(&mut self) {
        assert!(
            self.active.is_empty() && !self.in_flight,
            "chip {} left the fleet with {} residents (in flight: {})",
            self.id,
            self.active.len(),
            self.in_flight
        );
        let final_drain = std::mem::take(&mut self.pending_swap_cycles);
        self.busy_cycles += final_drain;
        self.swap_cycles += final_drain;
        self.left = true;
    }

    /// Brings a left (or cold) chip back into service after its weight
    /// load completes.
    pub fn rejoin(&mut self) {
        self.left = false;
    }

    /// Admits a job into the resident set at time `now`. A job carrying
    /// [`Job::resume`] state (it was preempted earlier) restores its KV
    /// prefix from HBM — the swap-in is priced by
    /// [`FleetCost::swap_cycles_on`] and charged to the next round — and
    /// resumes exactly where it stopped.
    ///
    /// Under paged allocation (`pager` is `Some`) the job maps a page
    /// table instead of a contiguous reservation: shared prefix blocks
    /// are pinned copy-on-write (charged once per chip), the resident
    /// footprint is the job's *unique* bytes, and a resumed victim's
    /// swap-in moves only those unique pages — its shared prefix never
    /// left the chip. A **warm** prefix (blocks an earlier sharer or a
    /// persisted cache entry materialized) also skips the matching head
    /// of the prefill pass: the KV those tokens would compute already
    /// sits in SRAM, so prefill resumes at the suffix — the latency half
    /// of prefix caching, on top of the capacity half.
    ///
    /// # Panics
    ///
    /// Panics if called while a round is in flight (admission happens only
    /// at round boundaries), if the chip has left the fleet
    /// ([`Chip::leave`] — a departed chip must never receive work), or if
    /// `job` carries a [`ResumeState`] pinned to a *different* chip — its
    /// swapped-out KV prefix lives in that chip's HBM, so routing or
    /// work-stealing migrating it here would silently corrupt the swap
    /// accounting.
    pub fn admit<C: FleetCost>(
        &mut self,
        cost: &mut C,
        pager: Option<&mut KvPager>,
        mut job: Job,
        now: u64,
    ) {
        assert!(!self.in_flight, "admission mid-round");
        assert!(
            !self.left,
            "job {} admitted to chip {}, which has left the fleet",
            job.id, self.id
        );
        let est_remaining = remaining_cycles_on(cost, self.id, &job);
        let mut prefix_skip = 0u64;
        let paged_unique = match pager {
            Some(p) => {
                let need = JobKvNeed::of(cost, self.id, &job);
                // A warm prefix is KV an earlier sharer already computed:
                // this job's prefill resumes at the suffix instead of
                // recomputing the shared head. Capped a cycle short of
                // the full pass so even a fully-cached prompt executes
                // one chunk (its completion stays a round event).
                let (warm, prefix_total) = p.warm_prefix_blocks(&need);
                if warm > 0 {
                    let w = &job.workload;
                    let total = cost.prefill_on(self.id, w).serial_cycles;
                    let warm_tokens =
                        job.shared_prefix_tokens.min(w.seq_len) as u64 * warm / prefix_total;
                    prefix_skip = (total * warm_tokens / w.seq_len.max(1) as u64)
                        .min(total.saturating_sub(1));
                }
                let steps = job.resume.map_or(0, |r| r.steps_done as u64);
                let unique = p.map_job(job.id, need, steps, now);
                self.kv_in_use = p.pinned_bytes();
                Some(unique)
            }
            None => None,
        };
        let footprint = match paged_unique {
            Some(unique) => unique,
            None => {
                let f = cost.footprint_on(self.id, &job.workload);
                self.kv_in_use += f;
                f
            }
        };
        self.max_kv_in_use = self.max_kv_in_use.max(self.kv_in_use);
        let active = match job.resume.take() {
            Some(r) => {
                assert_eq!(
                    r.chip, self.id,
                    "preempted job {} is pinned to chip {} (its KV prefix \
                     lives in that chip's HBM) but was admitted to chip {}",
                    job.id, r.chip, self.id
                );
                let w = &job.workload;
                self.pending_swap_cycles += match paged_unique {
                    Some(unique) => cost.swap_bytes_cycles_on(self.id, w, unique),
                    None => {
                        let tokens = r.kv_tokens(w, cost.prefill_on(self.id, w).serial_cycles);
                        cost.swap_cycles_on(self.id, w, tokens)
                    }
                };
                // A victim resuming onto a still-warm prefix may land
                // ahead of where its own prefill stopped.
                let prefill_progress = if r.prefilled {
                    r.prefill_progress
                } else {
                    r.prefill_progress.max(prefix_skip)
                };
                Active {
                    footprint,
                    start_cycles: r.start_cycles,
                    first_token_cycles: r.first_token_cycles,
                    prefill_progress,
                    prefilled: r.prefilled,
                    steps_done: r.steps_done,
                    est_remaining: est_remaining
                        .saturating_sub(prefill_progress - r.prefill_progress),
                    job,
                }
            }
            None => Active {
                job,
                footprint,
                start_cycles: now,
                first_token_cycles: None,
                prefill_progress: prefix_skip,
                prefilled: false,
                steps_done: 0,
                est_remaining: est_remaining.saturating_sub(prefix_skip),
            },
        };
        self.active.push(active);
    }

    /// The preemption policy's view of the resident set, in resident
    /// order (the indices [`Chip::evict`] expects).
    pub fn victim_views(&self) -> Vec<VictimView> {
        self.active
            .iter()
            .map(|a| VictimView {
                priority: a.job.priority,
                preemptions: a.job.preemptions,
                kv_footprint: a.footprint,
                prefilled: a.prefilled,
                steps_done: a.steps_done,
                gen_steps: a.job.workload.gen_steps,
                arrival_cycles: a.job.arrival_cycles,
            })
            .collect()
    }

    /// Evicts the residents at `victims` (indices into the resident set),
    /// returning them as re-queueable jobs carrying their
    /// [`ResumeState`]. Each victim's KV working set is drained to HBM:
    /// the swap-out is priced by [`FleetCost::swap_cycles_on`] and
    /// charged to the chip's next round.
    ///
    /// Under paged allocation only the victim's **unique** pages drain —
    /// shared prefix blocks stay resident for the other sharers (or
    /// persist in the prefix cache), so a victim whose KV is mostly
    /// shared prefix swaps almost nothing.
    ///
    /// # Panics
    ///
    /// Panics if called while a round is in flight, or if an index is out
    /// of range.
    pub fn evict<C: FleetCost>(
        &mut self,
        cost: &mut C,
        mut pager: Option<&mut KvPager>,
        victims: &[usize],
        now: u64,
    ) -> Vec<Job> {
        assert!(!self.in_flight, "eviction mid-round");
        let mut order: Vec<usize> = victims.to_vec();
        order.sort_unstable();
        order.dedup();
        if !order.is_empty() {
            // Fold the churn counter down to `now`, then count the storm.
            self.churn = self.recent_evictions(now) + order.len() as f64;
            self.churn_seen = now;
        }
        let mut out = Vec::new();
        // Highest index first keeps the remaining indices valid.
        for &i in order.iter().rev() {
            let a = self.active.remove(i);
            let resume = ResumeState {
                chip: self.id,
                prefill_progress: a.prefill_progress,
                prefilled: a.prefilled,
                steps_done: a.steps_done,
                start_cycles: a.start_cycles,
                first_token_cycles: a.first_token_cycles,
            };
            let w = &a.job.workload;
            self.pending_swap_cycles += match pager.as_deref_mut() {
                Some(p) => {
                    let unique = p.job_unique_bytes(a.job.id);
                    p.unmap_job(a.job.id, now);
                    self.kv_in_use = p.pinned_bytes();
                    cost.swap_bytes_cycles_on(self.id, w, unique)
                }
                None => {
                    self.kv_in_use -= a.footprint;
                    let tokens = resume.kv_tokens(w, cost.prefill_on(self.id, w).serial_cycles);
                    cost.swap_cycles_on(self.id, w, tokens)
                }
            };
            self.evictions += 1;
            let mut job = a.job;
            job.preemptions += 1;
            job.resume = Some(resume);
            out.push(job);
        }
        out.reverse(); // resident order, for stable re-queueing
        out
    }

    /// Removes every resident that has just finished its prefill pass and
    /// still wants decode tokens (`prefilled`, zero decode steps, a
    /// generative workload) — the disaggregation migration set. Returns
    /// each job paired with the bytes its departure freed on this chip:
    /// under paged allocation the job's **unique dirty blocks** (the
    /// pruned survivor set minus any shared prefix, which stays resident
    /// for other sharers), under contiguous allocation its whole
    /// footprint.
    ///
    /// Unlike [`Chip::evict`] this is a *handoff*, not a preemption: no
    /// eviction or preemption counters tick, no churn is folded (routing
    /// should not read a planned migration as instability), and no swap
    /// is charged here — the event loop prices the transfer through
    /// [`FleetCost::handoff_cycles_on`]
    /// and charges both endpoints via [`Chip::charge_transfer_cycles`].
    /// Each job leaves carrying a [`ResumeState`] pinned to this chip;
    /// the event loop re-points the pin at the target decode chip once
    /// it picks one.
    ///
    /// # Panics
    ///
    /// Panics if called while a round is in flight.
    pub fn take_prefill_graduates(
        &mut self,
        mut pager: Option<&mut KvPager>,
        now: u64,
    ) -> Vec<(Job, u64)> {
        assert!(!self.in_flight, "handoff extraction mid-round");
        let migrants: Vec<usize> = (0..self.active.len())
            .filter(|&i| {
                let a = &self.active[i];
                a.prefilled && a.steps_done == 0 && a.job.workload.gen_steps > 0
            })
            .collect();
        let mut out = Vec::new();
        // Highest index first keeps the remaining indices valid.
        for &i in migrants.iter().rev() {
            let a = self.active.remove(i);
            let resume = ResumeState {
                chip: self.id,
                prefill_progress: a.prefill_progress,
                prefilled: true,
                steps_done: a.steps_done,
                start_cycles: a.start_cycles,
                first_token_cycles: a.first_token_cycles,
            };
            let dirty = match pager.as_deref_mut() {
                Some(p) => {
                    let unique = p.job_unique_bytes(a.job.id);
                    p.unmap_job(a.job.id, now);
                    self.kv_in_use = p.pinned_bytes();
                    unique
                }
                None => {
                    self.kv_in_use -= a.footprint;
                    a.footprint
                }
            };
            let mut job = a.job;
            job.resume = Some(resume);
            out.push((job, dirty));
        }
        out.reverse(); // resident order, for deterministic targeting
        out
    }

    /// Charges `cycles` of KV-transfer time (one endpoint's leg of a
    /// disaggregation handoff) to this chip: like preemption swaps, the
    /// transfer occupies the SRAM ports and HBM channels, so it executes
    /// at the head of the chip's next round and extends its busy time.
    pub fn charge_transfer_cycles(&mut self, cycles: u64) {
        self.pending_swap_cycles += cycles;
    }

    /// Starts the next round at time `now`, executing whatever `batch`
    /// plans for the resident set. Returns the round length in cycles, or
    /// `None` if the chip has no resident jobs. Completions are buffered
    /// and must be drained with [`Chip::end_round`] when the round ends.
    ///
    /// # Panics
    ///
    /// Panics if a round is already in flight, if the plan's length
    /// doesn't match the resident set, or if the plan advances no job (a
    /// zero-length round would stall the event loop).
    pub fn start_round<C: FleetCost, B: BatchPolicy>(
        &mut self,
        cost: &mut C,
        pager: Option<&mut KvPager>,
        batch: &mut B,
        now: u64,
    ) -> Option<u64> {
        assert!(!self.in_flight, "round already in flight");
        if self.active.is_empty() {
            return None;
        }
        // Let batch-aware oracles (pipeline bubble amortization) see the
        // live depth before any of this round's steps are priced.
        cost.note_batch(self.id, self.active.len());
        // Capture the batch size before the round body retires finished
        // jobs, or occupancy would undercount every completing round.
        let batch_size = self.active.len();
        let id = self.id;
        let mut views = std::mem::take(&mut self.views_scratch);
        views.clear();
        for a in &self.active {
            let w = &a.job.workload;
            let (prefill_remaining, next_decode) = if a.prefilled {
                let step = cost.decode_on(id, w, w.seq_len + a.steps_done + 1);
                (0, step.serial_cycles)
            } else {
                let total = cost.prefill_on(id, w).serial_cycles;
                (total - a.prefill_progress, 0)
            };
            views.push(ResidentView {
                arrival_cycles: a.job.arrival_cycles,
                priority: a.job.priority,
                prefilled: a.prefilled,
                prefill_remaining_cycles: prefill_remaining,
                steps_done: a.steps_done,
                gen_steps: w.gen_steps,
                next_decode_cycles: next_decode,
            });
        }
        let plan = batch.plan(&views);
        assert_eq!(
            plan.len(),
            views.len(),
            "batch plan must cover every resident"
        );
        self.views_scratch = views;
        let cycles = if plan == [RoundStep::WholeJob] {
            self.start_whole_job(cost, pager, now)
        } else {
            self.start_iteration(cost, pager, &plan, now)
        };
        // KV swaps accrued since the last round (evictions, resumed
        // admissions) execute at the head of this one.
        let swap = std::mem::take(&mut self.pending_swap_cycles);
        self.swap_cycles += swap;
        let cycles = cycles + swap;
        self.in_flight = true;
        self.busy_cycles += cycles;
        self.rounds += 1;
        self.occupancy_area += batch_size as u128 * u128::from(cycles);
        Some(cycles)
    }

    /// Ends the in-flight round, releasing the completions it produced.
    ///
    /// # Panics
    ///
    /// Panics if no round is in flight.
    pub fn end_round(&mut self) -> Vec<Completion> {
        assert!(self.in_flight, "no round in flight");
        self.in_flight = false;
        std::mem::take(&mut self.finished)
    }

    /// Ends the in-flight round, appending its completions to `out`
    /// instead of handing back a fresh `Vec` — the allocation-free
    /// variant the event loop uses (`out` and the chip's internal buffer
    /// both keep their capacity across rounds).
    ///
    /// # Panics
    ///
    /// Panics if no round is in flight.
    pub fn end_round_into(&mut self, out: &mut Vec<Completion>) {
        assert!(self.in_flight, "no round in flight");
        self.in_flight = false;
        out.append(&mut self.finished);
    }

    /// Run-to-completion round: exactly the whole job at the head of the
    /// resident set (run-to-completion chips hold at most one job).
    fn start_whole_job<C: FleetCost>(
        &mut self,
        cost: &mut C,
        pager: Option<&mut KvPager>,
        now: u64,
    ) -> u64 {
        debug_assert_eq!(self.active.len(), 1, "run-to-completion holds one job");
        let mut a = self.active.pop().expect("resident job");
        let w = &a.job.workload;
        let total = cost.job_serial_on(self.id, w);
        let ttft = cost.first_token_on(self.id, w);
        if a.first_token_cycles.is_none() {
            a.first_token_cycles = Some(now + ttft);
        }
        // The whole job retires in one round: the in-service estimate
        // charged at admission must be spent exactly.
        self.est_drift += a.est_remaining.abs_diff(total);
        match pager {
            Some(p) => {
                p.unmap_job(a.job.id, now + total);
                self.kv_in_use = p.pinned_bytes();
            }
            None => self.kv_in_use -= a.footprint,
        }
        if self.record_tokens {
            self.token_log.push(TokenEvent {
                id: a.job.id,
                class: a.job.class,
                chip: self.id,
                first: 0,
                count: w.gen_steps,
                emit_cycles: now + total,
                done: true,
            });
        }
        self.finished
            .push(Self::completion(&a, self.id, now + total, w.gen_steps));
        total
    }

    /// One iteration: each resident job executes its planned
    /// [`RoundStep`]. Compute and DRAM each serialize across the batch
    /// but overlap one another, and weight streams are fetched once per
    /// distinct model.
    ///
    /// # Panics
    ///
    /// Panics if the plan contains [`RoundStep::WholeJob`] (multi-job
    /// rounds interleave; whole jobs are a solitary-resident plan) or
    /// advances no job at all.
    fn start_iteration<C: FleetCost>(
        &mut self,
        cost: &mut C,
        mut pager: Option<&mut KvPager>,
        plan: &[RoundStep],
        now: u64,
    ) -> u64 {
        let mut compute = 0u64;
        let mut dram = 0u64;
        let mut overhead = 0u64;
        let mut advanced = 0usize;
        // Weight traffic per distinct model: charged once (the max of the
        // group, since per-job weight costs within a model are identical).
        // A flat (model, cycles) list beats a HashMap here — a batch
        // holds a handful of distinct models at most.
        let mut shared_weights = std::mem::take(&mut self.weights_scratch);
        shared_weights.clear();
        let mut done = std::mem::take(&mut self.done_scratch);
        done.clear();
        let mut first_emitters = std::mem::take(&mut self.emitters_scratch);
        first_emitters.clear();
        let id = self.id;
        // Token events recorded this round; their emit time is the
        // round's end, patched in once the batch's cycles are known.
        let token_mark = self.token_log.len();
        for (i, (a, directive)) in self.active.iter_mut().zip(plan).enumerate() {
            let w = &a.job.workload;
            let steps_before = a.steps_done;
            // The serial quantum this directive consumes, drawn off the
            // job's in-service estimate (for prefill that is the chunk
            // itself — the proportional `StepCost` below rounds, the
            // chunk ledger doesn't).
            let spent: u64;
            let step: StepCost = match directive {
                RoundStep::Idle => continue,
                RoundStep::WholeJob => panic!("whole-job step inside a batched round"),
                RoundStep::Prefill { chunk_cycles } => {
                    assert!(!a.prefilled, "prefill step for a prefilled job");
                    let total = cost.prefill_on(id, w);
                    let remaining = total.serial_cycles - a.prefill_progress;
                    let chunk = remaining.min((*chunk_cycles).max(1));
                    a.prefill_progress += chunk;
                    if a.prefill_progress >= total.serial_cycles {
                        a.prefilled = true;
                    }
                    spent = chunk;
                    // The chunk is a proportional slice of the whole pass.
                    let frac = chunk as f64 / total.serial_cycles.max(1) as f64;
                    StepCost {
                        compute_cycles: (total.compute_cycles as f64 * frac) as u64,
                        dram_cycles: (total.dram_cycles as f64 * frac) as u64,
                        weight_dram_cycles: (total.weight_dram_cycles as f64 * frac) as u64,
                        serial_cycles: (total.serial_cycles as f64 * frac) as u64,
                    }
                }
                RoundStep::Decode { steps } => {
                    assert!(a.prefilled, "decode step for an unprefilled job");
                    // Priority-weighted plans may bundle several tokens
                    // into one round; the burst is clamped to the tokens
                    // the job still wants. Each token prices at its own
                    // context length, so the in-service estimate charged
                    // at admission is spent exactly regardless of how
                    // tokens group into rounds.
                    let remaining = w.gen_steps.saturating_sub(a.steps_done);
                    let burst = (*steps).max(1).min(remaining.max(1));
                    let mut step = StepCost::default();
                    for _ in 0..burst {
                        a.steps_done += 1;
                        // Cascade pruning retires tokens as decode
                        // proceeds: under paging, whole blocks return to
                        // the free pool while the job is still running.
                        if let Some(p) = pager.as_deref_mut() {
                            a.footprint = p.reclaim(a.job.id, a.steps_done as u64);
                            self.kv_in_use = p.pinned_bytes();
                        }
                        let s = cost.decode_on(id, w, w.seq_len + a.steps_done);
                        step.compute_cycles += s.compute_cycles;
                        step.dram_cycles += s.dram_cycles;
                        step.weight_dram_cycles += s.weight_dram_cycles;
                        step.serial_cycles += s.serial_cycles;
                    }
                    spent = step.serial_cycles;
                    step
                }
            };
            // Work dispatched into this round counts as done for the
            // in-service estimate; underflow is drift, not free work.
            let over = spent.saturating_sub(a.est_remaining);
            self.est_drift += over;
            a.est_remaining = a.est_remaining.saturating_sub(spent);
            advanced += 1;
            compute += step.compute_cycles;
            dram += step.dram_cycles - step.weight_dram_cycles;
            match shared_weights.iter_mut().find(|(m, _)| *m == w.model) {
                Some((_, shared)) => *shared = (*shared).max(step.weight_dram_cycles),
                None => shared_weights.push((w.model, step.weight_dram_cycles)),
            }
            // Each job contributes its non-overlappable slack: pipeline
            // fill plus the cross-layer serialization the serial model
            // charges beyond max(Σcompute, Σdram) (a layer can't overlap
            // its own bottleneck). Conservative for batching — cross-job
            // overlap of this slack is deliberately not credited.
            overhead += step
                .serial_cycles
                .saturating_sub(step.compute_cycles.max(step.dram_cycles));
            let finished = if w.gen_steps == 0 {
                a.prefilled
            } else {
                a.prefilled && a.steps_done == w.gen_steps
            };
            let emits_token = a.prefilled && (w.gen_steps == 0 || a.steps_done >= 1);
            if emits_token && a.first_token_cycles.is_none() {
                first_emitters.push(i);
            }
            if finished {
                done.push(i);
            }
            if self.record_tokens {
                let count = a.steps_done - steps_before;
                if count > 0 || finished {
                    self.token_log.push(TokenEvent {
                        id: a.job.id,
                        class: a.job.class,
                        chip: id,
                        first: steps_before,
                        count,
                        emit_cycles: 0, // the round's end, patched below
                        done: finished,
                    });
                }
            }
        }
        assert!(advanced > 0, "batch plan advanced no job");
        dram += shared_weights.iter().map(|&(_, v)| v).sum::<u64>();
        let cycles = compute.max(dram) + overhead;
        let end = now + cycles;
        for ev in &mut self.token_log[token_mark..] {
            ev.emit_cycles = end;
        }
        for &i in &first_emitters {
            self.active[i].first_token_cycles = Some(end);
        }
        // Retire finished jobs (highest index first keeps indices valid).
        for &i in done.iter().rev() {
            let a = self.active.remove(i);
            // A retiring job must have spent its whole estimate.
            self.est_drift += a.est_remaining;
            match pager.as_deref_mut() {
                Some(p) => {
                    p.unmap_job(a.job.id, end);
                    self.kv_in_use = p.pinned_bytes();
                }
                None => self.kv_in_use -= a.footprint,
            }
            let generated = a.job.workload.gen_steps;
            self.finished
                .push(Self::completion(&a, self.id, end, generated));
        }
        self.weights_scratch = shared_weights;
        self.done_scratch = done;
        self.emitters_scratch = first_emitters;
        cycles
    }

    fn completion(a: &Active, chip: usize, finish: u64, generated: usize) -> Completion {
        Completion {
            id: a.job.id,
            class: a.job.class,
            priority: a.job.priority,
            client: a.job.client,
            chip,
            arrival_cycles: a.job.arrival_cycles,
            start_cycles: a.start_cycles,
            finish_cycles: finish,
            first_token_cycles: a.first_token_cycles.unwrap_or(finish),
            deadline_cycles: a.job.deadline_cycles,
            preemptions: a.job.preemptions,
            prefill_tokens: a.job.workload.seq_len,
            generated_tokens: generated,
            revoked: a.job.revoked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::IterationBatch;
    use crate::cost::CostModel;
    use spatten_core::SpAttenConfig;
    use spatten_workloads::Benchmark;

    fn job(id: u64, seq_len: usize, gen_steps: usize) -> Job {
        let mut workload = Benchmark::gpt2_small_wikitext2().workload();
        workload.seq_len = seq_len;
        workload.gen_steps = gen_steps;
        Job {
            id,
            class: 0,
            priority: 0,
            client: None,
            arrival_cycles: 0,
            deadline_cycles: None,
            preemptions: 0,
            resume: None,
            shared_prefix_tokens: 0,
            revoked: false,
            workload,
        }
    }

    /// Run `chip` through rounds until its resident set drains, returning
    /// total cycles.
    fn run_dry(chip: &mut Chip, cost: &mut CostModel, batch: &mut IterationBatch) -> u64 {
        let mut now = 0;
        while let Some(cycles) = chip.start_round(cost, None, batch, now) {
            now += cycles;
            chip.end_round();
        }
        now
    }

    #[test]
    fn eviction_charges_swap_cycles_and_preserves_progress() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut batch = IterationBatch {
            prefill_chunk_cycles: u64::MAX, // whole prefill in one round
        };

        // Uninterrupted baseline.
        let mut plain = Chip::new(0);
        plain.admit(&mut cost, None, job(0, 128, 6), 0);
        let baseline = run_dry(&mut plain, &mut cost, &mut batch);
        assert_eq!(plain.swap_cycles, 0);
        let plain_rounds = plain.rounds;

        // Same job, evicted after 2 decode steps and re-admitted.
        let mut chip = Chip::new(0);
        chip.admit(&mut cost, None, job(0, 128, 6), 0);
        let mut now = 0;
        for _ in 0..3 {
            // prefill round + 2 decode rounds
            now += chip.start_round(&mut cost, None, &mut batch, now).unwrap();
            chip.end_round();
        }
        let evicted = chip.evict(&mut cost, None, &[0], now);
        assert_eq!(evicted.len(), 1);
        assert_eq!(chip.active_jobs(), 0);
        assert_eq!(chip.kv_in_use(), 0, "eviction releases KV");
        let resume = evicted[0].resume.expect("resume state rides along");
        assert!(resume.prefilled);
        assert_eq!(resume.steps_done, 2);
        assert_eq!(evicted[0].preemptions, 1);

        chip.admit(&mut cost, None, evicted.into_iter().next().unwrap(), now);
        let mut done = Vec::new();
        while let Some(cycles) = chip.start_round(&mut cost, None, &mut batch, now) {
            now += cycles;
            done.extend(chip.end_round());
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].generated_tokens, 6, "no decoded work lost");
        assert_eq!(done[0].preemptions, 1);
        // Work rounds match the baseline (progress resumed, not redone),
        // and the swap is charged on top of the baseline's cycles.
        assert_eq!(chip.rounds, plain_rounds);
        assert!(chip.swap_cycles > 0, "swap-out + swap-in must be priced");
        assert_eq!(
            chip.busy_cycles,
            baseline + chip.swap_cycles,
            "busy time = baseline work + swap cost, nothing redone"
        );
    }

    #[test]
    fn in_service_estimate_tracks_progress_without_drift() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut batch = IterationBatch {
            prefill_chunk_cycles: u64::MAX,
        };
        let mut chip = Chip::new(0);
        assert_eq!(chip.in_service_cycles(), 0);
        let j = job(0, 128, 6);
        let total = cost.job_serial_cycles(&j.workload);
        chip.admit(&mut cost, None, j, 0);
        // Admission charges exactly the whole-job serial estimate.
        assert_eq!(chip.in_service_cycles(), total);
        // Each round draws the estimate down, strictly monotonically.
        let mut now = 0;
        let mut last = chip.in_service_cycles();
        while let Some(cycles) = chip.start_round(&mut cost, None, &mut batch, now) {
            now += cycles;
            chip.end_round();
            let remaining = chip.in_service_cycles();
            assert!(remaining < last, "estimate must shrink every round");
            last = remaining;
        }
        // ...and reaches exactly zero at completion: no drift.
        assert_eq!(chip.in_service_cycles(), 0);
        assert_eq!(chip.est_drift, 0);
    }

    #[test]
    fn eviction_and_resume_rebalance_the_in_service_estimate() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut batch = IterationBatch {
            prefill_chunk_cycles: u64::MAX,
        };
        let mut chip = Chip::new(0);
        chip.admit(&mut cost, None, job(0, 128, 6), 0);
        let mut now = 0;
        for _ in 0..3 {
            now += chip.start_round(&mut cost, None, &mut batch, now).unwrap();
            chip.end_round();
        }
        let before = chip.in_service_cycles();
        assert!(before > 0, "mid-generation job still holds estimate");
        // Eviction removes the job's whole remaining estimate...
        let evicted = chip.evict(&mut cost, None, &[0], now);
        assert_eq!(chip.in_service_cycles(), 0);
        // ...and re-admission restores exactly it (progress preserved).
        chip.admit(&mut cost, None, evicted.into_iter().next().unwrap(), now);
        assert_eq!(chip.in_service_cycles(), before);
        while let Some(cycles) = chip.start_round(&mut cost, None, &mut batch, now) {
            now += cycles;
            chip.end_round();
        }
        assert_eq!(chip.in_service_cycles(), 0);
        assert_eq!(chip.est_drift, 0, "admit/evict/resume must not drift");
    }

    #[test]
    fn eviction_churn_counts_and_decays() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut chip = Chip::new(0);
        assert_eq!(chip.recent_evictions(0), 0.0);
        chip.admit(&mut cost, None, job(0, 64, 8), 0);
        chip.admit(&mut cost, None, job(1, 64, 8), 0);
        chip.evict(&mut cost, None, &[0, 1], 1000);
        let fresh = chip.recent_evictions(1000);
        assert!((fresh - 2.0).abs() < 1e-9, "two evictions counted: {fresh}");
        // One half-life later the counter has halved.
        let later = chip.recent_evictions(1000 + CHURN_HALF_LIFE_CYCLES);
        assert!((later - 1.0).abs() < 1e-9, "half-life decay: {later}");
        // Another eviction folds the decayed value down and adds one.
        chip.admit(
            &mut cost,
            None,
            job(2, 64, 8),
            1000 + CHURN_HALF_LIFE_CYCLES,
        );
        chip.evict(&mut cost, None, &[0], 1000 + CHURN_HALF_LIFE_CYCLES);
        let stacked = chip.recent_evictions(1000 + CHURN_HALF_LIFE_CYCLES);
        assert!((stacked - 2.0).abs() < 1e-9, "1 decayed + 1 new: {stacked}");
    }

    #[test]
    #[should_panic(expected = "pinned to chip")]
    fn admitting_a_job_pinned_elsewhere_panics() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        // Evict from chip 1, then try to resume on chip 0: the job's
        // swapped KV prefix lives in chip 1's HBM, so this is a
        // migration bug the chip must catch.
        let mut home = Chip::new(1);
        home.admit(&mut cost, None, job(0, 128, 6), 0);
        let now = home.start_round(
            &mut cost,
            None,
            &mut IterationBatch {
                prefill_chunk_cycles: u64::MAX,
            },
            0,
        );
        home.end_round();
        let evicted = home.evict(&mut cost, None, &[0], now.unwrap());
        let mut wrong = Chip::new(0);
        wrong.admit(&mut cost, None, evicted.into_iter().next().unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "has left the fleet")]
    fn admitting_to_a_departed_chip_panics() {
        // The guard the elastic event loop leans on: once a drain or
        // revocation completes, any placement path that still targets
        // the chip (routing, stealing, handoff) is a bug, not a quiet
        // re-admission.
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut chip = Chip::new(0);
        chip.leave();
        chip.admit(&mut cost, None, job(0, 128, 4), 0);
    }

    #[test]
    fn leave_books_the_pending_final_swap_and_rejoin_rearms() {
        // An executed revocation's final KV drain has no future round to
        // absorb it: leave() books it straight into busy + swap cycles.
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut chip = Chip::new(0);
        chip.admit(&mut cost, None, job(0, 256, 8), 0);
        let now = chip
            .start_round(
                &mut cost,
                None,
                &mut IterationBatch {
                    prefill_chunk_cycles: u64::MAX,
                },
                0,
            )
            .unwrap();
        chip.end_round();
        chip.evict(&mut cost, None, &[0], now);
        let busy_before = chip.busy_cycles;
        let swap_before = chip.swap_cycles;
        chip.leave();
        assert!(chip.has_left());
        assert!(
            chip.busy_cycles > busy_before && chip.swap_cycles > swap_before,
            "the eviction's swap-out must be booked at departure"
        );
        // A rejoin re-arms admission without touching the ledgers.
        chip.rejoin();
        assert!(!chip.has_left());
        chip.admit(&mut cost, None, job(1, 64, 2), now);
        assert_eq!(chip.active_jobs(), 1);
    }

    #[test]
    fn fully_shared_prefix_victim_swaps_nothing() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut batch = IterationBatch {
            prefill_chunk_cycles: 10_000,
        };
        let budget = cost.budget_on(0);
        let mut pager = KvPager::new(16 * 1024, budget);
        // A job whose whole prompt is the class prefix: every resident
        // prompt byte is shared, so preemption has nothing unique to
        // drain and resume nothing to restore. Evict only after prefill
        // completes — a mid-prefill victim has built almost no KV yet
        // and would swap ~nothing under either model.
        let mut shared = job(0, 256, 4);
        shared.shared_prefix_tokens = 256;
        let full = cost.prefill_on(0, &shared.workload).serial_cycles;
        let prefill_rounds = full.div_ceil(10_000);
        let mut chip = Chip::new(0);
        chip.admit(&mut cost, Some(&mut pager), shared, 0);
        assert_eq!(pager.job_unique_bytes(0), 0);
        let mut now = 0;
        for _ in 0..prefill_rounds {
            now += chip
                .start_round(&mut cost, Some(&mut pager), &mut batch, now)
                .unwrap();
            chip.end_round();
        }
        let evicted = chip.evict(&mut cost, Some(&mut pager), &[0], now);
        let resume = evicted[0].resume.expect("resume state");
        assert!(resume.prefilled, "victim must carry its full prompt KV");
        chip.admit(
            &mut cost,
            Some(&mut pager),
            evicted.into_iter().next().unwrap(),
            now,
        );
        while let Some(cycles) = chip.start_round(&mut cost, Some(&mut pager), &mut batch, now) {
            now += cycles;
            chip.end_round();
        }
        assert_eq!(chip.evictions, 1);
        assert_eq!(
            chip.swap_cycles, 0,
            "a fully-shared victim's swap must be free"
        );
        pager.assert_drained();

        // The identical eviction without sharing pays a real HBM drain.
        let mut contig = Chip::new(0);
        contig.admit(&mut cost, None, job(1, 256, 4), 0);
        let mut t = 0;
        for _ in 0..prefill_rounds {
            t += contig.start_round(&mut cost, None, &mut batch, t).unwrap();
            contig.end_round();
        }
        let ev = contig.evict(&mut cost, None, &[0], t);
        contig.admit(&mut cost, None, ev.into_iter().next().unwrap(), t);
        while let Some(c) = contig.start_round(&mut cost, None, &mut batch, t) {
            t += c;
            contig.end_round();
        }
        assert!(contig.swap_cycles > 0, "unshared KV must swap for real");
    }

    #[test]
    fn paged_decode_reclaims_blocks_mid_stream() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut batch = IterationBatch {
            prefill_chunk_cycles: u64::MAX,
        };
        let budget = cost.budget_on(0);
        let mut pager = KvPager::new(16 * 1024, budget);
        let mut chip = Chip::new(0);
        chip.admit(&mut cost, Some(&mut pager), job(0, 256, 8), 0);
        let peak = chip.kv_in_use();
        let mut now = 0;
        let mut last = peak;
        while let Some(cycles) = chip.start_round(&mut cost, Some(&mut pager), &mut batch, now) {
            now += cycles;
            chip.end_round();
            let held = chip.kv_in_use();
            assert!(held <= last, "paged footprint grew mid-stream");
            last = held;
        }
        assert_eq!(chip.kv_in_use(), 0);
        assert!(
            pager.stats.blocks_reclaimed > 0,
            "the pruning ramp must return blocks while decoding"
        );
        pager.assert_drained();
    }

    #[test]
    fn prefill_graduates_leave_without_preemption_accounting() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut batch = IterationBatch {
            prefill_chunk_cycles: u64::MAX,
        };
        let mut chip = Chip::new(0);
        chip.admit(&mut cost, None, job(0, 128, 6), 0);
        // Mid-prefill there is nothing to hand off yet.
        assert!(chip.take_prefill_graduates(None, 0).is_empty());
        let now = chip.start_round(&mut cost, None, &mut batch, 0).unwrap();
        chip.end_round();
        let grads = chip.take_prefill_graduates(None, now);
        assert_eq!(grads.len(), 1);
        let (j, dirty) = &grads[0];
        assert!(dirty > &0, "contiguous handoff ships the whole footprint");
        let resume = j.resume.expect("handoff carries resume state");
        assert!(resume.prefilled);
        assert_eq!(resume.steps_done, 0);
        assert_eq!(j.preemptions, 0, "a handoff is not a preemption");
        assert_eq!(chip.evictions, 0);
        assert_eq!(chip.kv_in_use(), 0, "departure releases the KV");
        assert_eq!(chip.active_jobs(), 0);
        assert_eq!(
            chip.recent_evictions(now),
            0.0,
            "handoffs must not register as churn"
        );

        // A job already decoding is not a graduate.
        let mut busy = Chip::new(1);
        busy.admit(&mut cost, None, job(1, 128, 6), 0);
        let mut t = 0;
        for _ in 0..2 {
            // prefill + one decode round
            t += busy.start_round(&mut cost, None, &mut batch, t).unwrap();
            busy.end_round();
        }
        assert!(busy.take_prefill_graduates(None, t).is_empty());
        assert_eq!(busy.active_jobs(), 1);
    }

    #[test]
    fn transfer_cycles_charge_into_the_next_round() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut batch = IterationBatch {
            prefill_chunk_cycles: u64::MAX,
        };
        let mut plain = Chip::new(0);
        plain.admit(&mut cost, None, job(0, 128, 0), 0);
        let base = plain.start_round(&mut cost, None, &mut batch, 0).unwrap();
        plain.end_round();

        let mut charged = Chip::new(0);
        charged.admit(&mut cost, None, job(0, 128, 0), 0);
        charged.charge_transfer_cycles(12_345);
        let round = charged.start_round(&mut cost, None, &mut batch, 0).unwrap();
        charged.end_round();
        assert_eq!(round, base + 12_345);
        assert_eq!(charged.swap_cycles, 12_345);
    }

    #[test]
    fn mid_prefill_eviction_keeps_prefill_progress() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut batch = IterationBatch {
            prefill_chunk_cycles: 10_000, // force many prefill rounds
        };
        let mut chip = Chip::new(0);
        chip.admit(&mut cost, None, job(0, 256, 0), 0);
        let mut now = 0;
        for _ in 0..2 {
            now += chip.start_round(&mut cost, None, &mut batch, now).unwrap();
            chip.end_round();
        }
        let evicted = chip.evict(&mut cost, None, &[0], now);
        let resume = evicted[0].resume.expect("resume state");
        assert!(!resume.prefilled);
        assert_eq!(resume.prefill_progress, 20_000);
        chip.admit(&mut cost, None, evicted.into_iter().next().unwrap(), now);
        // The resumed job finishes the remaining prefill only.
        let total = cost.prefill_on(0, &job(0, 256, 0).workload).serial_cycles;
        let mut remaining_rounds = 0;
        while let Some(cycles) = chip.start_round(&mut cost, None, &mut batch, now) {
            now += cycles;
            chip.end_round();
            remaining_rounds += 1;
        }
        assert_eq!(
            remaining_rounds,
            total.saturating_sub(20_000).div_ceil(10_000)
        );
    }
}
