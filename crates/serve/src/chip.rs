//! One simulated SpAtten accelerator inside the fleet.
//!
//! A chip executes *rounds*. What a round contains is the
//! [`BatchPolicy`]'s decision: under run-to-completion policies a round
//! is an entire job; under iteration-level policies a round is one
//! iteration in which each resident job executes the [`RoundStep`] the
//! policy planned for it — a chunk of its prefill pass, one decode token,
//! or nothing (decode-prioritized budgets may idle a prefill for a
//! round). The iteration's length is set by HBM-bandwidth-aware
//! co-scheduling:
//!
//! ```text
//! iteration_cycles = max( Σ compute_i , Σ dram_i ) + round_overhead
//! ```
//!
//! Each resource serializes within itself (one multiplier-array complex,
//! one HBM stack per chip), but one job's compute overlaps another job's
//! KV/weight streaming. On top of that, *model weights are shared*: every
//! resident job of the same model reads the same FC/FFN planes, so the
//! iteration streams them once per model, not once per job
//! ([`spatten_core::StepCost::weight_dram_cycles`]) — the batched-matvec →
//! matmul effect that makes batched decode profitable at all. Per-request
//! KV traffic stays private and still serializes across the batch.

use crate::batch::{BatchPolicy, ResidentView, RoundStep};
use crate::cost::FleetCost;
use crate::request::{Completion, Job};
use spatten_core::StepCost;
use spatten_nn::ModelConfig;
use std::collections::HashMap;

/// A job resident on a chip.
#[derive(Debug, Clone)]
struct Active {
    job: Job,
    footprint: u64,
    start_cycles: u64,
    first_token_cycles: Option<u64>,
    /// Serial prefill cycles completed so far (chunked prefill: the pass
    /// advances one quantum per iteration so resident decode jobs never
    /// stall behind a whole multi-millisecond prefill).
    prefill_progress: u64,
    /// Whether the prefill pass has fully executed.
    prefilled: bool,
    /// Decode steps completed so far.
    steps_done: usize,
}

/// One accelerator's event-loop state.
#[derive(Debug)]
pub struct Chip {
    /// Chip index within the fleet.
    pub id: usize,
    active: Vec<Active>,
    kv_in_use: u64,
    /// Completions produced by the in-flight round (drained when it ends).
    finished: Vec<Completion>,
    /// Whether a round is currently executing.
    in_flight: bool,
    /// Cycles this chip spent executing rounds.
    pub busy_cycles: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Σ (batch size × round cycles), for mean-occupancy reporting.
    pub occupancy_area: u128,
    /// High-water mark of KV SRAM bytes in use.
    pub max_kv_in_use: u64,
}

impl Chip {
    /// An idle chip.
    pub fn new(id: usize) -> Self {
        Self {
            id,
            active: Vec::new(),
            kv_in_use: 0,
            finished: Vec::new(),
            in_flight: false,
            busy_cycles: 0,
            rounds: 0,
            occupancy_area: 0,
            max_kv_in_use: 0,
        }
    }

    /// Jobs currently resident.
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// KV SRAM bytes currently reserved.
    pub fn kv_in_use(&self) -> u64 {
        self.kv_in_use
    }

    /// Whether a round is executing right now.
    pub fn is_in_flight(&self) -> bool {
        self.in_flight
    }

    /// Admits a job into the resident set at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if called while a round is in flight (admission happens only
    /// at round boundaries).
    pub fn admit<C: FleetCost>(&mut self, cost: &mut C, job: Job, now: u64) {
        assert!(!self.in_flight, "admission mid-round");
        let footprint = cost.footprint_on(self.id, &job.workload);
        self.kv_in_use += footprint;
        self.max_kv_in_use = self.max_kv_in_use.max(self.kv_in_use);
        self.active.push(Active {
            job,
            footprint,
            start_cycles: now,
            first_token_cycles: None,
            prefill_progress: 0,
            prefilled: false,
            steps_done: 0,
        });
    }

    /// Starts the next round at time `now`, executing whatever `batch`
    /// plans for the resident set. Returns the round length in cycles, or
    /// `None` if the chip has no resident jobs. Completions are buffered
    /// and must be drained with [`Chip::end_round`] when the round ends.
    ///
    /// # Panics
    ///
    /// Panics if a round is already in flight, if the plan's length
    /// doesn't match the resident set, or if the plan advances no job (a
    /// zero-length round would stall the event loop).
    pub fn start_round<C: FleetCost, B: BatchPolicy>(
        &mut self,
        cost: &mut C,
        batch: &mut B,
        now: u64,
    ) -> Option<u64> {
        assert!(!self.in_flight, "round already in flight");
        if self.active.is_empty() {
            return None;
        }
        // Let batch-aware oracles (pipeline bubble amortization) see the
        // live depth before any of this round's steps are priced.
        cost.note_batch(self.id, self.active.len());
        // Capture the batch size before the round body retires finished
        // jobs, or occupancy would undercount every completing round.
        let batch_size = self.active.len();
        let id = self.id;
        let views: Vec<ResidentView> = self
            .active
            .iter()
            .map(|a| {
                let w = &a.job.workload;
                let (prefill_remaining, next_decode) = if a.prefilled {
                    let step = cost.decode_on(id, w, w.seq_len + a.steps_done + 1);
                    (0, step.serial_cycles)
                } else {
                    let total = cost.prefill_on(id, w).serial_cycles;
                    (total - a.prefill_progress, 0)
                };
                ResidentView {
                    arrival_cycles: a.job.arrival_cycles,
                    prefilled: a.prefilled,
                    prefill_remaining_cycles: prefill_remaining,
                    steps_done: a.steps_done,
                    gen_steps: w.gen_steps,
                    next_decode_cycles: next_decode,
                }
            })
            .collect();
        let plan = batch.plan(&views);
        assert_eq!(
            plan.len(),
            views.len(),
            "batch plan must cover every resident"
        );
        let cycles = if plan == [RoundStep::WholeJob] {
            self.start_whole_job(cost, now)
        } else {
            self.start_iteration(cost, &plan, now)
        };
        self.in_flight = true;
        self.busy_cycles += cycles;
        self.rounds += 1;
        self.occupancy_area += batch_size as u128 * u128::from(cycles);
        Some(cycles)
    }

    /// Ends the in-flight round, releasing the completions it produced.
    ///
    /// # Panics
    ///
    /// Panics if no round is in flight.
    pub fn end_round(&mut self) -> Vec<Completion> {
        assert!(self.in_flight, "no round in flight");
        self.in_flight = false;
        std::mem::take(&mut self.finished)
    }

    /// Run-to-completion round: exactly the whole job at the head of the
    /// resident set (run-to-completion chips hold at most one job).
    fn start_whole_job<C: FleetCost>(&mut self, cost: &mut C, now: u64) -> u64 {
        debug_assert_eq!(self.active.len(), 1, "run-to-completion holds one job");
        let mut a = self.active.pop().expect("resident job");
        let w = &a.job.workload;
        let total = cost.job_serial_on(self.id, w);
        let ttft = cost.first_token_on(self.id, w);
        a.first_token_cycles = Some(now + ttft);
        self.kv_in_use -= a.footprint;
        self.finished
            .push(Self::completion(&a, self.id, now + total, w.gen_steps));
        total
    }

    /// One iteration: each resident job executes its planned
    /// [`RoundStep`]. Compute and DRAM each serialize across the batch
    /// but overlap one another, and weight streams are fetched once per
    /// distinct model.
    ///
    /// # Panics
    ///
    /// Panics if the plan contains [`RoundStep::WholeJob`] (multi-job
    /// rounds interleave; whole jobs are a solitary-resident plan) or
    /// advances no job at all.
    fn start_iteration<C: FleetCost>(&mut self, cost: &mut C, plan: &[RoundStep], now: u64) -> u64 {
        let mut compute = 0u64;
        let mut dram = 0u64;
        let mut overhead = 0u64;
        let mut advanced = 0usize;
        // Weight traffic per distinct model: charged once (the max of the
        // group, since per-job weight costs within a model are identical).
        let mut shared_weights: HashMap<ModelConfig, u64> = HashMap::new();
        let mut done: Vec<usize> = Vec::new();
        let mut first_emitters: Vec<usize> = Vec::new();
        let id = self.id;
        for (i, (a, directive)) in self.active.iter_mut().zip(plan).enumerate() {
            let w = &a.job.workload;
            let step: StepCost = match directive {
                RoundStep::Idle => continue,
                RoundStep::WholeJob => panic!("whole-job step inside a batched round"),
                RoundStep::Prefill { chunk_cycles } => {
                    assert!(!a.prefilled, "prefill step for a prefilled job");
                    let total = cost.prefill_on(id, w);
                    let remaining = total.serial_cycles - a.prefill_progress;
                    let chunk = remaining.min((*chunk_cycles).max(1));
                    a.prefill_progress += chunk;
                    if a.prefill_progress >= total.serial_cycles {
                        a.prefilled = true;
                    }
                    // The chunk is a proportional slice of the whole pass.
                    let frac = chunk as f64 / total.serial_cycles.max(1) as f64;
                    StepCost {
                        compute_cycles: (total.compute_cycles as f64 * frac) as u64,
                        dram_cycles: (total.dram_cycles as f64 * frac) as u64,
                        weight_dram_cycles: (total.weight_dram_cycles as f64 * frac) as u64,
                        serial_cycles: (total.serial_cycles as f64 * frac) as u64,
                    }
                }
                RoundStep::Decode => {
                    assert!(a.prefilled, "decode step for an unprefilled job");
                    a.steps_done += 1;
                    cost.decode_on(id, w, w.seq_len + a.steps_done)
                }
            };
            advanced += 1;
            compute += step.compute_cycles;
            dram += step.dram_cycles - step.weight_dram_cycles;
            let shared = shared_weights.entry(w.model).or_insert(0);
            *shared = (*shared).max(step.weight_dram_cycles);
            // Each job contributes its non-overlappable slack: pipeline
            // fill plus the cross-layer serialization the serial model
            // charges beyond max(Σcompute, Σdram) (a layer can't overlap
            // its own bottleneck). Conservative for batching — cross-job
            // overlap of this slack is deliberately not credited.
            overhead += step
                .serial_cycles
                .saturating_sub(step.compute_cycles.max(step.dram_cycles));
            let finished = if w.gen_steps == 0 {
                a.prefilled
            } else {
                a.prefilled && a.steps_done == w.gen_steps
            };
            let emits_token = a.prefilled && (w.gen_steps == 0 || a.steps_done >= 1);
            if emits_token && a.first_token_cycles.is_none() {
                first_emitters.push(i);
            }
            if finished {
                done.push(i);
            }
        }
        assert!(advanced > 0, "batch plan advanced no job");
        dram += shared_weights.values().sum::<u64>();
        let cycles = compute.max(dram) + overhead;
        let end = now + cycles;
        for i in first_emitters {
            self.active[i].first_token_cycles = Some(end);
        }
        // Retire finished jobs (highest index first keeps indices valid).
        for &i in done.iter().rev() {
            let a = self.active.remove(i);
            self.kv_in_use -= a.footprint;
            let generated = a.job.workload.gen_steps;
            self.finished
                .push(Self::completion(&a, self.id, end, generated));
        }
        cycles
    }

    fn completion(a: &Active, chip: usize, finish: u64, generated: usize) -> Completion {
        Completion {
            id: a.job.id,
            class: a.job.class,
            client: a.job.client,
            chip,
            arrival_cycles: a.job.arrival_cycles,
            start_cycles: a.start_cycles,
            finish_cycles: finish,
            first_token_cycles: a.first_token_cycles.unwrap_or(finish),
            deadline_cycles: a.job.deadline_cycles,
            prefill_tokens: a.job.workload.seq_len,
            generated_tokens: generated,
        }
    }
}
