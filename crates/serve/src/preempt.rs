//! Pluggable preemption policies: which resident jobs get evicted to
//! make room for higher-priority queued work.
//!
//! Admission ([`crate::scheduler::AdmissionPolicy`]) can only act on free
//! capacity; once a chip's batch is full of long low-priority
//! generations, a latency-critical arrival waits for one of them to
//! *finish* — exactly the head-of-line blocking tail latency dies of. A
//! [`PreemptionPolicy`] runs at every round boundary, *before*
//! admission: it sees the queue and the resident set and may evict
//! residents mid-decode. Eviction is not free and not destructive:
//!
//! * The victim's KV working set is **drained to HBM** and later
//!   **restored**, each direction priced by
//!   [`crate::cost::FleetCost::swap_cycles_on`]
//!   at the chip's DRAM bandwidth and charged to the chip's busy time.
//! * The victim is re-queued **with its progress intact**
//!   ([`crate::request::ResumeState`]): completed prefill cycles and
//!   decoded tokens are never recomputed, so preemption trades *latency*
//!   (the victim's) for latency (the high-priority job's) — it never
//!   throws work away.
//!
//! Bundled policies:
//!
//! * [`NoPreemption`] — the default: residents run to completion of
//!   their admission (the PR 1–3 behavior).
//! * [`PriorityPreemption`] — evicts strictly-lower-priority residents
//!   when the highest-priority queued job cannot fit, choosing victims by
//!   (lowest priority, largest KV freed, youngest arrival) and stopping
//!   as soon as the blocked job fits. A per-job `fairness` bound caps how
//!   often any one job may be evicted: once a job has been preempted
//!   `fairness` times it becomes immune, so adversarial high-priority
//!   floods cannot starve the batch tier.

use crate::cost::FleetCost;
use crate::request::Job;
use crate::scheduler::ChipCapacity;
use std::cmp::Reverse;
use std::fmt;

/// The event loop's view of one resident job, offered to
/// [`PreemptionPolicy::victims`] (in resident order, matching the
/// indices the policy returns).
#[derive(Debug, Clone, Copy)]
pub struct VictimView {
    /// Scheduling priority tier (higher outranks lower).
    pub priority: u8,
    /// Times this job has already been preempted.
    pub preemptions: u32,
    /// KV SRAM bytes the job pins (freed if evicted).
    pub kv_footprint: u64,
    /// Whether the prefill pass has fully executed.
    pub prefilled: bool,
    /// Decode steps completed so far.
    pub steps_done: usize,
    /// Decode steps the job wants in total.
    pub gen_steps: usize,
    /// Arrival time in cycles.
    pub arrival_cycles: u64,
}

impl VictimView {
    /// Decode steps still outstanding (the whole generation while the
    /// prefill pass is still running).
    pub fn remaining_steps(&self) -> usize {
        self.gen_steps
            .saturating_sub(if self.prefilled { self.steps_done } else { 0 })
    }
}

/// The preemption seam: picks resident jobs to evict at a round
/// boundary, before admission runs.
///
/// Returns indices into `residents`; an empty vector means nobody moves.
/// The event loop evicts the victims (charging swap-out), re-queues them
/// with their [`ResumeState`](crate::request::ResumeState), and only then
/// runs admission against the enlarged capacity.
///
/// ```
/// use spatten_serve::{
///     ChipCapacity, FleetCost, Job, PreemptionPolicy, VictimView,
/// };
///
/// /// Evict every resident whenever anything is queued (a toy policy —
/// /// it thrashes, but it shows the seam).
/// #[derive(Debug)]
/// struct EvictAll;
/// impl PreemptionPolicy for EvictAll {
///     fn name(&self) -> &'static str {
///         "evict-all"
///     }
///     fn victims(
///         &mut self,
///         queued: &[&Job],
///         residents: &[VictimView],
///         _cost: &mut dyn FleetCost,
///         _chip: usize,
///         _cap: ChipCapacity,
///         _now: u64,
///     ) -> Vec<usize> {
///         if queued.is_empty() {
///             Vec::new()
///         } else {
///             (0..residents.len()).collect()
///         }
///     }
/// }
/// ```
pub trait PreemptionPolicy: fmt::Debug {
    /// Stable lowercase name for reports.
    fn name(&self) -> &'static str;

    /// Whether this policy can ever evict. The event loop skips the
    /// per-kick queue/resident snapshot entirely when this is `false`,
    /// so the default non-preemptive configuration pays nothing for the
    /// seam. Override only for always-empty policies.
    fn may_preempt(&self) -> bool {
        true
    }

    /// Picks victims among `residents` of chip `chip` at time `now`,
    /// given the jobs `queued` for it (its private queue first, then the
    /// shared queue, each in arrival order) and its free capacity `cap`.
    fn victims(
        &mut self,
        queued: &[&Job],
        residents: &[VictimView],
        cost: &mut dyn FleetCost,
        chip: usize,
        cap: ChipCapacity,
        now: u64,
    ) -> Vec<usize>;
}

impl PreemptionPolicy for Box<dyn PreemptionPolicy> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn may_preempt(&self) -> bool {
        self.as_ref().may_preempt()
    }

    fn victims(
        &mut self,
        queued: &[&Job],
        residents: &[VictimView],
        cost: &mut dyn FleetCost,
        chip: usize,
        cap: ChipCapacity,
        now: u64,
    ) -> Vec<usize> {
        self.as_mut()
            .victims(queued, residents, cost, chip, cap, now)
    }
}

/// Never evicts: admitted jobs hold their batch slot to completion.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPreemption;

impl PreemptionPolicy for NoPreemption {
    fn name(&self) -> &'static str {
        "none"
    }

    fn may_preempt(&self) -> bool {
        false
    }

    fn victims(
        &mut self,
        _queued: &[&Job],
        _residents: &[VictimView],
        _cost: &mut dyn FleetCost,
        _chip: usize,
        _cap: ChipCapacity,
        _now: u64,
    ) -> Vec<usize> {
        Vec::new()
    }
}

/// Priority-driven eviction with a per-job fairness bound.
///
/// At each round boundary the policy looks at the highest-priority
/// queued job (oldest first within a tier). If that job already fits the
/// chip's free capacity, admission will handle it and nobody is evicted.
/// If it doesn't fit, residents of *strictly lower* priority whose
/// preemption count is still below `fairness` are evicted — lowest
/// priority first, then largest KV footprint (fewest evictions per byte
/// freed), then youngest arrival — until the blocked job fits. If even
/// evicting every eligible victim would not make room, nothing is
/// evicted: pointless swaps are never charged.
///
/// Equal-priority work is never evicted (no mutual-eviction livelock),
/// and the `fairness` bound makes starvation impossible by construction:
/// a job can be preempted at most `fairness` times, after which it is
/// immune and runs to completion.
#[derive(Debug, Clone, Copy)]
pub struct PriorityPreemption {
    /// The most times any one job may be evicted.
    pub fairness: u32,
}

impl PreemptionPolicy for PriorityPreemption {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn victims(
        &mut self,
        queued: &[&Job],
        residents: &[VictimView],
        cost: &mut dyn FleetCost,
        chip: usize,
        cap: ChipCapacity,
        _now: u64,
    ) -> Vec<usize> {
        // The job preemption would serve: highest priority, oldest first.
        let Some(blocked) = queued
            .iter()
            .max_by_key(|j| (j.priority, Reverse((j.arrival_cycles, j.id))))
        else {
            return Vec::new();
        };
        // Page-table-backed under paged KV allocation: a blocked job
        // whose class prefix is already resident needs far fewer free
        // blocks, so fewer victims move.
        let footprint = cost.job_footprint_on(chip, blocked);
        if cap.slots > 0 && footprint <= cap.kv_free {
            return Vec::new(); // fits as-is; admission will take it
        }
        // Eligible victims: strictly outranked and under the fairness
        // bound. Cheapest evictions first.
        let mut candidates: Vec<usize> = (0..residents.len())
            .filter(|&i| {
                residents[i].priority < blocked.priority && residents[i].preemptions < self.fairness
            })
            .collect();
        candidates.sort_by_key(|&i| {
            let r = &residents[i];
            (
                r.priority,
                Reverse(r.kv_footprint),
                Reverse(r.arrival_cycles),
            )
        });
        let mut kv_free = cap.kv_free;
        let mut slots = cap.slots;
        let mut victims = Vec::new();
        for i in candidates {
            if slots > 0 && footprint <= kv_free {
                break;
            }
            kv_free += residents[i].kv_footprint;
            slots += 1;
            victims.push(i);
        }
        if slots > 0 && footprint <= kv_free {
            victims
        } else {
            Vec::new() // even a full sweep wouldn't fit it — don't thrash
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use spatten_core::SpAttenConfig;
    use spatten_workloads::{Benchmark, Workload};

    fn job(id: u64, priority: u8, seq_len: usize) -> Job {
        let mut workload: Workload = Benchmark::gpt2_small_wikitext2().workload();
        workload.seq_len = seq_len;
        workload.gen_steps = 8;
        Job {
            id,
            class: 0,
            priority,
            client: None,
            arrival_cycles: id,
            deadline_cycles: None,
            preemptions: 0,
            resume: None,
            shared_prefix_tokens: 0,
            revoked: false,
            workload,
        }
    }

    fn resident(priority: u8, kv: u64, preemptions: u32) -> VictimView {
        VictimView {
            priority,
            preemptions,
            kv_footprint: kv,
            prefilled: true,
            steps_done: 2,
            gen_steps: 8,
            arrival_cycles: 0,
        }
    }

    fn full_cap() -> ChipCapacity {
        ChipCapacity {
            active: 2,
            kv_free: 0,
            slots: 0,
        }
    }

    #[test]
    fn evicts_lowest_priority_largest_kv_first() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut p = PriorityPreemption { fairness: 4 };
        let high = job(0, 3, 64);
        let need = cost.footprint_on(0, &high.workload);
        let residents = [
            resident(1, need / 2, 0),
            resident(0, need, 0), // lowest tier, biggest footprint: first out
            resident(2, need * 2, 0),
        ];
        let victims = p.victims(&[&high], &residents, &mut cost, 0, full_cap(), 0);
        assert_eq!(victims, vec![1], "one eviction frees enough");
    }

    #[test]
    fn never_evicts_equal_or_higher_priority() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut p = PriorityPreemption { fairness: 4 };
        let incoming = job(0, 1, 64);
        let residents = [resident(1, u64::MAX, 0), resident(2, u64::MAX, 0)];
        assert!(p
            .victims(&[&incoming], &residents, &mut cost, 0, full_cap(), 0)
            .is_empty());
    }

    #[test]
    fn fairness_bound_grants_immunity() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut p = PriorityPreemption { fairness: 2 };
        let high = job(0, 3, 64);
        let residents = [resident(0, u64::MAX, 2)]; // already at the bound
        assert!(p
            .victims(&[&high], &residents, &mut cost, 0, full_cap(), 0)
            .is_empty());
    }

    #[test]
    fn no_eviction_when_the_job_already_fits() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut p = PriorityPreemption { fairness: 4 };
        let high = job(0, 3, 64);
        let cap = ChipCapacity {
            active: 1,
            kv_free: u64::MAX,
            slots: 4,
        };
        let residents = [resident(0, 1000, 0)];
        assert!(p
            .victims(&[&high], &residents, &mut cost, 0, cap, 0)
            .is_empty());
    }

    #[test]
    fn no_eviction_when_even_a_full_sweep_cannot_fit_it() {
        let mut cost = CostModel::end_to_end(SpAttenConfig::default(), 8);
        let mut p = PriorityPreemption { fairness: 4 };
        let high = job(0, 3, 1024);
        // One tiny victim, and a capacity so small the big job can never
        // fit: evicting would be pure waste, so nobody moves.
        let residents = [resident(0, 1, 0)];
        assert!(p
            .victims(&[&high], &residents, &mut cost, 0, full_cap(), 0)
            .is_empty());
    }
}
