//! Pluggable admission policies.
//!
//! A [`Scheduler`] owns the fleet-wide pending queue. Chips ask it for work
//! at every round boundary ([`Scheduler::take`]); what it hands back
//! depends on the policy:
//!
//! * [`Policy::Fifo`] — strict arrival order, one job per idle chip,
//!   run-to-completion. The baseline every serving system starts from, and
//!   the one whose p99 collapses first: a long generation job at the head
//!   of the queue blocks everything behind it for its entire lifetime.
//! * [`Policy::Sjf`] — shortest predicted job first (by
//!   [`CostModel::job_serial_cycles`]), run-to-completion. Fixes mean
//!   latency, still head-of-line blocks while a long job *executes*, and
//!   starves long jobs under pressure.
//! * [`Policy::ContinuousBatching`] — iteration-level scheduling: jobs are
//!   admitted into a chip's active batch whenever their KV-cache SRAM
//!   footprint fits ([`CostModel::kv_footprint_bytes`] against
//!   [`CostModel::kv_budget`]), and the chip interleaves one decode step of
//!   every resident job per iteration. Arrivals no longer wait for whole
//!   jobs — only for the current iteration — which is where the p99 win
//!   comes from. Admission stays in arrival order (no queue jumping), so
//!   the no-starvation property of FIFO is preserved.

use crate::cost::FleetCost;
use crate::request::Job;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The scheduling policy of a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// First-in first-out, run-to-completion.
    Fifo,
    /// Shortest predicted job first, run-to-completion.
    Sjf,
    /// Continuous batching packed by KV-cache SRAM footprint.
    ContinuousBatching,
}

impl Policy {
    /// All policies, in the order the bench report lists them.
    pub const ALL: [Policy; 3] = [Policy::Fifo, Policy::Sjf, Policy::ContinuousBatching];

    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::Sjf => "sjf",
            Policy::ContinuousBatching => "continuous-batching",
        }
    }

    /// Whether chips under this policy interleave jobs at iteration
    /// granularity (vs running each admitted job to completion).
    pub fn is_batching(&self) -> bool {
        matches!(self, Policy::ContinuousBatching)
    }
}

/// A chip's admission capacity, passed to [`Scheduler::take`].
#[derive(Debug, Clone, Copy)]
pub struct ChipCapacity {
    /// Jobs currently resident on the chip.
    pub active: usize,
    /// Remaining KV-cache SRAM bytes.
    pub kv_free: u64,
    /// Remaining batch slots (`max_batch - active`).
    pub slots: usize,
}

/// The fleet-wide pending queue plus the policy that drains it.
#[derive(Debug)]
pub struct Scheduler {
    policy: Policy,
    queue: VecDeque<Job>,
    admitted: u64,
}

impl Scheduler {
    /// An empty scheduler for `policy`.
    pub fn new(policy: Policy) -> Self {
        Self {
            policy,
            queue: VecDeque::new(),
            admitted: 0,
        }
    }

    /// The policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Jobs waiting for a chip.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total jobs handed to chips so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Enqueues an arrival.
    pub fn on_arrival(&mut self, job: Job) {
        self.queue.push_back(job);
    }

    /// Hands the calling chip (logical executor `chip`) the jobs it should
    /// admit right now. The returned jobs are removed from the queue; an
    /// empty vec means the chip stays as it is. Costs and KV footprints
    /// are priced against the *calling* chip's configuration, so a
    /// heterogeneous fleet packs each chip by its own budget.
    pub fn take<C: FleetCost>(&mut self, cost: &mut C, chip: usize, cap: ChipCapacity) -> Vec<Job> {
        let picked = match self.policy {
            Policy::Fifo => {
                if cap.active == 0 {
                    self.queue.pop_front().into_iter().collect()
                } else {
                    Vec::new()
                }
            }
            Policy::Sjf => {
                if cap.active == 0 && !self.queue.is_empty() {
                    let best = self
                        .queue
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, j)| (cost.job_serial_on(chip, &j.workload), *i))
                        .map(|(i, _)| i)
                        .expect("non-empty queue");
                    self.queue.remove(best).into_iter().collect()
                } else {
                    Vec::new()
                }
            }
            Policy::ContinuousBatching => {
                let mut out = Vec::new();
                let mut kv_free = cap.kv_free;
                let mut slots = cap.slots;
                // Strict arrival order: stop at the first job that doesn't
                // fit. Skipping ahead would pack tighter but reintroduces
                // starvation, and the batcher's fairness guarantee matters
                // more than the last few SRAM bytes.
                while slots > 0 {
                    let Some(front) = self.queue.front() else {
                        break;
                    };
                    let footprint = cost.footprint_on(chip, &front.workload);
                    if footprint > kv_free {
                        break;
                    }
                    kv_free -= footprint;
                    slots -= 1;
                    out.push(self.queue.pop_front().expect("front exists"));
                }
                out
            }
        };
        self.admitted += picked.len() as u64;
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use spatten_core::SpAttenConfig;
    use spatten_workloads::{Benchmark, Workload};

    fn job(id: u64, seq_len: usize, gen_steps: usize) -> Job {
        let mut workload: Workload = Benchmark::gpt2_small_wikitext2().workload();
        workload.seq_len = seq_len;
        workload.gen_steps = gen_steps;
        Job {
            id,
            class: 1,
            client: None,
            arrival_cycles: id * 10,
            workload,
        }
    }

    fn cost() -> CostModel {
        CostModel::end_to_end(SpAttenConfig::default(), 8)
    }

    #[test]
    fn fifo_hands_out_one_job_in_arrival_order() {
        let mut s = Scheduler::new(Policy::Fifo);
        let mut c = cost();
        for i in 0..3 {
            s.on_arrival(job(i, 64, 4));
        }
        let cap = ChipCapacity {
            active: 0,
            kv_free: u64::MAX,
            slots: 8,
        };
        let got = s.take(&mut c, 0, cap);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 0);
        // A busy chip gets nothing.
        let busy = ChipCapacity {
            active: 1,
            kv_free: u64::MAX,
            slots: 7,
        };
        assert!(s.take(&mut c, 0, busy).is_empty());
        assert_eq!(s.pending(), 2);
    }

    #[test]
    fn sjf_prefers_the_short_job() {
        let mut s = Scheduler::new(Policy::Sjf);
        let mut c = cost();
        s.on_arrival(job(0, 512, 48)); // long
        s.on_arrival(job(1, 32, 2)); // short
        let cap = ChipCapacity {
            active: 0,
            kv_free: u64::MAX,
            slots: 8,
        };
        let got = s.take(&mut c, 0, cap);
        assert_eq!(got[0].id, 1);
    }

    #[test]
    fn batcher_fills_until_kv_budget() {
        let mut s = Scheduler::new(Policy::ContinuousBatching);
        let mut c = cost();
        for i in 0..20 {
            s.on_arrival(job(i, 256, 16));
        }
        let budget = c.kv_budget();
        let cap = ChipCapacity {
            active: 0,
            kv_free: budget,
            slots: 16,
        };
        let got = s.take(&mut c, 0, cap);
        assert!(!got.is_empty());
        assert!(got.len() < 20, "budget must bound the batch");
        let used: u64 = got.iter().map(|j| c.kv_footprint_bytes(&j.workload)).sum();
        assert!(used <= budget, "batch footprint {used} > budget {budget}");
        // Arrival order preserved.
        let ids: Vec<u64> = got.iter().map(|j| j.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn batcher_respects_slots() {
        let mut s = Scheduler::new(Policy::ContinuousBatching);
        let mut c = cost();
        for i in 0..5 {
            s.on_arrival(job(i, 32, 2));
        }
        let cap = ChipCapacity {
            active: 2,
            kv_free: u64::MAX,
            slots: 2,
        };
        assert_eq!(s.take(&mut c, 0, cap).len(), 2);
    }
}
