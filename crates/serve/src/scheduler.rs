//! Pluggable admission policies: who enters a chip's running batch.
//!
//! Scheduling is split into two orthogonal policy seams the event loop is
//! generic over:
//!
//! * **Admission** ([`AdmissionPolicy`], this module) — which queued jobs
//!   join a chip's resident set at a round boundary, under the chip's KV
//!   budget and batch-slot capacity.
//! * **Batching** ([`crate::batch::BatchPolicy`]) — how the admitted
//!   residents share one iteration: whole jobs, uniform chunked-prefill +
//!   decode interleaving, or decode-prioritized token budgets.
//!
//! The bundled policies:
//!
//! * [`FifoAdmission`] — strict arrival order, one job per idle chip,
//!   run-to-completion. The baseline every serving system starts from, and
//!   the one whose p99 collapses first: a long generation job at the head
//!   of the queue blocks everything behind it for its entire lifetime.
//! * [`SjfAdmission`] — shortest predicted job first (by
//!   [`FleetCost::job_serial_on`]), run-to-completion. Fixes mean latency,
//!   still head-of-line blocks while a long job *executes*, and starves
//!   long jobs under pressure.
//! * [`ArrivalOrderAdmission`] — iteration-level admission in strict
//!   arrival order, bounded by KV footprint: the continuous-batching
//!   front-end. Stops at the first job that doesn't fit, so FIFO's
//!   no-starvation property is preserved.
//! * [`KvAwareAdmission`] — KV-footprint-aware reordering: scans past
//!   jobs that don't fit the remaining budget and admits later ones that
//!   do, packing the SRAM tighter under mixed footprints. Every overtake
//!   increments the skipped job's counter; a job skipped `max_skip` times
//!   becomes a barrier no one may pass, so starvation is bounded by
//!   construction.
//! * [`SloAwareAdmission`] — arrival-order batching plus early rejection:
//!   a queued job whose deadline can no longer be met *even if it started
//!   immediately* is shed before it consumes any chip cycles, protecting
//!   goodput under overload instead of letting every request straggle.
//!
//! The [`Policy`] enum names the six canonical (admission, batching)
//! pairings and builds boxed policy objects for runtime sweeps; the
//! simulator itself ([`crate::sim::simulate_fleet_with`]) is generic and
//! accepts any trait implementation.

use crate::batch::{BatchPolicy, DecodePrioritizedBatch, IterationBatch, RunToCompletion};
use crate::cost::FleetCost;
use crate::request::Job;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// The six canonical scheduling policies, as (admission, batching) pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// First-in first-out, run-to-completion.
    Fifo,
    /// Shortest predicted job first, run-to-completion.
    Sjf,
    /// Continuous batching packed by KV-cache SRAM footprint, uniform
    /// chunked-prefill + decode iterations.
    ContinuousBatching,
    /// Continuous batching with Sarathi-style decode-prioritized
    /// iteration budgets: decode steps are reserved first, leftover
    /// budget is filled with chunked prefill.
    DecodePrioritized,
    /// KV-footprint-aware queue reordering with a per-job starvation
    /// bound ([`SchedKnobs::max_skip`]).
    KvAware,
    /// Continuous batching plus SLO-aware early rejection of jobs whose
    /// deadline is already unmeetable.
    SloAware,
}

impl Policy {
    /// All policies, in the order the bench report lists them.
    pub const ALL: [Policy; 6] = [
        Policy::Fifo,
        Policy::Sjf,
        Policy::ContinuousBatching,
        Policy::DecodePrioritized,
        Policy::KvAware,
        Policy::SloAware,
    ];

    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::Sjf => "sjf",
            Policy::ContinuousBatching => "continuous-batching",
            Policy::DecodePrioritized => "decode-prioritized",
            Policy::KvAware => "kv-aware",
            Policy::SloAware => "slo-aware",
        }
    }

    /// Builds this policy's admission half.
    pub fn admission(&self, knobs: &SchedKnobs) -> Box<dyn AdmissionPolicy> {
        match self {
            Policy::Fifo => Box::new(FifoAdmission),
            Policy::Sjf => Box::new(SjfAdmission),
            Policy::ContinuousBatching | Policy::DecodePrioritized => {
                Box::new(ArrivalOrderAdmission)
            }
            Policy::KvAware => Box::new(KvAwareAdmission {
                max_skip: knobs.max_skip,
            }),
            Policy::SloAware => Box::new(SloAwareAdmission::default()),
        }
    }

    /// Builds this policy's batching half.
    pub fn batch(&self, knobs: &SchedKnobs) -> Box<dyn BatchPolicy> {
        match self {
            Policy::Fifo | Policy::Sjf => Box::new(RunToCompletion),
            Policy::ContinuousBatching | Policy::KvAware | Policy::SloAware => {
                Box::new(IterationBatch {
                    prefill_chunk_cycles: knobs.prefill_chunk_cycles,
                })
            }
            Policy::DecodePrioritized => Box::new(DecodePrioritizedBatch {
                prefill_chunk_cycles: knobs.prefill_chunk_cycles,
                prefill_budget_cycles: knobs.prefill_budget_cycles,
            }),
        }
    }
}

/// Tuning knobs shared by the canonical policies. Defaults match the
/// Table-I serving configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedKnobs {
    /// Chunked-prefill quantum: the most serial prefill work one job may
    /// contribute per iteration (≈ one GPT-2-Small end-to-end decode step
    /// at 1 GHz), so resident decode jobs never stall behind whole
    /// multi-millisecond prefill passes.
    pub prefill_chunk_cycles: u64,
    /// Decode-prioritized iteration budget for *total* prefill work per
    /// iteration (shared across all resident prefills, oldest first),
    /// once every resident decode job has its step reserved.
    pub prefill_budget_cycles: u64,
    /// KV-aware reordering starvation bound: the most times one queued
    /// job may be overtaken before it becomes an admission barrier.
    pub max_skip: u32,
}

impl Default for SchedKnobs {
    fn default() -> Self {
        Self {
            prefill_chunk_cycles: 250_000,
            prefill_budget_cycles: 250_000,
            max_skip: 4,
        }
    }
}

/// A chip's admission capacity, passed to [`AdmissionPolicy::admit`].
#[derive(Debug, Clone, Copy)]
pub struct ChipCapacity {
    /// Jobs currently resident on the chip.
    pub active: usize,
    /// Remaining KV-cache SRAM bytes.
    pub kv_free: u64,
    /// Remaining batch slots (`max_batch - active`).
    pub slots: usize,
}

/// One queued job plus its reordering bookkeeping.
#[derive(Debug)]
pub struct QueuedJob {
    /// The pending job.
    pub job: Job,
    /// Times a later arrival has been admitted past this job.
    pub skips: u32,
}

/// The fleet-wide pending queue, in arrival order. Admission policies
/// inspect it, remove the jobs they admit or reject, and record overtakes
/// on the jobs they skip.
#[derive(Debug, Default)]
pub struct PendingQueue {
    jobs: VecDeque<QueuedJob>,
}

impl PendingQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an arrival (queue order is arrival order).
    pub fn push(&mut self, job: Job) {
        self.jobs.push_back(QueuedJob { job, skips: 0 });
    }

    /// Jobs waiting.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The queued job at position `i` (0 = oldest).
    pub fn get(&self, i: usize) -> &QueuedJob {
        &self.jobs[i]
    }

    /// Removes and returns the job at position `i`.
    pub fn remove(&mut self, i: usize) -> Job {
        self.jobs.remove(i).expect("queue index in range").job
    }

    /// Records one overtake of the job at position `i`.
    pub fn add_skip(&mut self, i: usize) {
        self.jobs[i].skips += 1;
    }

    /// Iterates the queue in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.jobs.iter()
    }
}

/// What one admission call decided: jobs the chip should admit now, and
/// jobs shed from the queue (SLO-aware early rejection).
#[derive(Debug, Default)]
pub struct Admission {
    /// Jobs to admit into the calling chip's resident set.
    pub jobs: Vec<Job>,
    /// Jobs dropped from the queue without ever touching a chip.
    pub rejected: Vec<Job>,
}

/// The admission seam: which pending jobs enter the calling chip's
/// resident set at a round boundary. Implementations see the whole
/// queue, the chip's capacity, and the fleet cost oracle (priced against
/// the *calling* chip, so heterogeneous fleets pack each chip by its own
/// budget).
pub trait AdmissionPolicy: fmt::Debug {
    /// Stable lowercase name for reports.
    fn name(&self) -> &'static str;

    /// Decides admissions (and rejections) for logical executor `chip`
    /// with capacity `cap` at time `now`.
    fn admit(
        &mut self,
        queue: &mut PendingQueue,
        cost: &mut dyn FleetCost,
        chip: usize,
        cap: ChipCapacity,
        now: u64,
    ) -> Admission;
}

impl AdmissionPolicy for Box<dyn AdmissionPolicy> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn admit(
        &mut self,
        queue: &mut PendingQueue,
        cost: &mut dyn FleetCost,
        chip: usize,
        cap: ChipCapacity,
        now: u64,
    ) -> Admission {
        self.as_mut().admit(queue, cost, chip, cap, now)
    }
}

/// Strict arrival order, one job per idle chip, run-to-completion.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoAdmission;

impl AdmissionPolicy for FifoAdmission {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn admit(
        &mut self,
        queue: &mut PendingQueue,
        _cost: &mut dyn FleetCost,
        _chip: usize,
        cap: ChipCapacity,
        _now: u64,
    ) -> Admission {
        let mut out = Admission::default();
        if cap.active == 0 && !queue.is_empty() {
            out.jobs.push(queue.remove(0));
        }
        out
    }
}

/// Shortest predicted job first, run-to-completion.
#[derive(Debug, Clone, Copy, Default)]
pub struct SjfAdmission;

impl AdmissionPolicy for SjfAdmission {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn admit(
        &mut self,
        queue: &mut PendingQueue,
        cost: &mut dyn FleetCost,
        chip: usize,
        cap: ChipCapacity,
        _now: u64,
    ) -> Admission {
        let mut out = Admission::default();
        if cap.active == 0 && !queue.is_empty() {
            let best = (0..queue.len())
                .min_by_key(|&i| (cost.job_serial_on(chip, &queue.get(i).job.workload), i))
                .expect("non-empty queue");
            out.jobs.push(queue.remove(best));
        }
        out
    }
}

/// Iteration-level admission in strict arrival order, bounded by KV
/// footprint — the continuous-batching front-end. Stops at the first job
/// that doesn't fit: skipping ahead would pack tighter but reintroduces
/// starvation, and the batcher's fairness guarantee matters more than the
/// last few SRAM bytes (that trade is [`KvAwareAdmission`]'s, with an
/// explicit bound).
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrivalOrderAdmission;

impl AdmissionPolicy for ArrivalOrderAdmission {
    fn name(&self) -> &'static str {
        "continuous-batching"
    }

    fn admit(
        &mut self,
        queue: &mut PendingQueue,
        cost: &mut dyn FleetCost,
        chip: usize,
        cap: ChipCapacity,
        _now: u64,
    ) -> Admission {
        let mut out = Admission::default();
        let mut kv_free = cap.kv_free;
        let mut slots = cap.slots;
        while slots > 0 && !queue.is_empty() {
            let footprint = cost.footprint_on(chip, &queue.get(0).job.workload);
            if footprint > kv_free {
                break;
            }
            kv_free -= footprint;
            slots -= 1;
            out.jobs.push(queue.remove(0));
        }
        out
    }
}

/// KV-footprint-aware reordering with an explicit starvation bound: the
/// scan admits any queued job that fits the remaining budget, jumping
/// over jobs that don't. Each jump increments the skipped job's counter;
/// once a job has been overtaken `max_skip` times it becomes a barrier —
/// nothing behind it is admitted until it fits — so no request waits for
/// more than `max_skip` queue-jumpers, ever.
#[derive(Debug, Clone, Copy)]
pub struct KvAwareAdmission {
    /// The most times one job may be overtaken.
    pub max_skip: u32,
}

impl AdmissionPolicy for KvAwareAdmission {
    fn name(&self) -> &'static str {
        "kv-aware"
    }

    fn admit(
        &mut self,
        queue: &mut PendingQueue,
        cost: &mut dyn FleetCost,
        chip: usize,
        cap: ChipCapacity,
        _now: u64,
    ) -> Admission {
        let mut out = Admission::default();
        let mut kv_free = cap.kv_free;
        let mut slots = cap.slots;
        // Queue positions scanned past because they didn't fit. They keep
        // their positions as later jobs are removed, because every removal
        // happens at a higher index.
        let mut passed: Vec<usize> = Vec::new();
        let mut i = 0;
        while slots > 0 && i < queue.len() {
            let q = queue.get(i);
            let footprint = cost.footprint_on(chip, &q.job.workload);
            if footprint > kv_free {
                if q.skips >= self.max_skip {
                    break; // starvation barrier: nobody may pass this job
                }
                passed.push(i);
                i += 1;
                continue;
            }
            // Admitting past a job that has exhausted its skip allowance
            // would break the bound — stop instead.
            if passed.iter().any(|&p| queue.get(p).skips >= self.max_skip) {
                break;
            }
            for &p in &passed {
                queue.add_skip(p);
            }
            kv_free -= footprint;
            slots -= 1;
            out.jobs.push(queue.remove(i));
        }
        out
    }
}

/// Arrival-order batching plus SLO-aware early rejection: a queued job
/// is shed only when its deadline can no longer be met even by starting
/// *immediately* on the most favorable chip the fleet has shown this
/// policy (`now + serial > deadline` on every chip seen) — a guaranteed
/// loser, not merely a bad fit for the chip that happens to be asking.
/// Rejected work never consumes chip cycles, so the capacity it would
/// have wasted on a certain violation serves requests that can still
/// win.
#[derive(Debug, Clone, Default)]
pub struct SloAwareAdmission {
    /// Every chip index whose admission this policy has handled. All
    /// chips are polled on each arrival, so after the first event this
    /// covers the fleet; until a chip has introduced itself its speed is
    /// unknown and cannot condemn a job.
    chips_seen: Vec<usize>,
}

impl AdmissionPolicy for SloAwareAdmission {
    fn name(&self) -> &'static str {
        "slo-aware"
    }

    fn admit(
        &mut self,
        queue: &mut PendingQueue,
        cost: &mut dyn FleetCost,
        chip: usize,
        cap: ChipCapacity,
        now: u64,
    ) -> Admission {
        if !self.chips_seen.contains(&chip) {
            self.chips_seen.push(chip);
        }
        let mut out = Admission::default();
        // Shed hopeless jobs anywhere in the queue first: hopeless means
        // no known chip could finish the job by its deadline even if it
        // started this instant (heterogeneous fleets: a job too slow for
        // an eighth-scale chip may still win on a full one).
        let mut i = 0;
        while i < queue.len() {
            let job = &queue.get(i).job;
            let hopeless = job.deadline_cycles.is_some_and(|d| {
                self.chips_seen
                    .iter()
                    .all(|&c| now + cost.job_serial_on(c, &job.workload) > d)
            });
            if hopeless {
                out.rejected.push(queue.remove(i));
            } else {
                i += 1;
            }
        }
        // Then admit exactly like the arrival-order batcher.
        let batched = ArrivalOrderAdmission.admit(queue, cost, chip, cap, now);
        out.jobs = batched.jobs;
        out
    }
}

/// The fleet-wide pending queue plus the admission policy that drains it.
#[derive(Debug)]
pub struct Scheduler<A: AdmissionPolicy> {
    policy: A,
    queue: PendingQueue,
    admitted: u64,
}

impl<A: AdmissionPolicy> Scheduler<A> {
    /// An empty scheduler driven by `policy`.
    pub fn new(policy: A) -> Self {
        Self {
            policy,
            queue: PendingQueue::new(),
            admitted: 0,
        }
    }

    /// Jobs waiting for a chip.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total jobs handed to chips so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Enqueues an arrival.
    pub fn on_arrival(&mut self, job: Job) {
        self.queue.push(job);
    }

    /// Asks the policy what the calling chip should admit right now.
    /// Admitted and rejected jobs are removed from the queue; an empty
    /// decision means the chip stays as it is.
    pub fn take<C: FleetCost>(
        &mut self,
        cost: &mut C,
        chip: usize,
        cap: ChipCapacity,
        now: u64,
    ) -> Admission {
        let decision = self.policy.admit(&mut self.queue, cost, chip, cap, now);
        self.admitted += decision.jobs.len() as u64;
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use spatten_core::SpAttenConfig;
    use spatten_workloads::{Benchmark, Workload};

    fn job(id: u64, seq_len: usize, gen_steps: usize) -> Job {
        let mut workload: Workload = Benchmark::gpt2_small_wikitext2().workload();
        workload.seq_len = seq_len;
        workload.gen_steps = gen_steps;
        Job {
            id,
            class: 1,
            client: None,
            arrival_cycles: id * 10,
            deadline_cycles: None,
            workload,
        }
    }

    fn cost() -> CostModel {
        CostModel::end_to_end(SpAttenConfig::default(), 8)
    }

    fn idle_cap(slots: usize) -> ChipCapacity {
        ChipCapacity {
            active: 0,
            kv_free: u64::MAX,
            slots,
        }
    }

    #[test]
    fn fifo_hands_out_one_job_in_arrival_order() {
        let mut s = Scheduler::new(FifoAdmission);
        let mut c = cost();
        for i in 0..3 {
            s.on_arrival(job(i, 64, 4));
        }
        let got = s.take(&mut c, 0, idle_cap(8), 0);
        assert_eq!(got.jobs.len(), 1);
        assert_eq!(got.jobs[0].id, 0);
        // A busy chip gets nothing.
        let busy = ChipCapacity {
            active: 1,
            kv_free: u64::MAX,
            slots: 7,
        };
        assert!(s.take(&mut c, 0, busy, 0).jobs.is_empty());
        assert_eq!(s.pending(), 2);
    }

    #[test]
    fn sjf_prefers_the_short_job() {
        let mut s = Scheduler::new(SjfAdmission);
        let mut c = cost();
        s.on_arrival(job(0, 512, 48)); // long
        s.on_arrival(job(1, 32, 2)); // short
        let got = s.take(&mut c, 0, idle_cap(8), 0);
        assert_eq!(got.jobs[0].id, 1);
    }

    #[test]
    fn batcher_fills_until_kv_budget() {
        let mut s = Scheduler::new(ArrivalOrderAdmission);
        let mut c = cost();
        for i in 0..20 {
            s.on_arrival(job(i, 256, 16));
        }
        let budget = c.kv_budget();
        let cap = ChipCapacity {
            active: 0,
            kv_free: budget,
            slots: 16,
        };
        let got = s.take(&mut c, 0, cap, 0).jobs;
        assert!(!got.is_empty());
        assert!(got.len() < 20, "budget must bound the batch");
        let used: u64 = got.iter().map(|j| c.kv_footprint_bytes(&j.workload)).sum();
        assert!(used <= budget, "batch footprint {used} > budget {budget}");
        // Arrival order preserved.
        let ids: Vec<u64> = got.iter().map(|j| j.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn batcher_respects_slots() {
        let mut s = Scheduler::new(ArrivalOrderAdmission);
        let mut c = cost();
        for i in 0..5 {
            s.on_arrival(job(i, 32, 2));
        }
        let cap = ChipCapacity {
            active: 2,
            kv_free: u64::MAX,
            slots: 2,
        };
        assert_eq!(s.take(&mut c, 0, cap, 0).jobs.len(), 2);
    }

    #[test]
    fn kv_aware_jumps_a_stuck_head_and_packs_tighter() {
        let mut c = cost();
        // A fat job at the head that won't fit the remaining budget,
        // followed by slim ones that will.
        let fat = job(0, 1024, 120);
        let slim = job(1, 48, 4);
        let fat_fp = c.kv_footprint_bytes(&fat.workload);
        let slim_fp = c.kv_footprint_bytes(&slim.workload);
        assert!(fat_fp > slim_fp);
        let cap = ChipCapacity {
            active: 1,
            kv_free: fat_fp - 1, // fat job doesn't fit, slim jobs do
            slots: 4,
        };
        let mut plain = Scheduler::new(ArrivalOrderAdmission);
        let mut aware = Scheduler::new(KvAwareAdmission { max_skip: 4 });
        for s in [&mut plain.queue, &mut aware.queue] {
            s.push(fat.clone());
            for i in 1..4 {
                s.push(job(i, 48, 4));
            }
        }
        assert!(plain.take(&mut c, 0, cap, 0).jobs.is_empty());
        let got = aware.take(&mut c, 0, cap, 0).jobs;
        assert_eq!(got.len(), 3, "kv-aware admits the slim jobs");
        assert!(got.iter().all(|j| j.id != 0));
        assert_eq!(aware.queue.get(0).skips, 3, "three overtakes recorded");
    }

    #[test]
    fn kv_aware_barrier_blocks_at_the_bound() {
        let mut c = cost();
        let fat = job(0, 1024, 120);
        let fat_fp = c.kv_footprint_bytes(&fat.workload);
        let cap = ChipCapacity {
            active: 1,
            kv_free: fat_fp - 1,
            slots: 2,
        };
        let mut s = Scheduler::new(KvAwareAdmission { max_skip: 2 });
        s.on_arrival(fat);
        for i in 1..8 {
            s.on_arrival(job(i, 48, 4));
        }
        // First take admits 2 slim jobs (2 overtakes — the bound).
        assert_eq!(s.take(&mut c, 0, cap, 0).jobs.len(), 2);
        // The fat job is now a barrier: nothing more is admitted even
        // though slim jobs still fit.
        assert!(s.take(&mut c, 0, cap, 0).jobs.is_empty());
        assert_eq!(s.queue.get(0).skips, 2);
        // Once the fat job itself fits, the queue unblocks through it.
        let roomy = ChipCapacity {
            active: 0,
            kv_free: u64::MAX,
            slots: 8,
        };
        let got = s.take(&mut c, 0, roomy, 0).jobs;
        assert_eq!(got[0].id, 0, "barrier job admitted first");
    }

    #[test]
    fn slo_aware_sheds_hopeless_jobs_and_admits_the_rest() {
        let mut c = cost();
        let mut s = Scheduler::new(SloAwareAdmission::default());
        let mut hopeless = job(0, 256, 32);
        hopeless.deadline_cycles = Some(10); // cannot finish by cycle 10
        let mut winnable = job(1, 64, 4);
        let serial = c.job_serial_cycles(&winnable.workload);
        winnable.deadline_cycles = Some(serial * 10);
        s.on_arrival(hopeless);
        s.on_arrival(winnable);
        s.on_arrival(job(2, 64, 4)); // best-effort, never shed
        let got = s.take(&mut c, 0, idle_cap(8), 0);
        assert_eq!(got.rejected.len(), 1);
        assert_eq!(got.rejected[0].id, 0);
        let ids: Vec<u64> = got.jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
